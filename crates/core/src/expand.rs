//! Query expansion (Section 4.1) and the `p`-expanded query
//! (Definition 7 + Lemma 5).

use iloc_geometry::{minkowski, Rect};
use iloc_uncertainty::PBound;

use crate::query::{Issuer, RangeSpec};

/// The expanded query range `R ⊕ U0` (Lemma 1): the union of every
/// range query issuable from inside `U0`. Objects that do not touch it
/// have zero qualification probability.
#[inline]
pub fn minkowski_query(issuer: &Issuer, range: RangeSpec) -> Rect {
    minkowski::expand_query(issuer.region(), range.w, range.h)
}

/// The `p`-expanded query for one issuer p-bound (Lemma 5): the
/// issuer's `p`-bound grown by the query half-extents. Point objects
/// outside it have qualification probability at most `p` (the paper's
/// Lemma 5 inequality chain), so they cannot reach a threshold above
/// `p`. For `p = 0` this equals the Minkowski sum.
#[inline]
pub fn p_expanded_from_bound(bound: &PBound, range: RangeSpec) -> Rect {
    bound.rect.expand(range.w, range.h)
}

/// The conservative `Qp`-expanded query using the issuer's U-catalog:
/// built from the largest stored level `M ≤ Qp`, so it encloses the
/// exact `Qp`-expanded query and never prunes a qualifying object.
/// Returns the bound's level alongside the rectangle.
pub fn p_expanded_query(issuer: &Issuer, range: RangeSpec, qp: f64) -> (f64, Rect) {
    let b = issuer.catalog().best_at_most(qp);
    (b.p, p_expanded_from_bound(b, range))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc_geometry::Point;

    fn issuer() -> Issuer {
        Issuer::uniform(Rect::from_coords(100.0, 100.0, 300.0, 300.0))
    }

    #[test]
    fn minkowski_query_expands_by_half_extents() {
        let q = minkowski_query(&issuer(), RangeSpec::new(50.0, 25.0));
        assert_eq!(q, Rect::from_coords(50.0, 75.0, 350.0, 325.0));
    }

    #[test]
    fn zero_threshold_equals_minkowski() {
        let iss = issuer();
        let range = RangeSpec::square(50.0);
        let (level, pexp) = p_expanded_query(&iss, range, 0.0);
        assert_eq!(level, 0.0);
        assert_eq!(pexp, minkowski_query(&iss, range));
    }

    #[test]
    fn p_expanded_shrinks_with_threshold() {
        let iss = issuer();
        let range = RangeSpec::square(50.0);
        let mut prev = p_expanded_query(&iss, range, 0.0).1;
        for k in 1..=5 {
            let qp = k as f64 / 10.0;
            let (level, cur) = p_expanded_query(&iss, range, qp);
            assert_eq!(level, qp, "exact catalog level expected");
            assert!(prev.contains_rect(cur), "qp={qp} not nested");
            assert!(cur.area() < prev.area());
            prev = cur;
        }
    }

    #[test]
    fn catalog_quantisation_is_conservative() {
        // Qp = 0.35 is not stored; the 0.3-level (larger rectangle) must
        // be used so no qualifying object can be lost.
        let iss = issuer();
        let range = RangeSpec::square(10.0);
        let (level, pexp) = p_expanded_query(&iss, range, 0.35);
        assert_eq!(level, 0.3);
        let exact_35 = Rect::from_coords(
            100.0 + 0.35 * 200.0 - 10.0,
            100.0 + 0.35 * 200.0 - 10.0,
            300.0 - 0.35 * 200.0 + 10.0,
            300.0 - 0.35 * 200.0 + 10.0,
        );
        assert!(pexp.contains_rect(exact_35));
    }

    #[test]
    fn uniform_p_expanded_matches_lemma5_arithmetic() {
        // For a uniform issuer on [100,300]², l0(p) = 100 + 200p, so the
        // left side of the p-expanded query is l0(p) − w.
        let iss = issuer();
        let range = RangeSpec::new(40.0, 40.0);
        let (_, pexp) = p_expanded_query(&iss, range, 0.2);
        assert!((pexp.min.x - (100.0 + 40.0 - 40.0)).abs() < 1e-9);
        assert!((pexp.min.x - (140.0 - 40.0)).abs() < 1e-9);
        assert_eq!(pexp.center(), Point::new(200.0, 200.0));
    }
}
