//! Machine-independent access counters.
//!
//! The paper reports wall-clock response time on 2007 hardware; we
//! additionally count logical accesses so the reproduced experiments
//! have a deterministic, machine-independent I/O metric.

/// Counters accumulated while answering one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// R-tree / PTI nodes visited (each visit models one page read).
    pub nodes_visited: u64,
    /// Grid-file buckets (directory cells) visited.
    pub buckets_visited: u64,
    /// Leaf entries / items whose MBR was tested against the query.
    pub items_tested: u64,
    /// Items that passed the geometric filter and were returned as
    /// candidates.
    pub candidates: u64,
}

impl AccessStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        AccessStats::default()
    }

    /// Merges another counter set into `self` (used when one query
    /// issues several index probes).
    pub fn absorb(&mut self, other: AccessStats) {
        self.nodes_visited += other.nodes_visited;
        self.buckets_visited += other.buckets_visited;
        self.items_tested += other.items_tested;
        self.candidates += other.candidates;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_adds_fields() {
        let mut a = AccessStats {
            nodes_visited: 1,
            buckets_visited: 2,
            items_tested: 3,
            candidates: 4,
        };
        a.absorb(AccessStats {
            nodes_visited: 10,
            buckets_visited: 20,
            items_tested: 30,
            candidates: 40,
        });
        assert_eq!(
            a,
            AccessStats {
                nodes_visited: 11,
                buckets_visited: 22,
                items_tested: 33,
                candidates: 44,
            }
        );
    }
}
