//! 2-D points.

use std::fmt;

/// A point in the 2-D data space.
///
/// Point objects (`Si` in the paper) are exactly this: a known location
/// with no uncertainty, e.g. a shop or a gas station.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)`.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Component-wise addition (translation by another point treated as
    /// a vector). This is the primitive underlying the Minkowski sum.
    #[inline]
    pub fn translate(self, dx: f64, dy: f64) -> Self {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Squared Euclidean distance (avoids the square root when only
    /// comparisons are needed).
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Chebyshev (L∞) distance to `other`; a point satisfies a square
    /// range query of half-width `w` iff its Chebyshev distance to the
    /// query centre is at most `w`.
    #[inline]
    pub fn chebyshev_distance(self, other: Point) -> f64 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translate_moves_point() {
        let p = Point::new(1.0, 2.0).translate(3.0, -1.0);
        assert_eq!(p, Point::new(4.0, 1.0));
    }

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn chebyshev_takes_max_axis() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, -7.0);
        assert_eq!(a.chebyshev_distance(b), 7.0);
    }

    #[test]
    fn from_tuple() {
        let p: Point = (1.5, 2.5).into();
        assert_eq!(p, Point::new(1.5, 2.5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Point::new(1.0, 2.0).to_string(), "(1, 2)");
    }

    #[test]
    fn finite_check() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }
}
