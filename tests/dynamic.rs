//! Dynamic-maintenance bit-identity properties.
//!
//! The contract of every insert/remove path in the workspace: after
//! **any** interleaving of inserts and removes, a query answers
//! **bit-identically** to a from-scratch rebuild on the final live
//! set. Pinned here at three layers:
//!
//! * index level — the same `QueryPipeline` over a dynamically
//!   maintained `RTree` / `Pti` / `GridFile` / `NaiveIndex` vs a
//!   rebuilt one;
//! * engine level — `PointEngine` / `UncertainEngine` under an
//!   arrival/departure/move stream vs `from_objects` / `build` on the
//!   survivors;
//! * serving level — `ShardedEngine` snapshots across shard counts
//!   1/2/8, committed in batches, vs a rebuilt single engine;
//! * durability level — a `DurableCatalog` whose process is "killed"
//!   at arbitrary WAL byte offsets (emulated by truncating the live
//!   segment) recovers to a bit-identical prefix of the committed
//!   stream, again across shard counts 1/2/8.
//!
//! All queries also run through **one dirty, reused
//! `ExecutionContext`** (its `QueryScratch` is never cleared between
//! layers), so scratch reuse is covered by the same bit-identity bar.
//! Probabilities use the closed-form integrators (`Integrator::Auto`
//! over uniform pdfs), which is what makes bit-identity — not mere
//! approximate equality — the right assertion.

use iloc::core::pipeline::{
    AcceptPolicy, EvaluatorKind, ExecutionContext, PreparedQuery, PruneChain, QueryPipeline,
    RectFilter,
};
use iloc::core::pipeline::{PointRequest, UncertainRequest};
use iloc::core::serve::{ShardedEngine, Update};
use iloc::datagen::{PointUpdate, PointUpdateGen, RectUpdate, RectUpdateGen, UpdateMix};
use iloc::index::{GridFile, NaiveIndex, Pti, PtiParams, RTree, RTreeParams, RangeIndex};
use iloc::prelude::*;
use iloc::uncertainty::{PointObject, UncertainObject, UniformPdf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs one IPQ-shaped pipeline over `index` and the shared object
/// arena through the caller's (dirty) context.
fn pipeline_answer<I: RangeIndex<u32>>(
    index: &I,
    objects: &[PointObject],
    issuer: &Issuer,
    range: RangeSpec,
    ctx: &mut ExecutionContext,
) -> QueryAnswer {
    let query = PreparedQuery::new(issuer, range);
    QueryPipeline {
        query,
        objects,
        filter: RectFilter {
            index,
            query: query.expanded,
        },
        prune: PruneChain::none(),
        refine: EvaluatorKind::Duality,
        accept: AcceptPolicy::Positive,
    }
    .execute(ctx)
}

/// The index-level property for one backend: interleaved
/// inserts/removes, then queries bit-identical to a rebuild.
fn index_dynamic_equals_rebuild<I: RangeIndex<u32>>(
    name: &str,
    build: impl Fn(Vec<(Rect, u32)>) -> I,
) {
    let mut rng = StdRng::seed_from_u64(0xD11A);
    // Append-only object arena; the live set indexes into it.
    let mut arena: Vec<PointObject> = Vec::new();
    let mut live: Vec<(Rect, u32)> = Vec::new();
    let mut dynamic = build(Vec::new());

    for _ in 0..1_500 {
        let grow = live.len() < 50 || rng.gen_bool(0.6);
        if grow {
            let slot = arena.len() as u32;
            let loc = Point::new(rng.gen_range(0.0..2_000.0), rng.gen_range(0.0..2_000.0));
            arena.push(PointObject::new(slot as u64, loc));
            let extent = Rect::from_point(loc);
            dynamic.insert(extent, slot);
            live.push((extent, slot));
        } else {
            let k = rng.gen_range(0..live.len());
            let (extent, slot) = live.swap_remove(k);
            assert!(dynamic.remove(extent, slot), "{name}: lost slot {slot}");
        }
    }
    let rebuilt = build(live.clone());

    // One dirty context shared by every execution below.
    let mut ctx = ExecutionContext::new(Integrator::Auto);
    for q in 0..25u64 {
        let c = Point::new(rng.gen_range(0.0..2_000.0), rng.gen_range(0.0..2_000.0));
        let issuer = Issuer::uniform(Rect::centered(c, 120.0, 120.0));
        let range = RangeSpec::square(100.0 + 10.0 * q as f64);
        let a = pipeline_answer(&dynamic, &arena, &issuer, range, &mut ctx);
        let b = pipeline_answer(&rebuilt, &arena, &issuer, range, &mut ctx);
        assert!(
            a.same_matches(&b),
            "{name}: query {q} diverged from rebuild"
        );
        // And against a fresh context (scratch reuse is inert).
        let fresh = pipeline_answer(
            &dynamic,
            &arena,
            &issuer,
            range,
            &mut ExecutionContext::new(Integrator::Auto),
        );
        assert!(a.same_matches(&fresh), "{name}: dirty scratch diverged");
    }
}

#[test]
fn rtree_dynamic_equals_rebuild() {
    index_dynamic_equals_rebuild("rtree", |entries| {
        RTree::bulk_load(entries, RTreeParams::default())
    });
}

#[test]
fn pti_dynamic_equals_rebuild() {
    index_dynamic_equals_rebuild("pti", |entries| {
        Pti::bulk_load(
            vec![0.0],
            entries.into_iter().map(|(r, t)| (vec![r], t)).collect(),
            PtiParams::default(),
        )
    });
}

#[test]
fn gridfile_dynamic_equals_rebuild() {
    index_dynamic_equals_rebuild("gridfile", |entries| {
        GridFile::new(
            Rect::from_coords(0.0, 0.0, 2_000.0, 2_000.0),
            12,
            12,
            entries,
        )
    });
}

#[test]
fn naive_dynamic_equals_rebuild() {
    index_dynamic_equals_rebuild("naive", NaiveIndex::new);
}

/// Shared driver for the engine/serving-level property over a point
/// stream: applies the same updates to a dynamic single engine and to
/// sharded engines (1/2/8 shards, committed in batches), then checks
/// every layer answers bit-identically to a from-scratch rebuild.
#[test]
fn point_stream_equals_rebuild_across_all_layers() {
    let (base, mut gen) = PointUpdateGen::over_california(1_500, 41, UpdateMix::balanced());
    let mut dynamic = PointEngine::build(base.clone());
    let sharded: Vec<ShardedEngine<PointEngine>> = [1usize, 2, 8]
        .iter()
        .map(|&n| {
            ShardedEngine::build(
                base.iter()
                    .enumerate()
                    .map(|(k, &p)| PointObject::new(k as u64, p))
                    .collect(),
                n,
            )
        })
        .collect();

    for _round in 0..12 {
        for event in gen.stream(150) {
            match event {
                PointUpdate::Arrive { id, loc } => {
                    dynamic.insert_object(PointObject::new(id, loc));
                    for s in &sharded {
                        s.submit(Update::Arrive(PointObject::new(id, loc)));
                    }
                }
                PointUpdate::Depart { id } => {
                    assert!(dynamic.remove(iloc::uncertainty::ObjectId(id)));
                    for s in &sharded {
                        s.submit(Update::Depart(iloc::uncertainty::ObjectId(id)));
                    }
                }
                PointUpdate::Move { id, to } => {
                    assert!(dynamic.remove(iloc::uncertainty::ObjectId(id)));
                    dynamic.insert_object(PointObject::new(id, to));
                    for s in &sharded {
                        s.submit(Update::Move(PointObject::new(id, to)));
                    }
                }
            }
        }
        // One epoch per round: queries between rounds see each batch
        // applied atomically.
        for s in &sharded {
            s.commit();
        }
    }

    // Rebuild on the survivors.
    let survivors: Vec<PointObject> = gen
        .live()
        .iter()
        .map(|&(id, loc)| PointObject::new(id, loc))
        .collect();
    let rebuilt = PointEngine::from_objects(survivors.clone());
    assert_eq!(dynamic.len(), rebuilt.len());
    for s in &sharded {
        assert_eq!(s.len(), rebuilt.len());
    }

    let mut rng = StdRng::seed_from_u64(99);
    let mut ctx = ExecutionContext::new(Integrator::Auto);
    for q in 0..30 {
        let c = Point::new(rng.gen_range(0.0..10_000.0), rng.gen_range(0.0..10_000.0));
        let issuer = Issuer::uniform(Rect::centered(c, 250.0, 250.0));
        let request = if q % 3 == 0 {
            PointRequest::cipq(
                issuer,
                RangeSpec::square(500.0),
                0.3,
                CipqStrategy::PExpanded,
            )
        } else {
            PointRequest::ipq(issuer, RangeSpec::square(500.0))
        };
        let want = rebuilt.execute_one(&request);
        // Dynamic single engine, through the shared dirty context.
        let mut got = QueryAnswer::default();
        dynamic.execute_one_into(&request, &mut ctx, &mut got);
        assert!(got.same_matches(&want), "query {q}: dynamic != rebuild");
        // Every shard count.
        for s in &sharded {
            let snap = s.snapshot();
            let sharded_answer = snap.execute_one(&request);
            assert!(
                sharded_answer.same_matches(&want),
                "query {q}: {} shards != rebuild",
                snap.shard_count()
            );
        }
    }
}

#[test]
fn uncertain_stream_equals_rebuild_across_shard_counts() {
    let (base, mut gen) = RectUpdateGen::over_long_beach(500, 77, UpdateMix::balanced());
    let objects = |regions: &[(u64, Rect)]| -> Vec<UncertainObject> {
        regions
            .iter()
            .map(|&(id, r)| UncertainObject::new(id, UniformPdf::new(r)))
            .collect()
    };
    let base_objects: Vec<UncertainObject> = base
        .iter()
        .enumerate()
        .map(|(k, &r)| UncertainObject::new(k as u64, UniformPdf::new(r)))
        .collect();

    let mut dynamic = UncertainEngine::build(base_objects.clone());
    let sharded: Vec<ShardedEngine<UncertainEngine>> = [1usize, 2, 8]
        .iter()
        .map(|&n| ShardedEngine::build(base_objects.clone(), n))
        .collect();

    for _round in 0..8 {
        for event in gen.stream(100) {
            match event {
                RectUpdate::Arrive { id, region } => {
                    dynamic.insert(UncertainObject::new(id, UniformPdf::new(region)));
                    for s in &sharded {
                        s.submit(Update::Arrive(UncertainObject::new(
                            id,
                            UniformPdf::new(region),
                        )));
                    }
                }
                RectUpdate::Depart { id } => {
                    assert!(dynamic.remove(iloc::uncertainty::ObjectId(id)));
                    for s in &sharded {
                        s.submit(Update::Depart(iloc::uncertainty::ObjectId(id)));
                    }
                }
                RectUpdate::Move { id, to } => {
                    assert!(dynamic.remove(iloc::uncertainty::ObjectId(id)));
                    dynamic.insert(UncertainObject::new(id, UniformPdf::new(to)));
                    for s in &sharded {
                        s.submit(Update::Move(UncertainObject::new(id, UniformPdf::new(to))));
                    }
                }
            }
        }
        for s in &sharded {
            s.commit();
        }
    }

    let rebuilt = UncertainEngine::build(objects(gen.live()));
    assert_eq!(dynamic.len(), rebuilt.len());

    let mut rng = StdRng::seed_from_u64(7);
    let mut ctx = ExecutionContext::new(Integrator::Auto);
    for q in 0..20 {
        let c = Point::new(rng.gen_range(0.0..10_000.0), rng.gen_range(0.0..10_000.0));
        let issuer = Issuer::uniform(Rect::centered(c, 250.0, 250.0));
        let request = match q % 3 {
            0 => UncertainRequest::ciuq(
                issuer,
                RangeSpec::square(500.0),
                0.25,
                CiuqStrategy::PtiPExpanded,
            ),
            1 => UncertainRequest::ciuq(
                issuer,
                RangeSpec::square(500.0),
                0.25,
                CiuqStrategy::RTreeMinkowski,
            ),
            _ => UncertainRequest::iuq(issuer, RangeSpec::square(500.0)),
        };
        let want = rebuilt.execute_one(&request);
        let mut got = QueryAnswer::default();
        dynamic.execute_one_into(&request, &mut ctx, &mut got);
        assert!(got.same_matches(&want), "query {q}: dynamic != rebuild");
        for s in &sharded {
            let snap = s.snapshot();
            assert!(
                snap.execute_one(&request).same_matches(&want),
                "query {q}: {} shards != rebuild",
                snap.shard_count()
            );
        }
    }
}

// --- Durability oracle -----------------------------------------------

/// A unique scratch directory under the system temp dir.
fn temp_store(tag: &str) -> std::path::PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let dir =
        std::env::temp_dir().join(format!("iloc-dynamic-{tag}-{}-{nanos}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp store");
    dir
}

/// Copies every regular file from `src` into `dst` (durable stores are
/// flat directories).
fn copy_store(src: &std::path::Path, dst: &std::path::Path) {
    std::fs::create_dir_all(dst).expect("create copy dir");
    for entry in std::fs::read_dir(src).expect("read store") {
        let entry = entry.expect("dir entry");
        if entry.file_type().expect("file type").is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy store file");
        }
    }
}

/// Walks the `[len][crc][payload]` framing and returns the byte offset
/// after each complete record.
fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let end = pos + 8 + len;
        if end > bytes.len() {
            break;
        }
        pos = end;
        out.push(pos);
    }
    out
}

/// Durability-level property: commit a deterministic point stream into
/// a durable catalog (checkpointing mid-stream), then emulate SIGKILL
/// at arbitrary byte offsets by truncating the surviving WAL segment.
/// Every cut must recover to some epoch `R` with the catalog answering
/// **bit-identically** to a fresh engine that applied exactly the
/// first `R` batches — and `R` must not depend on the shard count the
/// store is reopened with (1, 2 and 8 are all exercised).
#[test]
fn wal_cut_at_any_offset_recovers_a_bit_identical_prefix() {
    use iloc::core::durable::{DurableCatalog, StoreConfig};
    use std::collections::HashMap;

    const ROUNDS: usize = 20;
    const PER_ROUND: usize = 40;

    let (base, mut gen) = PointUpdateGen::over_california(800, 41, UpdateMix::balanced());
    let base_objects: Vec<PointObject> = base
        .iter()
        .enumerate()
        .map(|(k, &p)| PointObject::new(k as u64, p))
        .collect();
    let batches: Vec<Vec<Update<PointObject>>> = (0..ROUNDS)
        .map(|_| {
            gen.stream(PER_ROUND)
                .into_iter()
                .map(|u| match u {
                    PointUpdate::Arrive { id, loc } => Update::Arrive(PointObject::new(id, loc)),
                    PointUpdate::Depart { id } => Update::Depart(iloc::uncertainty::ObjectId(id)),
                    PointUpdate::Move { id, to } => Update::Move(PointObject::new(id, to)),
                })
                .collect()
        })
        .collect();

    // Build the durable history: 20 commits, checkpoints after epochs
    // 8 and 14. The second checkpoint rotates and prunes the WAL, so
    // the surviving segment holds epochs 15..=20 and the checkpoint at
    // 14 is the recovery floor for any cut.
    let dir = temp_store("cut");
    let config = StoreConfig::new(&dir);
    let seed = base_objects.clone();
    let (catalog, recovery) =
        DurableCatalog::<PointEngine>::open(&config, 2, move || seed).expect("open fresh");
    assert!(!recovery.recovered);
    for (k, batch) in batches.iter().enumerate() {
        catalog.submit_all(batch.iter().cloned());
        catalog.commit().expect("durable commit");
        if k == 7 || k == 13 {
            catalog.checkpoint().expect("mid-stream checkpoint");
        }
    }
    assert_eq!(catalog.epoch(), ROUNDS as u64);
    drop(catalog);

    // The newest (and, after pruning, only) WAL segment.
    let mut wals: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .expect("read store")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    wals.sort();
    let wal = wals.pop().expect("a live WAL segment");
    let wal_name = wal.file_name().expect("wal name").to_owned();
    let bytes = std::fs::read(&wal).expect("read WAL");
    let boundaries = record_boundaries(&bytes);
    assert_eq!(
        boundaries.len(),
        ROUNDS - 14,
        "one record per post-rotation epoch"
    );

    // Cut points: empty file, every record boundary, and interior
    // offsets that leave a torn header or torn payload behind.
    let mut cuts: Vec<usize> = vec![0];
    for &b in &boundaries {
        cuts.push(b);
        for interior in [b + 1, b + 11] {
            if interior < bytes.len() {
                cuts.push(interior);
            }
        }
    }
    cuts.sort_unstable();
    cuts.dedup();

    let mut rng = StdRng::seed_from_u64(2007);
    let pool: Vec<PointRequest> = (0..8)
        .map(|q| {
            let c = Point::new(rng.gen_range(0.0..10_000.0), rng.gen_range(0.0..10_000.0));
            let issuer = Issuer::uniform(Rect::centered(c, 250.0, 250.0));
            if q % 3 == 0 {
                PointRequest::cipq(
                    issuer,
                    RangeSpec::square(500.0),
                    0.3,
                    CipqStrategy::PExpanded,
                )
            } else {
                PointRequest::ipq(issuer, RangeSpec::square(500.0))
            }
        })
        .collect();

    // Reference answers per recovered epoch: a fresh engine that
    // applied exactly the first R batches.
    let mut reference: HashMap<u64, Vec<QueryAnswer>> = HashMap::new();

    for (i, &cut) in cuts.iter().enumerate() {
        let cut_dir = temp_store(&format!("cut{i}"));
        copy_store(&dir, &cut_dir);
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(cut_dir.join(&wal_name))
            .expect("open cut WAL");
        file.set_len(cut as u64).expect("truncate WAL");
        drop(file);

        let cut_config = StoreConfig::new(&cut_dir);
        let mut recovered_epoch: Option<u64> = None;
        for &shards in &[1usize, 2, 8] {
            let seed = base_objects.clone();
            let (recovered, report) =
                DurableCatalog::<PointEngine>::open(&cut_config, shards, move || seed)
                    .expect("recover from cut");
            assert!(report.recovered, "cut {cut}: a cut store is never fresh");
            let r = recovered.epoch();
            assert!(
                (14..=ROUNDS as u64).contains(&r),
                "cut {cut}: epoch {r} outside [checkpoint floor, stream length]"
            );
            // The recovered epoch is a property of the bytes on disk,
            // not of the shard count chosen at reopen.
            match recovered_epoch {
                Some(e) => assert_eq!(e, r, "cut {cut}: shard count changed recovery"),
                None => recovered_epoch = Some(r),
            }
            let want = reference.entry(r).or_insert_with(|| {
                let engine = ShardedEngine::<PointEngine>::build(base_objects.clone(), 1);
                for batch in &batches[..r as usize] {
                    engine.submit_all(batch.iter().cloned());
                    engine.commit();
                }
                let snap = engine.snapshot();
                pool.iter().map(|req| snap.execute_one(req)).collect()
            });
            let snap = recovered.snapshot();
            for (req, want) in pool.iter().zip(want.iter()) {
                assert!(
                    snap.execute_one(req).same_matches(want),
                    "cut {cut}: {shards} shards diverged from the epoch-{r} rebuild"
                );
            }
        }
        std::fs::remove_dir_all(&cut_dir).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}
