//! A counting global allocator shared by the serving binaries.
//!
//! The workspace's perf contract is "zero heap allocations on the
//! steady-state query path", and the way it is enforced is by counting
//! every allocation the process performs. The throughput benchmark
//! introduced the counter; the server binary registers the same
//! allocator so the **stats frame can report server-side allocation
//! counts over the wire**, letting a remote load generator gate on
//! "allocations per request" without sharing an address space with the
//! server (the CI smoke job does exactly this).
//!
//! Registering the allocator is the binary's choice (a library must
//! not impose a global allocator); call [`mark_installed`] from `main`
//! right after declaring it so [`counting_installed`] — and the wire
//! stats frame — can distinguish "zero allocations" from "nobody is
//! counting":
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: iloc_server::alloc_count::CountingAllocator =
//!     iloc_server::alloc_count::CountingAllocator;
//!
//! fn main() {
//!     iloc_server::alloc_count::mark_installed();
//!     // ...
//! }
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Counts every heap allocation the process performs. `dealloc` is
/// intentionally not counted: the invariant under test is "the hot
/// path requests no new memory", and growth shows up in `alloc` /
/// `realloc` / `alloc_zeroed` only.
pub struct CountingAllocator;

#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocations counted so far (0 when the allocator was never
/// registered — check [`counting_installed`] to tell the difference).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Records that the binary registered [`CountingAllocator`] as its
/// global allocator; the stats frame reports this flag alongside the
/// count.
pub fn mark_installed() {
    INSTALLED.store(true, Ordering::Relaxed);
}

/// `true` when the process counts allocations (i.e. [`mark_installed`]
/// was called by a binary that registered the allocator).
pub fn counting_installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}
