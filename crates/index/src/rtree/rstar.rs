//! R*-tree split (Beckmann, Kriegel, Schneider & Seeger, SIGMOD'90).
//!
//! The paper's index is a classic Guttman R-tree; production systems
//! usually prefer the R* split, which chooses a split **axis** by
//! minimum perimeter sum and a split **position** by minimum overlap
//! (ties: minimum total area). This module implements that split as an
//! alternative [`SplitPolicy`]; the index ablation compares the two on
//! query I/O.

use iloc_geometry::Rect;

use super::split::Entry;

/// Node-splitting heuristic used on overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitPolicy {
    /// Guttman's quadratic split (the paper's setting).
    #[default]
    Quadratic,
    /// The R*-tree topological split.
    RStar,
}

/// R* split: returns two groups, each with at least `min` entries.
pub fn rstar_split<E: Copy>(entries: Vec<Entry<E>>, min: usize) -> (Vec<Entry<E>>, Vec<Entry<E>>) {
    debug_assert!(entries.len() >= 2 * min);
    let n = entries.len();

    // For each axis, consider entries sorted by lower then by upper
    // coordinate; for every legal split position compute goodness.
    let mut best: Option<(f64, f64, Vec<usize>, usize)> = None; // (overlap, area, order, split_at)

    for axis in 0..2usize {
        for by_upper in [false, true] {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                let ka = sort_key(&entries[a].0, axis, by_upper);
                let kb = sort_key(&entries[b].0, axis, by_upper);
                ka.partial_cmp(&kb).expect("finite coordinates")
            });
            // Prefix/suffix MBRs for O(n) per-position evaluation.
            let mut prefix = vec![Rect::EMPTY; n];
            let mut acc = Rect::EMPTY;
            for (i, &e) in order.iter().enumerate() {
                acc = acc.hull(entries[e].0);
                prefix[i] = acc;
            }
            let mut suffix = vec![Rect::EMPTY; n];
            acc = Rect::EMPTY;
            for i in (0..n).rev() {
                acc = acc.hull(entries[order[i]].0);
                suffix[i] = acc;
            }
            for split_at in min..=(n - min) {
                let g1 = prefix[split_at - 1];
                let g2 = suffix[split_at];
                let overlap = g1.intersection_area(g2);
                let area = g1.area() + g2.area();
                let better = match &best {
                    None => true,
                    Some((bo, ba, _, _)) => overlap < *bo || (overlap == *bo && area < *ba),
                };
                if better {
                    best = Some((overlap, area, order.clone(), split_at));
                }
            }
        }
    }

    let (_, _, order, split_at) = best.expect("at least one legal split");
    let in_g1: Vec<bool> = {
        let mut v = vec![false; n];
        for &e in &order[..split_at] {
            v[e] = true;
        }
        v
    };
    let mut g1 = Vec::with_capacity(split_at);
    let mut g2 = Vec::with_capacity(n - split_at);
    for (i, e) in entries.into_iter().enumerate() {
        if in_g1[i] {
            g1.push(e);
        } else {
            g2.push(e);
        }
    }
    (g1, g2)
}

#[inline]
fn sort_key(r: &Rect, axis: usize, by_upper: bool) -> f64 {
    match (axis, by_upper) {
        (0, false) => r.min.x,
        (0, true) => r.max.x,
        (1, false) => r.min.y,
        (1, true) => r.max.y,
        _ => unreachable!(),
    }
}

/// Dispatches to the configured split heuristic.
pub fn split_with<E: Copy>(
    policy: SplitPolicy,
    entries: Vec<Entry<E>>,
    min: usize,
) -> (Vec<Entry<E>>, Vec<Entry<E>>) {
    match policy {
        SplitPolicy::Quadratic => super::split::quadratic_split(entries, min),
        SplitPolicy::RStar => rstar_split(entries, min),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtree::split::entries_mbr;
    use iloc_geometry::Point;

    fn pt(x: f64, y: f64) -> Rect {
        Rect::from_point(Point::new(x, y))
    }

    #[test]
    fn rstar_split_separates_clusters() {
        let mut entries = Vec::new();
        for k in 0..4 {
            entries.push((pt(k as f64, 0.0), k));
        }
        for k in 0..4 {
            entries.push((pt(100.0 + k as f64, 0.0), 10 + k));
        }
        let (g1, g2) = rstar_split(entries, 2);
        let (m1, m2) = (entries_mbr(&g1), entries_mbr(&g2));
        assert!(!m1.overlaps(m2));
        assert_eq!(g1.len() + g2.len(), 8);
    }

    #[test]
    fn rstar_split_minimises_overlap_on_grid() {
        // A 4×2 grid of unit squares: the best split along x has zero
        // overlap.
        let mut entries = Vec::new();
        let mut id = 0;
        for i in 0..4 {
            for j in 0..2 {
                entries.push((
                    Rect::from_coords(
                        i as f64 * 2.0,
                        j as f64 * 2.0,
                        i as f64 * 2.0 + 1.0,
                        j as f64 * 2.0 + 1.0,
                    ),
                    id,
                ));
                id += 1;
            }
        }
        let (g1, g2) = rstar_split(entries, 3);
        assert_eq!(entries_mbr(&g1).intersection_area(entries_mbr(&g2)), 0.0);
    }

    #[test]
    fn rstar_split_respects_min_fill() {
        let entries: Vec<(Rect, usize)> = (0..11).map(|k| (pt(k as f64, k as f64), k)).collect();
        let (g1, g2) = rstar_split(entries, 4);
        assert!(g1.len() >= 4 && g2.len() >= 4);
        assert_eq!(g1.len() + g2.len(), 11);
    }

    #[test]
    fn split_with_dispatches() {
        let entries: Vec<(Rect, usize)> = (0..8).map(|k| (pt(k as f64, 0.0), k)).collect();
        let (q1, q2) = split_with(SplitPolicy::Quadratic, entries.clone(), 2);
        assert_eq!(q1.len() + q2.len(), 8);
        let (r1, r2) = split_with(SplitPolicy::RStar, entries, 2);
        assert_eq!(r1.len() + r2.len(), 8);
    }
}
