//! Imprecise probabilistic **nearest-neighbour** queries (IPNN) — the
//! paper's primary future-work item ("we will study how other
//! location-dependent queries, such as the nearest-neighbor queries,
//! can be supported").
//!
//! Given an imprecise issuer `O0` (region `U0`, pdf `f0`) and point
//! objects `S1..Sm`, the qualification probability of `Si` is the
//! probability that `Si` is the closest object to the issuer's true
//! position:
//!
//! ```text
//! pi = ∫_{U0} 1{ ∀j: |q − Si| ≤ |q − Sj| } · f0(q) dq
//! ```
//!
//! Evaluation follows the same filter-and-refine shape as the range
//! queries:
//!
//! 1. **Filter (MINDIST/MAXDIST pruning).** `dmax = min_i MAXDIST(U0, Si)`
//!    upper-bounds the NN distance for *every* possible issuer
//!    position, so any object with `MINDIST(U0, Si) > dmax` can never
//!    be the nearest neighbour — a classic bound here lifted from a
//!    query point to a query *region*. The candidate set is fetched
//!    with two R-tree range probes.
//! 2. **Refine.** Integrate the winner indicator over `U0` by midpoint
//!    grid (deterministic) or Monte-Carlo (the general-pdf path).
//!
//! Probabilities over all returned objects sum to 1 (up to ties on
//! measure-zero bisectors and quadrature error) — an invariant the
//! tests assert.

use iloc_geometry::{Point, Rect};
use iloc_uncertainty::LocationPdf;
use rand::rngs::StdRng;

use crate::stats::QueryStats;

/// Numerical method for the refinement integral.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NnMethod {
    /// Midpoint grid with `per_axis`² cells over `U0`.
    Grid {
        /// Cells per axis.
        per_axis: usize,
    },
    /// Monte-Carlo over issuer positions.
    MonteCarlo {
        /// Number of issuer samples.
        samples: usize,
    },
}

/// The MINDIST/MAXDIST candidate filter. Returns indices into `locs`
/// of every object that could be the nearest neighbour for some point
/// of `u0`.
///
/// `probe` abstracts the index: it must return the indices of all
/// objects within the given rectangle (e.g. an R-tree range query).
pub fn nn_candidates(
    u0: Rect,
    locs: &[Point],
    mut probe: impl FnMut(Rect) -> Vec<u32>,
) -> Vec<u32> {
    if locs.is_empty() {
        return Vec::new();
    }
    // Grow a probe window until it contains at least one object.
    let mut r = u0.width().max(u0.height()).max(1.0);
    let mut seed: Vec<u32> = probe(u0.expand(r, r));
    let mut guard = 0;
    while seed.is_empty() {
        r *= 2.0;
        seed = probe(u0.expand(r, r));
        guard += 1;
        assert!(guard < 64, "probe window exploded; corrupt index?");
    }
    // First bound from whatever we found, then tighten globally.
    let dmax0 = seed
        .iter()
        .map(|&i| u0.max_distance(locs[i as usize]))
        .fold(f64::INFINITY, f64::min);
    let within: Vec<u32> = probe(u0.expand(dmax0, dmax0));
    let dmax = within
        .iter()
        .map(|&i| u0.max_distance(locs[i as usize]))
        .fold(f64::INFINITY, f64::min);
    within
        .into_iter()
        .filter(|&i| u0.min_distance(locs[i as usize]) <= dmax)
        .collect()
}

/// Refines NN qualification probabilities for the candidate set.
/// Returns `(candidate index, probability)` pairs with `p > 0`.
pub fn nn_probabilities(
    issuer_pdf: &dyn LocationPdf,
    locs: &[Point],
    candidates: &[u32],
    method: NnMethod,
    rng: &mut StdRng,
    stats: &mut QueryStats,
) -> Vec<(u32, f64)> {
    if candidates.is_empty() {
        return Vec::new();
    }
    let mut mass = vec![0.0f64; candidates.len()];
    let nearest = |q: Point| -> usize {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (k, &i) in candidates.iter().enumerate() {
            let d = q.distance_sq(locs[i as usize]);
            if d < best_d {
                best_d = d;
                best = k;
            }
        }
        best
    };
    match method {
        NnMethod::Grid { per_axis } => {
            assert!(per_axis > 0);
            let u0 = issuer_pdf.region();
            let dx = u0.width() / per_axis as f64;
            let dy = u0.height() / per_axis as f64;
            let da = dx * dy;
            for j in 0..per_axis {
                for i in 0..per_axis {
                    stats.grid_cells += 1;
                    let q = Point::new(
                        u0.min.x + (i as f64 + 0.5) * dx,
                        u0.min.y + (j as f64 + 0.5) * dy,
                    );
                    let w = issuer_pdf.density(q) * da;
                    if w > 0.0 {
                        mass[nearest(q)] += w;
                    }
                }
            }
            // Midpoint quadrature of a density needn't sum exactly to
            // 1; renormalise so the answer is a distribution.
            let total: f64 = mass.iter().sum();
            if total > 0.0 {
                for m in &mut mass {
                    *m /= total;
                }
            }
        }
        NnMethod::MonteCarlo { samples } => {
            assert!(samples > 0);
            stats.mc_samples += samples as u64;
            for _ in 0..samples {
                let q = issuer_pdf.sample(rng);
                mass[nearest(q)] += 1.0 / samples as f64;
            }
        }
    }
    candidates
        .iter()
        .zip(mass)
        .filter(|&(_, m)| m > 0.0)
        .map(|(&i, m)| (i, m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc_uncertainty::UniformPdf;
    use rand::SeedableRng;

    fn brute_candidates(u0: Rect, locs: &[Point]) -> Vec<u32> {
        nn_candidates(u0, locs, |r| {
            locs.iter()
                .enumerate()
                .filter(|(_, p)| r.contains_point(**p))
                .map(|(i, _)| i as u32)
                .collect()
        })
    }

    #[test]
    fn single_object_is_certain_nn() {
        let u0 = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let locs = [Point::new(50.0, 50.0)];
        let cands = brute_candidates(u0, &locs);
        assert_eq!(cands, vec![0]);
        let pdf = UniformPdf::new(u0);
        let mut stats = QueryStats::new();
        let mut rng = StdRng::seed_from_u64(1);
        let ps = nn_probabilities(
            &pdf,
            &locs,
            &cands,
            NnMethod::Grid { per_axis: 32 },
            &mut rng,
            &mut stats,
        );
        assert_eq!(ps.len(), 1);
        assert!((ps[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dominated_object_is_filtered() {
        // S1 is closer than S2 from every point of U0: S2 must be cut
        // by the MINDIST/MAXDIST filter.
        let u0 = Rect::from_coords(0.0, 0.0, 2.0, 2.0);
        let locs = [Point::new(3.0, 1.0), Point::new(50.0, 1.0)];
        let cands = brute_candidates(u0, &locs);
        assert_eq!(cands, vec![0]);
    }

    #[test]
    fn symmetric_pair_splits_evenly() {
        let u0 = Rect::from_coords(-1.0, -1.0, 1.0, 1.0);
        let locs = [Point::new(-10.0, 0.0), Point::new(10.0, 0.0)];
        let cands = brute_candidates(u0, &locs);
        assert_eq!(cands.len(), 2);
        let pdf = UniformPdf::new(u0);
        let mut stats = QueryStats::new();
        let mut rng = StdRng::seed_from_u64(2);
        let ps = nn_probabilities(
            &pdf,
            &locs,
            &cands,
            NnMethod::Grid { per_axis: 64 },
            &mut rng,
            &mut stats,
        );
        assert_eq!(ps.len(), 2);
        assert!((ps[0].1 - 0.5).abs() < 1e-9);
        assert!((ps[1].1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn probabilities_sum_to_one_grid_and_mc_agree() {
        use rand::Rng;
        let u0 = Rect::from_coords(0.0, 0.0, 40.0, 40.0);
        let mut rng = StdRng::seed_from_u64(3);
        let locs: Vec<Point> = (0..30)
            .map(|_| Point::new(rng.gen_range(-50.0..90.0), rng.gen_range(-50.0..90.0)))
            .collect();
        let cands = brute_candidates(u0, &locs);
        assert!(!cands.is_empty());
        let pdf = UniformPdf::new(u0);
        let mut stats = QueryStats::new();
        let g = nn_probabilities(
            &pdf,
            &locs,
            &cands,
            NnMethod::Grid { per_axis: 128 },
            &mut rng,
            &mut stats,
        );
        let m = nn_probabilities(
            &pdf,
            &locs,
            &cands,
            NnMethod::MonteCarlo { samples: 60_000 },
            &mut rng,
            &mut stats,
        );
        let sum_g: f64 = g.iter().map(|x| x.1).sum();
        let sum_m: f64 = m.iter().map(|x| x.1).sum();
        assert!((sum_g - 1.0).abs() < 1e-9, "grid sum {sum_g}");
        assert!((sum_m - 1.0).abs() < 1e-9, "mc sum {sum_m}");
        for (i, pg) in &g {
            let pm = m.iter().find(|(j, _)| j == i).map(|x| x.1).unwrap_or(0.0);
            assert!((pg - pm).abs() < 0.02, "cand {i}: grid {pg} vs mc {pm}");
        }
    }

    #[test]
    fn filter_never_drops_a_possible_winner() {
        // Brute-force check on small random configurations: every
        // object that wins for some grid point of U0 must be in the
        // candidate set.
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(4);
        for trial in 0..50 {
            let u0 = Rect::centered(
                Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)),
                rng.gen_range(1.0..20.0),
                rng.gen_range(1.0..20.0),
            );
            let locs: Vec<Point> = (0..20)
                .map(|_| Point::new(rng.gen_range(-50.0..150.0), rng.gen_range(-50.0..150.0)))
                .collect();
            let cands = brute_candidates(u0, &locs);
            let n = 24;
            for i in 0..n {
                for j in 0..n {
                    let q = Point::new(
                        u0.min.x + (i as f64 + 0.5) * u0.width() / n as f64,
                        u0.min.y + (j as f64 + 0.5) * u0.height() / n as f64,
                    );
                    let winner = (0..locs.len())
                        .min_by(|&a, &b| {
                            q.distance_sq(locs[a])
                                .partial_cmp(&q.distance_sq(locs[b]))
                                .unwrap()
                        })
                        .unwrap() as u32;
                    assert!(
                        cands.contains(&winner),
                        "trial {trial}: winner {winner} missing from {cands:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_world_yields_empty_answer() {
        let u0 = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        assert!(brute_candidates(u0, &[]).is_empty());
    }
}
