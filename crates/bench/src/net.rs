//! The `net` load-generation scenario: mixed query/update traffic
//! against a [`QueryServer`] over loopback (or any reachable address).
//!
//! Two measured phases:
//!
//! 1. **Mixed window** — `clients` connections each fire a
//!    deterministic IPQ/C-IPQ/IUQ mix while one updater connection
//!    interleaves arrival/departure/move batches and epoch commits.
//!    Yields serving throughput under churn (qps) and client-observed
//!    round-trip percentiles.
//! 2. **Steady window** — a single warm connection runs a query-only
//!    loop bracketed by two stats frames; the server-reported
//!    allocation delta divided by the query count is the
//!    **allocations-per-request** figure the CI smoke job gates at
//!    zero. The server reports its own counter over the wire, so the
//!    gate works identically in-process and cross-process.
//!
//! Workloads are generated with the same seeds and distributions as
//! the `throughput` benchmark, so the `net` series in
//! `BENCH_batch_throughput.json` is comparable with the in-process
//! series: the gap between `ipq_batch` and `net` is the cost of the
//! socket, the frame codec and the event-loop multiplexing.

use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use iloc_core::pipeline::{PointRequest, UncertainRequest};
use iloc_core::serve::Update;
use iloc_core::stats::REFINE_BATCH_BUCKETS;
use iloc_core::{CipqStrategy, CiuqStrategy, Issuer, QueryAnswer, RangeSpec};
use iloc_datagen::{
    california_points, long_beach_rects, uniform_objects, PointUpdate, PointUpdateGen, UpdateMix,
    WorkloadGen, CALIFORNIA_SIZE, LONG_BEACH_SIZE,
};
use iloc_server::client::{Client, ClientError};
use iloc_server::protocol::{CommitTarget, StatsReport, WireUpdate};
use iloc_server::server::{QueryServer, ServerConfig};
use iloc_uncertainty::{ObjectId, PointObject};

/// Paper Table 2 defaults shared with the throughput bench.
const U: f64 = 250.0;
const W: f64 = 500.0;

/// Distinct requests each client cycles through.
const POOL: usize = 64;

/// Pipeline window is irrelevant here (the scenario measures
/// request/response round trips), but the connect retry budget is not:
/// the CI smoke job races the server binary's catalog build.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(60);

/// Tunables for one loadgen run.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Query connections in the mixed window.
    pub clients: usize,
    /// Shards per catalog (in-process server only).
    pub shards: usize,
    /// Event-loop threads (in-process server only); 0 means the
    /// server default — each loop multiplexes many connections, so
    /// this no longer needs to track the client count.
    pub event_loops: usize,
    /// Connection capacity (in-process server only); 0 means the
    /// server default.
    pub max_connections: usize,
    /// Point-catalog size (in-process server only).
    pub points: usize,
    /// Uncertain-catalog size (in-process server only).
    pub uncertain: usize,
    /// Queries per client in the measured mixed window.
    pub queries_per_client: usize,
    /// Update batches the updater submits during the mixed window.
    pub update_rounds: usize,
    /// Updates per batch (each batch is followed by a commit).
    pub updates_per_round: usize,
    /// Queries in the alloc-gated steady window.
    pub steady_queries: usize,
    /// Warm-up queries per connection before any measurement.
    pub warmup: usize,
    /// Workload seed (shared with the server's dataset seed).
    pub seed: u64,
}

impl NetConfig {
    /// CI-smoke scale (~10x smaller than [`NetConfig::full`]).
    pub fn quick() -> Self {
        NetConfig {
            clients: 4,
            shards: 4,
            event_loops: 0,
            max_connections: 0,
            points: 6_200,
            uncertain: 5_300,
            queries_per_client: 192,
            update_rounds: 8,
            updates_per_round: 96,
            steady_queries: 512,
            warmup: 64,
            seed: 2007,
        }
    }

    /// Paper-scale datasets, the tracked-report configuration.
    pub fn full() -> Self {
        NetConfig {
            clients: 8,
            shards: 4,
            event_loops: 0,
            max_connections: 0,
            points: CALIFORNIA_SIZE,
            uncertain: LONG_BEACH_SIZE,
            queries_per_client: 384,
            update_rounds: 16,
            updates_per_round: 512,
            steady_queries: 2_048,
            warmup: 128,
            seed: 2007,
        }
    }

    /// The [`ServerConfig`] an in-process run starts the server with
    /// (zero-valued fields fall back to the loopback defaults).
    pub fn server_config(&self) -> ServerConfig {
        let mut config = ServerConfig::loopback();
        if self.event_loops > 0 {
            config.event_loops = self.event_loops;
        }
        if self.max_connections > 0 {
            config.max_connections = self.max_connections;
        }
        config
    }
}

/// What one loadgen run measured.
#[derive(Debug, Clone)]
pub struct NetReport {
    /// Query connections driven in the mixed window.
    pub clients: usize,
    /// Total queries answered in the mixed window.
    pub queries: usize,
    /// Wall clock of the mixed window (queries + updates + commits).
    pub elapsed: Duration,
    /// Median client-observed round trip.
    pub p50: Duration,
    /// 99th-percentile client-observed round trip.
    pub p99: Duration,
    /// Matches returned across the mixed window.
    pub results_total: usize,
    /// Updates submitted during the mixed window.
    pub updates_submitted: usize,
    /// Epoch commits during the mixed window.
    pub commits: usize,
    /// Queries in the steady (alloc-gated) window.
    pub steady_queries: usize,
    /// Server-side allocations per request across the steady window
    /// (−1.0 when the server does not count allocations).
    pub steady_allocs_per_request: f64,
    /// Whether the server counts allocations at all.
    pub alloc_counting: bool,
    /// Total frames the server reports having handled.
    pub server_requests: u64,
    /// Server-reported filter-stage nanoseconds, cumulative over every
    /// query the server answered during the run.
    pub stage_filter_nanos: u64,
    /// Server-reported prune-stage nanoseconds, same accounting.
    pub stage_prune_nanos: u64,
    /// Server-reported refine-stage nanoseconds, same accounting.
    pub stage_refine_nanos: u64,
    /// Server-reported refine-batch size histogram
    /// ([`iloc_core::stats::refine_batch_bucket`] buckets).
    pub refine_batches: [u64; REFINE_BATCH_BUCKETS],
}

impl NetReport {
    /// Mixed-window throughput in queries per second.
    pub fn qps(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64()
    }

    /// Fraction of measured pipeline time the refine stage took
    /// (0.0 when the server reported no stage timings).
    pub fn refine_share(&self) -> f64 {
        let total = self.stage_filter_nanos + self.stage_prune_nanos + self.stage_refine_nanos;
        if total == 0 {
            0.0
        } else {
            self.stage_refine_nanos as f64 / total as f64
        }
    }
}

/// Builds the catalogs an in-process loadgen server uses — the same
/// datasets, sizes and seed the standalone binary defaults to.
pub fn build_server(cfg: &NetConfig) -> QueryServer {
    let points: Vec<PointObject> = california_points(cfg.points, cfg.seed)
        .into_iter()
        .enumerate()
        .map(|(k, p)| PointObject::new(k as u64, p))
        .collect();
    let uncertain = uniform_objects(&long_beach_rects(cfg.uncertain, cfg.seed + 1));
    QueryServer::new(points, uncertain, cfg.shards)
}

/// Spawns an in-process loopback server, drives it, shuts it down.
pub fn run_in_process(cfg: &NetConfig) -> Result<NetReport, ClientError> {
    let server = build_server(cfg);
    let handle = server
        .start(&cfg.server_config())
        .map_err(ClientError::Io)?;
    let report = run_against(handle.addr(), cfg);
    handle.shutdown();
    report
}

fn point_pool(seed: u64) -> Vec<PointRequest> {
    let mut gen = WorkloadGen::new(seed);
    (0..POOL)
        .map(|k| {
            let issuer = Issuer::uniform(gen.issuer_region(U));
            if k % 5 == 3 {
                PointRequest::cipq(issuer, RangeSpec::square(W), 0.3, CipqStrategy::PExpanded)
            } else {
                PointRequest::ipq(issuer, RangeSpec::square(W))
            }
        })
        .collect()
}

fn uncertain_pool(seed: u64) -> Vec<UncertainRequest> {
    let mut gen = WorkloadGen::new(seed);
    (0..POOL)
        .map(|k| {
            let issuer = Issuer::uniform(gen.issuer_region(U));
            if k % 2 == 0 {
                UncertainRequest::iuq(issuer, RangeSpec::square(W))
            } else {
                UncertainRequest::ciuq(
                    issuer,
                    RangeSpec::square(W),
                    0.3,
                    CiuqStrategy::PtiPExpanded,
                )
            }
        })
        .collect()
}

/// One mixed-window client: cycles its pools, records round trips.
fn client_run(
    addr: SocketAddr,
    cfg: &NetConfig,
    salt: u64,
    start: &Barrier,
) -> Result<(Vec<Duration>, usize), ClientError> {
    let mut client = Client::connect_retry(addr, CONNECT_TIMEOUT)?;
    let points = point_pool(cfg.seed + 11 + salt);
    let uncertains = uncertain_pool(cfg.seed + 23 + salt);
    let mut answer = QueryAnswer::default();
    let mut latencies: Vec<Duration> = Vec::with_capacity(cfg.queries_per_client);
    let mut results_total = 0usize;
    for k in 0..cfg.warmup {
        client.point_query_into(&points[k % POOL], &mut answer)?;
        client.uncertain_query_into(&uncertains[k % POOL], &mut answer)?;
    }
    start.wait();
    for k in 0..cfg.queries_per_client {
        let t0 = Instant::now();
        // 1 uncertain query per 5 point queries: IUQ refinement is an
        // order of magnitude heavier, mirroring a read-mostly mix.
        if k % 5 == 4 {
            client.uncertain_query_into(&uncertains[k % POOL], &mut answer)?;
        } else {
            client.point_query_into(&points[k % POOL], &mut answer)?;
        }
        latencies.push(t0.elapsed());
        results_total += answer.results.len();
    }
    Ok((latencies, results_total))
}

/// The updater: one arrive/depart/move batch + one commit per round,
/// as fast as the writer path absorbs them.
fn updater_run(
    addr: SocketAddr,
    cfg: &NetConfig,
    start: &Barrier,
) -> Result<(usize, usize), ClientError> {
    let mut client = Client::connect_retry(addr, CONNECT_TIMEOUT)?;
    // Same base catalog the server built, so the stream's departures
    // and moves always reference ids that exist server-side.
    let (_, mut gen) = PointUpdateGen::over_california(cfg.points, cfg.seed, UpdateMix::balanced());
    let mut submitted = 0usize;
    let mut commits = 0usize;
    start.wait();
    for _ in 0..cfg.update_rounds {
        let updates: Vec<WireUpdate> = gen
            .stream(cfg.updates_per_round)
            .into_iter()
            .map(|u| {
                WireUpdate::Point(match u {
                    PointUpdate::Arrive { id, loc } => Update::Arrive(PointObject::new(id, loc)),
                    PointUpdate::Depart { id } => Update::Depart(ObjectId(id)),
                    PointUpdate::Move { id, to } => Update::Move(PointObject::new(id, to)),
                })
            })
            .collect();
        submitted += client.submit(&updates)? as usize;
        client.commit(CommitTarget::Point)?;
        commits += 1;
    }
    Ok((submitted, commits))
}

/// Drives a server at `addr` through the mixed and steady windows.
///
/// The run opens `clients + 2` long-lived connections (control +
/// updater + query clients); the event loops multiplex them, but the
/// server still enforces a **connection capacity** (stats frame), so
/// the client count is clamped against it — connections past capacity
/// are refused at accept and would deadlock the warm-up barrier.
pub fn run_against(addr: SocketAddr, cfg: &NetConfig) -> Result<NetReport, ClientError> {
    // The control connection outlives both windows and stays warm for
    // the steady phase.
    let mut control = Client::connect_retry(addr, CONNECT_TIMEOUT)?;
    let capacity = control.stats()?.capacity as usize;
    if capacity < 3 {
        return Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "server admits {capacity} connection(s); loadgen needs at least 3 \
                 (control + updater + one client)"
            ),
        )));
    }
    let client_count = if cfg.clients + 2 > capacity {
        let clamped = capacity - 2;
        eprintln!(
            "loadgen: server admits {capacity} connections; \
             clamping {} query clients to {clamped}",
            cfg.clients
        );
        clamped
    } else {
        cfg.clients
    };

    // --- Mixed window -------------------------------------------------
    let start = Arc::new(Barrier::new(client_count + 2));
    let elapsed = {
        let clients: Vec<_> = (0..client_count as u64)
            .map(|c| {
                let cfg = cfg.clone();
                let start = Arc::clone(&start);
                std::thread::spawn(move || client_run(addr, &cfg, c, &start))
            })
            .collect();
        let updater = {
            let cfg = cfg.clone();
            let start = Arc::clone(&start);
            std::thread::spawn(move || updater_run(addr, &cfg, &start))
        };
        start.wait();
        let t0 = Instant::now();
        let mut latencies: Vec<Duration> = Vec::new();
        let mut results_total = 0usize;
        for c in clients {
            let (lat, results) = c.join().expect("client thread")?;
            latencies.extend(lat);
            results_total += results;
        }
        let (submitted, commits) = updater.join().expect("updater thread")?;
        let elapsed = t0.elapsed();
        latencies.sort_unstable();
        (elapsed, latencies, results_total, submitted, commits)
    };
    let (elapsed, latencies, results_total, updates_submitted, commits) = elapsed;

    // --- Steady window (alloc-gated) ----------------------------------
    // Re-warm the control connection *after* the churn so every buffer
    // (including the worker's rebound snapshot and grown answer) is at
    // workload size, then bracket a query-only loop with stats frames.
    let steady_pool = point_pool(cfg.seed + 9);
    let mut answer = QueryAnswer::default();
    let mut s1 = StatsReport::default();
    let mut s2 = StatsReport::default();
    for k in 0..cfg.warmup.max(32) {
        control.point_query_into(&steady_pool[k % POOL], &mut answer)?;
    }
    control.stats_into(&mut s1)?; // also warms the report buffers
    control.stats_into(&mut s1)?;
    for k in 0..cfg.steady_queries {
        control.point_query_into(&steady_pool[k % POOL], &mut answer)?;
    }
    control.stats_into(&mut s2)?;

    let steady_allocs_per_request = if s1.alloc_counting {
        (s2.allocations - s1.allocations) as f64 / cfg.steady_queries.max(1) as f64
    } else {
        -1.0
    };

    let percentile = |q: f64| -> Duration {
        if latencies.is_empty() {
            return Duration::ZERO;
        }
        latencies[((latencies.len() - 1) as f64 * q).round() as usize]
    };

    Ok(NetReport {
        clients: client_count,
        queries: client_count * cfg.queries_per_client,
        elapsed,
        p50: percentile(0.50),
        p99: percentile(0.99),
        results_total,
        updates_submitted,
        commits,
        steady_queries: cfg.steady_queries,
        steady_allocs_per_request,
        alloc_counting: s1.alloc_counting,
        server_requests: s2.requests_served,
        stage_filter_nanos: s2.filter_nanos,
        stage_prune_nanos: s2.prune_nanos,
        stage_refine_nanos: s2.refine_nanos,
        refine_batches: s2.refine_batches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_in_process_loadgen_round_trips() {
        let cfg = NetConfig {
            clients: 2,
            shards: 2,
            event_loops: 0,
            max_connections: 0,
            points: 400,
            uncertain: 100,
            queries_per_client: 12,
            update_rounds: 2,
            updates_per_round: 8,
            steady_queries: 16,
            warmup: 4,
            seed: 7,
        };
        let report = run_in_process(&cfg).expect("loadgen");
        assert_eq!(report.clients, 2);
        assert_eq!(report.queries, 24);
        assert_eq!(report.commits, 2);
        assert_eq!(report.updates_submitted, 16);
        assert!(report.elapsed > Duration::ZERO);
        assert!(report.p99 >= report.p50);
        // The test binary doesn't install the counting allocator, and
        // the report says so instead of faking a zero.
        assert!(!report.alloc_counting);
        assert_eq!(report.steady_allocs_per_request, -1.0);
        assert!(report.server_requests as usize > report.queries);
        // The server reported its pipeline stage split and batch-size
        // histogram over the wire.
        assert!(report.stage_refine_nanos > 0);
        assert!(report.refine_batches.iter().sum::<u64>() > 0);
        assert!((0.0..=1.0).contains(&report.refine_share()));
    }

    #[test]
    fn client_count_is_clamped_to_the_server_connection_capacity() {
        // A capacity of 4 admits 4 connections; control + updater
        // leave room for 2 query clients, so asking for 4 must clamp —
        // not deadlock the warm-up barrier on refused connects.
        let cfg = NetConfig {
            clients: 4,
            shards: 2,
            event_loops: 1,
            max_connections: 4,
            points: 400,
            uncertain: 100,
            queries_per_client: 8,
            update_rounds: 1,
            updates_per_round: 4,
            steady_queries: 8,
            warmup: 2,
            seed: 11,
        };
        let report = run_in_process(&cfg).expect("loadgen");
        assert_eq!(report.clients, 2);
        assert_eq!(report.queries, 16);
    }
}
