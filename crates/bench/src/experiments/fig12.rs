//! **Figure 12** — C-IUQ: R-tree + Minkowski sum vs PTI +
//! `p`-expanded-query as the probability threshold varies.
//!
//! Paper: the PTI/p-expanded stack wins for all `Qp` (≈60 % gain at
//! `Qp = 0.6`); the gain is smaller than C-IPQ's because uncertainty
//! regions are harder to prune than points. Expected reproduction
//! shape: PTI curve at or below the R-tree curve, gap growing with
//! `Qp` up to the 0.5 catalog ceiling.

use iloc_core::{CiuqStrategy, Issuer, RangeSpec};
use iloc_datagen::WorkloadGen;

use crate::config::{TestBed, DEFAULT_U, DEFAULT_W};
use crate::experiments::QP_SWEEP;
use crate::harness::{print_table, Row, Summary};

/// Runs the experiment and returns the rows.
pub fn run(bed: &TestBed) -> Vec<Row> {
    let range = RangeSpec::square(DEFAULT_W);
    let mut rows = Vec::new();
    for &qp in &QP_SWEEP {
        let issuers = WorkloadGen::new(1200).issuer_regions(bed.scale.queries, DEFAULT_U);
        let s_rtree = Summary::collect(bed.scale.queries, |q| {
            bed.long_beach.ciuq(
                &Issuer::uniform(issuers[q]),
                range,
                qp,
                CiuqStrategy::RTreeMinkowski,
            )
        });
        rows.push(Row {
            x: qp,
            series: "R-tree + Minkowski".into(),
            summary: s_rtree,
        });
        let s_pti = Summary::collect(bed.scale.queries, |q| {
            bed.long_beach.ciuq(
                &Issuer::uniform(issuers[q]),
                range,
                qp,
                CiuqStrategy::PtiPExpanded,
            )
        });
        rows.push(Row {
            x: qp,
            series: "PTI + p-expanded".into(),
            summary: s_pti,
        });
    }
    print_table(
        "Figure 12: T vs Qp (C-IUQ, Long Beach)",
        "probability threshold Qp",
        &rows,
    );
    rows
}
