//! Truncated-Gaussian uncertainty pdf (the paper's non-uniform model).
//!
//! Wolfson et al. propose Gaussian-distributed locations inside the
//! uncertainty region; the paper's Figure 13 experiment uses a Gaussian
//! whose mean is the region centre and whose standard deviation is
//! one-sixth of the region size (so the region spans ±3σ and keeps
//! ~99.7 % of the untruncated mass). We model the two axes as
//! independent and renormalise the density over the region, which keeps
//! every marginal quantity (and hence p-bounds) exact up to `erf`
//! precision.

use iloc_geometry::{Interval, Point, Rect};
use rand::Rng;
use rand::RngCore;

use crate::math::{invert_monotone, normal_cdf, normal_pdf};
use crate::pdf::{Axis, LocationPdf};

/// Axis-independent bivariate Gaussian truncated to an axis-parallel
/// rectangle.
#[derive(Debug, Clone, PartialEq)]
pub struct TruncatedGaussianPdf {
    region: Rect,
    mean: Point,
    sigma: (f64, f64),
    /// Per-axis normalising mass of the untruncated Gaussian inside the
    /// region: `Φ(hi) − Φ(lo)` in standardised coordinates.
    z: (f64, f64),
}

impl TruncatedGaussianPdf {
    /// Creates a truncated Gaussian with explicit mean and per-axis
    /// standard deviations.
    ///
    /// # Panics
    ///
    /// Panics when the region has zero area, a sigma is non-positive, or
    /// the region carries (numerically) no Gaussian mass.
    pub fn new(region: Rect, mean: Point, sigma_x: f64, sigma_y: f64) -> Self {
        assert!(region.area() > 0.0, "region must have positive area");
        assert!(sigma_x > 0.0 && sigma_y > 0.0, "sigmas must be positive");
        let zx = normal_cdf((region.max.x - mean.x) / sigma_x)
            - normal_cdf((region.min.x - mean.x) / sigma_x);
        let zy = normal_cdf((region.max.y - mean.y) / sigma_y)
            - normal_cdf((region.min.y - mean.y) / sigma_y);
        assert!(
            zx > 0.0 && zy > 0.0,
            "region carries no Gaussian mass; check mean/sigma"
        );
        TruncatedGaussianPdf {
            region,
            mean,
            sigma: (sigma_x, sigma_y),
            z: (zx, zy),
        }
    }

    /// The paper's Figure-13 parameterisation: mean at the region
    /// centre, per-axis σ equal to one-sixth of that axis' extent.
    pub fn paper_default(region: Rect) -> Self {
        let mean = region.center();
        TruncatedGaussianPdf::new(region, mean, region.width() / 6.0, region.height() / 6.0)
    }

    /// Mean of the (untruncated) Gaussian.
    pub fn mean(&self) -> Point {
        self.mean
    }

    /// Per-axis standard deviations.
    pub fn sigma(&self) -> (f64, f64) {
        self.sigma
    }

    fn axis_params(&self, axis: Axis) -> (Interval, f64, f64, f64) {
        match axis {
            Axis::X => (
                self.region.x_interval(),
                self.mean.x,
                self.sigma.0,
                self.z.0,
            ),
            Axis::Y => (
                self.region.y_interval(),
                self.mean.y,
                self.sigma.1,
                self.z.1,
            ),
        }
    }

    /// Mass of the truncated marginal inside `[−∞, v]` for one axis.
    fn axis_cdf(&self, axis: Axis, v: f64) -> f64 {
        let (side, mu, sigma, z) = self.axis_params(axis);
        if v <= side.lo {
            return 0.0;
        }
        if v >= side.hi {
            return 1.0;
        }
        ((normal_cdf((v - mu) / sigma) - normal_cdf((side.lo - mu) / sigma)) / z).clamp(0.0, 1.0)
    }

    /// Mass of the truncated marginal inside an interval for one axis.
    fn axis_prob(&self, axis: Axis, i: Interval) -> f64 {
        if i.is_empty() {
            return 0.0;
        }
        (self.axis_cdf(axis, i.hi) - self.axis_cdf(axis, i.lo)).max(0.0)
    }
}

impl LocationPdf for TruncatedGaussianPdf {
    fn region(&self) -> Rect {
        self.region
    }

    fn density(&self, p: Point) -> f64 {
        if !self.region.contains_point(p) {
            return 0.0;
        }
        let (sx, sy) = self.sigma;
        let zx = (p.x - self.mean.x) / sx;
        let zy = (p.y - self.mean.y) / sy;
        let norm = 1.0 / (2.0 * std::f64::consts::PI * sx * sy * self.z.0 * self.z.1);
        norm * (-0.5 * (zx * zx + zy * zy)).exp()
    }

    fn prob_in_rect(&self, r: Rect) -> f64 {
        // Axis independence makes the rectangle mass a product of two
        // truncated-marginal masses.
        let c = self.region.intersect(r);
        if c.is_empty() {
            return 0.0;
        }
        self.axis_prob(Axis::X, c.x_interval()) * self.axis_prob(Axis::Y, c.y_interval())
    }

    fn marginal_cdf(&self, axis: Axis, v: f64) -> f64 {
        self.axis_cdf(axis, v)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Point {
        // Rejection sampling from the untruncated Gaussian: for the
        // paper's ±3σ regions ≥ 99 % of proposals are accepted, making
        // a sample ~3 orders of magnitude cheaper than inverse-CDF
        // bisection. Fall back to the exact inverse CDF if the region
        // carries very little Gaussian mass.
        let (sx, sy) = self.sigma;
        for _ in 0..64 {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let (zs, zc) = (std::f64::consts::TAU * u2).sin_cos();
            let p = Point::new(self.mean.x + sx * r * zc, self.mean.y + sy * r * zs);
            if self.region.contains_point(p) {
                return p;
            }
        }
        let ux: f64 = rng.gen_range(0.0..1.0);
        let uy: f64 = rng.gen_range(0.0..1.0);
        Point::new(self.quantile(Axis::X, ux), self.quantile(Axis::Y, uy))
    }

    fn quantile(&self, axis: Axis, p: f64) -> f64 {
        let (side, _, _, _) = self.axis_params(axis);
        if p <= 0.0 {
            return side.lo;
        }
        if p >= 1.0 {
            return side.hi;
        }
        invert_monotone(|v| self.axis_cdf(axis, v), side.lo, side.hi, p)
    }

    fn linear_marginal_integral(&self, axis: Axis, i: Interval, c0: f64, c1: f64) -> Option<f64> {
        // Truncated-normal marginal on [A, B]:
        //   ∫ (c0 + c1·x) g(x) dx = c0·P + c1·(μ·P + σ·(φ(z_a) − φ(z_b))/Z)
        // over the clipped interval [a, b], z = (x − μ)/σ.
        let (side, mu, sigma, z) = self.axis_params(axis);
        let c = side.intersect(i);
        if c.is_empty() {
            return Some(0.0);
        }
        let za = (c.lo - mu) / sigma;
        let zb = (c.hi - mu) / sigma;
        let p = (normal_cdf(zb) - normal_cdf(za)) / z;
        let mean_part = mu * p + sigma * (normal_pdf(za) - normal_pdf(zb)) / z;
        Some(c0 * p + c1 * mean_part)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pdf() -> TruncatedGaussianPdf {
        TruncatedGaussianPdf::paper_default(Rect::from_coords(0.0, 0.0, 60.0, 30.0))
    }

    #[test]
    fn paper_default_parameters() {
        let f = pdf();
        assert_eq!(f.mean(), Point::new(30.0, 15.0));
        assert_eq!(f.sigma(), (10.0, 5.0));
    }

    #[test]
    fn total_mass_is_one() {
        let f = pdf();
        assert!((f.prob_in_rect(f.region()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn density_zero_outside() {
        let f = pdf();
        assert_eq!(f.density(Point::new(-1.0, 10.0)), 0.0);
        assert!(f.density(Point::new(30.0, 15.0)) > 0.0);
    }

    #[test]
    fn density_integrates_to_prob() {
        // Midpoint-rule integral of the density over a sub-rectangle
        // must match prob_in_rect.
        let f = pdf();
        let r = Rect::from_coords(20.0, 10.0, 40.0, 20.0);
        let n = 400;
        let (dx, dy) = (r.width() / n as f64, r.height() / n as f64);
        let mut acc = 0.0;
        for i in 0..n {
            for j in 0..n {
                let p = Point::new(
                    r.min.x + (i as f64 + 0.5) * dx,
                    r.min.y + (j as f64 + 0.5) * dy,
                );
                acc += f.density(p) * dx * dy;
            }
        }
        assert!((acc - f.prob_in_rect(r)).abs() < 1e-5);
    }

    #[test]
    fn mass_concentrates_near_mean() {
        let f = pdf();
        let near = Rect::centered(Point::new(30.0, 15.0), 10.0, 5.0); // ±1σ
        let far = Rect::from_coords(0.0, 0.0, 10.0, 5.0); // corner
        assert!(f.prob_in_rect(near) > 0.4);
        assert!(f.prob_in_rect(far) < 0.01);
    }

    #[test]
    fn marginal_cdf_monotone_and_normalised() {
        let f = pdf();
        assert_eq!(f.marginal_cdf(Axis::X, -5.0), 0.0);
        assert_eq!(f.marginal_cdf(Axis::X, 65.0), 1.0);
        assert!((f.marginal_cdf(Axis::X, 30.0) - 0.5).abs() < 1e-9);
        let mut prev = 0.0;
        for k in 0..=60 {
            let v = f.marginal_cdf(Axis::X, k as f64);
            assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let f = pdf();
        for &p in &[0.05, 0.25, 0.5, 0.75, 0.95] {
            let q = f.quantile(Axis::Y, p);
            assert!((f.marginal_cdf(Axis::Y, q) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn samples_in_region_with_gaussian_spread() {
        let f = pdf();
        let mut rng = StdRng::seed_from_u64(11);
        const N: usize = 20_000;
        let mut mean_x = 0.0;
        let mut within_1_sigma = 0usize;
        for _ in 0..N {
            let s = f.sample(&mut rng);
            assert!(f.region().contains_point(s));
            mean_x += s.x / N as f64;
            if (s.x - 30.0).abs() <= 10.0 {
                within_1_sigma += 1;
            }
        }
        assert!((mean_x - 30.0).abs() < 0.3);
        // ~68.3% of samples within ±1σ on the x axis.
        let frac = within_1_sigma as f64 / N as f64;
        assert!((frac - 0.683).abs() < 0.02, "got {frac}");
    }
}
