//! Parallel iterator combinators over slices.

use crate::current_num_threads;

/// Conversion of `&[T]` / `&Vec<T>` into a parallel iterator,
/// mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: 'a;
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Returns a parallel iterator over borrowed items.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SlicePar<'a, T>;
    fn par_iter(&'a self) -> SlicePar<'a, T> {
        SlicePar { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SlicePar<'a, T>;
    fn par_iter(&'a self) -> SlicePar<'a, T> {
        SlicePar { slice: self }
    }
}

/// A parallel computation that can be mapped and collected.
pub trait ParallelIterator: Sized {
    /// Item produced by this stage.
    type Item: Send;

    /// Runs the whole chain in parallel, preserving input order.
    fn run(self) -> Vec<Self::Item>;

    /// Applies `f` to every item (executed on the worker threads).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Collects the results, preserving input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_ordered(self.run())
    }
}

/// Collection types a parallel iterator can finish into.
pub trait FromParallelIterator<T> {
    /// Builds the collection from the in-order results.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

/// Parallel iterator over a slice (`par_iter`).
#[derive(Debug, Clone, Copy)]
pub struct SlicePar<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SlicePar<'a, T> {
    type Item = &'a T;
    fn run(self) -> Vec<&'a T> {
        self.slice.iter().collect()
    }
}

/// The result of [`ParallelIterator::map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<'a, T, R, F> ParallelIterator for Map<SlicePar<'a, T>, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        par_map_slice(self.base.slice, &self.f)
    }
}

/// Chunked fork-join map over a slice: one contiguous chunk per worker,
/// results written straight into their output slots.
fn par_map_slice<'a, T, R, F>(slice: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = slice.len();
    let workers = current_num_threads().clamp(1, n.max(1));
    if workers <= 1 || n < 2 {
        return slice.iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|scope| {
        for (input, output) in slice.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (slot, item) in output.iter_mut().zip(input) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), input.len());
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [42u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![43]);
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let input: Vec<u32> = (0..100_000).collect();
        let _: Vec<u32> = input
            .par_iter()
            .map(|&x| {
                ids.lock().unwrap().insert(std::thread::current().id());
                x
            })
            .collect();
        // On a multi-core host at least two workers must have run.
        if current_num_threads() > 1 {
            assert!(ids.lock().unwrap().len() > 1);
        }
    }

    #[test]
    fn par_iter_without_map_collects_refs() {
        let input = vec![1, 2, 3];
        let refs: Vec<&i32> = input.par_iter().collect();
        assert_eq!(refs, vec![&1, &2, &3]);
    }
}
