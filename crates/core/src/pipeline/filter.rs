//! The **Filter** stage: index probes producing candidate object slots.
//!
//! Two concrete filters cover the paper:
//!
//! * [`RectFilter`] — one rectangle (the Minkowski sum `R ⊕ U0` of
//!   Lemma 1 or a `p`-expanded query of Lemma 5) probed against **any**
//!   [`RangeIndex`] backend: `RTree`, `GridFile`, `NaiveIndex`, or a
//!   `Pti` used as a plain R-tree.
//! * [`PtiFilter`] — the PTI's threshold-aware probe (Section 5.3),
//!   which prunes whole subtrees with node-level Strategy 1/2 tests.

use iloc_geometry::Rect;
use iloc_index::{AccessStats, Pti, PtiQuery, RangeIndex, TraversalScratch};

/// A candidate producer. Implementations record their logical I/O in
/// [`AccessStats`] and **write** candidate slots into a caller-owned
/// buffer (the pipeline passes its context's scratch, keeping the hot
/// path allocation-free); the pushed `u32`s index the pipeline's
/// object table. `traversal` provides reusable index-descent state;
/// filters that do not walk a tree ignore it.
pub trait FilterStage {
    /// Probes the index, pushing candidate slots into `out` (which the
    /// caller has cleared).
    fn candidates_into(
        &self,
        stats: &mut AccessStats,
        traversal: &mut TraversalScratch,
        out: &mut Vec<u32>,
    );
}

/// Rectangle filter over any spatial index.
#[derive(Debug, Clone, Copy)]
pub struct RectFilter<'a, I> {
    /// The index to probe.
    pub index: &'a I,
    /// The filter rectangle (expanded or `p`-expanded query).
    pub query: Rect,
}

impl<I: RangeIndex<u32>> FilterStage for RectFilter<'_, I> {
    fn candidates_into(
        &self,
        stats: &mut AccessStats,
        traversal: &mut TraversalScratch,
        out: &mut Vec<u32>,
    ) {
        self.index
            .query_range_scratch(self.query, stats, traversal, out);
    }
}

/// Threshold-aware PTI filter for constrained uncertain queries.
#[derive(Debug, Clone, Copy)]
pub struct PtiFilter<'a> {
    /// The probability threshold index.
    pub index: &'a Pti<u32>,
    /// Expanded / `p`-expanded rectangles plus the threshold `Qp`.
    pub query: PtiQuery,
}

impl FilterStage for PtiFilter<'_> {
    fn candidates_into(
        &self,
        stats: &mut AccessStats,
        traversal: &mut TraversalScratch,
        out: &mut Vec<u32>,
    ) {
        self.index.query_scratch(&self.query, stats, traversal, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc_index::NaiveIndex;

    #[test]
    fn rect_filter_counts_candidates() {
        let index = NaiveIndex::new(vec![
            (Rect::from_coords(0.0, 0.0, 1.0, 1.0), 0u32),
            (Rect::from_coords(10.0, 10.0, 11.0, 11.0), 1u32),
        ]);
        let filter = RectFilter {
            index: &index,
            query: Rect::from_coords(-1.0, -1.0, 2.0, 2.0),
        };
        let mut stats = AccessStats::new();
        let mut scratch = TraversalScratch::new();
        let mut hits = Vec::new();
        filter.candidates_into(&mut stats, &mut scratch, &mut hits);
        assert_eq!(hits, vec![0]);
        assert_eq!(stats.candidates, 1);
    }
}
