//! The common interface all spatial indexes implement.

use iloc_geometry::Rect;

use crate::stats::AccessStats;

/// A spatial index over items with rectangular extents (a point object
/// is a degenerate rectangle).
///
/// The only operation the paper's query pipeline needs is the **range
/// filter**: report every stored item whose extent overlaps a query
/// rectangle (the Minkowski sum `R ⊕ U0` or a `p`-expanded query).
/// Probability refinement happens above the index.
pub trait RangeIndex<T: Copy> {
    /// Number of stored items.
    fn len(&self) -> usize;

    /// `true` when the index stores nothing.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes every item whose extent overlaps `query` into `out`,
    /// updating `stats` with the logical accesses performed.
    fn query_range_into(&self, query: Rect, stats: &mut AccessStats, out: &mut Vec<T>);

    /// Convenience wrapper returning a fresh vector.
    fn query_range(&self, query: Rect, stats: &mut AccessStats) -> Vec<T> {
        let mut out = Vec::new();
        self.query_range_into(query, stats, &mut out);
        out
    }
}
