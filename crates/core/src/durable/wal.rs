//! The write-ahead log: epoch-keyed update-batch records in
//! checksummed segments.
//!
//! A log is a directory of segment files `wal-<start-epoch>.log`; each
//! segment is a sequence of framed records (see the module docs of
//! [`super`]), one per committed epoch:
//!
//! ```text
//! payload := epoch u64 | count u32 | update × count
//! ```
//!
//! Segments rotate when a checkpoint completes, so the log's tail
//! stays short: a segment whose every epoch is covered by the latest
//! checkpoint is deleted. Within one segment epochs are strictly
//! ascending; recovery enforces this and truncates the log at the
//! first record that breaks it (torn, corrupt, duplicate-backwards or
//! gapped) — replaying a prefix is always safe, guessing past damage
//! never is.

use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use super::codec::{put_u32, put_u64, put_update, read_update, Cursor, DurableObject};
use super::{begin_record, finish_record, FsyncPolicy, RecordScanner, StoreError};
use crate::serve::Update;

/// Updates per record beyond which the record is rejected as corrupt
/// (the count field must be plausible before it sizes a loop).
const MAX_BATCH: u32 = 16 * 1024 * 1024;

/// One decoded WAL record: the batch committed as `epoch`.
#[derive(Debug)]
pub(crate) struct WalBatch<O> {
    pub epoch: u64,
    pub updates: Vec<Update<O>>,
    /// Which segment the record came from and where it starts — the
    /// coordinates [`Wal::truncate_from`] needs to cut the log here.
    pub segment: usize,
    pub offset: u64,
}

/// What recovering the log found, besides the batches themselves.
#[derive(Debug, Default)]
pub(crate) struct WalScan {
    /// A torn or corrupt tail was truncated away.
    pub truncated: bool,
    /// Why, when it was.
    pub torn_reason: Option<&'static str>,
}

fn segment_name(start_epoch: u64) -> String {
    // Zero-padded so lexical order is numeric order.
    format!("wal-{start_epoch:020}.log")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let stem = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if stem.len() != 20 || !stem.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    stem.parse().ok()
}

/// Best-effort directory fsync so renames and creations survive a
/// crash of the whole machine (ignored where directories cannot be
/// opened, e.g. non-POSIX filesystems).
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// An open write-ahead log positioned for appending.
#[derive(Debug)]
pub(crate) struct Wal {
    dir: PathBuf,
    /// Segments on disk, ascending by start epoch. The last one is the
    /// append target.
    segments: Vec<(u64, PathBuf)>,
    /// Append handle on the last segment (`None` until first append —
    /// a fresh log defers creating its first segment so the segment
    /// name can carry the first epoch it holds).
    file: Option<File>,
    fsync: FsyncPolicy,
    /// Appends since the last fsync (drives [`FsyncPolicy::EveryN`]).
    unsynced: u64,
    /// Reusable encode buffer — the append path allocates nothing once
    /// this has grown to batch size.
    buf: Vec<u8>,
}

impl Wal {
    /// Opens the log in `dir` (creating the directory if needed),
    /// scans every segment, truncates any torn tail, and returns the
    /// decoded batches in log order.
    pub(crate) fn recover<O: DurableObject>(
        dir: &Path,
        fsync: FsyncPolicy,
    ) -> Result<(Wal, Vec<WalBatch<O>>, WalScan), StoreError> {
        fs::create_dir_all(dir)?;
        let mut segments: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            if let Some(start) = name.to_str().and_then(parse_segment_name) {
                segments.push((start, entry.path()));
            }
        }
        segments.sort_unstable_by_key(|(start, _)| *start);

        let mut batches: Vec<WalBatch<O>> = Vec::new();
        let mut scan_out = WalScan::default();
        for (seg_idx, (_, path)) in segments.iter().enumerate() {
            let bytes = fs::read(path)?;
            let mut scan = RecordScanner::new(&bytes);
            let mut offset = 0u64;
            let mut bad: Option<&'static str> = None;
            while let Some(payload) = scan.next_record() {
                match decode_batch::<O>(payload) {
                    Ok((epoch, updates)) => {
                        batches.push(WalBatch {
                            epoch,
                            updates,
                            segment: seg_idx,
                            offset,
                        });
                        offset = scan.valid_end() as u64;
                    }
                    Err(e) => {
                        // Framed correctly but not a batch we wrote:
                        // treat as corruption starting at this record.
                        bad = Some(match e {
                            StoreError::Corrupt(what) => what,
                            _ => "undecodable batch record",
                        });
                        break;
                    }
                }
            }
            let cut = if bad.is_some() {
                Some(offset)
            } else if scan.torn_reason().is_some() {
                Some(scan.valid_end() as u64)
            } else {
                None
            };
            if let Some(cut) = cut {
                scan_out.truncated = true;
                scan_out.torn_reason = bad.or(scan.torn_reason());
                let f = OpenOptions::new().write(true).open(path)?;
                f.set_len(cut)?;
                f.sync_all()?;
                // Anything in later segments sits past damage; a
                // record there can only duplicate or gap the epoch
                // sequence, so cut them too.
                for (_, later) in segments.iter().skip(seg_idx + 1) {
                    fs::remove_file(later)?;
                }
                segments.truncate(seg_idx + 1);
                sync_dir(dir);
                break;
            }
        }

        let file = match segments.last() {
            Some((_, path)) => Some(OpenOptions::new().append(true).open(path)?),
            None => None,
        };
        Ok((
            Wal {
                dir: dir.to_path_buf(),
                segments,
                file,
                fsync,
                unsynced: 0,
                buf: Vec::new(),
            },
            batches,
            scan_out,
        ))
    }

    /// Appends the record for the batch committing as `epoch` and
    /// fsyncs per policy. Must be called **before** the engine
    /// publishes that epoch.
    pub(crate) fn append<O: DurableObject>(
        &mut self,
        epoch: u64,
        updates: &[Update<O>],
    ) -> Result<(), StoreError> {
        self.buf.clear();
        let at = begin_record(&mut self.buf);
        put_u64(&mut self.buf, epoch);
        put_u32(&mut self.buf, updates.len() as u32);
        for u in updates {
            put_update(&mut self.buf, u)?;
        }
        finish_record(&mut self.buf, at);

        if self.file.is_none() {
            self.create_segment(epoch)?;
        }
        let file = self.file.as_mut().expect("segment just ensured");
        file.write_all(&self.buf)?;
        self.unsynced += 1;
        match self.fsync {
            FsyncPolicy::Always => {
                file.sync_data()?;
                self.unsynced = 0;
            }
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= n {
                    file.sync_data()?;
                    self.unsynced = 0;
                }
            }
            FsyncPolicy::Off => {}
        }
        Ok(())
    }

    /// Fsyncs any unsynced appends regardless of policy.
    pub(crate) fn flush(&mut self) -> Result<(), StoreError> {
        if let Some(f) = &mut self.file {
            f.sync_data()?;
        }
        self.unsynced = 0;
        Ok(())
    }

    /// Starts a fresh segment for records from `start_epoch` on (the
    /// checkpointer calls this after a checkpoint lands, so covered
    /// segments become prunable).
    pub(crate) fn rotate(&mut self, start_epoch: u64) -> Result<(), StoreError> {
        if let Some(f) = &mut self.file {
            f.sync_data()?;
        }
        self.unsynced = 0;
        self.create_segment(start_epoch)
    }

    fn create_segment(&mut self, start_epoch: u64) -> Result<(), StoreError> {
        let path = self.dir.join(segment_name(start_epoch));
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        sync_dir(&self.dir);
        self.segments.push((start_epoch, path));
        self.file = Some(file);
        Ok(())
    }

    /// Deletes every segment whose entire epoch range is at or below
    /// `covered_epoch` (a segment's range ends where the next
    /// segment's starts). The append segment is never deleted.
    pub(crate) fn prune_covered(&mut self, covered_epoch: u64) -> Result<(), StoreError> {
        let mut keep_from = 0usize;
        for i in 0..self.segments.len().saturating_sub(1) {
            let next_start = self.segments[i + 1].0;
            if next_start > 0 && next_start - 1 <= covered_epoch {
                fs::remove_file(&self.segments[i].1)?;
                keep_from = i + 1;
            } else {
                break;
            }
        }
        if keep_from > 0 {
            self.segments.drain(..keep_from);
            sync_dir(&self.dir);
        }
        Ok(())
    }

    /// Cuts the log at a decoded batch's coordinates: truncates that
    /// segment at the batch's start offset and deletes every later
    /// segment. Used when replay finds a record that is well-formed
    /// but breaks the epoch sequence — everything from it on is
    /// unreachable and must not collide with future appends.
    pub(crate) fn truncate_from(&mut self, segment: usize, offset: u64) -> Result<(), StoreError> {
        for (_, path) in self.segments.iter().skip(segment + 1) {
            fs::remove_file(path)?;
        }
        self.segments.truncate(segment + 1);
        let (_, path) = &self.segments[segment];
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(offset)?;
        f.sync_all()?;
        self.file = Some(OpenOptions::new().append(true).open(path)?);
        sync_dir(&self.dir);
        Ok(())
    }
}

fn decode_batch<O: DurableObject>(payload: &[u8]) -> Result<(u64, Vec<Update<O>>), StoreError> {
    let mut c = Cursor::new(payload);
    let epoch = c.u64()?;
    let count = c.u32()?;
    if count == 0 {
        return Err(StoreError::Corrupt("empty batch record"));
    }
    // The smallest update (a departure) is 9 payload bytes; a count
    // the payload cannot possibly hold must not size an allocation.
    if count > MAX_BATCH || count as usize * 9 > payload.len() {
        return Err(StoreError::Corrupt("batch count out of bounds"));
    }
    let mut updates = Vec::with_capacity(count as usize);
    for _ in 0..count {
        updates.push(read_update(&mut c)?);
    }
    c.done()?;
    Ok((epoch, updates))
}
