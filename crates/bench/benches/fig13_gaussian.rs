//! Criterion microbenchmark for Figure 13: C-IPQ under a Gaussian
//! issuer pdf with the paper's Monte-Carlo evaluation (200 samples).

use criterion::{criterion_group, criterion_main, Criterion};
use iloc_bench::{Scale, TestBed};
use iloc_core::integrate::PAPER_MC_SAMPLES_POINT;
use iloc_core::{CipqStrategy, Integrator, Issuer, RangeSpec};
use iloc_datagen::WorkloadGen;

fn bench(c: &mut Criterion) {
    let bed = TestBed::build(Scale::quick());
    let range = RangeSpec::square(500.0);
    let issuer = Issuer::gaussian(WorkloadGen::new(13).issuer_region(250.0));
    let mc = Integrator::MonteCarlo {
        samples: PAPER_MC_SAMPLES_POINT,
    };
    let mut group = c.benchmark_group("fig13");
    for qp in [0.0, 0.3, 0.6] {
        group.bench_function(format!("minkowski_mc/qp{qp}"), |b| {
            b.iter(|| {
                bed.california
                    .cipq_with(&issuer, range, qp, CipqStrategy::MinkowskiSum, mc)
            })
        });
        group.bench_function(format!("p_expanded_mc/qp{qp}"), |b| {
            b.iter(|| {
                bed.california
                    .cipq_with(&issuer, range, qp, CipqStrategy::PExpanded, mc)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
