//! Monte-Carlo probability estimation — the paper's technique for
//! non-uniform pdfs (Section 6, Figure 13).
//!
//! After the duality transformation only **one** layer of sampling is
//! needed: for a point object we sample issuer positions and count
//! range membership; for an uncertain object we sample the *object's*
//! pdf and average the exact inner mass `Q(x, y)` (a rectangle-mass
//! lookup), which is a variance-reduced version of the paper's
//! double-sampling scheme with the same asymptotics.

use iloc_geometry::Point;
use iloc_uncertainty::LocationPdf;
use rand::rngs::StdRng;

use crate::query::RangeSpec;
use crate::stats::QueryStats;

/// Point-object probability: fraction of issuer samples whose range
/// query contains `loc` (the paper's Eq. 2 estimator).
pub fn point_probability(
    issuer_pdf: &dyn LocationPdf,
    range: RangeSpec,
    loc: Point,
    samples: usize,
    rng: &mut StdRng,
    stats: &mut QueryStats,
) -> f64 {
    assert!(samples > 0, "sample count must be positive");
    stats.mc_samples += samples as u64;
    let mut hits = 0usize;
    for _ in 0..samples {
        let q = issuer_pdf.sample(rng);
        if range.at(q).contains_point(loc) {
            hits += 1;
        }
    }
    hits as f64 / samples as f64
}

/// Uncertain-object probability (Lemma 4 estimator): sample object
/// positions `X ~ fi` and average `Q(X) = ∫_{R(X) ∩ U0} f0`, computed
/// exactly per sample.
pub fn object_probability(
    issuer_pdf: &dyn LocationPdf,
    range: RangeSpec,
    object_pdf: &dyn LocationPdf,
    samples: usize,
    rng: &mut StdRng,
    stats: &mut QueryStats,
) -> f64 {
    assert!(samples > 0, "sample count must be positive");
    stats.mc_samples += samples as u64;
    let mut acc = 0.0;
    for _ in 0..samples {
        let o = object_pdf.sample(rng);
        acc += issuer_pdf.prob_in_rect(range.at(o));
    }
    (acc / samples as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc_geometry::minkowski::expand_query;
    use iloc_geometry::Rect;
    use iloc_uncertainty::{TruncatedGaussianPdf, UniformPdf};
    use rand::SeedableRng;

    #[test]
    fn point_estimator_unbiased_uniform() {
        let issuer = UniformPdf::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0));
        let range = RangeSpec::square(25.0);
        let loc = Point::new(110.0, 50.0);
        let exact = issuer.prob_in_rect(range.at(loc));
        let mut rng = StdRng::seed_from_u64(5);
        let mut stats = QueryStats::new();
        let est = point_probability(&issuer, range, loc, 200_000, &mut rng, &mut stats);
        assert!((est - exact).abs() < 5e-3, "est {est} vs exact {exact}");
        assert_eq!(stats.mc_samples, 200_000);
    }

    #[test]
    fn object_estimator_matches_quadrature_for_gaussian() {
        let issuer = TruncatedGaussianPdf::paper_default(Rect::from_coords(0.0, 0.0, 60.0, 60.0));
        let object =
            TruncatedGaussianPdf::paper_default(Rect::from_coords(40.0, 20.0, 100.0, 80.0));
        let range = RangeSpec::square(20.0);
        let expanded = expand_query(issuer.region(), 20.0, 20.0);
        let mut rng = StdRng::seed_from_u64(6);
        let mut stats = QueryStats::new();
        let est = object_probability(&issuer, range, &object, 120_000, &mut rng, &mut stats);
        let reference = crate::integrate::grid::object_probability(
            &issuer, range, &object, expanded, 220, &mut stats,
        );
        assert!(
            (est - reference).abs() < 5e-3,
            "mc {est} vs grid {reference}"
        );
    }

    #[test]
    fn impossible_object_estimates_zero() {
        let issuer = UniformPdf::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0));
        let object = UniformPdf::new(Rect::from_coords(500.0, 500.0, 510.0, 510.0));
        let range = RangeSpec::square(5.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut stats = QueryStats::new();
        let est = object_probability(&issuer, range, &object, 1_000, &mut rng, &mut stats);
        assert_eq!(est, 0.0);
    }
}
