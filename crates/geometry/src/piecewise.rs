//! Continuous piecewise-linear functions of one variable with exact
//! integration.
//!
//! The enhanced IUQ evaluator (paper Eq. 8 with uniform pdfs) reduces to
//! integrating *overlap profiles* — trapezoid-shaped piecewise-linear
//! functions — over an interval. Representing them explicitly gives an
//! exact closed form, which doubles as the ground truth the Monte-Carlo
//! and grid integrators are validated against.

use crate::interval::Interval;

/// A continuous piecewise-linear function defined by knots
/// `(x_0, y_0), …, (x_k, y_k)` with strictly increasing `x_i`; linear
/// between consecutive knots and **zero outside** `[x_0, x_k]`.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    knots: Vec<(f64, f64)>,
}

impl PiecewiseLinear {
    /// Builds a function from knots.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two knots are given or the x-coordinates are
    /// not strictly increasing — both indicate construction bugs rather
    /// than data errors, matching the crate's invariant style.
    pub fn new(knots: Vec<(f64, f64)>) -> Self {
        assert!(knots.len() >= 2, "need at least two knots");
        for pair in knots.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "knot x-coordinates must be strictly increasing: {} !< {}",
                pair[0].0,
                pair[1].0
            );
        }
        PiecewiseLinear { knots }
    }

    /// The identically-zero function on a degenerate support.
    pub fn zero() -> Self {
        PiecewiseLinear {
            knots: vec![(0.0, 0.0), (1.0, 0.0)],
        }
    }

    /// The knots defining the function.
    pub fn knots(&self) -> &[(f64, f64)] {
        &self.knots
    }

    /// Support interval `[x_0, x_k]` (the function is zero outside).
    pub fn support(&self) -> Interval {
        Interval::new(self.knots[0].0, self.knots[self.knots.len() - 1].0)
    }

    /// Evaluates the function at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.knots.len();
        if x < self.knots[0].0 || x > self.knots[n - 1].0 {
            return 0.0;
        }
        // Binary search for the segment containing x.
        let idx = self
            .knots
            .partition_point(|&(kx, _)| kx <= x)
            .saturating_sub(1);
        if idx + 1 >= n {
            return self.knots[n - 1].1;
        }
        let (x0, y0) = self.knots[idx];
        let (x1, y1) = self.knots[idx + 1];
        let t = (x - x0) / (x1 - x0);
        y0 + t * (y1 - y0)
    }

    /// Maximum value attained (functions here are continuous, so the max
    /// is at a knot).
    pub fn max_value(&self) -> f64 {
        self.knots.iter().map(|&(_, y)| y).fold(f64::MIN, f64::max)
    }

    /// Exact integral over the whole support.
    pub fn integral(&self) -> f64 {
        self.integral_over(self.support())
    }

    /// Exact integral `∫_I f(x) dx` over an arbitrary interval `I`
    /// (portions outside the support contribute zero).
    pub fn integral_over(&self, i: Interval) -> f64 {
        let i = i.intersect(self.support());
        if i.is_empty() || i.length() == 0.0 {
            return 0.0;
        }
        let mut total = 0.0;
        for pair in self.knots.windows(2) {
            let (x0, y0) = pair[0];
            let (x1, y1) = pair[1];
            let seg = Interval::new(x0, x1).intersect(i);
            if seg.is_empty() || seg.length() == 0.0 {
                continue;
            }
            // Linear on [x0, x1]: integrate exactly via the trapezoid rule
            // on the clipped endpoints (exact for linear integrands).
            let slope = (y1 - y0) / (x1 - x0);
            let f_lo = y0 + slope * (seg.lo - x0);
            let f_hi = y0 + slope * (seg.hi - x0);
            total += 0.5 * (f_lo + f_hi) * seg.length();
        }
        total
    }

    /// Returns the function scaled by a constant factor.
    pub fn scaled(&self, c: f64) -> Self {
        PiecewiseLinear {
            knots: self.knots.iter().map(|&(x, y)| (x, c * y)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Triangle: 0 at x=0, 1 at x=1, 0 at x=2.
    fn triangle() -> PiecewiseLinear {
        PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)])
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_knots() {
        let _ = PiecewiseLinear::new(vec![(1.0, 0.0), (0.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_knot() {
        let _ = PiecewiseLinear::new(vec![(0.0, 0.0)]);
    }

    #[test]
    fn eval_inside_and_outside() {
        let f = triangle();
        assert_eq!(f.eval(-0.5), 0.0);
        assert_eq!(f.eval(0.0), 0.0);
        assert_eq!(f.eval(0.5), 0.5);
        assert_eq!(f.eval(1.0), 1.0);
        assert_eq!(f.eval(1.5), 0.5);
        assert_eq!(f.eval(2.0), 0.0);
        assert_eq!(f.eval(2.5), 0.0);
    }

    #[test]
    fn eval_at_knots_exact() {
        let f = PiecewiseLinear::new(vec![(0.0, 2.0), (3.0, 5.0), (7.0, 1.0)]);
        assert_eq!(f.eval(0.0), 2.0);
        assert_eq!(f.eval(3.0), 5.0);
        assert_eq!(f.eval(7.0), 1.0);
    }

    #[test]
    fn integral_of_triangle_is_half_base_times_height() {
        let f = triangle();
        assert!((f.integral() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn integral_over_subinterval() {
        let f = triangle();
        // ∫_0^1 x dx = 0.5
        assert!((f.integral_over(Interval::new(0.0, 1.0)) - 0.5).abs() < 1e-12);
        // ∫_0.5^1.5 = 2 * ∫_0.5^1 x dx = (0.5+1)/2*0.5 * 2 = 0.75
        assert!((f.integral_over(Interval::new(0.5, 1.5)) - 0.75).abs() < 1e-12);
        // Interval extending beyond the support clips to it.
        assert!((f.integral_over(Interval::new(-10.0, 10.0)) - 1.0).abs() < 1e-12);
        // Disjoint interval integrates to zero.
        assert_eq!(f.integral_over(Interval::new(5.0, 6.0)), 0.0);
    }

    #[test]
    fn integral_matches_numeric_quadrature() {
        let f = PiecewiseLinear::new(vec![(0.0, 1.0), (2.0, 3.0), (5.0, 0.5), (6.0, 0.5)]);
        let i = Interval::new(0.3, 5.7);
        // Midpoint rule with many slices as the reference.
        let n = 200_000;
        let dx = i.length() / n as f64;
        let mut acc = 0.0;
        for k in 0..n {
            acc += f.eval(i.lo + (k as f64 + 0.5) * dx) * dx;
        }
        assert!((f.integral_over(i) - acc).abs() < 1e-6);
    }

    #[test]
    fn scaled_scales_values_and_integral() {
        let f = triangle().scaled(3.0);
        assert_eq!(f.eval(1.0), 3.0);
        assert!((f.integral() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn max_value_at_knot() {
        assert_eq!(triangle().max_value(), 1.0);
    }

    #[test]
    fn zero_function() {
        let z = PiecewiseLinear::zero();
        assert_eq!(z.eval(0.5), 0.0);
        assert_eq!(z.integral(), 0.0);
    }
}
