//! Query engines: index construction plus end-to-end evaluation of the
//! four query types (the Section 4.3 / 5.3 filter-and-refine pipeline).

mod point;
mod uncertain;

pub use point::PointEngine;
pub use uncertain::UncertainEngine;

/// Seed used to derive the per-query RNG when the caller does not
/// supply one; query answers are deterministic for a given engine.
pub(crate) const DEFAULT_QUERY_SEED: u64 = 0x110C_5EED;
