//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so this vendored
//! crate implements the subset of rayon's public surface the workspace
//! uses — `slice.par_iter().map(f).collect::<Vec<_>>()` — with
//! **genuine data parallelism**: the input is divided into one
//! contiguous chunk per available core and mapped on scoped OS threads
//! (`std::thread::scope`), writing results directly into their final
//! slots so output order always equals input order.
//!
//! Differences from real rayon are intentional and documented:
//!
//! * scheduling is static chunking, not work stealing — fine for the
//!   workspace's batch executor, whose per-query costs are smoothed by
//!   chunk granularity;
//! * there is no global thread pool; threads are spawned per call.
//!   Batch sizes in this workspace are large (thousands to millions of
//!   queries), so spawn cost is noise;
//! * only the combinators the workspace uses exist. Extending the
//!   surface is deliberate work, not an accident.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod iter;
pub mod prelude;

pub use iter::{IntoParallelRefIterator, ParallelIterator, ParallelSlice};

/// Number of worker threads a parallel call will use for `len` items.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
