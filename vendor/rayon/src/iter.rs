//! Parallel iterator combinators over slices.

use crate::current_num_threads;

/// Conversion of `&[T]` / `&Vec<T>` into a parallel iterator,
/// mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: 'a;
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Returns a parallel iterator over borrowed items.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SlicePar<'a, T>;
    fn par_iter(&'a self) -> SlicePar<'a, T> {
        SlicePar { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SlicePar<'a, T>;
    fn par_iter(&'a self) -> SlicePar<'a, T> {
        SlicePar { slice: self }
    }
}

/// A parallel computation that can be mapped and collected.
pub trait ParallelIterator: Sized {
    /// Item produced by this stage.
    type Item: Send;

    /// Runs the whole chain in parallel, preserving input order.
    fn run(self) -> Vec<Self::Item>;

    /// Applies `f` to every item (executed on the worker threads).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Collects the results, preserving input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_ordered(self.run())
    }
}

/// Collection types a parallel iterator can finish into.
pub trait FromParallelIterator<T> {
    /// Builds the collection from the in-order results.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

/// Conversion of `&[T]` into a parallel iterator over contiguous
/// chunks, mirroring `rayon::slice::ParallelSlice::par_chunks`.
pub trait ParallelSlice<T: Sync> {
    /// Returns a parallel iterator over chunks of at most `chunk_size`
    /// elements (the final chunk may be shorter).
    ///
    /// # Panics
    ///
    /// Panics when `chunk_size` is zero.
    fn par_chunks(&self, chunk_size: usize) -> ChunksPar<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ChunksPar<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunksPar {
            slice: self,
            size: chunk_size,
        }
    }
}

/// Parallel iterator over slice chunks (`par_chunks`).
#[derive(Debug, Clone, Copy)]
pub struct ChunksPar<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksPar<'a, T> {
    type Item = &'a [T];
    fn run(self) -> Vec<&'a [T]> {
        self.slice.chunks(self.size).collect()
    }
}

impl<'a, T, R, F> ParallelIterator for Map<ChunksPar<'a, T>, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a [T]) -> R + Sync,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        let chunks: Vec<&'a [T]> = self.base.slice.chunks(self.base.size).collect();
        let f = &self.f;
        par_map_slice(&chunks, &|c: &&'a [T]| f(c))
    }
}

/// Parallel iterator over a slice (`par_iter`).
#[derive(Debug, Clone, Copy)]
pub struct SlicePar<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SlicePar<'a, T> {
    type Item = &'a T;
    fn run(self) -> Vec<&'a T> {
        self.slice.iter().collect()
    }
}

/// The result of [`ParallelIterator::map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<'a, T, R, F> ParallelIterator for Map<SlicePar<'a, T>, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        par_map_slice(self.base.slice, &self.f)
    }
}

/// Chunked fork-join map over a slice: one contiguous chunk per worker,
/// results written straight into their output slots.
fn par_map_slice<'a, T, R, F>(slice: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = slice.len();
    let workers = current_num_threads().clamp(1, n.max(1));
    if workers <= 1 || n < 2 {
        return slice.iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|scope| {
        for (input, output) in slice.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (slot, item) in output.iter_mut().zip(input) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), input.len());
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [42u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![43]);
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let input: Vec<u32> = (0..100_000).collect();
        let _: Vec<u32> = input
            .par_iter()
            .map(|&x| {
                ids.lock().unwrap().insert(std::thread::current().id());
                x
            })
            .collect();
        // On a multi-core host at least two workers must have run.
        if current_num_threads() > 1 {
            assert!(ids.lock().unwrap().len() > 1);
        }
    }

    #[test]
    fn par_iter_without_map_collects_refs() {
        let input = vec![1, 2, 3];
        let refs: Vec<&i32> = input.par_iter().collect();
        assert_eq!(refs, vec![&1, &2, &3]);
    }

    #[test]
    fn par_chunks_preserves_order_and_covers_all_items() {
        let input: Vec<u64> = (0..10_001).collect();
        for chunk_size in [1usize, 7, 1000, 20_000] {
            let sums: Vec<u64> = input
                .par_chunks(chunk_size)
                .map(|c| c.iter().sum())
                .collect();
            assert_eq!(sums.len(), input.len().div_ceil(chunk_size));
            assert_eq!(sums.iter().sum::<u64>(), input.iter().sum::<u64>());
            // First chunk is exactly the prefix: order preserved.
            let first: u64 = input[..chunk_size.min(input.len())].iter().sum();
            assert_eq!(sums[0], first);
        }
        let empty: Vec<u64> = Vec::new();
        let none: Vec<u64> = empty.par_chunks(4).map(|c| c.iter().sum()).collect();
        assert!(none.is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn par_chunks_rejects_zero_size() {
        let v = [1, 2, 3];
        let _ = v.par_chunks(0);
    }
}
