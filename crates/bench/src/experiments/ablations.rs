//! Design-choice ablations beyond the paper's figures (DESIGN.md §4):
//!
//! * integrator trade-off (exact / grid / Monte-Carlo) for IUQ;
//! * U-catalog size vs pruning power for C-IPQ;
//! * filter index choice (naive scan / grid file / R-tree) for IPQ;
//! * the three C-IUQ pruning strategies, individually and combined.

use iloc_core::eval::constrained::{
    strategy1_prunes, strategy2_prunes, strategy3_prunes, PruneContext,
};
use iloc_core::expand::{minkowski_query, p_expanded_query};
use iloc_core::{CipqStrategy, ContinuousIpq, Integrator, Issuer, RangeSpec};
use iloc_datagen::{california_points, point_objects, WorkloadGen};
use iloc_geometry::Point;
use iloc_geometry::Rect;
use iloc_index::{AccessStats, GridFile, NaiveIndex, RTree, RTreeParams, RangeIndex};
use iloc_uncertainty::{LocationPdf, UniformPdf};

use crate::config::{TestBed, DEFAULT_U, DEFAULT_W};
use crate::harness::{print_table, Row, Summary};

/// Integrator ablation: same IUQ workload under the three numerical
/// backends. Returns rows labelled by backend.
pub fn integrators(bed: &TestBed) -> Vec<Row> {
    let range = RangeSpec::square(DEFAULT_W);
    let queries = bed.scale.mc_queries;
    let backends: [(&str, Integrator); 3] = [
        ("exact closed form", Integrator::Exact),
        ("grid 40x40", Integrator::Grid { per_axis: 40 }),
        ("monte-carlo 250", Integrator::MonteCarlo { samples: 250 }),
    ];
    let mut rows = Vec::new();
    for (label, integ) in backends {
        let issuers = WorkloadGen::new(1400).issuer_regions(queries, DEFAULT_U);
        let s = Summary::collect(queries, |q| {
            bed.long_beach
                .iuq_with(&Issuer::uniform(issuers[q]), range, integ)
        });
        rows.push(Row {
            x: 0.0,
            series: label.into(),
            summary: s,
        });
    }
    print_table(
        "Ablation: integrator back-ends (IUQ, Long Beach)",
        "-",
        &rows,
    );
    rows
}

/// Catalog-size ablation: C-IPQ pruning power as the issuer's
/// U-catalog stores more levels. `Qp = 0.45` sits between catalog
/// levels for the coarser catalogs, so finer catalogs give tighter
/// (smaller) conservative filters.
pub fn catalog_sizes(bed: &TestBed) -> Vec<Row> {
    let range = RangeSpec::square(DEFAULT_W);
    let qp = 0.45;
    let catalogs: [(&str, Vec<f64>); 4] = [
        ("2 levels {0,.5}", vec![0.0, 0.5]),
        ("3 levels {0,.25,.5}", vec![0.0, 0.25, 0.5]),
        ("6 levels {0,.1..,.5}", vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5]),
        (
            "11 levels {0,.05..,.5}",
            (0..=10).map(|k| k as f64 * 0.05).collect(),
        ),
    ];
    let mut rows = Vec::new();
    for (label, levels) in catalogs {
        let issuers = WorkloadGen::new(1500).issuer_regions(bed.scale.queries, DEFAULT_U);
        let s = Summary::collect(bed.scale.queries, |q| {
            let issuer = Issuer::with_pdf_and_levels(UniformPdf::new(issuers[q]), &levels);
            bed.california
                .cipq(&issuer, range, qp, CipqStrategy::PExpanded)
        });
        rows.push(Row {
            x: levels.len() as f64,
            series: label.into(),
            summary: s,
        });
    }
    print_table(
        "Ablation: issuer U-catalog size (C-IPQ at Qp=0.45, California)",
        "stored levels",
        &rows,
    );
    rows
}

/// Index ablation: the same Minkowski-sum filter answered by a naive
/// scan, a grid file, and the R-tree (plus duality refinement), on the
/// point database.
pub fn index_choice(bed: &TestBed) -> Vec<Row> {
    // Rebuild raw indexes over the same points the testbed uses.
    let pts = california_points(bed.scale.point_count, bed.scale.seed);
    let objs = point_objects(&pts);
    let entries: Vec<(Rect, u32)> = objs
        .iter()
        .enumerate()
        .map(|(k, o)| (Rect::from_point(o.loc), k as u32))
        .collect();
    let naive = NaiveIndex::new(entries.clone());
    let grid = GridFile::new(iloc_datagen::SPACE, 64, 64, entries.clone());
    let rtree = RTree::bulk_load(entries, RTreeParams::default());

    let range = RangeSpec::square(DEFAULT_W);
    let queries = bed.scale.queries;
    let mut rows = Vec::new();

    let mut run_index = |label: &str, index: &dyn RangeIndex<u32>| {
        let issuers = WorkloadGen::new(1600).issuer_regions(queries, DEFAULT_U);
        let s = Summary::collect(queries, |q| {
            let issuer = Issuer::uniform(issuers[q]);
            let start = std::time::Instant::now();
            let mut answer = iloc_core::QueryAnswer::default();
            let filter = minkowski_query(&issuer, range);
            let mut stats = AccessStats::new();
            let candidates = index.query_range(filter, &mut stats);
            answer.stats.access = stats;
            for idx in candidates {
                let o = &objs[idx as usize];
                answer.stats.prob_evals += 1;
                let pi = issuer.pdf().prob_in_rect(range.at(o.loc));
                if pi > 0.0 {
                    answer.results.push(iloc_core::Match {
                        id: o.id,
                        probability: pi,
                    });
                }
            }
            answer.stats.elapsed = start.elapsed();
            answer
        });
        rows.push(Row {
            x: 0.0,
            series: label.into(),
            summary: s,
        });
    };
    run_index("naive scan", &naive);
    run_index("grid file 64x64", &grid);
    run_index("r-tree", &rtree);
    print_table(
        "Ablation: filter index choice (IPQ, California)",
        "-",
        &rows,
    );
    rows
}

/// Gaussian-object ablation: IUQ over a truncated-Gaussian Long Beach
/// database, comparing the paper's Monte-Carlo evaluation against this
/// workspace's exact separable closed form (an extension beyond the
/// paper — see `integrate::closed::uniform_separable`).
pub fn gaussian_objects(bed: &TestBed) -> Vec<Row> {
    let engine = bed.gaussian_long_beach();
    let range = RangeSpec::square(DEFAULT_W);
    let queries = bed.scale.mc_queries;
    let backends: [(&str, Integrator); 2] = [
        ("exact separable (ours)", Integrator::Auto),
        (
            "monte-carlo 250 (paper)",
            Integrator::MonteCarlo { samples: 250 },
        ),
    ];
    let mut rows = Vec::new();
    for (label, integ) in backends {
        let issuers = WorkloadGen::new(1800).issuer_regions(queries, DEFAULT_U);
        let s = Summary::collect(queries, |q| {
            engine.iuq_with(&Issuer::uniform(issuers[q]), range, integ)
        });
        rows.push(Row {
            x: 0.0,
            series: label.into(),
            summary: s,
        });
    }
    print_table(
        "Ablation: Gaussian uncertain objects — exact closed form vs Monte-Carlo (IUQ)",
        "-",
        &rows,
    );
    rows
}

/// Pruning-power ablation: C-IUQ on uniform vs Gaussian object
/// databases at the same threshold. Gaussian pdfs concentrate mass
/// centrally, so their p-bounds are strictly tighter and Strategies
/// 1–3 (and the PTI) prune more — quantifying how much the paper's
/// machinery gains from peaky distributions.
pub fn gaussian_pruning(bed: &TestBed) -> Vec<Row> {
    let gaussian = bed.gaussian_long_beach();
    let range = RangeSpec::square(DEFAULT_W);
    let qp = 0.4;
    let queries = bed.scale.mc_queries;
    let mut rows = Vec::new();
    let mut run = |label: &str, engine: &iloc_core::UncertainEngine| {
        let issuers = WorkloadGen::new(1900).issuer_regions(queries, DEFAULT_U);
        let s = Summary::collect(queries, |q| {
            engine.ciuq(
                &Issuer::uniform(issuers[q]),
                range,
                qp,
                iloc_core::CiuqStrategy::PtiPExpanded,
            )
        });
        rows.push(Row {
            x: 0.0,
            series: label.into(),
            summary: s,
        });
    };
    run("uniform objects", &bed.long_beach);
    run("gaussian objects", &gaussian);
    print_table(
        "Ablation: pruning power on uniform vs Gaussian objects (C-IUQ at Qp=0.4)",
        "-",
        &rows,
    );
    rows
}

/// Continuous-query ablation: safe-envelope slack vs index probes for
/// a moving issuer re-evaluating an IPQ every tick (an extension
/// beyond the paper's snapshot model; see `core::continuous`).
pub fn continuous_slack(bed: &TestBed) -> Vec<Row> {
    let range = RangeSpec::square(DEFAULT_W);
    let ticks = bed.scale.queries.max(100);
    // A circular tour of the space with the default uncertainty box.
    let trajectory: Vec<Issuer> = (0..ticks)
        .map(|t| {
            let a = t as f64 / ticks as f64 * std::f64::consts::TAU;
            let c = Point::new(5_000.0 + 3_000.0 * a.cos(), 5_000.0 + 3_000.0 * a.sin());
            Issuer::uniform(iloc_geometry::Rect::centered(c, DEFAULT_U, DEFAULT_U))
        })
        .collect();
    let mut rows = Vec::new();
    for slack in [0.0, 100.0, 250.0, 500.0, 1_000.0] {
        let mut runner = ContinuousIpq::new(&bed.california, range, slack);
        let s = Summary::collect(ticks, |t| runner.step(&trajectory[t]));
        rows.push(Row {
            x: slack,
            series: format!("slack={slack} (probes={})", runner.probes),
            summary: s,
        });
    }
    print_table(
        "Ablation: continuous IPQ safe-envelope slack (moving issuer, California)",
        "envelope slack",
        &rows,
    );
    rows
}

/// Pruning-strategy ablation for C-IUQ at `Qp = 0.4`: how many
/// R-tree-filtered candidates each strategy eliminates, alone and
/// combined.
pub fn pruning_strategies(bed: &TestBed) -> Vec<Row> {
    let range = RangeSpec::square(DEFAULT_W);
    let qp = 0.4;
    let queries = bed.scale.queries;
    let variants: [(&str, [bool; 3]); 5] = [
        ("no pruning", [false, false, false]),
        ("S1 only (p-bounds)", [true, false, false]),
        ("S2 only (p-expanded)", [false, true, false]),
        ("S1+S2", [true, true, false]),
        ("S1+S2+S3 (product)", [true, true, true]),
    ];
    let mut rows = Vec::new();
    for (label, [s1, s2, s3]) in variants {
        let issuers = WorkloadGen::new(1700).issuer_regions(queries, DEFAULT_U);
        let s = Summary::collect(queries, |q| {
            let issuer = Issuer::uniform(issuers[q]);
            let start = std::time::Instant::now();
            let mut answer = iloc_core::QueryAnswer::default();
            let expanded = minkowski_query(&issuer, range);
            let (_, p_expanded) = p_expanded_query(&issuer, range, qp);
            let ctx = PruneContext {
                qp,
                expanded,
                p_expanded,
                issuer: &issuer,
                range,
            };
            let candidates = bed
                .long_beach
                .raw_candidates(expanded, &mut answer.stats.access);
            for idx in candidates {
                let obj = &bed.long_beach.objects()[idx as usize];
                if s1 && strategy1_prunes(obj, &ctx) {
                    answer.stats.pruned_s1 += 1;
                    continue;
                }
                if s2 && strategy2_prunes(obj, &ctx) {
                    answer.stats.pruned_s2 += 1;
                    continue;
                }
                if s3 && strategy3_prunes(obj, &ctx) {
                    answer.stats.pruned_s3 += 1;
                    continue;
                }
                answer.stats.prob_evals += 1;
                let mut rng = rand::SeedableRng::seed_from_u64(0);
                let mut qstats = iloc_core::QueryStats::new();
                let pi = Integrator::Exact.object_probability(
                    issuer.pdf(),
                    range,
                    obj.pdf(),
                    expanded,
                    &mut rng,
                    &mut qstats,
                );
                if pi >= qp && pi > 0.0 {
                    answer.results.push(iloc_core::Match {
                        id: obj.id,
                        probability: pi,
                    });
                }
            }
            answer.stats.elapsed = start.elapsed();
            answer
        });
        rows.push(Row {
            x: 0.0,
            series: label.into(),
            summary: s,
        });
    }
    print_table(
        "Ablation: C-IUQ pruning strategies at Qp=0.4 (Long Beach)",
        "-",
        &rows,
    );
    rows
}
