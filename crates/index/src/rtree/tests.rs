//! R-tree unit tests: invariants and oracle equivalence.

use iloc_geometry::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::naive::NaiveIndex;
use crate::stats::AccessStats;
use crate::traits::RangeIndex;

use super::{RTree, RTreeParams};

fn random_rects(n: usize, seed: u64) -> Vec<(Rect, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|k| {
            let x = rng.gen_range(0.0..1000.0);
            let y = rng.gen_range(0.0..1000.0);
            let w = rng.gen_range(0.0..20.0);
            let h = rng.gen_range(0.0..20.0);
            (Rect::from_coords(x, y, x + w, y + h), k)
        })
        .collect()
}

fn sorted(mut v: Vec<usize>) -> Vec<usize> {
    v.sort_unstable();
    v
}

#[test]
fn empty_tree_queries_cleanly() {
    let tree: RTree<usize> = RTree::default();
    assert!(tree.is_empty());
    assert!(tree.mbr().is_empty());
    let mut stats = AccessStats::new();
    assert!(tree
        .query_range(Rect::from_coords(0.0, 0.0, 10.0, 10.0), &mut stats)
        .is_empty());
    assert_eq!(stats.nodes_visited, 0);
}

#[test]
fn single_insert_and_hit() {
    let mut tree = RTree::default();
    tree.insert(Rect::from_point(Point::new(5.0, 5.0)), 42usize);
    assert_eq!(tree.len(), 1);
    let mut stats = AccessStats::new();
    let hits = tree.query_range(Rect::from_coords(0.0, 0.0, 10.0, 10.0), &mut stats);
    assert_eq!(hits, vec![42]);
    assert_eq!(stats.nodes_visited, 1);
    let miss = tree.query_range(Rect::from_coords(20.0, 20.0, 30.0, 30.0), &mut stats);
    assert!(miss.is_empty());
}

#[test]
fn inserts_maintain_invariants_and_match_oracle() {
    let params = RTreeParams::new(8, 3);
    let items = random_rects(500, 1);
    let mut tree = RTree::new(params);
    let mut oracle = NaiveIndex::default();
    for &(r, k) in &items {
        tree.insert(r, k);
        oracle.insert(r, k);
    }
    assert_eq!(tree.check_invariants(), 500);
    assert!(tree.height() > 1);

    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..100 {
        let x = rng.gen_range(-50.0..1050.0);
        let y = rng.gen_range(-50.0..1050.0);
        let q = Rect::from_coords(
            x,
            y,
            x + rng.gen_range(0.0..200.0),
            y + rng.gen_range(0.0..200.0),
        );
        let mut s1 = AccessStats::new();
        let mut s2 = AccessStats::new();
        assert_eq!(
            sorted(tree.query_range(q, &mut s1)),
            sorted(oracle.query_range(q, &mut s2)),
            "query {q:?}"
        );
        // The tree should test no more items than the scan.
        assert!(s1.items_tested <= s2.items_tested);
    }
}

#[test]
fn bulk_load_matches_oracle() {
    let items = random_rects(2000, 3);
    let tree = RTree::bulk_load(items.clone(), RTreeParams::default());
    let oracle = NaiveIndex::new(items);
    assert_eq!(tree.len(), 2000);
    tree.check_invariants_bulk();

    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..100 {
        let x = rng.gen_range(0.0..1000.0);
        let y = rng.gen_range(0.0..1000.0);
        let q = Rect::centered(Point::new(x, y), 80.0, 80.0);
        let mut s1 = AccessStats::new();
        let mut s2 = AccessStats::new();
        assert_eq!(
            sorted(tree.query_range(q, &mut s1)),
            sorted(oracle.query_range(q, &mut s2))
        );
    }
}

#[test]
fn bulk_load_is_shallow() {
    // 2000 items at fanout 64: ⌈2000/64⌉ = 32 leaves → height 2.
    let tree = RTree::bulk_load(random_rects(2000, 5), RTreeParams::default());
    assert_eq!(tree.height(), 2);
    // Bulk loading a handful of items yields a single leaf.
    let small = RTree::bulk_load(random_rects(10, 6), RTreeParams::default());
    assert_eq!(small.height(), 1);
}

#[test]
fn bulk_load_empty() {
    let tree: RTree<usize> = RTree::bulk_load(Vec::new(), RTreeParams::default());
    assert!(tree.is_empty());
    let mut stats = AccessStats::new();
    assert!(tree
        .query_range(Rect::from_coords(0.0, 0.0, 1.0, 1.0), &mut stats)
        .is_empty());
}

#[test]
fn duplicate_extents_are_kept() {
    let mut tree = RTree::new(RTreeParams::new(4, 2));
    let r = Rect::from_point(Point::new(1.0, 1.0));
    for k in 0..10usize {
        tree.insert(r, k);
    }
    let mut stats = AccessStats::new();
    let hits = tree.query_range(r, &mut stats);
    assert_eq!(sorted(hits), (0..10).collect::<Vec<_>>());
    tree.check_invariants();
}

#[test]
fn query_visits_fraction_of_nodes_on_clustered_data() {
    // A small query over bulk-loaded clustered data must not touch most
    // leaves — this is the whole point of the index.
    let items = random_rects(5000, 7);
    let tree = RTree::bulk_load(items, RTreeParams::default());
    let mut stats = AccessStats::new();
    let _ = tree.query_range(
        Rect::centered(Point::new(500.0, 500.0), 20.0, 20.0),
        &mut stats,
    );
    assert!(
        (stats.nodes_visited as usize) < tree.node_count() / 4,
        "visited {} of {} nodes",
        stats.nodes_visited,
        tree.node_count()
    );
}

#[test]
#[should_panic(expected = "min_entries")]
fn params_reject_bad_fill() {
    let _ = RTreeParams::new(8, 5);
}

#[test]
fn rstar_split_policy_matches_oracle_and_improves_io() {
    use super::SplitPolicy;
    let items = random_rects(3_000, 21);
    let mut quad = RTree::new(RTreeParams::new(16, 6));
    let mut rstar = RTree::new(RTreeParams::new(16, 6).with_split(SplitPolicy::RStar));
    let oracle = NaiveIndex::new(items.clone());
    for &(r, k) in &items {
        quad.insert(r, k);
        rstar.insert(r, k);
    }
    quad.check_invariants();
    rstar.check_invariants();

    let mut rng = StdRng::seed_from_u64(22);
    let mut quad_io = 0u64;
    let mut rstar_io = 0u64;
    for _ in 0..200 {
        let x = rng.gen_range(0.0..1000.0);
        let y = rng.gen_range(0.0..1000.0);
        let q = Rect::centered(Point::new(x, y), 60.0, 60.0);
        let mut s_q = AccessStats::new();
        let mut s_r = AccessStats::new();
        let mut s_o = AccessStats::new();
        let want = sorted(oracle.query_range(q, &mut s_o));
        assert_eq!(sorted(quad.query_range(q, &mut s_q)), want);
        assert_eq!(sorted(rstar.query_range(q, &mut s_r)), want);
        quad_io += s_q.nodes_visited;
        rstar_io += s_r.nodes_visited;
    }
    // The R* split should not do meaningfully worse on I/O than the
    // quadratic split on clustered data (it usually does better).
    assert!(
        (rstar_io as f64) <= 1.1 * quad_io as f64,
        "R* io {rstar_io} vs quadratic io {quad_io}"
    );
}

impl<T: Copy> RTree<T> {
    /// Bulk-loaded trees may have one under-filled trailing node per
    /// level, so the dynamic fill-factor check does not apply; verify
    /// the remaining invariants (MBR caching, uniform leaf depth,
    /// reachability).
    fn check_invariants_bulk(&self) {
        use super::NodeKind;
        fn walk<T: Copy>(
            tree: &RTree<T>,
            idx: usize,
            depth: usize,
            leaf_depth: &mut Option<usize>,
        ) -> usize {
            match &tree.nodes[idx].kind {
                NodeKind::Leaf(entries) => {
                    match leaf_depth {
                        None => *leaf_depth = Some(depth),
                        Some(d) => assert_eq!(*d, depth),
                    }
                    entries.len()
                }
                NodeKind::Internal(children) => children
                    .iter()
                    .map(|&(mbr, child)| {
                        assert_eq!(mbr, tree.nodes[child].mbr());
                        walk(tree, child, depth + 1, leaf_depth)
                    })
                    .sum(),
            }
        }
        let mut leaf_depth = None;
        let n = walk(self, self.root, 0, &mut leaf_depth);
        assert_eq!(n, self.len());
    }
}
