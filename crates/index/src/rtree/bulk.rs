//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! Leonidas et al.'s STR packing: sort by x-centre, cut into vertical
//! slices of `⌈√P⌉` node-loads each, sort each slice by y-centre and cut
//! into full nodes. Repeat one level up on the node MBRs until a single
//! root remains. Produces near-100 % fill and well-clustered pages —
//! the right way to load the 53 K / 62 K object experiment datasets.

use iloc_geometry::Rect;

use super::node::Node;
use super::split::entries_mbr;
use super::{RTree, RTreeParams};

/// Builds an [`RTree`] by STR packing.
pub fn str_bulk_load<T: Copy>(items: Vec<(Rect, T)>, params: RTreeParams) -> RTree<T> {
    for (r, _) in &items {
        assert!(r.is_finite(), "extent must be finite");
    }
    let len = items.len();
    if len == 0 {
        return RTree::new(params);
    }

    let mut tree = RTree {
        params,
        nodes: Vec::new(),
        root: 0,
        len,
        free: Vec::new(),
    };

    // Pack the leaf level.
    let mut level: Vec<(Rect, usize)> = pack_level(items, params.max_entries)
        .into_iter()
        .map(|entries| {
            let mbr = entries_mbr(&entries);
            tree.nodes.push(Node::new_leaf_with(entries));
            (mbr, tree.nodes.len() - 1)
        })
        .collect();

    // Pack internal levels until a single root remains.
    while level.len() > 1 {
        level = pack_level(level, params.max_entries)
            .into_iter()
            .map(|children| {
                let mbr = entries_mbr(&children);
                tree.nodes.push(Node::new_internal(children));
                (mbr, tree.nodes.len() - 1)
            })
            .collect();
    }
    tree.root = level[0].1;
    tree
}

/// Tiles one level's entries into groups of at most `cap`, STR-style.
fn pack_level<E: Copy>(mut entries: Vec<(Rect, E)>, cap: usize) -> Vec<Vec<(Rect, E)>> {
    let n = entries.len();
    if n <= cap {
        return vec![entries];
    }
    let node_count = n.div_ceil(cap);
    let slice_count = (node_count as f64).sqrt().ceil() as usize;
    let slice_size = slice_count.max(1) * cap;

    entries.sort_by(|a, b| {
        a.0.center()
            .x
            .partial_cmp(&b.0.center().x)
            .expect("finite coordinates")
    });

    let mut groups = Vec::with_capacity(node_count);
    for slice in entries.chunks_mut(slice_size) {
        slice.sort_by(|a, b| {
            a.0.center()
                .y
                .partial_cmp(&b.0.center().y)
                .expect("finite coordinates")
        });
        for chunk in slice.chunks(cap) {
            groups.push(chunk.to_vec());
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_level_sizes() {
        let entries: Vec<(Rect, usize)> = (0..100)
            .map(|k| {
                let x = (k % 10) as f64;
                let y = (k / 10) as f64;
                (Rect::from_coords(x, y, x, y), k)
            })
            .collect();
        let groups = pack_level(entries, 16);
        assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), 100);
        assert!(groups.iter().all(|g| g.len() <= 16));
        // ⌈100/16⌉ = 7 nodes.
        assert_eq!(groups.len(), 7);
    }

    #[test]
    fn pack_single_group_when_under_cap() {
        let entries: Vec<(Rect, usize)> = (0..5)
            .map(|k| (Rect::from_coords(k as f64, 0.0, k as f64, 0.0), k))
            .collect();
        let groups = pack_level(entries, 16);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 5);
    }
}
