//! Axis-parallel rectangles.
//!
//! Every spatial region in the paper — uncertainty regions `Ui`, range
//! queries `R(x, y)`, Minkowski sums, `p`-expanded queries, R-tree MBRs —
//! is an axis-parallel rectangle.

use crate::interval::Interval;
use crate::point::Point;

/// A closed axis-parallel rectangle `[min.x, max.x] × [min.y, max.y]`.
///
/// A rectangle with an empty side interval is *empty*; [`Rect::EMPTY`]
/// is the canonical empty value. Degenerate rectangles (zero width
/// and/or height) are valid: a point object is a degenerate rectangle,
/// which lets point and uncertain objects share index machinery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Canonical empty rectangle.
    pub const EMPTY: Rect = Rect {
        min: Point::new(f64::INFINITY, f64::INFINITY),
        max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
    };

    /// Creates a rectangle from opposite corners.
    #[inline]
    pub const fn new(min: Point, max: Point) -> Self {
        Rect { min, max }
    }

    /// Creates `[x0, x1] × [y0, y1]`.
    #[inline]
    pub const fn from_coords(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    /// Rectangle centred at `c` with half-width `w` and half-height `h`.
    ///
    /// This is the paper's range query `R(x, y)` with `c = (x, y)`.
    #[inline]
    pub fn centered(c: Point, w: f64, h: f64) -> Self {
        debug_assert!(w >= 0.0 && h >= 0.0, "half-extents must be non-negative");
        Rect::from_coords(c.x - w, c.y - h, c.x + w, c.y + h)
    }

    /// Degenerate rectangle covering exactly one point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Rect::new(p, p)
    }

    /// Rectangle from the product of two intervals.
    #[inline]
    pub fn from_intervals(x: Interval, y: Interval) -> Self {
        if x.is_empty() || y.is_empty() {
            return Rect::EMPTY;
        }
        Rect::from_coords(x.lo, y.lo, x.hi, y.hi)
    }

    /// Projection onto the x-axis.
    #[inline]
    pub fn x_interval(self) -> Interval {
        Interval::new(self.min.x, self.max.x)
    }

    /// Projection onto the y-axis.
    #[inline]
    pub fn y_interval(self) -> Interval {
        Interval::new(self.min.y, self.max.y)
    }

    /// `true` when the rectangle contains no points.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.x_interval().is_empty() || self.y_interval().is_empty()
    }

    /// Width (0 for empty rectangles).
    #[inline]
    pub fn width(self) -> f64 {
        self.x_interval().length()
    }

    /// Height (0 for empty rectangles).
    #[inline]
    pub fn height(self) -> f64 {
        self.y_interval().length()
    }

    /// Area (0 for empty or degenerate rectangles).
    #[inline]
    pub fn area(self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() * self.height()
        }
    }

    /// Half of the perimeter; the classic R-tree split heuristic metric.
    #[inline]
    pub fn half_perimeter(self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() + self.height()
        }
    }

    /// Centre point.
    #[inline]
    pub fn center(self) -> Point {
        Point::new(self.x_interval().center(), self.y_interval().center())
    }

    /// `true` when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains_point(self, p: Point) -> bool {
        self.x_interval().contains(p.x) && self.y_interval().contains(p.y)
    }

    /// `true` when `other ⊆ self`.
    #[inline]
    pub fn contains_rect(self, other: Rect) -> bool {
        other.is_empty()
            || (self.x_interval().contains_interval(other.x_interval())
                && self.y_interval().contains_interval(other.y_interval()))
    }

    /// `true` when the two rectangles share at least one point
    /// (touching boundaries count as overlap, matching the paper's
    /// closed-region semantics).
    #[inline]
    pub fn overlaps(self, other: Rect) -> bool {
        self.x_interval().overlaps(other.x_interval())
            && self.y_interval().overlaps(other.y_interval())
    }

    /// Intersection `self ∩ other` (possibly empty).
    #[inline]
    pub fn intersect(self, other: Rect) -> Rect {
        Rect::from_intervals(
            self.x_interval().intersect(other.x_interval()),
            self.y_interval().intersect(other.y_interval()),
        )
    }

    /// Area of the intersection; the numerator of the paper's Eq. 6.
    #[inline]
    pub fn intersection_area(self, other: Rect) -> f64 {
        self.intersect(other).area()
    }

    /// Smallest rectangle containing both operands (MBR union).
    #[inline]
    pub fn hull(self, other: Rect) -> Rect {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        Rect::from_intervals(
            self.x_interval().hull(other.x_interval()),
            self.y_interval().hull(other.y_interval()),
        )
    }

    /// Expands every side outward by `(dx, dy)` (shrinks when negative).
    #[inline]
    pub fn expand(self, dx: f64, dy: f64) -> Rect {
        if self.is_empty() {
            return Rect::EMPTY;
        }
        Rect::from_intervals(self.x_interval().expand(dx), self.y_interval().expand(dy))
    }

    /// Translates the rectangle by `(dx, dy)`.
    #[inline]
    pub fn translate(self, dx: f64, dy: f64) -> Rect {
        if self.is_empty() {
            return Rect::EMPTY;
        }
        Rect::new(self.min.translate(dx, dy), self.max.translate(dx, dy))
    }

    /// Increase in half-perimeter if `other` were merged into `self`;
    /// the R-tree `ChooseLeaf` metric.
    #[inline]
    pub fn enlargement(self, other: Rect) -> f64 {
        self.hull(other).half_perimeter() - self.half_perimeter()
    }

    /// Minimum distance from `p` to the rectangle (0 when inside).
    #[inline]
    pub fn min_distance(self, p: Point) -> f64 {
        if self.is_empty() {
            return f64::INFINITY;
        }
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx.hypot(dy)
    }

    /// Maximum distance from `p` to any point of the rectangle (the
    /// `MAXDIST` bound of NN search; attained at a corner).
    #[inline]
    pub fn max_distance(self, p: Point) -> f64 {
        if self.is_empty() {
            return f64::INFINITY;
        }
        let dx = (p.x - self.min.x).abs().max((p.x - self.max.x).abs());
        let dy = (p.y - self.min.y).abs().max((p.y - self.max.y).abs());
        dx.hypot(dy)
    }

    /// Returns `true` when all four coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.min.is_finite() && self.max.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn centered_matches_paper_range_query() {
        // R centred at (10, 20) with half-width 2, half-height 3.
        let q = Rect::centered(Point::new(10.0, 20.0), 2.0, 3.0);
        assert_eq!(q, r(8.0, 17.0, 12.0, 23.0));
        assert_eq!(q.center(), Point::new(10.0, 20.0));
    }

    #[test]
    fn area_and_perimeter() {
        let a = r(0.0, 0.0, 4.0, 3.0);
        assert_eq!(a.area(), 12.0);
        assert_eq!(a.half_perimeter(), 7.0);
        assert_eq!(Rect::EMPTY.area(), 0.0);
        assert_eq!(Rect::from_point(Point::new(1.0, 1.0)).area(), 0.0);
    }

    #[test]
    fn containment() {
        let outer = r(0.0, 0.0, 10.0, 10.0);
        assert!(outer.contains_point(Point::new(0.0, 10.0)));
        assert!(!outer.contains_point(Point::new(10.1, 5.0)));
        assert!(outer.contains_rect(r(1.0, 1.0, 9.0, 9.0)));
        assert!(outer.contains_rect(outer));
        assert!(outer.contains_rect(Rect::EMPTY));
        assert!(!outer.contains_rect(r(-1.0, 0.0, 5.0, 5.0)));
    }

    #[test]
    fn intersection_area_overlapping() {
        let a = r(0.0, 0.0, 4.0, 4.0);
        let b = r(2.0, 2.0, 6.0, 6.0);
        assert!(a.overlaps(b));
        assert_eq!(a.intersect(b), r(2.0, 2.0, 4.0, 4.0));
        assert_eq!(a.intersection_area(b), 4.0);
    }

    #[test]
    fn intersection_disjoint_is_empty() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, 2.0, 3.0, 3.0);
        assert!(!a.overlaps(b));
        assert!(a.intersect(b).is_empty());
        assert_eq!(a.intersection_area(b), 0.0);
    }

    #[test]
    fn touching_edges_overlap_with_zero_area() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(1.0, 0.0, 2.0, 1.0);
        assert!(a.overlaps(b));
        assert_eq!(a.intersection_area(b), 0.0);
    }

    #[test]
    fn hull_is_mbr() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(3.0, 4.0, 5.0, 6.0);
        assert_eq!(a.hull(b), r(0.0, 0.0, 5.0, 6.0));
        assert_eq!(Rect::EMPTY.hull(a), a);
    }

    #[test]
    fn expand_shrink_translate() {
        let a = r(2.0, 2.0, 4.0, 6.0);
        assert_eq!(a.expand(1.0, 2.0), r(1.0, 0.0, 5.0, 8.0));
        assert!(a.expand(-2.0, 0.0).is_empty());
        assert_eq!(a.translate(1.0, -1.0), r(3.0, 1.0, 5.0, 5.0));
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        assert_eq!(a.enlargement(r(1.0, 1.0, 2.0, 2.0)), 0.0);
        assert!(a.enlargement(r(0.0, 0.0, 12.0, 10.0)) > 0.0);
    }

    #[test]
    fn min_distance_cases() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.min_distance(Point::new(1.0, 1.0)), 0.0); // inside
        assert_eq!(a.min_distance(Point::new(5.0, 1.0)), 3.0); // right of
        assert_eq!(a.min_distance(Point::new(5.0, 6.0)), 5.0); // corner 3-4-5
    }

    #[test]
    fn max_distance_cases() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        // Centre: farthest corner is √2 away.
        assert!((a.max_distance(Point::new(1.0, 1.0)) - 2f64.sqrt()).abs() < 1e-12);
        // Outside on the right: farthest is the opposite corner.
        assert_eq!(a.max_distance(Point::new(5.0, 2.0)), (25.0f64 + 4.0).sqrt());
        // min_distance ≤ max_distance always.
        for p in [
            Point::new(-3.0, 7.0),
            Point::new(1.0, 1.0),
            Point::new(9.0, -2.0),
        ] {
            assert!(a.min_distance(p) <= a.max_distance(p));
        }
        assert_eq!(Rect::EMPTY.max_distance(Point::ORIGIN), f64::INFINITY);
    }
}
