//! A minimal readiness-notification wrapper — the std-only substrate
//! of the event-driven connection core.
//!
//! The build environment has no crates.io access (no `mio`, no
//! `libc`), but Rust's std links the platform C library, so the
//! handful of symbols this module needs (`epoll_*` on Linux, `poll`
//! elsewhere, `setsockopt`, `setrlimit`) can be declared `extern "C"`
//! and resolved at link time — the same technique the `iloc-server`
//! binary already uses for `signal(2)`. This is the **only** module in
//! the crate allowed to use `unsafe`; everything it exports is a safe
//! API over raw fds that the event loop owns for the lifetime of the
//! registration.
//!
//! Two backends behind one [`Poller`] shape:
//!
//! * **Linux**: `epoll` (level-triggered). One `epoll_wait` returns
//!   only the *ready* connections, so a loop owning 10 000 mostly-idle
//!   subscribers pays O(ready), not O(registered), per wake.
//! * **Other Unix**: `poll(2)` over the registration list — O(n) per
//!   wake, fine for development-scale runs on macOS/BSD.
//!
//! The poller never allocates in [`Poller::wait`] once its internal
//! event buffer has grown to the high-water mark, keeping the serving
//! hot path on the crate's zero-allocation budget.

#![allow(unsafe_code)]

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::raw::{c_int, c_void};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

#[cfg(target_os = "linux")]
use std::os::unix::io::FromRawFd;

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read + write interest — a connection with buffered output.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (includes peer hang-up — a read will observe EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hang-up condition; the connection should be read to
    /// EOF / closed.
    pub hangup: bool,
}

// ---------------------------------------------------------------------------
// Shared libc declarations
// ---------------------------------------------------------------------------

extern "C" {
    fn close(fd: c_int) -> c_int;
    fn setsockopt(fd: c_int, level: c_int, name: c_int, value: *const c_void, len: u32) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
}

#[repr(C)]
struct Rlimit {
    cur: u64,
    max: u64,
}

#[cfg(target_os = "linux")]
const RLIMIT_NOFILE: c_int = 7;
#[cfg(not(target_os = "linux"))]
const RLIMIT_NOFILE: c_int = 8;

#[cfg(target_os = "linux")]
const SOL_SOCKET: c_int = 1;
#[cfg(not(target_os = "linux"))]
const SOL_SOCKET: c_int = 0xffff;

#[cfg(target_os = "linux")]
const SO_SNDBUF: c_int = 7;
#[cfg(not(target_os = "linux"))]
const SO_SNDBUF: c_int = 0x1001;

#[cfg(target_os = "linux")]
const SO_RCVBUF: c_int = 8;
#[cfg(not(target_os = "linux"))]
const SO_RCVBUF: c_int = 0x1002;

/// Raises this process's open-file soft limit toward `want` (capped at
/// the hard limit); returns the resulting soft limit. A C10K run needs
/// one fd per connection on each side of the socket, which outgrows
/// the common 1024-fd default — callers clamp their connection counts
/// to what this returns.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut lim = Rlimit { cur: 0, max: 0 };
    // SAFETY: plain C struct out-parameter, checked return.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    let target = want.min(lim.max);
    if target > lim.cur {
        let next = Rlimit {
            cur: target,
            max: lim.max,
        };
        // SAFETY: plain C struct in-parameter, checked return.
        if unsafe { setrlimit(RLIMIT_NOFILE, &next) } == 0 {
            lim.cur = target;
        }
    }
    Ok(lim.cur)
}

/// Shrinks a stream's kernel send buffer (`SO_SNDBUF`) — the
/// slow-reader integration tests use a tiny buffer to force
/// backpressure onto the server's per-connection write queue within a
/// handful of frames.
pub fn set_send_buffer(stream: &TcpStream, bytes: usize) -> io::Result<()> {
    let v: c_int = bytes.min(c_int::MAX as usize) as c_int;
    // SAFETY: value points at a live c_int of the advertised length;
    // the fd is borrowed from a live TcpStream.
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_SNDBUF,
            (&v as *const c_int).cast(),
            std::mem::size_of::<c_int>() as u32,
        )
    };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Shrinks a stream's kernel receive buffer (`SO_RCVBUF`) — the
/// slow-reader tests pin a *client* socket small so a stalled reader
/// exhausts the kernel's slack quickly and the backpressure reaches
/// the server's per-connection push queue.
pub fn set_recv_buffer(stream: &TcpStream, bytes: usize) -> io::Result<()> {
    let v: c_int = bytes.min(c_int::MAX as usize) as c_int;
    // SAFETY: value points at a live c_int of the advertised length;
    // the fd is borrowed from a live TcpStream.
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            (&v as *const c_int).cast(),
            std::mem::size_of::<c_int>() as u32,
        )
    };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Non-blocking outbound connect
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
const SO_ERROR: c_int = 4;
#[cfg(not(target_os = "linux"))]
const SO_ERROR: c_int = 0x1007;

extern "C" {
    fn getsockopt(fd: c_int, level: c_int, name: c_int, value: *mut c_void, len: *mut u32)
        -> c_int;
}

/// An outbound TCP connection being established without blocking —
/// how the cluster router dials all of its upstream nodes in parallel
/// instead of paying one connect round trip after another.
///
/// When [`PendingConnect::is_pending`] is true, register the stream
/// **writable** with a [`Poller`]; once it wakes writable (or with an
/// error/hangup), call [`PendingConnect::finish`] to harvest the
/// result. When false the connect completed inline (common on
/// loopback) and `finish` can be called immediately.
#[derive(Debug)]
pub struct PendingConnect {
    stream: TcpStream,
    pending: bool,
}

impl PendingConnect {
    /// The in-flight stream, for poller registration.
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Whether the connect is still in flight (`EINPROGRESS`).
    pub fn is_pending(&self) -> bool {
        self.pending
    }

    /// Completes the connect: reads the socket's pending error
    /// (`SO_ERROR`, the only reliable verdict for an asynchronous
    /// connect), and on success returns the stream switched back to
    /// blocking mode.
    pub fn finish(self) -> io::Result<TcpStream> {
        let mut err: c_int = 0;
        let mut len = std::mem::size_of::<c_int>() as u32;
        // SAFETY: out-parameters point at a live c_int and its length;
        // the fd is owned by a live TcpStream.
        let rc = unsafe {
            getsockopt(
                self.stream.as_raw_fd(),
                SOL_SOCKET,
                SO_ERROR,
                (&mut err as *mut c_int).cast(),
                &mut len,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        if err != 0 {
            return Err(io::Error::from_raw_os_error(err));
        }
        self.stream.set_nonblocking(false)?;
        Ok(self.stream)
    }
}

/// Starts a TCP connect to `addr` without blocking (Linux: a raw
/// `SOCK_NONBLOCK` socket whose `connect(2)` returns `EINPROGRESS`;
/// other Unix: a plain blocking connect wrapped in the same shape, so
/// callers stay portable). See [`PendingConnect`] for the completion
/// protocol.
#[cfg(target_os = "linux")]
pub fn connect_nonblocking(addr: SocketAddr) -> io::Result<PendingConnect> {
    const AF_INET: c_int = 2;
    const AF_INET6: c_int = 10;
    const SOCK_STREAM: c_int = 1;
    const SOCK_NONBLOCK: c_int = 0o4000;
    const SOCK_CLOEXEC: c_int = 0o2000000;
    const EINPROGRESS: i32 = 115;

    extern "C" {
        fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        fn connect(fd: c_int, addr: *const c_void, len: u32) -> c_int;
    }

    /// Linux `struct sockaddr_in`.
    #[repr(C)]
    struct SockAddrIn {
        family: u16,
        port_be: u16,
        addr_be: u32,
        zero: [u8; 8],
    }

    /// Linux `struct sockaddr_in6`.
    #[repr(C)]
    struct SockAddrIn6 {
        family: u16,
        port_be: u16,
        flowinfo: u32,
        addr: [u8; 16],
        scope_id: u32,
    }

    let domain = match addr {
        SocketAddr::V4(_) => AF_INET,
        SocketAddr::V6(_) => AF_INET6,
    };
    // SAFETY: plain syscall; the returned fd is checked before use.
    let fd = unsafe { socket(domain, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: fd is a fresh, owned socket; TcpStream now owns it (and
    // closes it on every early-return path below).
    let stream = unsafe { TcpStream::from_raw_fd(fd) };

    let rc = match addr {
        SocketAddr::V4(v4) => {
            let sa = SockAddrIn {
                family: AF_INET as u16,
                port_be: v4.port().to_be(),
                addr_be: u32::from(*v4.ip()).to_be(),
                zero: [0; 8],
            };
            // SAFETY: sa is a live, correctly-sized sockaddr_in.
            unsafe {
                connect(
                    fd,
                    (&sa as *const SockAddrIn).cast(),
                    std::mem::size_of::<SockAddrIn>() as u32,
                )
            }
        }
        SocketAddr::V6(v6) => {
            let sa = SockAddrIn6 {
                family: AF_INET6 as u16,
                port_be: v6.port().to_be(),
                flowinfo: v6.flowinfo(),
                addr: v6.ip().octets(),
                scope_id: v6.scope_id(),
            };
            // SAFETY: sa is a live, correctly-sized sockaddr_in6.
            unsafe {
                connect(
                    fd,
                    (&sa as *const SockAddrIn6).cast(),
                    std::mem::size_of::<SockAddrIn6>() as u32,
                )
            }
        }
    };
    if rc == 0 {
        return Ok(PendingConnect {
            stream,
            pending: false,
        });
    }
    let err = io::Error::last_os_error();
    if err.raw_os_error() == Some(EINPROGRESS) {
        return Ok(PendingConnect {
            stream,
            pending: true,
        });
    }
    Err(err)
}

/// Starts a TCP connect to `addr` without blocking — portable
/// fallback: a plain blocking connect wrapped in the
/// [`PendingConnect`] shape.
#[cfg(not(target_os = "linux"))]
pub fn connect_nonblocking(addr: SocketAddr) -> io::Result<PendingConnect> {
    let stream = TcpStream::connect(addr)?;
    Ok(PendingConnect {
        stream,
        pending: false,
    })
}

// ---------------------------------------------------------------------------
// Linux backend: epoll
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod backend {
    use super::*;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// The kernel's `struct epoll_event`; packed on x86-64 (the kernel
    /// ABI has no padding there).
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(epfd: c_int, events: *mut EpollEvent, max: c_int, timeout_ms: c_int)
            -> c_int;
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    /// Readiness poller over one epoll instance.
    #[derive(Debug)]
    pub struct Poller {
        epfd: c_int,
        /// Reused kernel-event buffer; grows to the high-water mark of
        /// simultaneously ready fds, then never again.
        buf: Vec<u64>,
        cap: usize,
    }

    // 16 bytes per event slot is enough on every layout (the packed
    // x86-64 event is 12 bytes); the buffer is a u64 vec so it is
    // always sufficiently aligned for the unpacked layout too.
    const SLOT_WORDS: usize = 2;

    impl Poller {
        /// Creates the epoll instance.
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall, checked return.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd,
                buf: Vec::new(),
                cap: 256,
            })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            // SAFETY: `ev` is a live, correctly-laid-out epoll_event;
            // the caller guarantees `fd` is open for the registration
            // lifetime (the event loop owns both).
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Starts watching `fd` under `token`.
        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Changes an existing registration's interest set.
        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Stops watching `fd` (must still be open).
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            // SAFETY: as in `ctl`; DEL ignores the event argument but
            // pre-2.6.9 kernels demanded a non-null pointer.
            if unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) } != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Waits for readiness, appending into `out` (cleared first).
        /// `None` blocks until an event; a spurious `EINTR` wake
        /// returns an empty set, like a timeout.
        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            self.buf.resize(self.cap * SLOT_WORDS, 0);
            let timeout_ms: c_int = match timeout {
                None => -1,
                Some(t) => t.as_millis().min(i32::MAX as u128) as c_int,
            };
            // SAFETY: `buf` provides `cap` correctly-aligned event
            // slots; the kernel writes at most `cap` of them.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr().cast::<EpollEvent>(),
                    self.cap as c_int,
                    timeout_ms,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                return if e.kind() == io::ErrorKind::Interrupted {
                    Ok(())
                } else {
                    Err(e)
                };
            }
            let n = n as usize;
            for k in 0..n {
                // SAFETY: slot `k < n <= cap` was just written by the
                // kernel; read_unaligned tolerates the packed layout.
                let ev: EpollEvent = unsafe {
                    std::ptr::read_unaligned(self.buf.as_ptr().cast::<EpollEvent>().add(k))
                };
                out.push(Event {
                    token: ev.data,
                    readable: ev.events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: ev.events & EPOLLOUT != 0,
                    hangup: ev.events & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            if n == self.cap {
                // Full buffer: more may be pending; serve bigger
                // batches next time.
                self.cap *= 2;
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: closing the fd we created; errors are moot.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Portable Unix backend: poll(2)
// ---------------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
mod backend {
    use super::*;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: c_int) -> c_int;
    }

    fn mask(interest: Interest) -> i16 {
        let mut m = 0;
        if interest.readable {
            m |= POLLIN;
        }
        if interest.writable {
            m |= POLLOUT;
        }
        m
    }

    /// Readiness poller over a registration list scanned by `poll(2)`.
    #[derive(Debug)]
    pub struct Poller {
        fds: Vec<PollFd>,
        tokens: Vec<u64>,
    }

    impl Poller {
        /// Creates an empty poller.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                fds: Vec::new(),
                tokens: Vec::new(),
            })
        }

        /// Starts watching `fd` under `token`.
        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.fds.push(PollFd {
                fd,
                events: mask(interest),
                revents: 0,
            });
            self.tokens.push(token);
            Ok(())
        }

        /// Changes an existing registration's interest set.
        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            for (slot, t) in self.fds.iter_mut().zip(&mut self.tokens) {
                if slot.fd == fd {
                    slot.events = mask(interest);
                    *t = token;
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        /// Stops watching `fd`.
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            if let Some(at) = self.fds.iter().position(|s| s.fd == fd) {
                self.fds.swap_remove(at);
                self.tokens.swap_remove(at);
                return Ok(());
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        /// Waits for readiness, appending into `out` (cleared first).
        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            let timeout_ms: c_int = match timeout {
                None => -1,
                Some(t) => t.as_millis().min(i32::MAX as u128) as c_int,
            };
            // SAFETY: `fds` is a live, contiguous pollfd array.
            let n = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as u64, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                return if e.kind() == io::ErrorKind::Interrupted {
                    Ok(())
                } else {
                    Err(e)
                };
            }
            for (slot, &token) in self.fds.iter().zip(&self.tokens) {
                if slot.revents != 0 {
                    out.push(Event {
                        token,
                        readable: slot.revents & (POLLIN | POLLHUP) != 0,
                        writable: slot.revents & POLLOUT != 0,
                        hangup: slot.revents & (POLLERR | POLLHUP) != 0,
                    });
                }
            }
            Ok(())
        }
    }
}

pub use backend::Poller;

// ---------------------------------------------------------------------------
// Waker: a pure-std self-pipe
// ---------------------------------------------------------------------------

/// Wakes a [`Poller`] blocked in `wait` from another thread.
///
/// Built on a `UnixStream` pair (pure std — no extra syscall surface):
/// the receiving end lives in the event loop, registered like any
/// connection; [`Waker::wake`] writes one byte from anywhere. Multiple
/// wakes before a drain coalesce into a full pipe, which is fine —
/// wakes carry no payload, only "look at your queues".
#[derive(Debug)]
pub struct Waker {
    tx: UnixStream,
}

/// The event-loop end of a [`Waker`]; drain it on every wake event.
#[derive(Debug)]
pub struct WakeReceiver {
    rx: UnixStream,
}

/// Creates a connected waker pair.
pub fn waker() -> io::Result<(Waker, WakeReceiver)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeReceiver { rx }))
}

impl Waker {
    /// Signals the loop. Never blocks: a full pipe already guarantees
    /// a pending wake.
    pub fn wake(&self) {
        use std::io::Write as _;
        let _ = (&self.tx).write(&[1u8]);
    }
}

impl WakeReceiver {
    /// The fd to register with the loop's poller.
    pub fn raw_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Consumes every pending wake byte.
    pub fn drain(&self) {
        use std::io::Read as _;
        let mut sink = [0u8; 64];
        while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn readable_when_peer_writes_and_eof_reads_ready() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "nothing written yet");

        a.write_all(b"hello").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        let mut buf = [0u8; 16];
        let n = (&b).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");

        drop(a);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].readable, "hang-up must surface as readable");
        assert_eq!((&b).read(&mut buf).unwrap(), 0, "clean EOF");
        poller.deregister(b.as_raw_fd()).unwrap();
    }

    #[test]
    fn writable_interest_follows_modify() {
        let (_a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 1, Interest::READ).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "read-only interest on a quiet socket");

        poller
            .modify(b.as_raw_fd(), 1, Interest::READ_WRITE)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));
    }

    #[test]
    fn waker_wakes_and_drains() {
        let (waker, wake_rx) = waker().unwrap();
        let mut poller = Poller::new().unwrap();
        poller
            .register(wake_rx.raw_fd(), u64::MAX, Interest::READ)
            .unwrap();
        let mut events = Vec::new();

        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
            waker.wake();
            waker
        });
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == u64::MAX && e.readable));
        wake_rx.drain();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "drained waker is quiet");
        let _ = t.join().unwrap();
    }

    #[test]
    fn nofile_limit_is_readable_and_monotonic() {
        let now = raise_nofile_limit(0).expect("getrlimit");
        assert!(now > 0);
        let raised = raise_nofile_limit(now).expect("setrlimit");
        assert!(raised >= now);
    }

    #[test]
    fn send_buffer_can_be_shrunk() {
        let (a, b) = pair();
        set_send_buffer(&a, 4096).expect("SO_SNDBUF");
        set_recv_buffer(&b, 4096).expect("SO_RCVBUF");
    }
}
