//! The `subscribers` load-generation scenario: N moving issuers each
//! holding a standing continuous query, ticking along random walks
//! while one updater connection commits catalog churn — the
//! subscription subsystem under its intended workload.
//!
//! Two measured phases:
//!
//! 1. **Mixed window** — every subscriber registers one standing point
//!    query with a safe-envelope slack, then ticks its issuer along a
//!    seeded random walk, applying the tick deltas and any
//!    commit-pushed NOTIFY frames to its local answer copy, while the
//!    updater interleaves arrival/departure/move batches and epoch
//!    commits. Yields tick throughput under churn, round-trip
//!    percentiles, and push counts.
//! 2. **Steady window** — one warm subscriber ticks at a *fixed*
//!    position (guaranteed inside its envelope) with no commits
//!    running, bracketed by two stats frames; the server-reported
//!    allocation delta divided by the tick count is the
//!    **allocations-per-tick** figure the CI smoke job gates at zero.
//!    This pins the tentpole invariant: a steady-state tick performs
//!    zero index probes and zero heap allocations server-side.

use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use iloc_core::pipeline::PointRequest;
use iloc_core::serve::Update;
use iloc_core::{Issuer, RangeSpec};
use iloc_datagen::{PointUpdate, PointUpdateGen, UpdateMix};
use iloc_geometry::Rect;
use iloc_server::client::{Client, ClientError};
use iloc_server::protocol::{CommitTarget, Notification, NotifyCause, StatsReport, WireUpdate};
use iloc_server::server::QueryServer;
use iloc_uncertainty::{ObjectId, PointObject};

use crate::net::{build_server, NetConfig};

/// Paper Table 2 defaults shared with the other scenarios.
const U: f64 = 250.0;
const W: f64 = 500.0;

/// Connect retry budget (the CI smoke job races the server's catalog
/// build).
const CONNECT_TIMEOUT: Duration = Duration::from_secs(60);

/// Tunables for one subscribers run.
#[derive(Debug, Clone)]
pub struct SubscribersConfig {
    /// Subscriber connections, one standing query each.
    pub subscribers: usize,
    /// Shards per catalog (in-process server only).
    pub shards: usize,
    /// Event-loop threads (in-process server only); 0 means the
    /// server default — each loop multiplexes many subscribers.
    pub event_loops: usize,
    /// Connection capacity (in-process server only); 0 means the
    /// server default.
    pub max_connections: usize,
    /// Point-catalog size (in-process server only).
    pub points: usize,
    /// Safe-envelope slack in space units.
    pub slack: f64,
    /// Random-walk step per tick (small against `slack`, so most
    /// ticks stay inside the envelope).
    pub step: f64,
    /// Ticks per subscriber in the measured mixed window.
    pub ticks_per_sub: usize,
    /// Update batches the updater commits during the mixed window.
    pub update_rounds: usize,
    /// Updates per batch (each batch is followed by a commit).
    pub updates_per_round: usize,
    /// Ticks in the alloc-gated steady window.
    pub steady_ticks: usize,
    /// Warm-up ticks per connection before any measurement.
    pub warmup: usize,
    /// Workload seed (shared with the server's dataset seed).
    pub seed: u64,
}

impl SubscribersConfig {
    /// CI-smoke scale.
    pub fn quick() -> Self {
        SubscribersConfig {
            subscribers: 4,
            shards: 4,
            event_loops: 0,
            max_connections: 0,
            points: 6_200,
            slack: 400.0,
            step: 40.0,
            ticks_per_sub: 192,
            update_rounds: 8,
            updates_per_round: 96,
            steady_ticks: 512,
            warmup: 64,
            seed: 2007,
        }
    }

    /// Paper-scale catalog, the tracked-report configuration.
    pub fn full() -> Self {
        SubscribersConfig {
            subscribers: 8,
            shards: 4,
            event_loops: 0,
            max_connections: 0,
            points: iloc_datagen::CALIFORNIA_SIZE,
            slack: 400.0,
            step: 40.0,
            ticks_per_sub: 384,
            update_rounds: 16,
            updates_per_round: 512,
            steady_ticks: 2_048,
            warmup: 128,
            seed: 2007,
        }
    }

    /// The equivalent `NetConfig` for building the in-process server
    /// (same datasets, sizes, seed as the `net` scenario).
    fn as_net(&self) -> NetConfig {
        let mut net = NetConfig::quick();
        net.points = self.points;
        net.uncertain = 64; // tiny; this scenario drives the point catalog
        net.shards = self.shards;
        net.event_loops = self.event_loops;
        net.max_connections = self.max_connections;
        net.seed = self.seed;
        net
    }
}

/// What one subscribers run measured.
#[derive(Debug, Clone)]
pub struct SubscribersReport {
    /// Subscriber connections driven.
    pub subscribers: usize,
    /// Total ticks answered in the mixed window.
    pub ticks: usize,
    /// Wall clock of the mixed window.
    pub elapsed: Duration,
    /// Median client-observed tick round trip.
    pub p50: Duration,
    /// 99th-percentile tick round trip.
    pub p99: Duration,
    /// Commit-pushed NOTIFY frames received across all subscribers.
    pub pushes: usize,
    /// Upserts + removals applied across all deltas (tick + push).
    pub delta_entries: usize,
    /// Updates the updater submitted.
    pub updates_submitted: usize,
    /// Epoch commits during the window.
    pub commits: usize,
    /// Ticks in the steady (alloc-gated) window.
    pub steady_ticks: usize,
    /// Server-side allocations per tick across the steady window
    /// (−1.0 when the server does not count allocations).
    pub steady_allocs_per_tick: f64,
    /// Whether the server counts allocations at all.
    pub alloc_counting: bool,
}

impl SubscribersReport {
    /// Mixed-window tick throughput per second.
    pub fn ticks_per_sec(&self) -> f64 {
        self.ticks as f64 / self.elapsed.as_secs_f64()
    }
}

/// Spawns an in-process loopback server, drives it, shuts it down.
pub fn run_in_process(cfg: &SubscribersConfig) -> Result<SubscribersReport, ClientError> {
    let net = cfg.as_net();
    let server: QueryServer = build_server(&net);
    let handle = server
        .start(&net.server_config())
        .map_err(ClientError::Io)?;
    let report = run_against(handle.addr(), cfg);
    handle.shutdown();
    report
}

/// A deterministic random walk over the unit square scaled to the
/// dataset domain, mirrored off the walls.
pub(crate) struct Walk {
    x: f64,
    y: f64,
    dx: f64,
    dy: f64,
}

impl Walk {
    pub(crate) fn new(seed: u64, step: f64) -> Walk {
        let mix = |k: u64| {
            let mut x = seed.wrapping_add(k).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 29;
            x.wrapping_mul(0xBF58_476D_1CE4_E5B9) >> 11
        };
        let unit = |v: u64| (v % 10_000) as f64 / 10_000.0;
        Walk {
            x: 1_000.0 + unit(mix(1)) * 8_000.0,
            y: 1_000.0 + unit(mix(2)) * 8_000.0,
            dx: (unit(mix(3)) - 0.5) * 2.0 * step,
            dy: (unit(mix(4)) - 0.5) * 2.0 * step,
        }
    }

    pub(crate) fn advance(&mut self) -> (f64, f64) {
        self.x += self.dx;
        self.y += self.dy;
        if !(0.0..=10_000.0).contains(&self.x) {
            self.dx = -self.dx;
            self.x += 2.0 * self.dx;
        }
        if !(0.0..=10_000.0).contains(&self.y) {
            self.dy = -self.dy;
            self.y += 2.0 * self.dy;
        }
        (self.x, self.y)
    }
}

pub(crate) fn issuer_at(x: f64, y: f64) -> Issuer {
    // Same issuer shape as the other scenarios: a square region of
    // half-size `u` (paper Table 2).
    Issuer::uniform(Rect::centered(iloc_geometry::Point::new(x, y), U, U))
}

/// One mixed-window subscriber: subscribes, walks, ticks, applies
/// every delta in wire order, and sanity-checks the composed state.
fn subscriber_run(
    addr: SocketAddr,
    cfg: &SubscribersConfig,
    salt: u64,
    start: &Barrier,
) -> Result<(Vec<Duration>, usize, usize), ClientError> {
    let mut client = Client::connect_retry(addr, CONNECT_TIMEOUT)?;
    let mut walk = Walk::new(cfg.seed.wrapping_add(salt * 7919), cfg.step);
    let (x0, y0) = walk.advance();
    let request = PointRequest::ipq(issuer_at(x0, y0), RangeSpec::square(W));
    let (ack, mut answer) = client.subscribe_point(&request, cfg.slack)?;
    let sub_id = ack.sub_id;

    let mut note = Notification::default();
    let mut latencies = Vec::with_capacity(cfg.ticks_per_sub);
    let mut pushes = 0usize;
    let mut delta_entries = 0usize;
    let apply =
        |answer: &mut iloc_core::QueryAnswer, note: &Notification, delta_entries: &mut usize| {
            *delta_entries += note.delta.upserts.len() + note.delta.removals.len();
            note.delta.apply(&mut answer.results);
        };

    for _ in 0..cfg.warmup {
        let (x, y) = walk.advance();
        client.tick_into(
            CommitTarget::Point,
            sub_id,
            issuer_at(x, y).pdf(),
            &mut note,
        )?;
        while let Some(push) = client.take_notification() {
            pushes += 1;
            apply(&mut answer, &push, &mut delta_entries);
        }
        apply(&mut answer, &note, &mut delta_entries);
    }
    start.wait();
    for _ in 0..cfg.ticks_per_sub {
        let (x, y) = walk.advance();
        let t0 = Instant::now();
        client.tick_into(
            CommitTarget::Point,
            sub_id,
            issuer_at(x, y).pdf(),
            &mut note,
        )?;
        latencies.push(t0.elapsed());
        // Pushes that raced ahead of the response arrived first on the
        // wire; deltas compose in that order.
        while let Some(push) = client.take_notification() {
            debug_assert_eq!(push.cause, NotifyCause::Commit);
            pushes += 1;
            apply(&mut answer, &push, &mut delta_entries);
        }
        apply(&mut answer, &note, &mut delta_entries);
        debug_assert!(answer.results.windows(2).all(|w| w[0].id < w[1].id));
    }
    client.unsubscribe(CommitTarget::Point, sub_id)?;
    Ok((latencies, pushes, delta_entries))
}

/// The updater: one arrive/depart/move batch + one commit per round.
/// Shared with the `c10k` scenario.
pub(crate) fn churn_run(
    addr: SocketAddr,
    points: usize,
    seed: u64,
    update_rounds: usize,
    updates_per_round: usize,
    start: &Barrier,
) -> Result<(usize, usize), ClientError> {
    let mut client = Client::connect_retry(addr, CONNECT_TIMEOUT)?;
    let (_, mut gen) = PointUpdateGen::over_california(points, seed, UpdateMix::balanced());
    let mut submitted = 0usize;
    let mut commits = 0usize;
    start.wait();
    for _ in 0..update_rounds {
        let updates: Vec<WireUpdate> = gen
            .stream(updates_per_round)
            .into_iter()
            .map(|u| {
                WireUpdate::Point(match u {
                    PointUpdate::Arrive { id, loc } => Update::Arrive(PointObject::new(id, loc)),
                    PointUpdate::Depart { id } => Update::Depart(ObjectId(id)),
                    PointUpdate::Move { id, to } => Update::Move(PointObject::new(id, to)),
                })
            })
            .collect();
        submitted += client.submit(&updates)? as usize;
        client.commit(CommitTarget::Point)?;
        commits += 1;
    }
    Ok((submitted, commits))
}

/// Drives a server at `addr` through the mixed and steady windows.
/// Opens `subscribers + 2` connections; like the `net` scenario, the
/// subscriber count is clamped to the server's reported connection
/// capacity.
pub fn run_against(
    addr: SocketAddr,
    cfg: &SubscribersConfig,
) -> Result<SubscribersReport, ClientError> {
    let mut control = Client::connect_retry(addr, CONNECT_TIMEOUT)?;
    let capacity = control.stats()?.capacity as usize;
    if capacity < 3 {
        return Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "server admits {capacity} connection(s); the subscribers scenario needs at least 3"
            ),
        )));
    }
    let sub_count = if cfg.subscribers + 2 > capacity {
        let clamped = capacity - 2;
        eprintln!(
            "subscribers: server admits {capacity} connections; \
             clamping {} subscribers to {clamped}",
            cfg.subscribers
        );
        clamped
    } else {
        cfg.subscribers
    };

    // --- Mixed window -------------------------------------------------
    let start = Arc::new(Barrier::new(sub_count + 2));
    let subscribers: Vec<_> = (0..sub_count as u64)
        .map(|s| {
            let cfg = cfg.clone();
            let start = Arc::clone(&start);
            std::thread::spawn(move || subscriber_run(addr, &cfg, s, &start))
        })
        .collect();
    let updater = {
        let cfg = cfg.clone();
        let start = Arc::clone(&start);
        std::thread::spawn(move || {
            churn_run(
                addr,
                cfg.points,
                cfg.seed,
                cfg.update_rounds,
                cfg.updates_per_round,
                &start,
            )
        })
    };
    start.wait();
    let t0 = Instant::now();
    let mut latencies: Vec<Duration> = Vec::new();
    let mut pushes = 0usize;
    let mut delta_entries = 0usize;
    for s in subscribers {
        let (lat, p, d) = s.join().expect("subscriber thread")?;
        latencies.extend(lat);
        pushes += p;
        delta_entries += d;
    }
    let (updates_submitted, commits) = updater.join().expect("updater thread")?;
    let elapsed = t0.elapsed();
    latencies.sort_unstable();

    // --- Steady window (alloc-gated) ----------------------------------
    // One fresh standing query ticked at a fixed position: after the
    // warm-up the envelope is cached, no commits run, so every tick
    // must be probe-free and allocation-free server-side.
    let request = PointRequest::ipq(issuer_at(5_000.0, 5_000.0), RangeSpec::square(W));
    let (ack, _) = control.subscribe_point(&request, cfg.slack)?;
    let sub_id = ack.sub_id;
    let pdf = request.issuer.pdf().clone();
    let mut note = Notification::default();
    let mut s1 = StatsReport::default();
    let mut s2 = StatsReport::default();
    for _ in 0..cfg.warmup.max(32) {
        control.tick_into(CommitTarget::Point, sub_id, &pdf, &mut note)?;
    }
    control.stats_into(&mut s1)?; // also warms the report buffers
    control.stats_into(&mut s1)?;
    for _ in 0..cfg.steady_ticks {
        control.tick_into(CommitTarget::Point, sub_id, &pdf, &mut note)?;
        debug_assert!(note.delta.is_empty());
    }
    control.stats_into(&mut s2)?;
    control.unsubscribe(CommitTarget::Point, sub_id)?;

    let steady_allocs_per_tick = if s1.alloc_counting {
        (s2.allocations - s1.allocations) as f64 / cfg.steady_ticks.max(1) as f64
    } else {
        -1.0
    };

    let percentile = |q: f64| -> Duration {
        if latencies.is_empty() {
            return Duration::ZERO;
        }
        latencies[((latencies.len() - 1) as f64 * q).round() as usize]
    };

    Ok(SubscribersReport {
        subscribers: sub_count,
        ticks: sub_count * cfg.ticks_per_sub,
        elapsed,
        p50: percentile(0.50),
        p99: percentile(0.99),
        pushes,
        delta_entries,
        updates_submitted,
        commits,
        steady_ticks: cfg.steady_ticks,
        steady_allocs_per_tick,
        alloc_counting: s1.alloc_counting,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_in_process_subscribers_round_trips() {
        let cfg = SubscribersConfig {
            subscribers: 2,
            shards: 2,
            event_loops: 0,
            max_connections: 0,
            points: 400,
            slack: 300.0,
            step: 30.0,
            ticks_per_sub: 16,
            update_rounds: 2,
            updates_per_round: 8,
            steady_ticks: 24,
            warmup: 4,
            seed: 7,
        };
        let report = run_in_process(&cfg).expect("subscribers loadgen");
        assert_eq!(report.subscribers, 2);
        assert_eq!(report.ticks, 32);
        assert_eq!(report.commits, 2);
        assert_eq!(report.updates_submitted, 16);
        assert!(report.p99 >= report.p50);
        // The test binary doesn't install the counting allocator, and
        // the report says so instead of faking a zero.
        assert!(!report.alloc_counting);
        assert_eq!(report.steady_allocs_per_tick, -1.0);
    }
}
