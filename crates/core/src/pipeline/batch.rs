//! Batched query execution: rayon fan-out of request chunks with one
//! long-lived execution context per worker.
//!
//! A deployed location service does not answer one query at a time; it
//! drains a queue of requests from millions of issuers.
//! [`execute_batch`] runs any [`BatchEngine`] over a request slice on
//! all cores: the slice is chunked per worker and each worker reuses
//! **one** context — scratch buffers stay warm across its whole chunk,
//! so per-query allocations are amortised away. The context is reset
//! (zeroed stats, reseeded RNG) for every query, exactly as a fresh
//! per-query context would be, so parallel answers are bit-identical
//! to [`execute_batch_sequential`] — determinism is a property of the
//! plan, not of scheduling.

use rayon::prelude::*;

use crate::integrate::Integrator;
use crate::query::{CipqStrategy, CiuqStrategy, Issuer, RangeSpec};
use crate::result::QueryAnswer;

use super::ExecutionContext;

/// An engine that can answer self-contained query requests; the batch
/// executors fan its `execute_one_into` out over request chunks.
pub trait BatchEngine: Sync {
    /// One self-contained query request.
    type Request: Sync;

    /// Answers one request through the caller's context (which the
    /// engine prepares and resets), overwriting `answer` — exactly as
    /// the corresponding sequential engine method would. Reusing one
    /// context and answer across calls keeps the path allocation-free
    /// after warm-up.
    fn execute_one_into(
        &self,
        request: &Self::Request,
        ctx: &mut ExecutionContext,
        answer: &mut QueryAnswer,
    );

    /// Answers one request with a fresh context, returning the answer.
    fn execute_one(&self, request: &Self::Request) -> QueryAnswer {
        let mut ctx = ExecutionContext::new(Integrator::Auto);
        let mut answer = QueryAnswer::default();
        self.execute_one_into(request, &mut ctx, &mut answer);
        answer
    }
}

/// Answers every request in parallel (rayon work distribution across
/// all cores, one contiguous chunk and one reused context per worker),
/// preserving request order in the output.
pub fn execute_batch<E: BatchEngine>(engine: &E, requests: &[E::Request]) -> Vec<QueryAnswer> {
    if requests.is_empty() {
        return Vec::new();
    }
    let workers = rayon::current_num_threads().max(1);
    let chunk_size = requests.len().div_ceil(workers).max(1);
    let per_chunk: Vec<Vec<QueryAnswer>> = requests
        .par_chunks(chunk_size)
        .map(|chunk| {
            let mut ctx = ExecutionContext::new(Integrator::Auto);
            // Result vectors must be freshly allocated (they are moved
            // into the output), but growth-doubling them from empty
            // costs ~log₂(matches) reallocations per query. Pre-sizing
            // each answer to the chunk's high-water mark collapses
            // that to one exact allocation per query after the first.
            let mut hwm = 0usize;
            chunk
                .iter()
                .map(|request| {
                    let mut answer = QueryAnswer::default();
                    answer.results.reserve(hwm);
                    engine.execute_one_into(request, &mut ctx, &mut answer);
                    hwm = hwm.max(answer.results.len());
                    answer
                })
                .collect()
        })
        .collect();
    per_chunk.into_iter().flatten().collect()
}

/// Answers every request on the calling thread through one reused
/// context — the reference the parallel path is property-tested
/// against.
pub fn execute_batch_sequential<E: BatchEngine>(
    engine: &E,
    requests: &[E::Request],
) -> Vec<QueryAnswer> {
    let mut ctx = ExecutionContext::new(Integrator::Auto);
    let mut hwm = 0usize;
    requests
        .iter()
        .map(|request| {
            let mut answer = QueryAnswer::default();
            answer.results.reserve(hwm);
            engine.execute_one_into(request, &mut ctx, &mut answer);
            hwm = hwm.max(answer.results.len());
            answer
        })
        .collect()
}

/// The constrained part of a point request (C-IPQ, Definition 5).
#[derive(Debug, Clone, Copy)]
pub struct PointConstraint {
    /// Probability threshold `Qp`.
    pub qp: f64,
    /// Filter strategy to compare (Figure 11).
    pub strategy: CipqStrategy,
}

/// One self-contained request against a point database: an IPQ, or a
/// C-IPQ when a constraint is present.
#[derive(Debug, Clone)]
pub struct PointRequest {
    /// The imprecise issuer.
    pub issuer: Issuer,
    /// The range shape.
    pub range: RangeSpec,
    /// Integrator for the refine stage.
    pub integrator: Integrator,
    /// Optional C-IPQ constraint.
    pub constraint: Option<PointConstraint>,
}

impl PointRequest {
    /// An unconstrained IPQ request.
    pub fn ipq(issuer: Issuer, range: RangeSpec) -> Self {
        PointRequest {
            issuer,
            range,
            integrator: Integrator::Auto,
            constraint: None,
        }
    }

    /// A constrained C-IPQ request.
    pub fn cipq(issuer: Issuer, range: RangeSpec, qp: f64, strategy: CipqStrategy) -> Self {
        PointRequest {
            issuer,
            range,
            integrator: Integrator::Auto,
            constraint: Some(PointConstraint { qp, strategy }),
        }
    }

    /// Overrides the integrator (the experiments use Monte-Carlo for
    /// non-uniform pdfs).
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }
}

/// The constrained part of an uncertain request (C-IUQ, Definition 6).
#[derive(Debug, Clone, Copy)]
pub struct UncertainConstraint {
    /// Probability threshold `Qp`.
    pub qp: f64,
    /// Index / pruning combination to use (Figure 12).
    pub strategy: CiuqStrategy,
}

/// One self-contained request against an uncertain-object database: an
/// IUQ, or a C-IUQ when a constraint is present.
#[derive(Debug, Clone)]
pub struct UncertainRequest {
    /// The imprecise issuer.
    pub issuer: Issuer,
    /// The range shape.
    pub range: RangeSpec,
    /// Integrator for the refine stage.
    pub integrator: Integrator,
    /// Optional C-IUQ constraint.
    pub constraint: Option<UncertainConstraint>,
}

impl UncertainRequest {
    /// An unconstrained IUQ request.
    pub fn iuq(issuer: Issuer, range: RangeSpec) -> Self {
        UncertainRequest {
            issuer,
            range,
            integrator: Integrator::Auto,
            constraint: None,
        }
    }

    /// A constrained C-IUQ request.
    pub fn ciuq(issuer: Issuer, range: RangeSpec, qp: f64, strategy: CiuqStrategy) -> Self {
        UncertainRequest {
            issuer,
            range,
            integrator: Integrator::Auto,
            constraint: Some(UncertainConstraint { qp, strategy }),
        }
    }

    /// Overrides the integrator.
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{PointEngine, UncertainEngine};
    use iloc_geometry::{Point, Rect};
    use iloc_uncertainty::{UncertainObject, UniformPdf};

    fn point_engine() -> PointEngine {
        PointEngine::build(
            (0..400)
                .map(|k| Point::new((k % 20) as f64 * 50.0, (k / 20) as f64 * 50.0))
                .collect(),
        )
    }

    fn uncertain_engine() -> UncertainEngine {
        UncertainEngine::build(
            (0..100)
                .map(|k| {
                    let c = Point::new(
                        (k % 10) as f64 * 100.0 + 50.0,
                        (k / 10) as f64 * 100.0 + 50.0,
                    );
                    UncertainObject::new(k as u64, UniformPdf::new(Rect::centered(c, 20.0, 20.0)))
                })
                .collect(),
        )
    }

    fn point_requests() -> Vec<PointRequest> {
        (0..64)
            .map(|k| {
                let c = Point::new(100.0 + k as f64 * 12.0, 300.0 + (k % 7) as f64 * 30.0);
                let issuer = Issuer::uniform(Rect::centered(c, 60.0, 60.0));
                if k % 3 == 0 {
                    PointRequest::cipq(
                        issuer,
                        RangeSpec::square(80.0),
                        0.2,
                        CipqStrategy::PExpanded,
                    )
                } else {
                    PointRequest::ipq(issuer, RangeSpec::square(80.0))
                }
            })
            .collect()
    }

    #[test]
    fn parallel_point_batch_is_bit_identical_to_sequential() {
        let engine = point_engine();
        let requests = point_requests();
        let par = execute_batch(&engine, &requests);
        let seq = execute_batch_sequential(&engine, &requests);
        assert_eq!(par.len(), seq.len());
        for (k, (a, b)) in par.iter().zip(&seq).enumerate() {
            assert!(a.same_matches(b), "request {k} diverged");
        }
    }

    #[test]
    fn parallel_uncertain_batch_is_bit_identical_to_sequential() {
        let engine = uncertain_engine();
        let requests: Vec<UncertainRequest> = (0..48)
            .map(|k| {
                let c = Point::new(80.0 + k as f64 * 18.0, 500.0);
                let issuer = Issuer::uniform(Rect::centered(c, 80.0, 80.0));
                match k % 3 {
                    0 => UncertainRequest::iuq(issuer, RangeSpec::square(120.0)),
                    1 => UncertainRequest::ciuq(
                        issuer,
                        RangeSpec::square(120.0),
                        0.3,
                        CiuqStrategy::PtiPExpanded,
                    ),
                    _ => UncertainRequest::ciuq(
                        issuer,
                        RangeSpec::square(120.0),
                        0.3,
                        CiuqStrategy::RTreeMinkowski,
                    ),
                }
            })
            .collect();
        let par = execute_batch(&engine, &requests);
        let seq = execute_batch_sequential(&engine, &requests);
        assert_eq!(par.len(), seq.len());
        for (k, (a, b)) in par.iter().zip(&seq).enumerate() {
            assert!(a.same_matches(b), "request {k} diverged");
        }
    }

    #[test]
    fn batch_answers_match_direct_engine_calls() {
        let engine = point_engine();
        let requests = point_requests();
        let batch = execute_batch(&engine, &requests);
        for (request, answer) in requests.iter().zip(&batch) {
            let direct = match request.constraint {
                None => engine.ipq_with(&request.issuer, request.range, request.integrator),
                Some(c) => engine.cipq_with(
                    &request.issuer,
                    request.range,
                    c.qp,
                    c.strategy,
                    request.integrator,
                ),
            };
            assert!(answer.same_matches(&direct));
        }
    }

    #[test]
    fn empty_batch() {
        let engine = point_engine();
        assert!(execute_batch(&engine, &[]).is_empty());
    }
}
