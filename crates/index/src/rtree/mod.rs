//! A Guttman R-tree (SIGMOD'84) built from scratch.
//!
//! * dynamic insertion with the **quadratic split** heuristic;
//! * **Sort-Tile-Recursive** bulk loading for the experiment datasets;
//! * range queries with logical node-access counting.
//!
//! Nodes live in an arena (`Vec<Node<T>>`); parents reference children
//! by index, and each parent entry caches the child's MBR — the classic
//! disk layout transplanted to memory. The default fanout models the
//! paper's 4 KB pages: an entry is ~40 bytes (4 × f64 MBR + id), so
//! ~100 entries fit; we default to 64/26 to stay comparable while
//! keeping splits cheap.

mod bulk;
mod knn;
mod node;
mod remove;
mod rstar;
mod split;

pub use node::{Node, NodeKind};
pub use rstar::SplitPolicy;

use iloc_geometry::Rect;

use crate::stats::AccessStats;
use crate::traits::{RangeIndex, TraversalScratch};

/// Fanout configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RTreeParams {
    /// Maximum entries per node (`M`).
    pub max_entries: usize,
    /// Minimum entries per node after a split (`m ≤ M/2`).
    pub min_entries: usize,
    /// Node-splitting heuristic (quadratic by default, as in the
    /// paper; see [`SplitPolicy::RStar`]).
    pub split: SplitPolicy,
}

impl RTreeParams {
    /// Creates a parameter set with the quadratic split.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ min_entries ≤ max_entries / 2`.
    pub fn new(max_entries: usize, min_entries: usize) -> Self {
        assert!(min_entries >= 2, "min_entries must be at least 2");
        assert!(
            min_entries <= max_entries / 2,
            "min_entries must be at most max_entries / 2"
        );
        RTreeParams {
            max_entries,
            min_entries,
            split: SplitPolicy::Quadratic,
        }
    }

    /// Selects a different split heuristic.
    pub fn with_split(mut self, split: SplitPolicy) -> Self {
        self.split = split;
        self
    }
}

impl Default for RTreeParams {
    /// 64 max / 26 min (~40 % fill), modelling the paper's 4 KB pages.
    fn default() -> Self {
        RTreeParams::new(64, 26)
    }
}

/// An R-tree storing items of type `T` under rectangular extents.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    params: RTreeParams,
    nodes: Vec<Node<T>>,
    root: usize,
    len: usize,
    /// Arena slots released by removals, reused by inserts.
    free: Vec<usize>,
}

impl<T: Copy> Default for RTree<T> {
    fn default() -> Self {
        RTree::new(RTreeParams::default())
    }
}

impl<T: Copy> RTree<T> {
    /// Creates an empty tree.
    pub fn new(params: RTreeParams) -> Self {
        RTree {
            params,
            nodes: vec![Node::new_leaf()],
            root: 0,
            len: 0,
            free: Vec::new(),
        }
    }

    /// Bulk loads a tree with Sort-Tile-Recursive packing.
    pub fn bulk_load(items: Vec<(Rect, T)>, params: RTreeParams) -> Self {
        bulk::str_bulk_load(items, params)
    }

    /// The fanout configuration.
    pub fn params(&self) -> RTreeParams {
        self.params
    }

    /// Tree height (1 for a tree that is a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut idx = self.root;
        loop {
            match &self.nodes[idx].kind {
                NodeKind::Leaf(_) => return h,
                NodeKind::Internal(children) => {
                    idx = children[0].1;
                    h += 1;
                }
            }
        }
    }

    /// MBR of the whole tree ([`Rect::EMPTY`] when empty).
    pub fn mbr(&self) -> Rect {
        self.node_mbr(self.root)
    }

    /// Total number of allocated nodes (diagnostics; includes nodes on
    /// the free list after removals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Arena index of the root (internal; used by the kNN module).
    pub(crate) fn root_index(&self) -> usize {
        self.root
    }

    /// Node payload accessor (internal; used by the kNN module).
    pub(crate) fn node_kind(&self, idx: usize) -> &NodeKind<T> {
        &self.nodes[idx].kind
    }

    fn node_mbr(&self, idx: usize) -> Rect {
        self.nodes[idx].mbr()
    }

    /// Inserts an item with the given extent.
    pub fn insert(&mut self, extent: Rect, item: T) {
        assert!(
            extent.is_finite() && !extent.is_empty(),
            "extent must be finite and non-empty"
        );
        if let Some((r1, n1, r2, n2)) = self.insert_rec(self.root, extent, item) {
            // Root split: grow the tree by one level.
            let new_root = self.alloc(Node::new_internal(vec![(r1, n1), (r2, n2)]));
            self.root = new_root;
        }
        self.len += 1;
    }

    fn alloc(&mut self, node: Node<T>) -> usize {
        self.alloc_node(node)
    }

    /// Recursive insert; on overflow returns the two halves of the split
    /// node as `(mbr1, idx1, mbr2, idx2)` where `idx1` is the original
    /// node index (reused) and `idx2` a fresh sibling.
    fn insert_rec(
        &mut self,
        node_idx: usize,
        extent: Rect,
        item: T,
    ) -> Option<(Rect, usize, Rect, usize)> {
        let max = self.params.max_entries;
        let min = self.params.min_entries;
        match &mut self.nodes[node_idx].kind {
            NodeKind::Leaf(entries) => {
                entries.push((extent, item));
                if entries.len() <= max {
                    return None;
                }
                let full = std::mem::take(entries);
                let (a, b) = rstar::split_with(self.params.split, full, min);
                let (ra, rb) = (split::entries_mbr(&a), split::entries_mbr(&b));
                self.nodes[node_idx].kind = NodeKind::Leaf(a);
                let sibling = self.alloc(Node::new_leaf_with(b));
                Some((ra, node_idx, rb, sibling))
            }
            NodeKind::Internal(children) => {
                // ChooseSubtree: least enlargement, ties by smaller area.
                let mut best = 0usize;
                let mut best_enl = f64::INFINITY;
                let mut best_area = f64::INFINITY;
                for (i, &(mbr, _)) in children.iter().enumerate() {
                    let area = mbr.area();
                    let enl = mbr.hull(extent).area() - area;
                    if enl < best_enl || (enl == best_enl && area < best_area) {
                        best = i;
                        best_enl = enl;
                        best_area = area;
                    }
                }
                let child_idx = children[best].1;
                let split_result = self.insert_rec(child_idx, extent, item);
                // Re-borrow after recursion.
                let NodeKind::Internal(children) = &mut self.nodes[node_idx].kind else {
                    unreachable!("node kind cannot change during insert");
                };
                match split_result {
                    None => {
                        children[best].0 = children[best].0.hull(extent);
                        None
                    }
                    Some((r1, n1, r2, n2)) => {
                        children[best] = (r1, n1);
                        children.push((r2, n2));
                        if children.len() <= max {
                            return None;
                        }
                        let full = std::mem::take(children);
                        let (a, b) = rstar::split_with(self.params.split, full, min);
                        let (ra, rb) = (split::entries_mbr(&a), split::entries_mbr(&b));
                        self.nodes[node_idx].kind = NodeKind::Internal(a);
                        let sibling = self.alloc(Node::new_internal(b));
                        Some((ra, node_idx, rb, sibling))
                    }
                }
            }
        }
    }

    /// Validates structural invariants; used by tests. Returns the
    /// number of items reachable from the root.
    ///
    /// Checked invariants: cached child MBRs match the child's actual
    /// MBR; every non-root node respects the fill factor; all leaves sit
    /// at the same depth.
    pub fn check_invariants(&self) -> usize {
        fn walk<T: Copy>(
            tree: &RTree<T>,
            idx: usize,
            is_root: bool,
            depth: usize,
            leaf_depth: &mut Option<usize>,
        ) -> usize {
            let node = &tree.nodes[idx];
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    if !is_root {
                        assert!(
                            entries.len() >= tree.params.min_entries
                                && entries.len() <= tree.params.max_entries,
                            "leaf fill factor violated: {}",
                            entries.len()
                        );
                    }
                    match leaf_depth {
                        None => *leaf_depth = Some(depth),
                        Some(d) => assert_eq!(*d, depth, "leaves at different depths"),
                    }
                    entries.len()
                }
                NodeKind::Internal(children) => {
                    assert!(!children.is_empty(), "empty internal node");
                    if !is_root {
                        assert!(
                            children.len() >= tree.params.min_entries
                                && children.len() <= tree.params.max_entries,
                            "internal fill factor violated: {}",
                            children.len()
                        );
                    }
                    let mut count = 0;
                    for &(mbr, child) in children {
                        let actual = tree.node_mbr(child);
                        assert_eq!(mbr, actual, "cached child MBR out of date");
                        count += walk(tree, child, false, depth + 1, leaf_depth);
                    }
                    count
                }
            }
        }
        let mut leaf_depth = None;
        let n = walk(self, self.root, true, 0, &mut leaf_depth);
        assert_eq!(n, self.len, "len out of sync with reachable items");
        n
    }
}

impl<T: Copy> RangeIndex<T> for RTree<T> {
    fn len(&self) -> usize {
        self.len
    }

    fn insert(&mut self, extent: Rect, item: T) {
        RTree::insert(self, extent, item);
    }

    fn remove(&mut self, extent: Rect, item: T) -> bool
    where
        T: PartialEq,
    {
        RTree::remove(self, extent, item)
    }

    fn query_range_into(&self, query: Rect, stats: &mut AccessStats, out: &mut Vec<T>) {
        self.query_range_scratch(query, stats, &mut TraversalScratch::new(), out);
    }

    fn query_range_scratch(
        &self,
        query: Rect,
        stats: &mut AccessStats,
        scratch: &mut TraversalScratch,
        out: &mut Vec<T>,
    ) {
        if self.len == 0 {
            return;
        }
        let stack = &mut scratch.stack;
        stack.clear();
        stack.push(self.root);
        while let Some(idx) = stack.pop() {
            stats.nodes_visited += 1;
            match &self.nodes[idx].kind {
                NodeKind::Leaf(entries) => {
                    for &(extent, item) in entries {
                        stats.items_tested += 1;
                        if extent.overlaps(query) {
                            stats.candidates += 1;
                            out.push(item);
                        }
                    }
                }
                NodeKind::Internal(children) => {
                    for &(mbr, child) in children {
                        if mbr.overlaps(query) {
                            stack.push(child);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests;
