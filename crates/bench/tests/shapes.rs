//! Shape assertions on the reproduced experiments: we cannot pin the
//! paper's absolute 2007 milliseconds, but the *qualitative claims* of
//! each figure must hold at any scale. These tests run the experiment
//! code at a reduced scale and assert the claims.

use iloc_bench::experiments::{ablations, fig08, fig09, fig11, fig12};
use iloc_bench::{Row, Scale, TestBed};

fn tiny_bed() -> TestBed {
    TestBed::build(Scale {
        point_count: 3_000,
        uncertain_count: 2_500,
        queries: 30,
        basic_queries: 3,
        mc_queries: 5,
        seed: 2007,
    })
}

fn series<'a>(rows: &'a [Row], name: &str) -> Vec<&'a Row> {
    rows.iter().filter(|r| r.series.contains(name)).collect()
}

#[test]
fn fig08_basic_dominates_enhanced_and_gap_grows() {
    let bed = tiny_bed();
    let rows = fig08::run(&bed);
    let basic = series(&rows, "basic");
    let enhanced = series(&rows, "enhanced");
    assert_eq!(basic.len(), enhanced.len());
    // Claim 1: basic is slower at every u (compare per-candidate cost
    // to be robust to timer noise: the basic method does ~900 grid
    // cells per candidate, the enhanced method a closed form).
    for (b, e) in basic.iter().zip(&enhanced) {
        let b_cost = b.summary.avg_ms / b.summary.avg_candidates.max(1.0);
        let e_cost = e.summary.avg_ms / e.summary.avg_candidates.max(1.0);
        assert!(
            b_cost > 3.0 * e_cost,
            "u={}: basic/cand {b_cost} not ≫ enhanced/cand {e_cost}",
            b.x
        );
    }
    // Claim 2: the absolute gap widens with u (compare the sweep's
    // endpoints).
    let gap_lo = basic[0].summary.avg_ms - enhanced[0].summary.avg_ms;
    let gap_hi =
        basic[basic.len() - 1].summary.avg_ms - enhanced[enhanced.len() - 1].summary.avg_ms;
    assert!(gap_hi > gap_lo, "gap did not widen: {gap_lo} → {gap_hi}");
}

#[test]
fn fig09_candidates_grow_with_u_and_w() {
    let bed = tiny_bed();
    let rows = fig09::run(&bed);
    // Within each w-series, candidate counts (the deterministic cost
    // driver behind T) must grow with u.
    for w in [500.0, 1000.0, 1500.0] {
        let s = series(&rows, &format!("w={w}"));
        assert_eq!(s.len(), 10);
        assert!(
            s.last().unwrap().summary.avg_candidates > s[0].summary.avg_candidates,
            "w={w}: candidates did not grow with u"
        );
    }
    // And across series at fixed u, larger w ⇒ more candidates.
    let at_u = |w: f64, i: usize| series(&rows, &format!("w={w}"))[i].summary.avg_candidates;
    for i in [0, 5, 9] {
        assert!(at_u(1000.0, i) > at_u(500.0, i));
        assert!(at_u(1500.0, i) > at_u(1000.0, i));
    }
}

#[test]
fn fig11_p_expanded_prunes_monotonically() {
    let bed = tiny_bed();
    let rows = fig11::run(&bed);
    let mink = series(&rows, "Minkowski");
    let pexp = series(&rows, "p-expanded");
    assert_eq!(mink.len(), 11);
    // Minkowski filtering ignores Qp: flat candidate counts.
    for r in &mink {
        assert_eq!(r.summary.avg_candidates, mink[0].summary.avg_candidates);
    }
    // p-expanded candidates are non-increasing in Qp and strictly
    // below Minkowski's by Qp = 0.5.
    let mut prev = f64::INFINITY;
    for r in &pexp {
        assert!(r.summary.avg_candidates <= prev + 1e-9, "qp={}", r.x);
        prev = r.summary.avg_candidates;
    }
    let at = |rows: &[&Row], qp: f64| {
        rows.iter()
            .find(|r| (r.x - qp).abs() < 1e-9)
            .unwrap()
            .summary
            .avg_candidates
    };
    assert!(at(&pexp, 0.5) < 0.8 * at(&mink, 0.5));
    // Identical answer sets at every threshold.
    for (m, p) in mink.iter().zip(&pexp) {
        assert_eq!(m.summary.avg_results, p.summary.avg_results, "qp={}", m.x);
    }
}

#[test]
fn fig12_pti_does_less_refinement_work() {
    let bed = tiny_bed();
    let rows = fig12::run(&bed);
    let rtree = series(&rows, "R-tree");
    let pti = series(&rows, "PTI");
    for (r, p) in rtree.iter().zip(&pti) {
        assert_eq!(r.summary.avg_results, p.summary.avg_results, "qp={}", r.x);
        assert!(
            p.summary.avg_prob_evals <= r.summary.avg_prob_evals + 1e-9,
            "qp={}: PTI evals {} vs R-tree {}",
            r.x,
            p.summary.avg_prob_evals,
            r.summary.avg_prob_evals
        );
    }
    // At a mid threshold the PTI must be doing substantially less work.
    let at = |rows: &[&Row], qp: f64| {
        rows.iter()
            .find(|r| (r.x - qp).abs() < 1e-9)
            .unwrap()
            .summary
            .avg_prob_evals
    };
    assert!(at(&pti, 0.5) < 0.8 * at(&rtree, 0.5));
}

#[test]
fn ablation_strategies_compose() {
    let bed = tiny_bed();
    let rows = ablations::pruning_strategies(&bed);
    let evals = |name: &str| {
        rows.iter()
            .find(|r| r.series.contains(name))
            .unwrap()
            .summary
            .avg_prob_evals
    };
    let results = |name: &str| {
        rows.iter()
            .find(|r| r.series.contains(name))
            .unwrap()
            .summary
            .avg_results
    };
    // Identical answers regardless of pruning configuration.
    for name in ["S1 only", "S2 only", "S1+S2", "S1+S2+S3"] {
        assert_eq!(results(name), results("no pruning"), "{name}");
    }
    // Each strategy alone does no worse than no pruning; combined does
    // no worse than each alone.
    assert!(evals("S1 only") <= evals("no pruning"));
    assert!(evals("S2 only") <= evals("no pruning"));
    assert!(evals("S1+S2") <= evals("S1 only").min(evals("S2 only")));
    assert!(evals("S1+S2+S3") <= evals("S1+S2"));
}

#[test]
fn ablation_catalog_finer_is_tighter() {
    let bed = tiny_bed();
    let rows = ablations::catalog_sizes(&bed);
    // More catalog levels ⇒ conservative filter closer to the exact
    // Qp-expanded query ⇒ no more candidates.
    let mut prev = f64::INFINITY;
    for r in &rows {
        assert!(
            r.summary.avg_candidates <= prev + 1e-9,
            "{}: candidates increased",
            r.series
        );
        prev = r.summary.avg_candidates;
    }
    // Identical answers throughout.
    for r in &rows {
        assert_eq!(r.summary.avg_results, rows[0].summary.avg_results);
    }
}

#[test]
fn ablation_index_choices_agree() {
    let bed = tiny_bed();
    let rows = ablations::index_choice(&bed);
    for r in &rows {
        assert_eq!(r.summary.avg_results, rows[0].summary.avg_results);
    }
    // The R-tree's logical I/O must be far below the naive scan's item
    // count.
    let naive = rows.iter().find(|r| r.series.contains("naive")).unwrap();
    let rtree = rows.iter().find(|r| r.series.contains("r-tree")).unwrap();
    assert!(rtree.summary.avg_prob_evals == naive.summary.avg_prob_evals);
}
