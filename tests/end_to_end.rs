//! Cross-crate integration tests: realistic datasets from `iloc-datagen`
//! flowing through the full engine pipeline.

use iloc::core::integrate::Integrator;
use iloc::datagen::{
    california_points, long_beach_rects, point_objects, uniform_objects, WorkloadGen,
};
use iloc::prelude::*;

fn small_california() -> PointEngine {
    PointEngine::from_objects(point_objects(&california_points(4_000, 1)))
}

fn small_long_beach() -> UncertainEngine {
    UncertainEngine::build(uniform_objects(&long_beach_rects(3_000, 2)))
}

#[test]
fn ipq_pipeline_equals_full_scan() {
    let engine = small_california();
    let mut gen = WorkloadGen::new(3);
    for _ in 0..10 {
        let issuer = Issuer::uniform(gen.issuer_region(250.0));
        let range = RangeSpec::square(500.0);
        let ans = engine.ipq(&issuer, range);
        // Oracle: Lemma 3 on every stored object.
        let mut expected = 0usize;
        for obj in engine.objects() {
            let pi = issuer.pdf().prob_in_rect(range.at(obj.loc));
            if pi > 0.0 {
                expected += 1;
                let got = ans
                    .probability_of(obj.id)
                    .unwrap_or_else(|| panic!("{} missing (pi={pi})", obj.id));
                assert!((got - pi).abs() < 1e-12);
            } else {
                assert_eq!(ans.probability_of(obj.id), None);
            }
        }
        assert_eq!(ans.results.len(), expected);
    }
}

#[test]
fn iuq_pipeline_equals_full_scan() {
    let engine = small_long_beach();
    let mut gen = WorkloadGen::new(4);
    for _ in 0..5 {
        let issuer = Issuer::uniform(gen.issuer_region(250.0));
        let range = RangeSpec::square(500.0);
        let expanded = iloc::core::expand::minkowski_query(&issuer, range);
        let ans = engine.iuq(&issuer, range);
        for obj in engine.objects() {
            let pi = iloc::core::integrate::closed::uniform_uniform(
                issuer.region(),
                obj.region(),
                range,
                expanded,
            );
            match ans.probability_of(obj.id) {
                Some(got) => assert!((got - pi).abs() < 1e-12),
                None => assert!(pi <= 1e-12, "{} missing with pi={pi}", obj.id),
            }
        }
    }
}

#[test]
fn constrained_queries_are_threshold_filtered_unconstrained_queries() {
    let points = small_california();
    let uncertain = small_long_beach();
    let mut gen = WorkloadGen::new(5);
    for &qp in &[0.15, 0.45, 0.75] {
        let issuer = Issuer::uniform(gen.issuer_region(250.0));
        let range = RangeSpec::square(500.0);

        let ipq = points.ipq(&issuer, range);
        let cipq = points.cipq(&issuer, range, qp, CipqStrategy::PExpanded);
        let expect: Vec<_> = ipq
            .results
            .iter()
            .filter(|m| m.probability >= qp)
            .map(|m| m.id)
            .collect();
        let got: Vec<_> = cipq.results.iter().map(|m| m.id).collect();
        assert_eq!(got, expect, "C-IPQ at qp={qp}");

        let iuq = uncertain.iuq(&issuer, range);
        let ciuq = uncertain.ciuq(&issuer, range, qp, CiuqStrategy::PtiPExpanded);
        let expect: Vec<_> = iuq
            .results
            .iter()
            .filter(|m| m.probability >= qp)
            .map(|m| m.id)
            .collect();
        let got: Vec<_> = ciuq.results.iter().map(|m| m.id).collect();
        assert_eq!(got, expect, "C-IUQ at qp={qp}");
    }
}

#[test]
fn both_ciuq_strategies_agree_on_realistic_data() {
    let engine = small_long_beach();
    let mut gen = WorkloadGen::new(6);
    for &qp in &[0.0, 0.2, 0.5, 0.8] {
        let issuer = Issuer::uniform(gen.issuer_region(400.0));
        let range = RangeSpec::square(700.0);
        let a = engine.ciuq(&issuer, range, qp, CiuqStrategy::RTreeMinkowski);
        let b = engine.ciuq(&issuer, range, qp, CiuqStrategy::PtiPExpanded);
        let ids_a: Vec<_> = a.results.iter().map(|m| m.id).collect();
        let ids_b: Vec<_> = b.results.iter().map(|m| m.id).collect();
        assert_eq!(ids_a, ids_b, "qp={qp}");
        assert!(b.stats.prob_evals <= a.stats.prob_evals);
    }
}

#[test]
fn gaussian_issuer_exact_and_mc_agree_modulo_noise() {
    let engine = small_california();
    let issuer = Issuer::gaussian(Rect::centered(Point::new(5_000.0, 5_000.0), 250.0, 250.0));
    let range = RangeSpec::square(500.0);
    let exact = engine.ipq(&issuer, range);
    let mc = engine.ipq_with(&issuer, range, Integrator::MonteCarlo { samples: 2_000 });
    // Every confident exact answer must appear in the MC answer and
    // vice versa for probabilities well away from zero.
    for m in &exact.results {
        if m.probability > 0.05 {
            let got = mc
                .probability_of(m.id)
                .unwrap_or_else(|| panic!("{} missing from MC answer", m.id));
            assert!(
                (got - m.probability).abs() < 0.08,
                "{}: exact {} vs mc {got}",
                m.id,
                m.probability
            );
        }
    }
}

#[test]
fn basic_and_enhanced_agree_on_realistic_data() {
    let engine = UncertainEngine::build(uniform_objects(&long_beach_rects(800, 9)));
    let issuer = Issuer::uniform(Rect::centered(Point::new(5_000.0, 5_000.0), 250.0, 250.0));
    let range = RangeSpec::square(500.0);
    let enhanced = engine.iuq(&issuer, range);
    let basic = engine.iuq_basic(&issuer, range, 60);
    // The 60×60 midpoint grid cannot resolve probabilities far below
    // one cell's mass, so compare answers above that floor; everything
    // the grid does find must agree with the exact answer.
    for a in &enhanced.results {
        if a.probability > 0.01 {
            let got = basic
                .probability_of(a.id)
                .unwrap_or_else(|| panic!("{} missing from basic answer", a.id));
            assert!(
                (a.probability - got).abs() < 0.01,
                "{}: {} vs {}",
                a.id,
                a.probability,
                got
            );
        }
    }
    // The basic method can only see objects the exact method confirms.
    for b in &basic.results {
        assert!(
            enhanced.probability_of(b.id).is_some(),
            "basic found {} that the exact evaluator scores zero",
            b.id
        );
    }
}

#[test]
fn disc_issuer_works_through_whole_pipeline() {
    // A disc-shaped (GPS-style) issuer: exact rectangle masses via the
    // circle/box closed form, catalogs built from the disc marginals.
    let engine = small_california();
    let issuer = Issuer::with_pdf(DiscPdf::new(Point::new(5_000.0, 5_000.0), 250.0));
    let range = RangeSpec::square(500.0);
    let ans = engine.ipq(&issuer, range);
    assert!(!ans.results.is_empty());
    for m in &ans.results {
        assert!(m.probability > 0.0 && m.probability <= 1.0 + 1e-12);
        // Oracle: Lemma 3 against the disc pdf directly.
        let obj = engine
            .objects()
            .iter()
            .find(|o| o.id == m.id)
            .expect("answer refers to a stored object");
        let pi = issuer.pdf().prob_in_rect(range.at(obj.loc));
        assert!((pi - m.probability).abs() < 1e-12);
    }
    // Constrained version still sound (p-expanded query from the disc
    // catalog is conservative).
    for &qp in &[0.3, 0.7] {
        let c = engine.cipq(&issuer, range, qp, CipqStrategy::PExpanded);
        let expect: Vec<_> = ans
            .results
            .iter()
            .filter(|m| m.probability >= qp)
            .map(|m| m.id)
            .collect();
        let got: Vec<_> = c.results.iter().map(|m| m.id).collect();
        assert_eq!(got, expect, "qp={qp}");
    }
}

#[test]
fn gaussian_object_database_uses_exact_path() {
    use iloc::datagen::gaussian_objects;
    let engine = UncertainEngine::build(gaussian_objects(&long_beach_rects(1_500, 4)));
    let issuer = Issuer::uniform(Rect::centered(Point::new(5_000.0, 5_000.0), 250.0, 250.0));
    let range = RangeSpec::square(500.0);
    let exact = engine.iuq(&issuer, range); // Auto → separable closed form
    assert_eq!(exact.stats.mc_samples, 0, "exact path must not sample");
    let mc = engine.iuq_with(&issuer, range, Integrator::MonteCarlo { samples: 4_000 });
    for m in &exact.results {
        if m.probability > 0.05 {
            let got = mc.probability_of(m.id).expect("present in MC answer");
            assert!(
                (got - m.probability).abs() < 0.05,
                "{}: exact {} vs mc {got}",
                m.id,
                m.probability
            );
        }
    }
    // Constrained pruning works against the (tighter) Gaussian
    // catalogs and stays sound.
    for &qp in &[0.2, 0.5] {
        let a = engine.ciuq(&issuer, range, qp, CiuqStrategy::RTreeMinkowski);
        let b = engine.ciuq(&issuer, range, qp, CiuqStrategy::PtiPExpanded);
        let ids_a: Vec<_> = a.results.iter().map(|m| m.id).collect();
        let ids_b: Vec<_> = b.results.iter().map(|m| m.id).collect();
        assert_eq!(ids_a, ids_b, "qp={qp}");
    }
}

#[test]
fn workload_queries_never_panic_across_space_borders() {
    // Issuer regions straddling the data-space border must work.
    let engine = small_long_beach();
    let range = RangeSpec::square(500.0);
    for c in [
        Point::new(0.0, 0.0),
        Point::new(10_000.0, 10_000.0),
        Point::new(0.0, 5_000.0),
        Point::new(10_000.0, 0.0),
    ] {
        let issuer = Issuer::uniform(Rect::centered(c, 250.0, 250.0));
        let ans = engine.ciuq(&issuer, range, 0.3, CiuqStrategy::PtiPExpanded);
        for m in &ans.results {
            assert!(m.probability >= 0.3);
        }
    }
}
