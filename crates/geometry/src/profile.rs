//! Overlap profiles: the 1-D building block of the exact (closed-form)
//! IUQ evaluator.
//!
//! For a query half-extent `w` and a fixed interval `[a, b]` (one side
//! of the issuer region `U0`), the *overlap profile* is
//!
//! ```text
//! ox(x) = |[x − w, x + w] ∩ [a, b]|
//! ```
//!
//! the length of the overlap between the query's side and `U0`'s side
//! when the query is centred at `x`. It is a trapezoid: zero outside
//! `[a − w, b + w]`, rising with slope 1, a plateau of height
//! `min(2w, b − a)`, then falling with slope −1.
//!
//! Because `Area(R(x,y) ∩ U0) = ox(x) · oy(y)`, the paper's Eq. 8
//! integrand separates for uniform pdfs and the qualification
//! probability becomes a product of two exact 1-D integrals — the
//! "enhanced method" measured in Figure 8.

use crate::interval::Interval;
use crate::piecewise::PiecewiseLinear;

/// Builds the overlap profile `x ↦ |[x−w, x+w] ∩ side|` as a
/// piecewise-linear function.
///
/// `w` must be non-negative and `side` non-empty. Degenerate inputs
/// (`w == 0` or a zero-length side) yield the zero function on the
/// correct support, which makes downstream probabilities vanish exactly
/// as measure theory dictates.
pub fn overlap_profile(w: f64, side: Interval) -> PiecewiseLinear {
    assert!(w >= 0.0, "query half-extent must be non-negative");
    assert!(!side.is_empty(), "issuer side interval must be non-empty");
    let (a, b) = (side.lo, side.hi);
    let plateau = (2.0 * w).min(b - a);
    let x_lo = a - w;
    let x_hi = b + w;
    if x_hi <= x_lo {
        // Only possible when w == 0 and a == b: a single point, zero measure.
        return PiecewiseLinear::zero();
    }
    let mid_lo = (a + w).min(b - w);
    let mid_hi = (a + w).max(b - w);
    let mut knots: Vec<(f64, f64)> = vec![(x_lo, 0.0)];
    if mid_lo > x_lo {
        knots.push((mid_lo, plateau));
    }
    if mid_hi > knots[knots.len() - 1].0 {
        knots.push((mid_hi, plateau));
    }
    if x_hi > knots[knots.len() - 1].0 {
        knots.push((x_hi, 0.0));
    }
    if knots.len() < 2 {
        return PiecewiseLinear::zero();
    }
    PiecewiseLinear::new(knots)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(w: f64, side: Interval, x: f64) -> f64 {
        Interval::centered(x, w).overlap_length(side)
    }

    #[test]
    fn profile_matches_direct_overlap_everywhere() {
        let cases = [
            (2.0, Interval::new(0.0, 10.0)), // wide side, plateau = 2w
            (10.0, Interval::new(0.0, 4.0)), // narrow side, plateau = |side|
            (3.0, Interval::new(-5.0, 1.0)), // negative coordinates
            (2.0, Interval::new(0.0, 4.0)),  // exactly 2w == |side|
        ];
        for (w, side) in cases {
            let f = overlap_profile(w, side);
            let sup = f.support();
            let n = 1000;
            for k in 0..=n {
                let x = sup.lo - 1.0 + (sup.length() + 2.0) * k as f64 / n as f64;
                let expect = brute(w, side, x);
                assert!(
                    (f.eval(x) - expect).abs() < 1e-9,
                    "w={w} side=[{},{}] x={x}: got {} want {expect}",
                    side.lo,
                    side.hi,
                    f.eval(x)
                );
            }
        }
    }

    #[test]
    fn plateau_height_is_min_of_widths() {
        let f = overlap_profile(2.0, Interval::new(0.0, 10.0));
        assert_eq!(f.max_value(), 4.0); // 2w
        let g = overlap_profile(10.0, Interval::new(0.0, 4.0));
        assert_eq!(g.max_value(), 4.0); // side length
    }

    #[test]
    fn support_is_side_expanded_by_w() {
        let f = overlap_profile(3.0, Interval::new(1.0, 5.0));
        assert_eq!(f.support(), Interval::new(-2.0, 8.0));
    }

    #[test]
    fn total_integral_is_2w_times_side_length() {
        // ∫ |[x−w,x+w] ∩ side| dx = 2w · |side| (Fubini on the indicator).
        let w = 2.5;
        let side = Interval::new(1.0, 7.0);
        let f = overlap_profile(w, side);
        assert!((f.integral() - 2.0 * w * side.length()).abs() < 1e-9);
    }

    #[test]
    fn degenerate_w_zero_gives_zero_function() {
        let f = overlap_profile(0.0, Interval::new(0.0, 5.0));
        assert_eq!(f.eval(2.0), 0.0);
        assert_eq!(f.integral(), 0.0);
    }

    #[test]
    fn degenerate_point_side() {
        // A point issuer region: overlap length is 0 almost everywhere …
        let f = overlap_profile(2.0, Interval::new(3.0, 3.0));
        assert_eq!(f.integral(), 0.0);
        // … and the profile is identically zero.
        assert_eq!(f.max_value(), 0.0);
    }
}
