//! U-catalogs: small pre-computed tables of p-bounds (paper Section 5).
//!
//! Storing a p-bound for *every* `p` is impossible, so each object keeps
//! a **U-catalog** — a handful of `(p, p-bound)` tuples. Queries with an
//! arbitrary threshold `Qp` then use the best conservative catalog
//! entry: the largest stored `M ≤ Qp` ("an object pruned by the
//! M-expanded-query must also be pruned by the Qp-expanded-query"), or
//! for Strategy 3 the smallest stored value ≥ `Qp` satisfying a
//! geometric test.

use crate::pbound::PBound;
use crate::pdf::LocationPdf;

/// The paper's experimental setup stores six probability levels
/// (Section 5.2: "we store six probability values and their p-bounds");
/// p-bounds are defined for `p ∈ [0, 0.5]`, giving `{0, 0.1, …, 0.5}`.
pub const DEFAULT_LEVELS: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

/// A sorted table of pre-computed [`PBound`]s for one object.
#[derive(Debug, Clone, PartialEq)]
pub struct UCatalog {
    bounds: Vec<PBound>,
}

impl UCatalog {
    /// Computes a catalog for `pdf` at the given tail-mass levels.
    ///
    /// Levels are sorted and deduplicated; each must lie in `[0, 0.5]`.
    /// Level `0` is always included (the 0-bound — the uncertainty
    /// region itself — anchors every conservative lookup).
    ///
    /// # Panics
    ///
    /// Panics if any level is outside `[0, 0.5]` or non-finite.
    pub fn build(pdf: &dyn LocationPdf, levels: &[f64]) -> Self {
        let mut ls: Vec<f64> = levels.to_vec();
        assert!(
            ls.iter().all(|p| p.is_finite() && (0.0..=0.5).contains(p)),
            "catalog levels must lie in [0, 0.5]"
        );
        ls.push(0.0);
        ls.sort_by(|a, b| a.partial_cmp(b).expect("finite levels"));
        ls.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        let bounds = ls.iter().map(|&p| PBound::compute(pdf, p)).collect();
        UCatalog { bounds }
    }

    /// Computes the paper's default six-level catalog.
    pub fn build_default(pdf: &dyn LocationPdf) -> Self {
        UCatalog::build(pdf, &DEFAULT_LEVELS)
    }

    /// Recomputes this catalog in place for a new pdf at the default
    /// levels, **reusing the bound table's storage**. Equivalent to
    /// replacing `self` with [`UCatalog::build_default`], but free of
    /// heap allocation once the table has reached six entries — the
    /// network serving layer decodes issuers into a long-lived slot on
    /// its per-request hot path through this.
    pub fn rebuild_default(&mut self, pdf: &dyn LocationPdf) {
        self.bounds.clear();
        // DEFAULT_LEVELS is sorted, deduplicated and anchored at 0, so
        // the result matches `build_default` entry for entry.
        self.bounds
            .extend(DEFAULT_LEVELS.iter().map(|&p| PBound::compute(pdf, p)));
    }

    /// All stored bounds, ascending in `p`.
    pub fn bounds(&self) -> &[PBound] {
        &self.bounds
    }

    /// Number of stored levels.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// `true` when the catalog stores no levels (never the case for
    /// catalogs produced by [`UCatalog::build`]).
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// The stored levels, ascending.
    pub fn levels(&self) -> impl Iterator<Item = f64> + '_ {
        self.bounds.iter().map(|b| b.p)
    }

    /// The largest stored entry with `p ≤ qp` — the conservative choice
    /// when a `qp`-bound is needed but not stored (Sections 5.1–5.2).
    ///
    /// Always succeeds because level 0 is always stored; `qp` may exceed
    /// 0.5, in which case the 0.5-entry (if stored) is returned.
    pub fn best_at_most(&self, qp: f64) -> &PBound {
        debug_assert!(qp >= 0.0);
        let idx = self.bounds.partition_point(|b| b.p <= qp);
        &self.bounds[idx.saturating_sub(1).min(self.bounds.len() - 1)]
    }

    /// Stored entries with `p ≥ qp`, ascending — the candidates examined
    /// by pruning Strategy 3 when it looks for `dmin`/`qmin`.
    pub fn at_least(&self, qp: f64) -> impl Iterator<Item = &PBound> + '_ {
        let idx = self.bounds.partition_point(|b| b.p < qp);
        self.bounds[idx..].iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::UniformPdf;
    use iloc_geometry::Rect;

    fn catalog() -> UCatalog {
        let pdf = UniformPdf::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0));
        UCatalog::build_default(&pdf)
    }

    #[test]
    fn default_catalog_has_six_levels() {
        let c = catalog();
        assert_eq!(c.len(), 6);
        let levels: Vec<f64> = c.levels().collect();
        assert_eq!(levels, vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5]);
        assert!(!c.is_empty());
    }

    #[test]
    fn rebuild_default_matches_build_default() {
        let old = UniformPdf::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0));
        let new = UniformPdf::new(Rect::from_coords(5.0, 5.0, 45.0, 25.0));
        let mut c = UCatalog::build_default(&old);
        c.rebuild_default(&new);
        assert_eq!(c, UCatalog::build_default(&new));
    }

    #[test]
    fn zero_level_always_included() {
        let pdf = UniformPdf::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0));
        let c = UCatalog::build(&pdf, &[0.3]);
        assert_eq!(c.levels().next(), Some(0.0));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn duplicate_levels_are_merged() {
        let pdf = UniformPdf::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0));
        let c = UCatalog::build(&pdf, &[0.2, 0.2, 0.0, 0.4]);
        let levels: Vec<f64> = c.levels().collect();
        assert_eq!(levels, vec![0.0, 0.2, 0.4]);
    }

    #[test]
    fn best_at_most_picks_floor_entry() {
        let c = catalog();
        assert_eq!(c.best_at_most(0.0).p, 0.0);
        assert_eq!(c.best_at_most(0.15).p, 0.1);
        assert_eq!(c.best_at_most(0.3).p, 0.3);
        assert_eq!(c.best_at_most(0.99).p, 0.5);
    }

    #[test]
    fn at_least_iterates_ceiling_entries() {
        let c = catalog();
        let ps: Vec<f64> = c.at_least(0.25).map(|b| b.p).collect();
        assert_eq!(ps, vec![0.3, 0.4, 0.5]);
        assert_eq!(c.at_least(0.6).count(), 0);
        assert_eq!(c.at_least(0.0).count(), 6);
    }

    #[test]
    fn bounds_nest_within_catalog() {
        let c = catalog();
        for pair in c.bounds().windows(2) {
            assert!(pair[0].rect.contains_rect(pair[1].rect));
        }
    }

    #[test]
    #[should_panic(expected = "levels must lie in [0, 0.5]")]
    fn rejects_out_of_range_level() {
        let pdf = UniformPdf::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0));
        let _ = UCatalog::build(&pdf, &[0.7]);
    }
}
