//! The `cluster` load-generation scenario: the same mixed and steady
//! windows as [`crate::net`], but driven through an `iloc-router`
//! scatter-gathering over N server nodes.
//!
//! The router speaks the same wire protocol as a server, so the entire
//! `net` harness — mixed query/update window, percentiles, the
//! alloc-gated steady window — runs against it unchanged; the gap
//! between the `net` and `cluster` series in
//! `BENCH_batch_throughput.json` is the price of the extra hop and the
//! fan-out/fan-in. The steady window gates the **router's** counter
//! (the stats frame a router answers reports its own allocator), so
//! `--check-allocs` proves the scatter-gather query path is
//! allocation-free once warm, exactly as it does for a single server.
//!
//! The catalogs are partitioned across nodes by the same
//! [`iloc_core::serve::shard_of`] id hash the in-process sharded
//! engine uses — node order is shard order, the deployment the
//! cluster-oracle test suite proves bit-identical.

use std::net::SocketAddr;

use iloc_core::serve::shard_of;
use iloc_datagen::{california_points, long_beach_rects, uniform_objects};
use iloc_router::{Router, RouterConfig};
use iloc_server::client::{Client, ClientError};
use iloc_server::protocol::NodeHealth;
use iloc_server::server::QueryServer;
use iloc_uncertainty::{PointObject, UncertainObject};

use crate::net::{self, NetConfig, NetReport};

/// Tunables for one cluster loadgen run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Server nodes behind the router (in-process runs).
    pub nodes: usize,
    /// The driven workload — identical to the single-server scenario.
    pub net: NetConfig,
}

impl ClusterConfig {
    /// CI-smoke scale: 3 nodes, the quick `net` workload.
    pub fn quick() -> Self {
        ClusterConfig {
            nodes: 3,
            net: NetConfig::quick(),
        }
    }

    /// Paper-scale datasets behind 3 nodes.
    pub fn full() -> Self {
        ClusterConfig {
            nodes: 3,
            net: NetConfig::full(),
        }
    }
}

/// What one cluster run measured: the `net` report plus the per-node
/// health section from the router's final stats frame.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// The workload measurements (same schema as a single server).
    pub net: NetReport,
    /// Per-node health: connectivity, epochs, routed/merged counters.
    pub nodes: Vec<NodeHealth>,
}

/// Spawns N in-process loopback nodes plus a router, drives the `net`
/// workload through the router, and tears everything down.
pub fn run_in_process(cfg: &ClusterConfig) -> Result<ClusterReport, ClientError> {
    let n = cfg.nodes.max(1);
    let (points, uncertain) = build_partitions(&cfg.net, n);
    let node_shards = (cfg.net.shards / n).max(1);
    let mut servers = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for (p, u) in points.into_iter().zip(uncertain) {
        let node = QueryServer::new(p, u, node_shards);
        let handle = node
            .start(&cfg.net.server_config())
            .map_err(ClientError::Io)?;
        addrs.push(handle.addr());
        servers.push(node);
        handles.push(handle);
    }
    let router = Router::start(&RouterConfig::loopback(addrs)).map_err(ClientError::Io)?;

    let result = run_against(router.addr(), cfg);

    router.shutdown();
    for handle in handles {
        handle.shutdown();
    }
    result
}

/// Drives a router at `addr` through the `net` windows and reads the
/// per-node health off its stats frame.
pub fn run_against(addr: SocketAddr, cfg: &ClusterConfig) -> Result<ClusterReport, ClientError> {
    let report = net::run_against(addr, &cfg.net)?;
    let mut probe = Client::connect(addr)?;
    let nodes = probe.stats()?.nodes;
    Ok(ClusterReport { net: report, nodes })
}

/// The `net` catalogs — same datasets, sizes and seed as
/// [`net::build_server`] — split across `n` nodes by the shard hash.
fn build_partitions(
    cfg: &NetConfig,
    n: usize,
) -> (Vec<Vec<PointObject>>, Vec<Vec<UncertainObject>>) {
    let mut points: Vec<Vec<PointObject>> = (0..n).map(|_| Vec::new()).collect();
    let mut uncertain: Vec<Vec<UncertainObject>> = (0..n).map(|_| Vec::new()).collect();
    for (k, p) in california_points(cfg.points, cfg.seed)
        .into_iter()
        .enumerate()
    {
        let object = PointObject::new(k as u64, p);
        points[shard_of(object.id, n)].push(object);
    }
    for object in uniform_objects(&long_beach_rects(cfg.uncertain, cfg.seed + 1)) {
        uncertain[shard_of(object.id, n)].push(object);
    }
    (points, uncertain)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_in_process_cluster_loadgen_round_trips() {
        let cfg = ClusterConfig {
            nodes: 2,
            net: NetConfig {
                clients: 2,
                shards: 2,
                event_loops: 0,
                max_connections: 0,
                points: 400,
                uncertain: 100,
                queries_per_client: 12,
                update_rounds: 2,
                updates_per_round: 8,
                steady_queries: 16,
                warmup: 4,
                seed: 7,
            },
        };
        let report = run_in_process(&cfg).expect("cluster loadgen");
        assert_eq!(report.net.clients, 2);
        assert_eq!(report.net.queries, 24);
        assert_eq!(report.net.commits, 2);
        assert_eq!(report.net.updates_submitted, 16);
        // The router reported every node healthy and carrying load.
        assert_eq!(report.nodes.len(), 2);
        for node in &report.nodes {
            assert!(node.connected);
            assert!(node.merged > 0);
            assert!(node.routed >= node.merged);
        }
        // Test binaries don't register the counting allocator.
        assert!(!report.net.alloc_counting);
    }
}
