//! Standalone query server over the standard datasets.
//!
//! ```text
//! cargo run --release -p iloc-server --bin iloc-server -- [flags]
//!
//! --addr HOST:PORT   bind address        (default 127.0.0.1:7207)
//! --points N         point catalog size  (default 62,556 — California)
//! --uncertain N      uncertain catalog   (default 53,145 — Long Beach)
//! --shards N         shards per catalog  (default 4)
//! --workers N        worker threads      (default 8)
//! --seed N           dataset seed        (default 2007)
//! --idle-timeout S   reap connections idle for S seconds (default
//!                    300; 0 disables) — abandoned subscriber sockets
//!                    must not pin worker slots; clients keep a quiet
//!                    connection alive with PING
//! --quick            ~10x smaller catalogs (CI smoke)
//! ```
//!
//! The process registers the counting global allocator, so its stats
//! frames report real allocation counts — a remote load generator can
//! gate on "zero steady-state allocations per request" without sharing
//! the server's address space (the CI smoke job does).

use iloc_datagen::{california_points, long_beach_rects, uniform_objects};
use iloc_server::alloc_count::{self, CountingAllocator};
use iloc_server::server::{QueryServer, ServerConfig};
use iloc_uncertainty::PointObject;

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn main() {
    alloc_count::mark_installed();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let number = |name: &str, default: usize| -> usize {
        value(name)
            .map(|v| v.parse().unwrap_or_else(|_| die(name)))
            .unwrap_or(default)
    };

    let quick = flag("--quick");
    let addr = value("--addr").unwrap_or_else(|| "127.0.0.1:7207".to_string());
    let points = number(
        "--points",
        if quick {
            6_200
        } else {
            iloc_datagen::CALIFORNIA_SIZE
        },
    );
    let uncertain = number(
        "--uncertain",
        if quick {
            5_300
        } else {
            iloc_datagen::LONG_BEACH_SIZE
        },
    );
    let shards = number("--shards", 4);
    let workers = number("--workers", 8);
    let seed = number("--seed", 2007) as u64;
    let idle_timeout = match number("--idle-timeout", 300) {
        0 => None,
        secs => Some(std::time::Duration::from_secs(secs as u64)),
    };

    eprintln!(
        "building catalogs: {points} points (California), {uncertain} uncertain (Long Beach), \
         {shards} shards"
    );
    let point_objects: Vec<PointObject> = california_points(points, seed)
        .into_iter()
        .enumerate()
        .map(|(k, p)| PointObject::new(k as u64, p))
        .collect();
    let uncertain_objects = uniform_objects(&long_beach_rects(uncertain, seed + 1));

    let server = QueryServer::new(point_objects, uncertain_objects, shards);
    let config = ServerConfig {
        addr,
        workers,
        idle_timeout,
        ..ServerConfig::loopback()
    };
    let handle = server.start(&config).unwrap_or_else(|e| {
        eprintln!("bind failed: {e}");
        std::process::exit(1);
    });
    // Announce readiness on stdout so wrappers can wait for it.
    println!("listening on {}", handle.addr());
    handle.join();
}

fn die(name: &str) -> ! {
    eprintln!("invalid value for {name}");
    std::process::exit(2);
}
