//! # iloc — imprecise location-dependent query evaluation
//!
//! Facade crate re-exporting the whole `iloc` workspace: a from-scratch
//! Rust reproduction of *Chen & Cheng, "Efficient Evaluation of
//! Imprecise Location-Dependent Queries", ICDE 2007*.
//!
//! ## Quickstart
//!
//! ```
//! use iloc::prelude::*;
//!
//! // A database of certain points and a query issuer whose own location
//! // is only known to lie in a 500×500 box.
//! let points = vec![Point::new(4_800.0, 5_100.0), Point::new(9_000.0, 100.0)];
//! let issuer = Issuer::uniform(Rect::centered(Point::new(5_000.0, 5_000.0), 250.0, 250.0));
//! let query = RangeSpec::new(500.0, 500.0);
//!
//! let engine = PointEngine::build(points);
//! let answers = engine.ipq(&issuer, query);
//! // The nearby point qualifies with probability 1, the far one is pruned.
//! assert_eq!(answers.results.len(), 1);
//! assert!((answers.results[0].probability - 1.0).abs() < 1e-9);
//! ```
//!
//! See the `examples/` directory for complete scenarios and
//! `crates/bench` for the reproduction of every figure in the paper.

pub use iloc_core as core;
pub use iloc_datagen as datagen;
pub use iloc_geometry as geometry;
pub use iloc_index as index;
pub use iloc_router as router;
pub use iloc_server as server;
pub use iloc_uncertainty as uncertainty;

/// Convenient glob-import surface for applications.
pub mod prelude {
    pub use iloc_core::prelude::*;
    pub use iloc_geometry::{Interval, Point, Rect};
    pub use iloc_uncertainty::prelude::*;
}
