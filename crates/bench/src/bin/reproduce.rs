//! Reproduces every figure of Chen & Cheng (ICDE 2007) plus the
//! DESIGN.md ablations.
//!
//! ```text
//! reproduce [targets...] [--quick] [--csv DIR]
//!
//! targets: fig8 fig9 fig10 fig11 fig12 fig13
//!          integrators catalog index strategies continuous
//!          figures (fig8–fig13)   ablations (the other five)
//!          all (default)
//! --quick:    ~10× smaller datasets and query counts
//! --csv DIR:  additionally write one CSV per experiment into DIR
//! ```

use std::time::Instant;

use iloc_bench::experiments::{ablations, fig08, fig09, fig10, fig11, fig12, fig13};
use iloc_bench::{Scale, TestBed};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv_dir: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let mut skip_next = false;
    let mut targets: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--csv" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(String::as_str)
        .collect();
    if targets.is_empty() {
        targets.push("all");
    }
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv output directory");
    }

    let scale = if quick {
        Scale::quick()
    } else {
        Scale::paper()
    };
    println!(
        "iloc reproduction harness — {} scale ({} points, {} uncertain objects, {} queries/point)",
        if quick { "quick" } else { "paper" },
        scale.point_count,
        scale.uncertain_count,
        scale.queries,
    );

    let t0 = Instant::now();
    let bed = TestBed::build(scale);
    println!(
        "testbed built in {:.1}s (California R-tree + Long Beach R-tree/PTI with U-catalogs)",
        t0.elapsed().as_secs_f64()
    );

    let wants = |name: &str, group: &str| {
        targets
            .iter()
            .any(|t| *t == name || *t == group || *t == "all")
    };
    let save = |name: &str, x_name: &str, rows: &[iloc_bench::Row]| {
        if let Some(dir) = &csv_dir {
            let path = dir.join(format!("{name}.csv"));
            iloc_bench::harness::write_csv(&path, x_name, rows)
                .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
            println!("   → {}", path.display());
        }
    };

    if wants("fig8", "figures") {
        save("fig08_basic_vs_enhanced", "u", &fig08::run(&bed));
    }
    if wants("fig9", "figures") {
        save("fig09_ipq", "u", &fig09::run(&bed));
    }
    if wants("fig10", "figures") {
        save("fig10_iuq", "u", &fig10::run(&bed));
    }
    if wants("fig11", "figures") {
        save("fig11_cipq", "qp", &fig11::run(&bed));
    }
    if wants("fig12", "figures") {
        save("fig12_ciuq", "qp", &fig12::run(&bed));
    }
    if wants("fig13", "figures") {
        save("fig13_gaussian_mc", "qp", &fig13::run(&bed));
    }
    if wants("integrators", "ablations") {
        save("ablation_integrators", "x", &ablations::integrators(&bed));
    }
    if wants("catalog", "ablations") {
        save(
            "ablation_catalog",
            "levels",
            &ablations::catalog_sizes(&bed),
        );
    }
    if wants("index", "ablations") {
        save("ablation_index", "x", &ablations::index_choice(&bed));
    }
    if wants("strategies", "ablations") {
        save(
            "ablation_strategies",
            "x",
            &ablations::pruning_strategies(&bed),
        );
    }
    if wants("continuous", "ablations") {
        save(
            "ablation_continuous",
            "slack",
            &ablations::continuous_slack(&bed),
        );
    }
    if wants("gaussian", "ablations") {
        save(
            "ablation_gaussian_objects",
            "x",
            &ablations::gaussian_objects(&bed),
        );
        save(
            "ablation_gaussian_pruning",
            "x",
            &ablations::gaussian_pruning(&bed),
        );
    }

    println!();
    println!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
