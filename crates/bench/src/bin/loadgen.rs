//! Load generator for the network serving layer.
//!
//! ```text
//! cargo run --release -p iloc-bench --bin loadgen -- [flags]
//!
//! --addr HOST:PORT  drive an external server (e.g. the `iloc-server`
//!                   binary); without it an in-process loopback server
//!                   is spawned
//! --quick           CI-smoke scale (default: full paper scale)
//! --clients N       query connections            (default 4/8)
//! --shards N        shards per catalog           (in-process only)
//! --workers N       server worker threads        (in-process only)
//! --queries N       queries per client (mixed window)
//! --rounds N        update batches during the window
//! --updates N       updates per batch
//! --steady N        queries in the alloc-gated steady window
//! --seed N          workload seed (default 2007)
//! --check-allocs    exit non-zero unless the steady window performed
//!                   exactly zero server-side allocations per request
//! ```
//!
//! The allocation gate reads the **server's own counter** over the
//! wire (stats frames bracketing the steady window), so it works
//! identically against the in-process server and a separate
//! `iloc-server` process — the CI smoke job runs the latter.

use std::net::SocketAddr;

use iloc_bench::net::{run_against, run_in_process, NetConfig};
use iloc_server::alloc_count::{self, CountingAllocator};

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn main() {
    alloc_count::mark_installed();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let number = |name: &str, default: usize| -> usize {
        value(name)
            .map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid value for {name}: {v}");
                    std::process::exit(2);
                })
            })
            .unwrap_or(default)
    };

    let quick = flag("--quick");
    let mut cfg = if quick {
        NetConfig::quick()
    } else {
        NetConfig::full()
    };
    cfg.clients = number("--clients", cfg.clients);
    cfg.shards = number("--shards", cfg.shards);
    cfg.workers = number("--workers", cfg.workers);
    cfg.points = number("--points", cfg.points);
    cfg.uncertain = number("--uncertain", cfg.uncertain);
    cfg.queries_per_client = number("--queries", cfg.queries_per_client);
    cfg.update_rounds = number("--rounds", cfg.update_rounds);
    cfg.updates_per_round = number("--updates", cfg.updates_per_round);
    cfg.steady_queries = number("--steady", cfg.steady_queries);
    cfg.seed = number("--seed", cfg.seed as usize) as u64;

    let report = match value("--addr") {
        Some(addr) => {
            let addr: SocketAddr = addr.parse().unwrap_or_else(|e| {
                eprintln!("invalid --addr {addr}: {e}");
                std::process::exit(2);
            });
            eprintln!(
                "loadgen: driving external server at {addr} with {} clients",
                cfg.clients
            );
            run_against(addr, &cfg)
        }
        None => {
            eprintln!(
                "loadgen: in-process loopback server ({} points, {} uncertain, {} shards, {} workers)",
                cfg.points,
                cfg.uncertain,
                cfg.shards,
                cfg.resolved_workers()
            );
            run_in_process(&cfg)
        }
    }
    .unwrap_or_else(|e| {
        eprintln!("loadgen failed: {e}");
        std::process::exit(1);
    });

    println!(
        "net: {} queries from {} clients in {:.3}s -> {:.0} q/s (p50 {:.1}us, p99 {:.1}us)",
        report.queries,
        report.clients,
        report.elapsed.as_secs_f64(),
        report.qps(),
        report.p50.as_secs_f64() * 1e6,
        report.p99.as_secs_f64() * 1e6,
    );
    println!(
        "     {} updates in {} commits interleaved; {} matches returned",
        report.updates_submitted, report.commits, report.results_total
    );
    if report.alloc_counting {
        println!(
            "     steady window: {} queries, {:.3} server allocations/request",
            report.steady_queries, report.steady_allocs_per_request
        );
    } else {
        println!(
            "     steady window: {} queries (server does not count allocations)",
            report.steady_queries
        );
    }

    if flag("--check-allocs") {
        if !report.alloc_counting {
            eprintln!("FAIL: --check-allocs needs a server that counts allocations");
            std::process::exit(1);
        }
        if report.steady_allocs_per_request > 0.0 {
            eprintln!(
                "FAIL: steady-state request path performed {:.3} allocations/request (expected 0)",
                report.steady_allocs_per_request
            );
            std::process::exit(1);
        }
        eprintln!("OK: zero steady-state allocations per request");
    }
}
