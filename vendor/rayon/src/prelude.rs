//! Glob-import surface mirroring `rayon::prelude`.

pub use crate::iter::{IntoParallelRefIterator, ParallelIterator, ParallelSlice};
