//! Adversarial durability tests: the WAL and checkpoint decoders must
//! survive anything the filesystem can throw at them — torn tails,
//! flipped bits, duplicated and gapped epochs, empty and leftover
//! files, random garbage — **without panicking**, and always recover
//! a consistent prefix of the committed history.
//!
//! The happy path (clean shutdown, reopen, bit-identical answers) and
//! the cut-at-every-offset oracle live in `tests/dynamic.rs`; this
//! file is the hostile half of the contract.

use iloc::core::durable::{DurableCatalog, FsyncPolicy, StoreConfig};
use iloc::core::pipeline::UncertainRequest;
use iloc::core::serve::{ShardedEngine, Update};
use iloc::datagen::{PointUpdate, PointUpdateGen, UpdateMix};
use iloc::prelude::*;
use iloc::uncertainty::{
    DiscPdf, ObjectId, PdfKind, PointObject, TruncatedGaussianPdf, UncertainObject, UniformPdf,
};

// --- Scaffolding -----------------------------------------------------

fn temp_store(tag: &str) -> std::path::PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let dir =
        std::env::temp_dir().join(format!("iloc-durable-{tag}-{}-{nanos}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp store");
    dir
}

/// Point batches 1..=N over a small deterministic catalog; batch `k`
/// commits as epoch `k`.
fn point_fixture(rounds: usize) -> (Vec<PointObject>, Vec<Vec<Update<PointObject>>>) {
    let (base, mut gen) = PointUpdateGen::over_california(300, 13, UpdateMix::balanced());
    let objects: Vec<PointObject> = base
        .iter()
        .enumerate()
        .map(|(k, &p)| PointObject::new(k as u64, p))
        .collect();
    let batches = (0..rounds)
        .map(|_| {
            gen.stream(24)
                .into_iter()
                .map(|u| match u {
                    PointUpdate::Arrive { id, loc } => Update::Arrive(PointObject::new(id, loc)),
                    PointUpdate::Depart { id } => Update::Depart(ObjectId(id)),
                    PointUpdate::Move { id, to } => Update::Move(PointObject::new(id, to)),
                })
                .collect()
        })
        .collect();
    (objects, batches)
}

/// Builds a durable point store with `rounds` committed epochs and
/// only the base (epoch 0) checkpoint, so the WAL holds one record per
/// epoch. Returns the store directory and the deterministic history.
fn committed_store(
    tag: &str,
    rounds: usize,
) -> (
    std::path::PathBuf,
    Vec<PointObject>,
    Vec<Vec<Update<PointObject>>>,
) {
    let (objects, batches) = point_fixture(rounds);
    let dir = temp_store(tag);
    let seed = objects.clone();
    let (catalog, _) =
        DurableCatalog::<PointEngine>::open(&StoreConfig::new(&dir), 2, move || seed)
            .expect("open fresh");
    for batch in &batches {
        catalog.submit_all(batch.iter().cloned());
        catalog.commit().expect("commit");
    }
    assert_eq!(catalog.epoch(), rounds as u64);
    drop(catalog);
    (dir, objects, batches)
}

/// Live-set size after applying the first `r` batches — the cheap
/// consistency probe for "recovered exactly a prefix".
fn prefix_len(objects: &[PointObject], batches: &[Vec<Update<PointObject>>], r: usize) -> usize {
    let engine = ShardedEngine::<PointEngine>::build(objects.to_vec(), 1);
    for batch in &batches[..r] {
        engine.submit_all(batch.iter().cloned());
        engine.commit();
    }
    engine.len()
}

/// The single WAL segment of a base-checkpoint-only store.
fn the_wal(dir: &std::path::Path) -> std::path::PathBuf {
    let mut wals: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .expect("read store")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    assert_eq!(wals.len(), 1, "expected exactly one WAL segment");
    wals.pop().unwrap()
}

/// `(start, end)` byte ranges of every complete `[len][crc][payload]`
/// record in the buffer.
fn record_ranges(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let end = pos + 8 + len;
        if end > bytes.len() {
            break;
        }
        out.push((pos, end));
        pos = end;
    }
    out
}

/// CRC-32 (IEEE, reflected) — reimplemented here so the tests can
/// forge records with *valid* checksums over hostile payloads.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn reopen(
    dir: &std::path::Path,
    shards: usize,
) -> (
    DurableCatalog<PointEngine>,
    iloc::core::durable::CatalogRecovery,
) {
    DurableCatalog::<PointEngine>::open(&StoreConfig::new(dir), shards, || {
        panic!("an existing store must never re-run its seed")
    })
    .expect("recover")
}

// --- Tests -----------------------------------------------------------

#[test]
fn reopen_never_reseeds_once_the_base_checkpoint_exists() {
    let dir = temp_store("reseed");
    let objects: Vec<PointObject> = (0..64)
        .map(|k| PointObject::new(k as u64, Point::new(k as f64, -(k as f64))))
        .collect();
    let n = objects.len();
    let (catalog, recovery) =
        DurableCatalog::<PointEngine>::open(&StoreConfig::new(&dir), 2, move || objects)
            .expect("open fresh");
    assert!(!recovery.recovered);
    assert_eq!(recovery.epoch, 0);
    drop(catalog);

    // The seed closure must not run: the fresh open wrote an epoch-0
    // base checkpoint, and recovery starts from disk.
    let (recovered, recovery) = reopen(&dir, 8);
    assert!(recovery.recovered);
    assert_eq!(recovery.epoch, 0);
    assert_eq!(recovered.len(), n);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn uncertain_catalog_round_trips_every_pdf_kind() {
    let region = |k: u64| {
        Rect::centered(
            Point::new(100.0 * k as f64, 50.0 * k as f64),
            40.0 + k as f64,
            30.0 + k as f64,
        )
    };
    let objects: Vec<UncertainObject> = (0..30u64)
        .map(|k| match k % 3 {
            0 => UncertainObject::new(k, PdfKind::Uniform(UniformPdf::new(region(k)))),
            1 => UncertainObject::new(
                k,
                PdfKind::Gaussian(TruncatedGaussianPdf::new(
                    region(k),
                    region(k).center(),
                    9.0 + k as f64,
                    7.0 + k as f64,
                )),
            ),
            _ => UncertainObject::new(
                k,
                PdfKind::Disc(DiscPdf::new(region(k).center(), 12.0 + k as f64)),
            ),
        })
        .collect();
    let updates: Vec<Update<UncertainObject>> = (30..40u64)
        .map(|k| {
            Update::Arrive(UncertainObject::new(
                k,
                PdfKind::Uniform(UniformPdf::new(region(k))),
            ))
        })
        .chain((0..5u64).map(|k| Update::Depart(ObjectId(k * 3))))
        .collect();

    let dir = temp_store("pdf");
    let seed = objects.clone();
    let (catalog, _) =
        DurableCatalog::<UncertainEngine>::open(&StoreConfig::new(&dir), 2, move || seed)
            .expect("open fresh");
    catalog.submit_all(updates.iter().cloned());
    catalog.commit().expect("commit");
    catalog.checkpoint().expect("checkpoint");
    drop(catalog);

    // Reopen from the checkpoint alone and compare bit-identically
    // against a transient rebuild at the same shard count. (Unlike the
    // point catalog, mixed-pdf refinement is only pinned bit-identical
    // for a fixed shard count: disc/gaussian evaluation is
    // shard-composition sensitive even without durability in the
    // picture, so cross-shard-count identity is a uniform-pdf-only
    // property — see `tests/dynamic.rs`.)
    let (recovered, recovery) =
        DurableCatalog::<UncertainEngine>::open(&StoreConfig::new(&dir), 2, || {
            panic!("must recover from the checkpoint")
        })
        .expect("recover");
    assert!(recovery.recovered);
    assert_eq!(recovery.epoch, 1);
    let reference = ShardedEngine::<UncertainEngine>::build(objects, 2);
    reference.submit_all(updates);
    reference.commit();
    assert_eq!(recovered.len(), reference.len());
    let (got, want) = (recovered.snapshot(), reference.snapshot());
    for k in 0..12u64 {
        let issuer = Issuer::uniform(Rect::centered(
            Point::new(100.0 * k as f64, 50.0 * k as f64),
            200.0,
            200.0,
        ));
        let request = UncertainRequest::iuq(issuer, RangeSpec::square(150.0));
        assert!(
            got.execute_one(&request)
                .same_matches(&want.execute_one(&request)),
            "query {k} diverged after pdf round trip"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wal_bit_flips_never_panic_and_recover_an_exact_prefix() {
    const ROUNDS: usize = 8;
    let (dir, objects, batches) = committed_store("flip", ROUNDS);
    let wal = the_wal(&dir);
    let pristine = std::fs::read(&wal).expect("read WAL");
    let ranges = record_ranges(&pristine);
    assert_eq!(ranges.len(), ROUNDS);
    let lens: Vec<usize> = (0..=ROUNDS)
        .map(|r| prefix_len(&objects, &batches, r))
        .collect();

    // Flip one bit at a stride of positions covering headers and
    // payloads of every record. CRC-32 catches any single-bit error,
    // so recovery must always stop at the damaged record — epoch and
    // live-set size match the exact prefix before it.
    for pos in (0..pristine.len()).step_by(13) {
        let mut damaged = pristine.clone();
        damaged[pos] ^= 0x10;
        std::fs::write(&wal, &damaged).expect("write damaged WAL");
        let (recovered, recovery) = reopen(&dir, 2);
        let damaged_record = ranges
            .iter()
            .position(|&(s, e)| (s..e).contains(&pos))
            .unwrap_or(ROUNDS);
        assert_eq!(
            recovered.epoch(),
            damaged_record as u64,
            "flip at {pos}: must replay exactly the records before the damage"
        );
        assert!(recovery.recovered);
        assert_eq!(recovered.len(), lens[damaged_record], "flip at {pos}");
        // Recovery truncated the damage away; put the history back for
        // the next iteration.
        std::fs::write(&wal, &pristine).expect("restore WAL");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_base_checkpoint_falls_back_to_the_wal_and_is_counted() {
    const ROUNDS: usize = 6;
    let (dir, objects, batches) = committed_store("ckptflip", ROUNDS);
    let ckpt = std::fs::read_dir(&dir)
        .expect("read store")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".bin"))
        })
        .expect("base checkpoint");
    let mut bytes = std::fs::read(&ckpt).expect("read checkpoint");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&ckpt, &bytes).expect("write corrupt checkpoint");

    // No valid checkpoint remains, but the WAL covers epoch 1..=N from
    // the deterministic seed — so this time the seed closure *does*
    // run, and the full history replays on top of it.
    let seed = objects.clone();
    let (recovered, recovery) =
        DurableCatalog::<PointEngine>::open(&StoreConfig::new(&dir), 2, move || seed)
            .expect("recover");
    assert!(recovery.recovered);
    assert_eq!(recovery.invalid_checkpoints, 1);
    assert_eq!(recovery.checkpoint_epoch, 0);
    assert_eq!(recovered.epoch(), ROUNDS as u64);
    assert_eq!(recovered.len(), prefix_len(&objects, &batches, ROUNDS));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn duplicate_records_are_skipped_as_stale() {
    const ROUNDS: usize = 6;
    let (dir, objects, batches) = committed_store("dup", ROUNDS);
    let wal = the_wal(&dir);
    let mut bytes = std::fs::read(&wal).expect("read WAL");
    let ranges = record_ranges(&bytes);
    // Re-append copies of epochs 3 and 6 after the end — the shape a
    // segment-rotation race could leave behind.
    let (s3, e3) = ranges[2];
    let dup3 = bytes[s3..e3].to_vec();
    let (s6, e6) = ranges[5];
    let dup6 = bytes[s6..e6].to_vec();
    bytes.extend_from_slice(&dup3);
    bytes.extend_from_slice(&dup6);
    std::fs::write(&wal, &bytes).expect("write WAL with duplicates");

    let (recovered, recovery) = reopen(&dir, 2);
    assert_eq!(recovered.epoch(), ROUNDS as u64);
    assert_eq!(recovery.stale_records, 2);
    assert_eq!(recovered.len(), prefix_len(&objects, &batches, ROUNDS));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn an_epoch_gap_cuts_the_log_and_stays_cut() {
    const ROUNDS: usize = 6;
    let (dir, objects, batches) = committed_store("gap", ROUNDS);
    let wal = the_wal(&dir);
    let mut bytes = std::fs::read(&wal).expect("read WAL");
    let ranges = record_ranges(&bytes);
    // Splice out epoch 4: epochs 5 and 6 now gap the sequence.
    let (s4, e4) = ranges[3];
    bytes.drain(s4..e4);
    std::fs::write(&wal, &bytes).expect("write gapped WAL");

    let (recovered, recovery) = reopen(&dir, 2);
    assert_eq!(
        recovered.epoch(),
        3,
        "replay must stop at the gap, not guess past it"
    );
    assert!(recovery.wal_truncated);
    assert_eq!(recovered.len(), prefix_len(&objects, &batches, 3));
    drop(recovered);

    // The cut is physical: a second recovery sees a clean 3-epoch log
    // and has nothing left to truncate.
    let (recovered, recovery) = reopen(&dir, 8);
    assert_eq!(recovered.epoch(), 3);
    assert!(!recovery.wal_truncated);
    assert_eq!(recovery.stale_records, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn garbage_payload_with_a_valid_checksum_cuts_the_log() {
    const ROUNDS: usize = 5;
    let (dir, objects, batches) = committed_store("forged", ROUNDS);
    let wal = the_wal(&dir);
    let mut bytes = std::fs::read(&wal).expect("read WAL");
    let ranges = record_ranges(&bytes);
    // Forge record 2: same length, hostile payload, *correct* CRC —
    // the decoder itself, not the checksum, must reject it.
    let (start, end) = ranges[1];
    for b in &mut bytes[start + 8..end] {
        *b = 0xAA;
    }
    let crc = crc32(&bytes[start + 8..end]);
    bytes[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
    std::fs::write(&wal, &bytes).expect("write forged WAL");

    let (recovered, recovery) = reopen(&dir, 2);
    assert_eq!(
        recovered.epoch(),
        1,
        "replay must stop at the forged record"
    );
    assert!(recovery.wal_truncated);
    assert_eq!(recovered.len(), prefix_len(&objects, &batches, 1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_and_leftover_files_are_tolerated() {
    const ROUNDS: usize = 4;
    let (dir, objects, batches) = committed_store("leftover", ROUNDS);
    // The debris a crash (or a confused operator) can leave behind:
    // an empty late WAL segment, an empty checkpoint claiming a newer
    // epoch, a torn checkpoint temp file, and an unrelated file.
    std::fs::write(dir.join("wal-00000000000000000050.log"), b"").unwrap();
    std::fs::write(dir.join("ckpt-00000000000000000099.bin"), b"").unwrap();
    std::fs::write(
        dir.join("ckpt-00000000000000000098.tmp"),
        b"torn half-write",
    )
    .unwrap();
    std::fs::write(dir.join("notes.txt"), b"operator scribble").unwrap();

    let (recovered, recovery) = reopen(&dir, 2);
    assert_eq!(recovered.epoch(), ROUNDS as u64);
    assert!(
        recovery.invalid_checkpoints >= 1,
        "the empty checkpoint must be counted, not trusted"
    );
    assert_eq!(recovered.len(), prefix_len(&objects, &batches, ROUNDS));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn random_bytes_as_a_wal_segment_never_panic() {
    const ROUNDS: usize = 3;
    let (dir, objects, batches) = committed_store("noise", ROUNDS);
    let wal = the_wal(&dir);
    // Deterministic noise (xorshift64*) in place of the real log.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let noise: Vec<u8> = (0..4096)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
        })
        .collect();
    std::fs::write(&wal, &noise).expect("write noise");

    let (recovered, recovery) = reopen(&dir, 2);
    assert!(recovery.recovered);
    assert_eq!(
        recovered.epoch(),
        0,
        "noise holds no valid records; only the base checkpoint survives"
    );
    assert_eq!(recovered.len(), prefix_len(&objects, &batches, 0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fsync_policies_off_and_every_n_still_replay_after_a_clean_drop() {
    for (tag, policy) in [
        ("off", FsyncPolicy::Off),
        ("everyn", FsyncPolicy::EveryN(3)),
    ] {
        let (objects, batches) = point_fixture(5);
        let dir = temp_store(tag);
        let config = StoreConfig {
            dir: dir.clone(),
            fsync: policy,
        };
        let seed = objects.clone();
        let (catalog, _) =
            DurableCatalog::<PointEngine>::open(&config, 2, move || seed).expect("open fresh");
        for batch in &batches {
            catalog.submit_all(batch.iter().cloned());
            catalog.commit().expect("commit");
        }
        drop(catalog);

        // Relaxed fsync weakens what survives a *power cut*, not what
        // a clean process exit leaves in the page cache.
        let (recovered, recovery) =
            DurableCatalog::<PointEngine>::open(&config, 2, || panic!("must not reseed"))
                .expect("recover");
        assert!(recovery.recovered);
        assert_eq!(recovered.epoch(), 5);
        assert_eq!(recovered.len(), prefix_len(&objects, &batches, 5));
        std::fs::remove_dir_all(&dir).ok();
    }
}
