//! The **Refine** stage: qualification-probability evaluation.
//!
//! [`ProbabilityEvaluator`] unifies the paper's two evaluation methods
//! behind one interface, selected per query:
//!
//! * [`DualityEvaluator`] — the Section 4.2 enhanced method: Lemma 3
//!   for point objects, Lemma 4 / Eq. 8 for uncertain objects, both
//!   computed through the context's [`crate::integrate::Integrator`]
//!   (closed form, grid, or Monte-Carlo);
//! * [`BasicEvaluator`] — the Section 3.3 baseline integrating over the
//!   issuer region (Eq. 2 / Eq. 4) on a midpoint grid.

use iloc_geometry::Point;
use iloc_uncertainty::{LocationPdf, ObjectId, PdfKind, PointObject, UncertainObject};

use crate::eval::basic;
use crate::eval::constrained::{
    strategy1_prunes, strategy2_prunes, strategy3_prunes, PruneContext,
};
use crate::integrate::{closed, Integrator};
use crate::stats::QueryStats;

use super::{ExecutionContext, PreparedQuery};

/// Reusable lane buffers for the SoA refine pass, held inside
/// [`super::QueryScratch`] so a warm context refines whole batches
/// without allocating.
///
/// The duality path gathers surviving candidates into
/// `PdfKind`-homogeneous lanes (uniform geometry as packed corner
/// quadruples, separable and fallback candidates as position lists);
/// the basic
/// path reuses `grid` for its hoisted issuer-sample plan. Buffers are
/// cleared — never shrunk — between queries and carry no information
/// across them.
#[derive(Debug, Clone, Default)]
pub(crate) struct RefineLanes {
    /// Uniform-pdf lane: one `[lo_x, lo_y, hi_x, hi_y]` chunk per
    /// candidate. A single 32-byte push per gathered candidate (the
    /// batch kernels re-derive the area from the corners), which keeps
    /// the gather loop short enough for the out-of-order core to
    /// overlap the random object-table reads it is really paying for.
    uni: Vec<[f64; 4]>,
    /// Kernel output per uniform candidate (mixed batches only; a
    /// homogeneous batch writes straight into the caller's output).
    uni_out: Vec<f64>,
    /// Output positions of the axis-separable (Gaussian) lane.
    sep_pos: Vec<u32>,
    /// Output positions of everything else, refined through the full
    /// integrator in survivor order (so Monte-Carlo fallbacks consume
    /// the RNG exactly as the scalar loop would).
    fallback_pos: Vec<u32>,
    /// Hoisted midpoint-grid plan of the basic evaluator: issuer
    /// sample point and density per cell.
    grid: Vec<(Point, f64)>,
}

impl RefineLanes {
    fn clear(&mut self) {
        self.uni.clear();
        self.uni_out.clear();
        self.sep_pos.clear();
        self.fallback_pos.clear();
    }
}

/// Objects the pipeline can process: anything carrying a stable id for
/// the result set.
pub trait PipelineObject: Sync {
    /// The object's identifier as reported in [`crate::result::Match`].
    fn object_id(&self) -> ObjectId;

    /// Applies the built-in Section-5.2 pruning tests to this object,
    /// recording any elimination in `stats`. The default keeps the
    /// object — only objects with U-catalogs (uncertain objects) can be
    /// pruned without an integral.
    #[inline]
    fn try_section_5_2(&self, ctx: &PruneContext<'_>, stats: &mut QueryStats) -> bool {
        let _ = (ctx, stats);
        false
    }
}

impl PipelineObject for PointObject {
    fn object_id(&self) -> ObjectId {
        self.id
    }
}

impl PipelineObject for UncertainObject {
    fn object_id(&self) -> ObjectId {
        self.id
    }

    /// The paper's Section 5.2 stack in its published order —
    /// Strategy 2 (cheapest), then Strategy 1, then the Strategy 3
    /// product rule — with per-strategy elimination counters.
    #[inline]
    fn try_section_5_2(&self, ctx: &PruneContext<'_>, stats: &mut QueryStats) -> bool {
        if strategy2_prunes(self, ctx) {
            stats.pruned_s2 += 1;
            return true;
        }
        if strategy1_prunes(self, ctx) {
            stats.pruned_s1 += 1;
            return true;
        }
        if strategy3_prunes(self, ctx) {
            stats.pruned_s3 += 1;
            return true;
        }
        false
    }
}

/// Computes the qualification probability `pi` of one candidate.
///
/// Implementations draw any randomness from the context's RNG and
/// record their work in the context's stats, so a pipeline run is
/// deterministic per seed and fully cost-accounted.
pub trait ProbabilityEvaluator<O>: Sync {
    /// Refines one candidate.
    fn probability(&self, query: &PreparedQuery<'_>, object: &O, ctx: &mut ExecutionContext)
        -> f64;

    /// Refines a whole batch of surviving candidates, writing one
    /// probability per survivor (in survivor order) into `out`.
    ///
    /// The default is the scalar loop — evaluator implementations that
    /// can batch (the duality path's SoA closed-form lanes, the basic
    /// path's hoisted sample grid) override it. Overrides must be
    /// *observably identical* to the default: same probabilities (bit
    /// for bit where no Monte-Carlo reordering occurs), same stats
    /// counters, same RNG consumption.
    fn probabilities(
        &self,
        query: &PreparedQuery<'_>,
        objects: &[O],
        survivors: &[u32],
        ctx: &mut ExecutionContext,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        for &slot in survivors {
            let pi = self.probability(query, &objects[slot as usize], ctx);
            out.push(pi);
        }
    }
}

/// The enhanced evaluator built on query–data duality (Section 4.2,
/// Lemmas 2–4), delegating the integral to the context's integrator.
#[derive(Debug, Clone, Copy, Default)]
pub struct DualityEvaluator;

impl ProbabilityEvaluator<PointObject> for DualityEvaluator {
    fn probability(
        &self,
        query: &PreparedQuery<'_>,
        object: &PointObject,
        ctx: &mut ExecutionContext,
    ) -> f64 {
        ctx.integrator.point_probability(
            query.issuer.pdf(),
            query.range,
            object.loc,
            &mut ctx.rng,
            &mut ctx.stats,
        )
    }
}

impl ProbabilityEvaluator<UncertainObject> for DualityEvaluator {
    fn probability(
        &self,
        query: &PreparedQuery<'_>,
        object: &UncertainObject,
        ctx: &mut ExecutionContext,
    ) -> f64 {
        ctx.integrator.object_probability(
            query.issuer.pdf(),
            query.range,
            object.pdf(),
            query.expanded,
            &mut ctx.rng,
            &mut ctx.stats,
        )
    }

    /// The SoA fast path (IUQ's hot loop): with `Integrator::Auto` and
    /// a uniform issuer, survivors are gathered into
    /// `PdfKind`-homogeneous lanes and the closed forms evaluate over
    /// slices with all per-query invariants hoisted into a
    /// [`closed::UniformHeader`].
    ///
    /// Results are bit-identical to the scalar loop: the uniform lane
    /// runs [`closed::uniform_uniform_batch`] (same arithmetic,
    /// reassociation-free), the Gaussian lane runs the hoisted
    /// separable form, and every other pdf goes through the full
    /// integrator **in survivor order**, so Monte-Carlo fallbacks see
    /// the exact RNG stream of the scalar loop (closed-form candidates
    /// never consume randomness).
    fn probabilities(
        &self,
        query: &PreparedQuery<'_>,
        objects: &[UncertainObject],
        survivors: &[u32],
        ctx: &mut ExecutionContext,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        let batchable =
            ctx.integrator == Integrator::Auto && query.issuer.pdf().uniform_region().is_some();
        if !batchable || survivors.is_empty() {
            for &slot in survivors {
                let pi = self.probability(query, &objects[slot as usize], ctx);
                out.push(pi);
            }
            return;
        }
        let u0 = query.issuer.pdf().uniform_region().expect("checked above");
        let header = closed::UniformHeader::new(u0, query.range, query.expanded);
        // The lanes are taken out of the scratch so the context stays
        // borrowable by the fallback integrator; capacity survives.
        let mut lanes = std::mem::take(&mut ctx.scratch.lanes);
        lanes.clear();
        out.resize(survivors.len(), 0.0);
        for (pos, &slot) in survivors.iter().enumerate() {
            match objects[slot as usize].pdf() {
                PdfKind::Uniform(u) => {
                    let r = u.region();
                    lanes.uni.push([r.min.x, r.min.y, r.max.x, r.max.y]);
                }
                PdfKind::Gaussian(_) => lanes.sep_pos.push(pos as u32),
                PdfKind::Disc(_) | PdfKind::Shared(_) => lanes.fallback_pos.push(pos as u32),
            }
        }
        // Uniform lane: one batched kernel call. A homogeneous batch
        // (the IUQ hot case) writes straight into `out`; a mixed batch
        // goes through `uni_out` and scatters by walking positions in
        // step with the (ascending) sep/fallback position lists.
        if lanes.sep_pos.is_empty() && lanes.fallback_pos.is_empty() {
            closed::uniform_uniform_batch(&header, &lanes.uni, out);
        } else if !lanes.uni.is_empty() {
            lanes.uni_out.resize(lanes.uni.len(), 0.0);
            closed::uniform_uniform_batch(&header, &lanes.uni, &mut lanes.uni_out);
            let (mut k, mut s, mut f) = (0usize, 0usize, 0usize);
            for (pos, pi) in out.iter_mut().enumerate() {
                if lanes.sep_pos.get(s) == Some(&(pos as u32)) {
                    s += 1;
                } else if lanes.fallback_pos.get(f) == Some(&(pos as u32)) {
                    f += 1;
                } else {
                    *pi = lanes.uni_out[k];
                    k += 1;
                }
            }
            debug_assert_eq!(k, lanes.uni.len());
        }
        // Separable lane: hoisted closed form, still per candidate
        // (erf dominates) but without rebuilding the profiles.
        for &pos in &lanes.sep_pos {
            let object = &objects[survivors[pos as usize] as usize];
            let PdfKind::Gaussian(g) = object.pdf() else {
                unreachable!("separable lane only holds Gaussians");
            };
            out[pos as usize] = closed::uniform_separable_hoisted(&header, g)
                .expect("gaussian marginals are closed-form");
        }
        // The closed-form lanes bypassed the integrator's accounting.
        ctx.stats.prob_evals += (lanes.uni.len() + lanes.sep_pos.len()) as u64;
        // Fallback lane: the full integrator, in survivor order.
        for &pos in &lanes.fallback_pos {
            let object = &objects[survivors[pos as usize] as usize];
            out[pos as usize] = ctx.integrator.object_probability(
                query.issuer.pdf(),
                query.range,
                object.pdf(),
                query.expanded,
                &mut ctx.rng,
                &mut ctx.stats,
            );
        }
        ctx.scratch.lanes = lanes;
    }
}

/// The refine stage as a statically-dispatched enum: the paper's two
/// evaluation methods behind one `Copy` value, so the per-candidate
/// loop compiles to a direct (inlinable) call instead of a virtual one.
///
/// This is what the engines install; the [`ProbabilityEvaluator`]
/// trait remains for plans refining through custom evaluators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvaluatorKind {
    /// The Section 4.2 enhanced method ([`DualityEvaluator`]).
    Duality,
    /// The Section 3.3 baseline ([`BasicEvaluator`]).
    Basic {
        /// Sampling-grid resolution per axis.
        per_axis: usize,
    },
}

impl<O> ProbabilityEvaluator<O> for EvaluatorKind
where
    DualityEvaluator: ProbabilityEvaluator<O>,
    BasicEvaluator: ProbabilityEvaluator<O>,
{
    #[inline]
    fn probability(
        &self,
        query: &PreparedQuery<'_>,
        object: &O,
        ctx: &mut ExecutionContext,
    ) -> f64 {
        match *self {
            EvaluatorKind::Duality => DualityEvaluator.probability(query, object, ctx),
            EvaluatorKind::Basic { per_axis } => {
                BasicEvaluator { per_axis }.probability(query, object, ctx)
            }
        }
    }

    #[inline]
    fn probabilities(
        &self,
        query: &PreparedQuery<'_>,
        objects: &[O],
        survivors: &[u32],
        ctx: &mut ExecutionContext,
        out: &mut Vec<f64>,
    ) {
        match *self {
            EvaluatorKind::Duality => {
                DualityEvaluator.probabilities(query, objects, survivors, ctx, out)
            }
            EvaluatorKind::Basic { per_axis } => {
                BasicEvaluator { per_axis }.probabilities(query, objects, survivors, ctx, out)
            }
        }
    }
}

/// The Section 3.3 baseline: direct numerical integration over the
/// issuer region with `per_axis`² midpoint samples (the expensive
/// method of Figure 8).
#[derive(Debug, Clone, Copy)]
pub struct BasicEvaluator {
    /// Sampling-grid resolution per axis.
    pub per_axis: usize,
}

impl ProbabilityEvaluator<PointObject> for BasicEvaluator {
    fn probability(
        &self,
        query: &PreparedQuery<'_>,
        object: &PointObject,
        ctx: &mut ExecutionContext,
    ) -> f64 {
        basic::point_probability(
            query.issuer.pdf(),
            query.range,
            object.loc,
            self.per_axis,
            &mut ctx.stats,
        )
    }

    /// Hoists the issuer's midpoint samples and densities out of the
    /// per-candidate loop: `per_axis²` density evaluations once per
    /// query instead of once per candidate, identical accumulation.
    fn probabilities(
        &self,
        query: &PreparedQuery<'_>,
        objects: &[PointObject],
        survivors: &[u32],
        ctx: &mut ExecutionContext,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        if survivors.is_empty() {
            return;
        }
        let mut grid = std::mem::take(&mut ctx.scratch.lanes.grid);
        let da = basic::fill_grid_plan(query.issuer.pdf(), self.per_axis, &mut grid);
        for &slot in survivors {
            out.push(basic::point_probability_planned(
                &grid,
                da,
                query.range,
                objects[slot as usize].loc,
                &mut ctx.stats,
            ));
        }
        ctx.scratch.lanes.grid = grid;
    }
}

impl ProbabilityEvaluator<UncertainObject> for BasicEvaluator {
    fn probability(
        &self,
        query: &PreparedQuery<'_>,
        object: &UncertainObject,
        ctx: &mut ExecutionContext,
    ) -> f64 {
        basic::object_probability(
            query.issuer.pdf(),
            query.range,
            object.pdf(),
            self.per_axis,
            &mut ctx.stats,
        )
    }

    /// Same hoist as the point override: one issuer sample plan per
    /// query, shared by every candidate's Eq. 4 integration.
    fn probabilities(
        &self,
        query: &PreparedQuery<'_>,
        objects: &[UncertainObject],
        survivors: &[u32],
        ctx: &mut ExecutionContext,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        if survivors.is_empty() {
            return;
        }
        let mut grid = std::mem::take(&mut ctx.scratch.lanes.grid);
        let da = basic::fill_grid_plan(query.issuer.pdf(), self.per_axis, &mut grid);
        for &slot in survivors {
            out.push(basic::object_probability_planned(
                &grid,
                da,
                query.range,
                objects[slot as usize].pdf(),
                &mut ctx.stats,
            ));
        }
        ctx.scratch.lanes.grid = grid;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::Integrator;
    use crate::query::{Issuer, RangeSpec};
    use iloc_geometry::{Point, Rect};
    use iloc_uncertainty::UniformPdf;

    #[test]
    fn evaluators_agree_on_uniform_point_case() {
        let issuer = Issuer::uniform(Rect::from_coords(0.0, 0.0, 100.0, 100.0));
        let range = RangeSpec::square(30.0);
        let query = PreparedQuery::new(&issuer, range);
        let object = PointObject::new(0u64, Point::new(110.0, 40.0));
        let mut ctx = ExecutionContext::new(Integrator::Auto);
        let dual = DualityEvaluator.probability(&query, &object, &mut ctx);
        let basic = BasicEvaluator { per_axis: 220 }.probability(&query, &object, &mut ctx);
        assert!(dual > 0.0 && dual < 1.0);
        assert!((dual - basic).abs() < 5e-3, "dual {dual} vs basic {basic}");
    }

    #[test]
    fn evaluators_agree_on_uniform_object_case() {
        let issuer = Issuer::uniform(Rect::from_coords(0.0, 0.0, 80.0, 80.0));
        let range = RangeSpec::square(25.0);
        let query = PreparedQuery::new(&issuer, range);
        let object = UncertainObject::new(
            1u64,
            UniformPdf::new(Rect::from_coords(70.0, 10.0, 130.0, 70.0)),
        );
        let mut ctx = ExecutionContext::new(Integrator::Auto);
        let dual = DualityEvaluator.probability(&query, &object, &mut ctx);
        let basic = BasicEvaluator { per_axis: 160 }.probability(&query, &object, &mut ctx);
        assert!(dual > 0.0 && dual < 1.0);
        assert!((dual - basic).abs() < 5e-3, "dual {dual} vs basic {basic}");
        // The duality path with a uniform issuer must not sample.
        assert_eq!(ctx.stats.mc_samples, 0);
    }
}
