//! Experiment configuration: the paper's Table 2 defaults plus dataset
//! construction.

use iloc_core::PointEngine;
use iloc_core::UncertainEngine;
use iloc_datagen::{
    california_points, gaussian_objects, long_beach_rects, point_objects, uniform_objects,
    CALIFORNIA_SIZE, LONG_BEACH_SIZE,
};

/// Paper Table 2: default issuer uncertainty half-size `u`.
pub const DEFAULT_U: f64 = 250.0;
/// Paper Table 2: default range half-size `w`.
pub const DEFAULT_W: f64 = 500.0;
/// Paper Section 6.1: queries averaged per data point.
pub const PAPER_QUERIES: usize = 500;

/// Experiment scale. `paper()` matches the publication's cardinalities;
/// `quick()` is a ~10× reduction for smoke runs and CI.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Point-object count (California).
    pub point_count: usize,
    /// Uncertain-object count (Long Beach).
    pub uncertain_count: usize,
    /// Queries averaged per configuration.
    pub queries: usize,
    /// Queries used for the *basic method* runs, which cost hundreds of
    /// integrand evaluations per candidate (Figure 8 would otherwise
    /// take hours at paper scale).
    pub basic_queries: usize,
    /// Queries used for the Monte-Carlo runs of Figure 13 (hundreds of
    /// samples per candidate).
    pub mc_queries: usize,
    /// Dataset seed.
    pub seed: u64,
}

impl Scale {
    /// Full paper-scale datasets and query counts.
    pub fn paper() -> Self {
        Scale {
            point_count: CALIFORNIA_SIZE,
            uncertain_count: LONG_BEACH_SIZE,
            queries: PAPER_QUERIES,
            basic_queries: 20,
            mc_queries: 100,
            seed: 2007,
        }
    }

    /// Reduced scale for smoke tests / CI.
    pub fn quick() -> Self {
        Scale {
            point_count: 6_200,
            uncertain_count: 5_300,
            queries: 60,
            basic_queries: 4,
            mc_queries: 15,
            seed: 2007,
        }
    }
}

/// The built experiment databases, shared across figures.
pub struct TestBed {
    /// Experiment scale used to build the bed.
    pub scale: Scale,
    /// California points under a `PointEngine`.
    pub california: PointEngine,
    /// Long Beach rectangles as uniform-pdf uncertain objects.
    pub long_beach: UncertainEngine,
}

impl TestBed {
    /// Builds the point and uncertain databases (uniform pdfs — the
    /// default model; Figure 13 builds its Gaussian variant on demand
    /// via [`TestBed::gaussian_points_issuerless`]).
    pub fn build(scale: Scale) -> Self {
        let pts = california_points(scale.point_count, scale.seed);
        let california = PointEngine::from_objects(point_objects(&pts));
        let rects = long_beach_rects(scale.uncertain_count, scale.seed + 1);
        let long_beach = UncertainEngine::build(uniform_objects(&rects));
        TestBed {
            scale,
            california,
            long_beach,
        }
    }

    /// Builds the Gaussian-pdf variant of the Long Beach database
    /// (used by the non-uniform ablations).
    pub fn gaussian_long_beach(&self) -> UncertainEngine {
        let rects = long_beach_rects(self.scale.uncertain_count, self.scale.seed + 1);
        UncertainEngine::build(gaussian_objects(&rects))
    }

    /// Placeholder-free helper for Figure 13: the point database is
    /// reused as-is; only the *issuer* becomes Gaussian there.
    pub fn gaussian_points_issuerless(&self) -> &PointEngine {
        &self.california
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_testbed_builds() {
        let bed = TestBed::build(Scale {
            point_count: 500,
            uncertain_count: 400,
            queries: 5,
            basic_queries: 2,
            mc_queries: 2,
            seed: 1,
        });
        assert_eq!(bed.california.len(), 500);
        assert_eq!(bed.long_beach.len(), 400);
    }
}
