//! `ShardedEngine`, its epoch snapshots, and the per-worker
//! `ShardServer` serving loop. See the [module docs](super) for the
//! snapshot-consistency invariant.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use iloc_geometry::Rect;

use crate::integrate::Integrator;
use crate::pipeline::{execute_batch, BatchEngine, ExecutionContext};
use crate::result::QueryAnswer;
use crate::stats::QueryStats;

use super::{shard_of, ServeEngine, Update};

/// One immutable epoch of the whole sharded catalog. Cloning is two
/// atomic increments; every clone reads the same object set forever.
#[derive(Debug, Clone)]
pub struct Snapshot<E> {
    epoch: u64,
    shards: Arc<Vec<Arc<E>>>,
}

impl<E: ServeEngine> Snapshot<E> {
    /// The epoch this snapshot was committed at (0 = the build).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total live objects across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// `true` when no shard holds an object.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Live objects in one shard.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard].len()
    }

    /// Per-shard live-object counts in shard order (what the serving
    /// layer's stats frame reports; also handy for eyeballing the hash
    /// partitioning balance).
    pub fn shard_sizes(&self) -> impl Iterator<Item = usize> + '_ {
        self.shards.iter().map(|s| s.len())
    }

    /// The per-shard engines (each a complete single-node engine over
    /// its partition).
    pub fn shards(&self) -> &[Arc<E>] {
        &self.shards
    }

    /// Answers one request with a fresh context: fan-out to every
    /// shard, fan-in merged in id order.
    pub fn execute_one(&self, request: &E::Request) -> QueryAnswer {
        BatchEngine::execute_one(self, request)
    }

    /// Answers a request slice in parallel on all cores; answers are
    /// bit-identical to issuing each request sequentially.
    pub fn execute_batch(&self, requests: &[E::Request]) -> Vec<QueryAnswer> {
        execute_batch(self, requests)
    }

    /// The shared fan-out/fan-in: runs `request` on every shard
    /// through `ctx`, merging per-shard matches (disjoint id sets,
    /// each already id-sorted) into `answer` in global id order via
    /// [`crate::result::sort_matches`] — the same public merge
    /// discipline the cluster router applies to per-node answers, so
    /// remote scatter-gather stays bit-identical to this in-process
    /// path — and summing the cost counters. `partial` is the caller's
    /// reusable per-shard answer buffer.
    fn fan_out_into(
        &self,
        request: &E::Request,
        ctx: &mut ExecutionContext,
        partial: &mut QueryAnswer,
        answer: &mut QueryAnswer,
    ) {
        let start = Instant::now();
        answer.results.clear();
        let mut stats = QueryStats::new();
        for shard in self.shards.iter() {
            shard.execute_one_into(request, ctx, partial);
            answer.results.extend_from_slice(&partial.results);
            stats.absorb(&partial.stats);
        }
        crate::result::sort_matches(&mut answer.results);
        answer.stats = stats;
        answer.stats.elapsed = start.elapsed();
    }
}

impl<E: ServeEngine> BatchEngine for Snapshot<E> {
    type Request = E::Request;

    fn execute_one_into(
        &self,
        request: &E::Request,
        ctx: &mut ExecutionContext,
        answer: &mut QueryAnswer,
    ) {
        // The per-shard partial lives in the context's scratch so a
        // warm worker reuses it across its whole chunk; it is taken
        // out for the duration of the fan-out because the per-shard
        // executions need the context mutably.
        let mut partial = std::mem::take(&mut ctx.scratch.shard_partial);
        self.fan_out_into(request, ctx, &mut partial, answer);
        ctx.scratch.shard_partial = partial;
    }
}

/// A per-worker serving loop bound to one snapshot: owns a long-lived
/// context and per-shard answer buffer, so a steady-state query
/// through a warm server performs **no heap allocation** (the same
/// invariant the single-engine hot path has; the throughput bench's
/// `mixed` scenario runs on this).
#[derive(Debug)]
pub struct ShardServer<E: ServeEngine> {
    snapshot: Snapshot<E>,
    ctx: ExecutionContext,
    partial: QueryAnswer,
}

impl<E: ServeEngine> ShardServer<E> {
    /// A server for `snapshot` with cold buffers.
    pub fn new(snapshot: Snapshot<E>) -> Self {
        ShardServer {
            snapshot,
            ctx: ExecutionContext::new(Integrator::Auto),
            partial: QueryAnswer::default(),
        }
    }

    /// The snapshot this server reads.
    pub fn snapshot(&self) -> &Snapshot<E> {
        &self.snapshot
    }

    /// Follows a newer epoch, keeping the warm buffers.
    pub fn rebind(&mut self, snapshot: Snapshot<E>) {
        self.snapshot = snapshot;
    }

    /// Answers one request into `answer` (cleared first);
    /// allocation-free once buffers have grown to workload size.
    pub fn execute_into(&mut self, request: &E::Request, answer: &mut QueryAnswer) {
        self.snapshot
            .fan_out_into(request, &mut self.ctx, &mut self.partial, answer);
    }
}

/// What one [`ShardedEngine::commit`] applied.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommitReport {
    /// The epoch now current (unchanged when nothing was pending).
    pub epoch: u64,
    /// Arrivals inserted.
    pub arrivals: usize,
    /// Departures that removed a live object.
    pub departures: usize,
    /// Moves applied (including moves of unknown ids, which upsert).
    pub moves: usize,
    /// Departures whose id was not live (no-ops).
    pub missed_departures: usize,
    /// Updates applied per shard, in shard order (empty for an empty
    /// commit). Sums to [`CommitReport::applied`].
    pub per_shard: Vec<usize>,
    /// The merged **dirty rectangle**: the hull of every footprint
    /// this commit touched — arrival extents, the pre-update extents
    /// of departures, and both the old and new extents of moves.
    /// `None` when nothing spatial changed (an empty commit, or one of
    /// missed departures only). Subscription wake-up stabs standing
    /// queries with this: a safe envelope disjoint from it cannot have
    /// had its answer changed by this epoch.
    pub dirty: Option<Rect>,
}

impl CommitReport {
    /// Total updates this commit applied (arrivals + departures +
    /// moves; missed departures were consumed but changed nothing).
    pub fn applied(&self) -> usize {
        self.arrivals + self.departures + self.moves
    }

    /// Grows the dirty rectangle to cover `extent`.
    fn dirty_absorb(&mut self, extent: Rect) {
        self.dirty = Some(match self.dirty {
            None => extent,
            Some(d) => d.hull(extent),
        });
    }
}

/// How many recent commits a [`ShardedEngine`] remembers for
/// [`ShardedEngine::dirt_since`]: enough that any serving loop polling
/// at frame granularity sees every epoch, bounded so a long-running
/// server never grows the history.
pub const DIRT_HISTORY: usize = 64;

/// One committed epoch's spatial footprint, as remembered by the
/// engine's bounded dirt history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochDirt {
    /// The epoch this commit published.
    pub epoch: u64,
    /// Its merged dirty rectangle (see [`CommitReport::dirty`]).
    pub dirty: Option<Rect>,
    /// Updates it applied.
    pub applied: usize,
}

/// A dynamic, hash-sharded serving engine. See the
/// [module docs](super) for the design and the snapshot-consistency
/// invariant.
#[derive(Debug)]
pub struct ShardedEngine<E: ServeEngine> {
    /// The current epoch, swapped wholesale at commit (the lock guards
    /// only the pointer swap / clone, never query execution).
    current: RwLock<Snapshot<E>>,
    /// Updates buffered for the next epoch.
    pending: Mutex<Vec<Update<E::Object>>>,
    /// The previous commit's drained update buffer, kept so repeated
    /// submit/commit cycles stop re-growing `pending` from empty (the
    /// commit path's dominant steady-state allocation).
    pending_spare: Mutex<Vec<Update<E::Object>>>,
    /// Serializes commits (readers are never blocked by it).
    commit_lock: Mutex<()>,
    /// Bounded history of the last [`DIRT_HISTORY`] commits' spatial
    /// footprints, consumed by subscription wake-up.
    recent_dirt: Mutex<VecDeque<EpochDirt>>,
}

impl<E: ServeEngine> ShardedEngine<E> {
    /// Partitions `objects` by id hash across `shard_count` shards and
    /// builds one engine per shard (epoch 0).
    ///
    /// # Panics
    ///
    /// Panics when `shard_count` is zero.
    pub fn build(objects: Vec<E::Object>, shard_count: usize) -> Self {
        Self::build_at(objects, shard_count, 0)
    }

    /// [`ShardedEngine::build`], but the initial snapshot publishes as
    /// `epoch` instead of 0. Crash recovery uses this to rebuild an
    /// engine at a checkpoint's epoch before replaying the log suffix;
    /// everything else should build at 0.
    ///
    /// # Panics
    ///
    /// Panics when `shard_count` is zero.
    pub fn build_at(objects: Vec<E::Object>, shard_count: usize, epoch: u64) -> Self {
        assert!(shard_count > 0, "shard count must be positive");
        let mut partitions: Vec<Vec<E::Object>> = (0..shard_count).map(|_| Vec::new()).collect();
        for object in objects {
            partitions[shard_of(E::object_id(&object), shard_count)].push(object);
        }
        let shards: Vec<Arc<E>> = partitions
            .into_iter()
            .map(|p| Arc::new(E::build_from(p)))
            .collect();
        ShardedEngine {
            current: RwLock::new(Snapshot {
                epoch,
                shards: Arc::new(shards),
            }),
            pending: Mutex::new(Vec::new()),
            pending_spare: Mutex::new(Vec::new()),
            commit_lock: Mutex::new(()),
            recent_dirt: Mutex::new(VecDeque::with_capacity(DIRT_HISTORY)),
        }
    }

    /// The current epoch's snapshot (two atomic increments; never
    /// blocks on a running commit's apply phase).
    pub fn snapshot(&self) -> Snapshot<E> {
        self.current.read().expect("snapshot lock poisoned").clone()
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// Live objects in the current epoch.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// `true` when the current epoch holds no objects.
    pub fn is_empty(&self) -> bool {
        self.snapshot().is_empty()
    }

    /// Buffers one update for the next epoch (applied at
    /// [`ShardedEngine::commit`]; invisible to queries until then).
    pub fn submit(&self, update: Update<E::Object>) {
        self.pending
            .lock()
            .expect("pending lock poisoned")
            .push(update);
    }

    /// Buffers a batch of updates for the next epoch.
    pub fn submit_all(&self, updates: impl IntoIterator<Item = Update<E::Object>>) {
        self.pending
            .lock()
            .expect("pending lock poisoned")
            .extend(updates);
    }

    /// Updates buffered but not yet committed.
    pub fn pending_len(&self) -> usize {
        self.pending.lock().expect("pending lock poisoned").len()
    }

    /// Applies every buffered update copy-on-write and publishes the
    /// next epoch: affected shards are cloned once, mutated through
    /// their incremental index maintenance, and swapped in atomically.
    /// Outstanding snapshots keep reading their own epoch. Commits
    /// serialize with each other; queries proceed throughout.
    pub fn commit(&self) -> CommitReport {
        let _serialize = self.commit_lock.lock().expect("commit lock poisoned");
        // Swap the pending buffer out against the spare (empty, but
        // capacity-retaining) one instead of `mem::take`-ing it, so
        // submit/commit cycles reuse one allocation in steady state.
        let mut updates = std::mem::take(&mut *self.pending_spare.lock().expect("spare poisoned"));
        std::mem::swap(
            &mut updates,
            &mut *self.pending.lock().expect("pending lock poisoned"),
        );
        if updates.is_empty() {
            *self.pending_spare.lock().expect("spare poisoned") = updates;
            // Early out before touching the shard list: an empty commit
            // costs two lock round-trips and no epoch (serving loops
            // commit on a timer, which often fires with nothing
            // pending).
            return CommitReport {
                epoch: self.current.read().expect("snapshot lock poisoned").epoch,
                ..CommitReport::default()
            };
        }
        let base = self.snapshot();
        let mut report = CommitReport {
            epoch: base.epoch,
            ..CommitReport::default()
        };
        let shard_count = base.shards.len();
        report.per_shard = vec![0; shard_count];
        let mut shards: Vec<Arc<E>> = base.shards.as_ref().clone();
        for update in updates.drain(..) {
            match update {
                Update::Arrive(object) => {
                    let s = shard_of(E::object_id(&object), shard_count);
                    report.dirty_absorb(E::bounds_of(&object));
                    Arc::make_mut(&mut shards[s]).insert_object(object);
                    report.arrivals += 1;
                    report.per_shard[s] += 1;
                }
                Update::Depart(id) => {
                    let s = shard_of(id, shard_count);
                    let shard = Arc::make_mut(&mut shards[s]);
                    let old = shard.object_bounds(id);
                    if shard.remove_object(id) {
                        if let Some(old) = old {
                            report.dirty_absorb(old);
                        }
                        report.departures += 1;
                        report.per_shard[s] += 1;
                    } else {
                        report.missed_departures += 1;
                    }
                }
                Update::Move(object) => {
                    let s = shard_of(E::object_id(&object), shard_count);
                    let shard = Arc::make_mut(&mut shards[s]);
                    // A move dirties both footprints: where the object
                    // was, and where it lands.
                    if let Some(old) = shard.object_bounds(E::object_id(&object)) {
                        report.dirty_absorb(old);
                    }
                    report.dirty_absorb(E::bounds_of(&object));
                    // insert_object upserts, so a move replaces the
                    // live object and a move of an unknown id arrives.
                    shard.insert_object(object);
                    report.moves += 1;
                    report.per_shard[s] += 1;
                }
            }
        }
        report.epoch = base.epoch + 1;
        *self.current.write().expect("snapshot lock poisoned") = Snapshot {
            epoch: report.epoch,
            shards: Arc::new(shards),
        };
        {
            let mut recent = self.recent_dirt.lock().expect("dirt lock poisoned");
            if recent.len() == DIRT_HISTORY {
                recent.pop_front();
            }
            recent.push_back(EpochDirt {
                epoch: report.epoch,
                dirty: report.dirty,
                applied: report.applied(),
            });
        }
        *self.pending_spare.lock().expect("spare poisoned") = updates;
        report
    }

    /// Appends the spatial footprints of every *retained* commit after
    /// `epoch` (ascending) to `out`. Returns `true` when the appended
    /// entries are a gapless record starting at `epoch + 1` — the
    /// caller may then advance its watermark to the last entry's epoch
    /// (a commit that has published its snapshot but not yet logged its
    /// dirt is simply not returned; the next poll picks it up).
    /// `false` means the caller fell more than [`DIRT_HISTORY`]
    /// commits behind and must treat **everything** as dirty.
    pub fn dirt_since(&self, epoch: u64, out: &mut Vec<EpochDirt>) -> bool {
        let recent = self.recent_dirt.lock().expect("dirt lock poisoned");
        let Some(first) = recent.front() else {
            // Nothing logged yet: trivially gapless, nothing returned.
            return true;
        };
        for dirt in recent.iter().filter(|d| d.epoch > epoch) {
            out.push(*dirt);
        }
        // Gapless iff the caller's watermark reaches into (or past)
        // the retained window.
        epoch + 1 >= first.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PointEngine;
    use crate::pipeline::PointRequest;
    use crate::query::{Issuer, RangeSpec};
    use iloc_geometry::{Point, Rect};
    use iloc_uncertainty::{ObjectId, PointObject};

    fn grid_objects(n_side: u64) -> Vec<PointObject> {
        (0..n_side * n_side)
            .map(|k| {
                PointObject::new(
                    k,
                    Point::new((k % n_side) as f64 * 50.0, (k / n_side) as f64 * 50.0),
                )
            })
            .collect()
    }

    fn ipq_at(x: f64, y: f64) -> PointRequest {
        PointRequest::ipq(
            Issuer::uniform(Rect::centered(Point::new(x, y), 60.0, 60.0)),
            RangeSpec::square(90.0),
        )
    }

    #[test]
    fn sharded_answers_match_single_engine() {
        let objects = grid_objects(20);
        let single = PointEngine::from_objects(objects.clone());
        for shards in [1usize, 2, 8] {
            let sharded: ShardedEngine<PointEngine> = ShardedEngine::build(objects.clone(), shards);
            assert_eq!(sharded.len(), objects.len());
            let snapshot = sharded.snapshot();
            for request in [
                ipq_at(500.0, 500.0),
                ipq_at(10.0, 10.0),
                ipq_at(950.0, 80.0),
            ] {
                let want = single.execute_one(&request);
                let got = snapshot.execute_one(&request);
                assert!(got.same_matches(&want), "{shards} shards diverged");
                // Merged matches are in id order.
                assert!(got.results.windows(2).all(|w| w[0].id < w[1].id));
            }
        }
    }

    #[test]
    fn snapshots_are_immutable_across_commits() {
        let sharded: ShardedEngine<PointEngine> = ShardedEngine::build(grid_objects(10), 4);
        let request = ipq_at(250.0, 250.0);
        let old = sharded.snapshot();
        let before = old.execute_one(&request);
        assert!(!before.results.is_empty());

        // Depart everything the query saw.
        for m in &before.results {
            sharded.submit(Update::Depart(m.id));
        }
        let report = sharded.commit();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.departures, before.results.len());

        // The old snapshot still answers from epoch 0.
        assert!(old.execute_one(&request).same_matches(&before));
        // The new epoch sees the departures.
        assert!(sharded.snapshot().execute_one(&request).results.is_empty());
    }

    #[test]
    fn moves_relocate_objects_atomically() {
        let sharded: ShardedEngine<PointEngine> = ShardedEngine::build(grid_objects(10), 2);
        sharded.submit(Update::Move(PointObject::new(
            0u64,
            Point::new(480.0, 480.0),
        )));
        // Move of an unknown id upserts.
        sharded.submit(Update::Move(PointObject::new(
            5_000u64,
            Point::new(520.0, 520.0),
        )));
        let report = sharded.commit();
        assert_eq!((report.moves, report.arrivals), (2, 0));
        assert_eq!(sharded.len(), 101);

        let ans = sharded.snapshot().execute_one(&ipq_at(500.0, 500.0));
        assert!(ans.probability_of(ObjectId(0)).is_some());
        assert!(ans.probability_of(ObjectId(5_000)).is_some());
    }

    #[test]
    fn duplicate_arrivals_upsert_instead_of_corrupting() {
        let sharded: ShardedEngine<PointEngine> = ShardedEngine::build(grid_objects(4), 2);
        let n = sharded.len();
        // A retried arrival committed twice must not duplicate the id.
        for _ in 0..2 {
            sharded.submit(Update::Arrive(PointObject::new(
                3u64,
                Point::new(100.0, 100.0),
            )));
        }
        sharded.commit();
        assert_eq!(sharded.len(), n);
        // One departure fully removes it — no unremovable orphan.
        sharded.submit(Update::Depart(ObjectId(3)));
        let report = sharded.commit();
        assert_eq!(report.departures, 1);
        assert_eq!(sharded.len(), n - 1);
        let ans = sharded.snapshot().execute_one(&ipq_at(100.0, 100.0));
        assert!(ans.probability_of(ObjectId(3)).is_none());
    }

    #[test]
    fn empty_commit_keeps_epoch() {
        let sharded: ShardedEngine<PointEngine> = ShardedEngine::build(grid_objects(4), 3);
        assert_eq!(sharded.commit(), CommitReport::default());
        assert_eq!(sharded.epoch(), 0);
        sharded.submit(Update::Depart(ObjectId(999)));
        let report = sharded.commit();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.missed_departures, 1);
        assert_eq!(report.applied(), 0);
        // An empty commit after a real one reports the current epoch.
        assert_eq!(sharded.commit().epoch, 1);
    }

    #[test]
    fn snapshot_shard_sizes_sum_to_len() {
        let sharded: ShardedEngine<PointEngine> = ShardedEngine::build(grid_objects(10), 4);
        let snapshot = sharded.snapshot();
        let sizes: Vec<usize> = snapshot.shard_sizes().collect();
        assert_eq!(sizes.len(), 4);
        assert_eq!(sizes.iter().sum::<usize>(), snapshot.len());
        for (k, &n) in sizes.iter().enumerate() {
            assert_eq!(snapshot.shard_len(k), n);
        }
    }

    #[test]
    fn commit_report_tracks_dirty_region_and_per_shard_counts() {
        let sharded: ShardedEngine<PointEngine> = ShardedEngine::build(grid_objects(10), 4);
        // Arrive at (800, 20), move object 0 from (0, 0) to (5, 900),
        // depart object 11 at (50, 50): the dirty hull must cover all
        // five footprints.
        sharded.submit(Update::Arrive(PointObject::new(
            777u64,
            Point::new(800.0, 20.0),
        )));
        sharded.submit(Update::Move(PointObject::new(0u64, Point::new(5.0, 900.0))));
        sharded.submit(Update::Depart(ObjectId(11)));
        sharded.submit(Update::Depart(ObjectId(424_242))); // missed
        let report = sharded.commit();
        let dirty = report.dirty.expect("spatial changes must dirty");
        for p in [
            Point::new(800.0, 20.0),
            Point::new(0.0, 0.0),
            Point::new(5.0, 900.0),
            Point::new(50.0, 50.0),
        ] {
            assert!(dirty.contains_point(p), "dirty {dirty:?} misses {p:?}");
        }
        assert_eq!(report.per_shard.len(), 4);
        assert_eq!(report.per_shard.iter().sum::<usize>(), report.applied());
        assert_eq!(report.applied(), 3);

        // A commit of only missed departures moves the epoch but
        // dirties nothing.
        sharded.submit(Update::Depart(ObjectId(999_999)));
        let report = sharded.commit();
        assert_eq!(report.dirty, None);
        assert_eq!(report.per_shard.iter().sum::<usize>(), 0);

        // Empty commits report empty per-shard counts.
        assert!(sharded.commit().per_shard.is_empty());
    }

    #[test]
    fn dirt_history_is_bounded_and_gapless_within_the_window() {
        let sharded: ShardedEngine<PointEngine> = ShardedEngine::build(grid_objects(4), 2);
        for k in 0..DIRT_HISTORY as u64 + 10 {
            sharded.submit(Update::Move(PointObject::new(
                0u64,
                Point::new(k as f64, 0.0),
            )));
            sharded.commit();
        }
        let total = DIRT_HISTORY as u64 + 10;
        // Within the retained window: gapless, ascending, complete.
        let mut out = Vec::new();
        assert!(sharded.dirt_since(total - 5, &mut out));
        assert_eq!(out.len(), 5);
        assert!(out.windows(2).all(|w| w[0].epoch + 1 == w[1].epoch));
        assert_eq!(out.last().unwrap().epoch, total);
        assert!(out.iter().all(|d| d.dirty.is_some() && d.applied == 1));
        // Fallen behind the window: truncated.
        out.clear();
        assert!(!sharded.dirt_since(0, &mut out));
        assert_eq!(out.len(), DIRT_HISTORY);
        // Fully caught up: gapless and empty.
        out.clear();
        assert!(sharded.dirt_since(total, &mut out));
        assert!(out.is_empty());
    }

    #[test]
    fn commit_report_counts_applied_updates() {
        let sharded: ShardedEngine<PointEngine> = ShardedEngine::build(grid_objects(4), 2);
        sharded.submit(Update::Arrive(PointObject::new(
            900u64,
            Point::new(1.0, 1.0),
        )));
        sharded.submit(Update::Depart(ObjectId(0)));
        sharded.submit(Update::Move(PointObject::new(1u64, Point::new(2.0, 2.0))));
        sharded.submit(Update::Depart(ObjectId(777)));
        let report = sharded.commit();
        assert_eq!(report.applied(), 3);
        assert_eq!(report.missed_departures, 1);
    }

    #[test]
    fn shard_server_matches_one_shot_execution() {
        let sharded: ShardedEngine<PointEngine> = ShardedEngine::build(grid_objects(14), 4);
        let snapshot = sharded.snapshot();
        let mut server = ShardServer::new(snapshot.clone());
        let mut answer = QueryAnswer::default();
        for k in 0..40u64 {
            let request = ipq_at(25.0 * k as f64 % 700.0, 300.0);
            server.execute_into(&request, &mut answer);
            assert!(answer.same_matches(&snapshot.execute_one(&request)), "{k}");
        }
    }

    #[test]
    fn concurrent_queries_see_consistent_epochs() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let sharded: Arc<ShardedEngine<PointEngine>> =
            Arc::new(ShardedEngine::build(grid_objects(10), 4));
        let stop = Arc::new(AtomicBool::new(false));
        let request = ipq_at(250.0, 250.0);

        // Readers: the result-set size for the fixed query flips
        // between "all present" and "all departed" but must never be
        // partial — that would be a torn epoch.
        let full = sharded.snapshot().execute_one(&request).results.len();
        assert!(full >= 4);
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let sharded = Arc::clone(&sharded);
                let stop = Arc::clone(&stop);
                let request = request.clone();
                std::thread::spawn(move || {
                    let mut observed = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let n = sharded.snapshot().execute_one(&request).results.len();
                        observed.push(n);
                    }
                    observed
                })
            })
            .collect();

        // Writer: alternately departs and re-arrives the whole result
        // set, one commit per transition.
        let members = sharded.snapshot().execute_one(&request);
        for _ in 0..20 {
            for m in &members.results {
                sharded.submit(Update::Depart(m.id));
            }
            sharded.commit();
            for m in &members.results {
                let k = m.id.0;
                sharded.submit(Update::Arrive(PointObject::new(
                    m.id,
                    Point::new((k % 10) as f64 * 50.0, (k / 10) as f64 * 50.0),
                )));
            }
            sharded.commit();
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            for n in reader.join().expect("reader panicked") {
                assert!(
                    n == full || n == 0,
                    "torn epoch: query saw {n} of {full} objects"
                );
            }
        }
        assert_eq!(sharded.epoch(), 40);
    }
}
