//! Continuous monitoring: a delivery truck drives across town while
//! the dispatcher keeps a standing query — "which depots are within
//! 300 units of the truck?" — refreshed every tick.
//!
//! The truck's reported position is imprecise (dead-reckoning box),
//! so each refresh is an imprecise range query. The
//! [`ContinuousIpq`] runner amortises index work with a safe
//! envelope: most ticks are answered from cached candidates without
//! touching the R-tree, with answers identical to fresh snapshots.
//!
//! ```text
//! cargo run --release --example fleet_monitor
//! ```

use iloc::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(77);

    // 3 000 depots.
    let depots: Vec<Point> = (0..3_000)
        .map(|_| Point::new(rng.gen_range(0.0..10_000.0), rng.gen_range(0.0..10_000.0)))
        .collect();
    let engine = PointEngine::build(depots);

    // The truck drives a loop; its uncertainty box is ±60 units.
    let ticks = 500usize;
    let trajectory: Vec<Issuer> = (0..ticks)
        .map(|t| {
            let a = t as f64 / ticks as f64 * std::f64::consts::TAU;
            let c = Point::new(5_000.0 + 2_500.0 * a.cos(), 5_000.0 + 2_500.0 * a.sin());
            Issuer::uniform(Rect::centered(c, 60.0, 60.0))
        })
        .collect();

    let range = RangeSpec::square(300.0);
    let mut runner = ContinuousIpq::new(&engine, range, 250.0);
    let mut total_answers = 0usize;
    let start = std::time::Instant::now();
    for issuer in &trajectory {
        let ans = runner.step(issuer);
        total_answers += ans.results.len();
    }
    let elapsed = start.elapsed();

    println!(
        "{ticks} refreshes in {:.1} ms ({:.1} µs/tick)",
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e6 / ticks as f64
    );
    println!(
        "index probes: {} (cache hits: {}, {:.0}% of ticks served from the envelope)",
        runner.probes,
        runner.cache_hits,
        100.0 * runner.cache_hits as f64 / ticks as f64
    );
    println!(
        "average answer size: {:.1} depots",
        total_answers as f64 / ticks as f64
    );

    // Cross-check the final tick against a fresh snapshot.
    let last = trajectory.last().expect("non-empty trajectory");
    let snapshot = engine.ipq(last, range);
    let continuous = runner.step(last);
    assert_eq!(snapshot.results.len(), continuous.results.len());
    println!(
        "final tick matches a fresh snapshot ({} answers)",
        snapshot.results.len()
    );
}
