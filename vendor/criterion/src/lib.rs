//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored
//! crate provides the subset of criterion's API the workspace's bench
//! targets use — [`Criterion`], benchmark groups, [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros — with a
//! simple mean-of-samples timing loop printed to stdout. There is no
//! statistical analysis, warm-up modelling, or HTML report; the point
//! is that `cargo bench` runs and prints comparable numbers offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(&id.into(), sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for subsequent benchmarks in the
    /// group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Times one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Ends the group (matching criterion's API; nothing to flush
    /// here).
    pub fn finish(self) {}
}

fn run_one(id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {id:<48} (no samples)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort();
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    let median = sorted[sorted.len() / 2];
    println!(
        "  {id:<48} mean {:>12.3?}  median {:>12.3?}  ({} samples)",
        mean,
        median,
        sorted.len()
    );
}

/// Times closures handed to it by a benchmark function.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` `sample_size` times, recording one wall-clock sample
    /// per run; the result is passed through [`black_box`] so the
    /// optimiser cannot discard the work.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group function (criterion's macro surface).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion::default().sample_size(7);
        let mut runs = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert_eq!(runs, 7);
    }

    #[test]
    fn group_overrides_sample_size() {
        let mut c = Criterion::default().sample_size(5);
        let mut group = c.benchmark_group("g");
        let mut runs = 0usize;
        group.sample_size(3).bench_function("inner", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert_eq!(runs, 3);
    }
}
