//! Bit-exact binary encoding of catalog objects and updates — the
//! same discipline as the wire protocol (little-endian integers,
//! `f64`s as raw IEEE-754 bit patterns), re-stated here because the
//! core crate sits below the server crate in the dependency graph.
//!
//! Every decoder validates the preconditions of the constructor it is
//! about to call, so adversarial or corrupt bytes surface as a
//! [`StoreError::Corrupt`], never a panic — mirroring the wire
//! protocol's malformed-frame handling.

use iloc_geometry::{Point, Rect};
use iloc_uncertainty::{
    DiscPdf, LocationPdf, ObjectId, PdfKind, PointObject, TruncatedGaussianPdf, UncertainObject,
    UniformPdf,
};

use super::StoreError;
use crate::serve::Update;

/// A bounds-checked reader over one record payload (the durable twin
/// of the wire protocol's `Reader`).
#[derive(Debug)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.buf.len() - self.pos < n {
            return Err(StoreError::Corrupt("truncated record payload"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Next byte.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Next little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Next little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Next `f64`, decoded from its raw bit pattern (bit-exact).
    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Next `f64`, rejected unless finite.
    pub fn finite(&mut self, what: &'static str) -> Result<f64, StoreError> {
        let v = self.f64()?;
        if v.is_finite() {
            Ok(v)
        } else {
            Err(StoreError::Corrupt(what))
        }
    }

    /// Errors unless the payload was consumed exactly.
    pub fn done(&self) -> Result<(), StoreError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(StoreError::Corrupt("trailing bytes in record"))
        }
    }
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_rect(buf: &mut Vec<u8>, r: Rect) {
    put_f64(buf, r.min.x);
    put_f64(buf, r.min.y);
    put_f64(buf, r.max.x);
    put_f64(buf, r.max.y);
}

fn read_rect(c: &mut Cursor<'_>) -> Result<Rect, StoreError> {
    let (x0, y0) = (c.finite("rect min.x")?, c.finite("rect min.y")?);
    let (x1, y1) = (c.finite("rect max.x")?, c.finite("rect max.y")?);
    if x0 > x1 || y0 > y1 {
        return Err(StoreError::Corrupt("rect min exceeds max"));
    }
    Ok(Rect::from_coords(x0, y0, x1, y1))
}

// Same tags the wire protocol assigns, so a hexdump of either reads
// the same.
const PDF_UNIFORM: u8 = 0;
const PDF_GAUSSIAN: u8 = 1;
const PDF_DISC: u8 = 2;

fn put_pdf(buf: &mut Vec<u8>, pdf: &PdfKind) -> Result<(), StoreError> {
    match pdf {
        PdfKind::Uniform(u) => {
            buf.push(PDF_UNIFORM);
            put_rect(buf, u.region());
        }
        PdfKind::Gaussian(g) => {
            buf.push(PDF_GAUSSIAN);
            put_rect(buf, g.region());
            put_f64(buf, g.mean().x);
            put_f64(buf, g.mean().y);
            put_f64(buf, g.sigma().0);
            put_f64(buf, g.sigma().1);
        }
        PdfKind::Disc(d) => {
            buf.push(PDF_DISC);
            let c = d.disc();
            put_f64(buf, c.center.x);
            put_f64(buf, c.center.y);
            put_f64(buf, c.radius);
        }
        PdfKind::Shared(_) => return Err(StoreError::Unsupported("shared pdf handle")),
    }
    Ok(())
}

fn read_pdf(c: &mut Cursor<'_>) -> Result<PdfKind, StoreError> {
    match c.u8()? {
        PDF_UNIFORM => {
            let region = read_rect(c)?;
            if region.area() <= 0.0 {
                return Err(StoreError::Corrupt("uniform pdf region has zero area"));
            }
            Ok(PdfKind::Uniform(UniformPdf::new(region)))
        }
        PDF_GAUSSIAN => {
            let region = read_rect(c)?;
            let mean = Point::new(c.finite("gaussian mean.x")?, c.finite("gaussian mean.y")?);
            let (sx, sy) = (c.finite("gaussian sigma.x")?, c.finite("gaussian sigma.y")?);
            if region.area() <= 0.0 {
                return Err(StoreError::Corrupt("gaussian region has zero area"));
            }
            if sx <= 0.0 || sy <= 0.0 {
                return Err(StoreError::Corrupt("gaussian sigma must be positive"));
            }
            if !region.contains_point(mean) {
                return Err(StoreError::Corrupt("gaussian mean outside its region"));
            }
            Ok(PdfKind::Gaussian(TruncatedGaussianPdf::new(
                region, mean, sx, sy,
            )))
        }
        PDF_DISC => {
            let center = Point::new(c.finite("disc center.x")?, c.finite("disc center.y")?);
            let radius = c.finite("disc radius")?;
            if radius <= 0.0 {
                return Err(StoreError::Corrupt("disc radius must be positive"));
            }
            Ok(PdfKind::Disc(DiscPdf::new(center, radius)))
        }
        _ => Err(StoreError::Corrupt("unknown pdf tag")),
    }
}

/// A catalog object the durable store can encode bit-exactly and
/// decode back with full validation. Implemented for the two object
/// types the serving layer catalogs.
pub trait DurableObject: Clone + Send + Sync {
    /// Appends this object's binary form (including its id).
    ///
    /// Fails only for state with no on-disk representation (a
    /// [`PdfKind::Shared`] handle).
    fn encode(&self, buf: &mut Vec<u8>) -> Result<(), StoreError>;

    /// Decodes one object, validating every constructor precondition.
    fn decode(c: &mut Cursor<'_>) -> Result<Self, StoreError>;
}

impl DurableObject for PointObject {
    fn encode(&self, buf: &mut Vec<u8>) -> Result<(), StoreError> {
        put_u64(buf, self.id.0);
        put_f64(buf, self.loc.x);
        put_f64(buf, self.loc.y);
        Ok(())
    }

    fn decode(c: &mut Cursor<'_>) -> Result<PointObject, StoreError> {
        let id = c.u64()?;
        let x = c.finite("point object x")?;
        let y = c.finite("point object y")?;
        Ok(PointObject::new(id, Point::new(x, y)))
    }
}

impl DurableObject for UncertainObject {
    fn encode(&self, buf: &mut Vec<u8>) -> Result<(), StoreError> {
        put_u64(buf, self.id.0);
        put_pdf(buf, self.pdf())
    }

    fn decode(c: &mut Cursor<'_>) -> Result<UncertainObject, StoreError> {
        let id = c.u64()?;
        let pdf = read_pdf(c)?;
        Ok(UncertainObject::new(id, pdf))
    }
}

// Same tags as the wire protocol's update encoding.
const UPDATE_ARRIVE: u8 = 0;
const UPDATE_DEPART: u8 = 1;
const UPDATE_MOVE: u8 = 2;

/// Appends one update's binary form.
pub(crate) fn put_update<O: DurableObject>(
    buf: &mut Vec<u8>,
    update: &Update<O>,
) -> Result<(), StoreError> {
    match update {
        Update::Arrive(o) => {
            buf.push(UPDATE_ARRIVE);
            o.encode(buf)
        }
        Update::Depart(id) => {
            buf.push(UPDATE_DEPART);
            put_u64(buf, id.0);
            Ok(())
        }
        Update::Move(o) => {
            buf.push(UPDATE_MOVE);
            o.encode(buf)
        }
    }
}

/// Decodes one update.
pub(crate) fn read_update<O: DurableObject>(c: &mut Cursor<'_>) -> Result<Update<O>, StoreError> {
    match c.u8()? {
        UPDATE_ARRIVE => Ok(Update::Arrive(O::decode(c)?)),
        UPDATE_DEPART => Ok(Update::Depart(ObjectId(c.u64()?))),
        UPDATE_MOVE => Ok(Update::Move(O::decode(c)?)),
        _ => Err(StoreError::Corrupt("unknown update tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_object_round_trips_bit_exactly() {
        // A coordinate with no short decimal form: the round trip must
        // preserve the exact bit pattern, not a reparse.
        let o = PointObject::new(42, Point::new(1.0 + 1e-15, -0.0));
        let mut buf = Vec::new();
        o.encode(&mut buf).unwrap();
        let mut c = Cursor::new(&buf);
        let back = PointObject::decode(&mut c).unwrap();
        c.done().unwrap();
        assert_eq!(back.id, o.id);
        assert_eq!(back.loc.x.to_bits(), o.loc.x.to_bits());
        assert_eq!(back.loc.y.to_bits(), o.loc.y.to_bits());
    }

    #[test]
    fn uncertain_object_round_trips_every_concrete_pdf() {
        let region = Rect::from_coords(10.0, 20.0, 110.0, 170.0);
        let objects = [
            UncertainObject::new(1, PdfKind::Uniform(UniformPdf::new(region))),
            UncertainObject::new(
                2,
                PdfKind::Gaussian(TruncatedGaussianPdf::new(
                    region,
                    Point::new(60.0, 95.0),
                    12.5,
                    33.25,
                )),
            ),
            UncertainObject::new(3, PdfKind::Disc(DiscPdf::new(Point::new(5.0, -7.0), 2.5))),
        ];
        for o in &objects {
            let mut buf = Vec::new();
            o.encode(&mut buf).unwrap();
            let mut c = Cursor::new(&buf);
            let back = UncertainObject::decode(&mut c).unwrap();
            c.done().unwrap();
            assert_eq!(back.id, o.id);
            assert_eq!(back.region(), o.region());
        }
    }

    #[test]
    fn corrupt_pdf_bytes_error_instead_of_panicking() {
        // Non-finite coordinate.
        let mut buf = Vec::new();
        buf.push(PDF_UNIFORM);
        put_f64(&mut buf, f64::NAN);
        put_f64(&mut buf, 0.0);
        put_f64(&mut buf, 1.0);
        put_f64(&mut buf, 1.0);
        assert!(read_pdf(&mut Cursor::new(&buf)).is_err());

        // Unknown tag.
        assert!(read_pdf(&mut Cursor::new(&[9])).is_err());

        // Truncated payload.
        let mut buf = Vec::new();
        buf.push(PDF_DISC);
        put_f64(&mut buf, 1.0);
        assert!(read_pdf(&mut Cursor::new(&buf)).is_err());

        // Negative radius would violate the constructor precondition.
        let mut buf = Vec::new();
        buf.push(PDF_DISC);
        put_f64(&mut buf, 1.0);
        put_f64(&mut buf, 1.0);
        put_f64(&mut buf, -3.0);
        assert!(read_pdf(&mut Cursor::new(&buf)).is_err());
    }

    #[test]
    fn updates_round_trip() {
        let updates: Vec<Update<PointObject>> = vec![
            Update::Arrive(PointObject::new(7, Point::new(1.5, 2.5))),
            Update::Depart(ObjectId(9)),
            Update::Move(PointObject::new(7, Point::new(3.5, 4.5))),
        ];
        let mut buf = Vec::new();
        for u in &updates {
            put_update(&mut buf, u).unwrap();
        }
        let mut c = Cursor::new(&buf);
        for u in &updates {
            let back: Update<PointObject> = read_update(&mut c).unwrap();
            match (u, &back) {
                (Update::Arrive(a), Update::Arrive(b)) | (Update::Move(a), Update::Move(b)) => {
                    assert_eq!(a.id, b.id);
                    assert_eq!(a.loc.x.to_bits(), b.loc.x.to_bits());
                }
                (Update::Depart(a), Update::Depart(b)) => assert_eq!(a, b),
                _ => panic!("update kind changed in round trip"),
            }
        }
        c.done().unwrap();
    }
}
