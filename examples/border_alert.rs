//! Border alert: "receive an alarm when a military adversary has
//! crossed the border" (paper Section 1) — here inverted into a watch
//! query: which of our own monitored assets are close to a sensitive
//! line, given that both the assets *and* the observer drone are
//! imprecisely located?
//!
//! Demonstrates the Gaussian issuer model (Figure 13's setup): the
//! drone's navigation error is bell-shaped, not uniform, and the
//! Monte-Carlo and exact evaluation paths are compared on live data.
//!
//! ```text
//! cargo run --release --example border_alert
//! ```

use iloc::core::integrate::PAPER_MC_SAMPLES_POINT;
use iloc::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(4242);

    // Ground sensors strung along the border (a diagonal band).
    let sensors: Vec<Point> = (0..2_000)
        .map(|k| {
            let t = k as f64 / 2_000.0;
            let along = t * 10_000.0;
            let across = 5_000.0 + (t * 12.0).sin() * 300.0 + rng.gen_range(-150.0..150.0);
            Point::new(along, across)
        })
        .collect();
    let engine = PointEngine::build(sensors);

    // The drone holds position near the border mid-point; its nav
    // solution is Gaussian inside a 600×600 error box.
    let drone_box = Rect::centered(Point::new(5_000.0, 5_200.0), 300.0, 300.0);
    let drone = Issuer::gaussian(drone_box);
    let range = RangeSpec::square(500.0);

    // Exact path (closed-form Gaussian rectangle masses).
    let exact = engine.cipq(&drone, range, 0.6, CipqStrategy::PExpanded);
    println!(
        "exact evaluation: {} sensor(s) within range at ≥60% confidence ({:.3} ms)",
        exact.results.len(),
        exact.stats.elapsed.as_secs_f64() * 1e3
    );

    // The paper's Monte-Carlo path (200 samples per candidate), as a
    // system without closed-form Gaussian masses would run it.
    let mc = engine.cipq_with(
        &drone,
        range,
        0.6,
        CipqStrategy::PExpanded,
        Integrator::MonteCarlo {
            samples: PAPER_MC_SAMPLES_POINT,
        },
    );
    println!(
        "monte-carlo evaluation: {} sensor(s) ({:.3} ms, {} samples drawn)",
        mc.results.len(),
        mc.stats.elapsed.as_secs_f64() * 1e3,
        mc.stats.mc_samples
    );

    // The two paths agree on all but threshold-boundary sensors.
    let exact_ids: std::collections::HashSet<_> = exact.results.iter().map(|m| m.id).collect();
    let mc_ids: std::collections::HashSet<_> = mc.results.iter().map(|m| m.id).collect();
    let disagreements = exact_ids.symmetric_difference(&mc_ids).count();
    println!(
        "agreement: {} / {} answers identical ({} borderline flips from sampling noise)",
        exact_ids.intersection(&mc_ids).count(),
        exact_ids.len().max(mc_ids.len()),
        disagreements
    );
}
