//! Quickstart: the four imprecise query types on a toy database.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use iloc::prelude::*;

fn main() {
    // --- A tiny world -------------------------------------------------
    // Three shops (exact locations) and three delivery vans (uncertain
    // locations: each van reported a position up to `r` units stale, so
    // it lies somewhere in a box around the last fix).
    let shops = vec![
        Point::new(480.0, 510.0),
        Point::new(720.0, 300.0),
        Point::new(2_000.0, 2_000.0),
    ];
    let vans: Vec<UncertainObject> = vec![
        UncertainObject::new(
            0u64,
            UniformPdf::new(Rect::centered(Point::new(520.0, 480.0), 60.0, 60.0)),
        ),
        UncertainObject::new(
            1u64,
            UniformPdf::new(Rect::centered(Point::new(900.0, 900.0), 40.0, 40.0)),
        ),
        UncertainObject::new(
            2u64,
            TruncatedGaussianPdf::paper_default(Rect::centered(
                Point::new(650.0, 650.0),
                90.0,
                90.0,
            )),
        ),
    ];

    // --- The imprecise issuer -----------------------------------------
    // The user queries from a phone whose location is only known to a
    // 100×100 box (GPS error / privacy cloaking), and wants everything
    // within a 250-unit square range.
    let issuer = Issuer::uniform(Rect::centered(Point::new(500.0, 500.0), 50.0, 50.0));
    let range = RangeSpec::square(250.0);

    // --- IPQ: probabilistic range query over the shops ------------------
    let points = PointEngine::build(shops);
    let ipq = points.ipq(&issuer, range);
    println!("IPQ (shops within ±250 of wherever I am):");
    for m in &ipq.results {
        println!(
            "  shop {} qualifies with probability {:.3}",
            m.id, m.probability
        );
    }

    // --- IUQ: the same query over the uncertain vans ---------------------
    let uncertain = UncertainEngine::build(vans);
    let iuq = uncertain.iuq(&issuer, range);
    println!("IUQ (vans within ±250 of wherever I am):");
    for m in &iuq.results {
        println!(
            "  van {} qualifies with probability {:.3}",
            m.id, m.probability
        );
    }

    // --- Constrained variants: only high-confidence answers -------------
    let qp = 0.5;
    let cipq = points.cipq(&issuer, range, qp, CipqStrategy::PExpanded);
    let ciuq = uncertain.ciuq(&issuer, range, qp, CiuqStrategy::PtiPExpanded);
    println!("C-IPQ at Qp={qp}: {} shop(s)", cipq.results.len());
    println!("C-IUQ at Qp={qp}: {} van(s)", ciuq.results.len());
    println!(
        "  (pruned without integration: S1={} S2={} S3={})",
        ciuq.stats.pruned_s1, ciuq.stats.pruned_s2, ciuq.stats.pruned_s3
    );
}
