//! The Monte-Carlo **oracle**: qualification probabilities estimated
//! by simulating the paper's probability model directly, with no
//! query-evaluation machinery at all.
//!
//! The pipeline computes `pi` through query expansion, duality and
//! closed-form / numeric integration — many layers that could all be
//! consistently wrong together. The oracle sidesteps every one of
//! them: it draws the issuer's true position from its pdf (and, for
//! IUQ, the object's true position from *its* pdf), asks the
//! definition's bare question — *"is the object inside `R` centred at
//! the issuer?"* — and counts. By the law of large numbers the hit
//! rate converges to the definition's `pi` (Definitions 3–4), so any
//! systematic disagreement with the pipeline is a bug in the
//! machinery, not in the oracle. `tests/oracle.rs` runs randomized
//! scenes against it under a binomial tolerance.
//!
//! Estimates are deterministic in the seed and **independent** of the
//! pipeline's own RNG and integrators.

use iloc_geometry::Point;
use iloc_uncertainty::{LocationPdf, UncertainObject};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::query::{Issuer, RangeSpec};

/// Monte-Carlo estimate of an IPQ qualification probability
/// (Definition 3): the chance that the point object at `loc` lies in
/// the range `R` centred at the issuer's true position.
pub fn mc_point_probability(
    issuer: &Issuer,
    loc: Point,
    range: RangeSpec,
    samples: u32,
    seed: u64,
) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0u64;
    for _ in 0..samples {
        let q = issuer.pdf().sample(&mut rng);
        if range.at(q).contains_point(loc) {
            hits += 1;
        }
    }
    hits as f64 / samples as f64
}

/// Monte-Carlo estimate of an IUQ qualification probability
/// (Definition 4): both the issuer's and the object's true positions
/// are drawn from their pdfs.
pub fn mc_uncertain_probability(
    issuer: &Issuer,
    object: &UncertainObject,
    range: RangeSpec,
    samples: u32,
    seed: u64,
) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0u64;
    for _ in 0..samples {
        let q = issuer.pdf().sample(&mut rng);
        let o = object.pdf().sample(&mut rng);
        if range.at(q).contains_point(o) {
            hits += 1;
        }
    }
    hits as f64 / samples as f64
}

/// A tolerance for comparing an estimate `p_hat` over `samples` draws
/// against an exact value: `z` standard deviations of the binomial
/// proportion, floored at `z / (2·√samples)` so near-0/1 probabilities
/// keep a usable band.
pub fn binomial_tolerance(p_hat: f64, samples: u32, z: f64) -> f64 {
    let n = samples as f64;
    let sigma = (p_hat * (1.0 - p_hat) / n).sqrt();
    (z * sigma).max(z / (2.0 * n.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc_geometry::Rect;

    #[test]
    fn oracle_is_deterministic_in_seed() {
        let issuer = Issuer::uniform(Rect::from_coords(0.0, 0.0, 100.0, 100.0));
        let loc = Point::new(120.0, 50.0);
        let a = mc_point_probability(&issuer, loc, RangeSpec::square(60.0), 5_000, 42);
        let b = mc_point_probability(&issuer, loc, RangeSpec::square(60.0), 5_000, 42);
        let c = mc_point_probability(&issuer, loc, RangeSpec::square(60.0), 5_000, 43);
        assert_eq!(a.to_bits(), b.to_bits());
        assert!((a - c).abs() < 0.05, "different seeds, same distribution");
    }

    #[test]
    fn oracle_matches_certain_cases() {
        let issuer = Issuer::uniform(Rect::from_coords(0.0, 0.0, 100.0, 100.0));
        // A point always inside R ⊕ U0's core qualifies surely...
        let sure = mc_point_probability(
            &issuer,
            Point::new(50.0, 50.0),
            RangeSpec::square(200.0),
            2_000,
            1,
        );
        assert_eq!(sure, 1.0);
        // ...and a far-away point never does.
        let never = mc_point_probability(
            &issuer,
            Point::new(10_000.0, 50.0),
            RangeSpec::square(200.0),
            2_000,
            1,
        );
        assert_eq!(never, 0.0);
    }

    #[test]
    fn tolerance_has_a_floor() {
        assert!(binomial_tolerance(0.0, 10_000, 4.0) > 0.0);
        assert!(binomial_tolerance(0.5, 10_000, 4.0) >= binomial_tolerance(0.0, 10_000, 4.0));
    }
}
