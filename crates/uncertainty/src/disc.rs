//! Disc-shaped (circular) uncertainty pdf — the paper's "non-
//! rectangular uncertainty regions" future-work item.
//!
//! GPS receivers report *"within r metres of the fix"*: a uniform
//! density over a disc. Rectangle masses are exact thanks to the
//! closed-form circle–rectangle intersection area
//! ([`iloc_geometry::Circle::intersection_area`]), so a disc issuer
//! evaluates IPQ/C-IPQ exactly through the ordinary duality path; disc
//! *objects* integrate through the grid / Monte-Carlo backends.
//!
//! [`LocationPdf::region`] returns the disc's **bounding box** — every
//! box-based structure (Minkowski filter, p-bounds, PTI) stays sound
//! because the box over-approximates the support.

use iloc_geometry::{Circle, Point, Rect};
use rand::Rng;
use rand::RngCore;

use crate::pdf::{Axis, LocationPdf};

/// Uniform density over a disc.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscPdf {
    disc: Circle,
    inv_area: f64,
}

impl DiscPdf {
    /// Creates the uniform pdf over the disc centred at `center` with
    /// radius `radius`.
    ///
    /// # Panics
    ///
    /// Panics when the radius is non-positive or non-finite.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0,
            "disc pdf requires a positive radius"
        );
        let disc = Circle::new(center, radius);
        DiscPdf {
            disc,
            inv_area: 1.0 / disc.area(),
        }
    }

    /// The underlying disc.
    pub fn disc(&self) -> Circle {
        self.disc
    }
}

impl LocationPdf for DiscPdf {
    fn region(&self) -> Rect {
        self.disc.bounding_box()
    }

    fn density(&self, p: Point) -> f64 {
        if self.disc.contains_point(p) {
            self.inv_area
        } else {
            0.0
        }
    }

    fn prob_in_rect(&self, r: Rect) -> f64 {
        (self.disc.intersection_area(r) * self.inv_area).clamp(0.0, 1.0)
    }

    fn marginal_cdf(&self, axis: Axis, v: f64) -> f64 {
        // Mass of the disc on the ≤ v side of an axis line: a circular
        // segment, `A(d) = r²·acos(d/r) − d·√(r²−d²)` for the region
        // beyond signed distance d from the centre.
        let (c, r) = match axis {
            Axis::X => (self.disc.center.x, self.disc.radius),
            Axis::Y => (self.disc.center.y, self.disc.radius),
        };
        let d = v - c;
        if d <= -r {
            return 0.0;
        }
        if d >= r {
            return 1.0;
        }
        let beyond = r * r * (d / r).acos() - d * (r * r - d * d).sqrt();
        (1.0 - beyond * self.inv_area).clamp(0.0, 1.0)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Point {
        // Rejection from the bounding box (acceptance π/4 ≈ 0.785).
        let c = self.disc.center;
        let r = self.disc.radius;
        loop {
            let p = Point::new(c.x + rng.gen_range(-r..=r), c.y + rng.gen_range(-r..=r));
            if self.disc.contains_point(p) {
                return p;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pdf() -> DiscPdf {
        DiscPdf::new(Point::new(10.0, 20.0), 5.0)
    }

    #[test]
    fn total_mass_is_one() {
        let f = pdf();
        assert!((f.prob_in_rect(f.region()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn density_zero_outside_disc_even_inside_bbox() {
        let f = pdf();
        // Bounding-box corner is outside the disc.
        assert_eq!(f.density(Point::new(5.5, 15.5)), 0.0);
        assert!(f.density(Point::new(10.0, 20.0)) > 0.0);
    }

    #[test]
    fn half_rect_gets_half_mass() {
        let f = pdf();
        let left = Rect::from_coords(0.0, 0.0, 10.0, 40.0);
        assert!((f.prob_in_rect(left) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn marginal_cdf_endpoints_and_median() {
        let f = pdf();
        assert_eq!(f.marginal_cdf(Axis::X, 5.0), 0.0);
        assert_eq!(f.marginal_cdf(Axis::X, 15.0), 1.0);
        assert!((f.marginal_cdf(Axis::X, 10.0) - 0.5).abs() < 1e-12);
        assert!((f.marginal_cdf(Axis::Y, 20.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn marginal_cdf_matches_rect_mass() {
        let f = pdf();
        for v in [6.0, 8.0, 10.0, 12.5, 14.0] {
            let via_rect = f.prob_in_rect(Rect::from_coords(0.0, 0.0, v, 100.0));
            let via_cdf = f.marginal_cdf(Axis::X, v);
            assert!((via_rect - via_cdf).abs() < 1e-12, "v={v}");
        }
    }

    #[test]
    fn quantiles_invert_cdf() {
        let f = pdf();
        for &p in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            let q = f.quantile(Axis::Y, p);
            assert!((f.marginal_cdf(Axis::Y, q) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn pbounds_and_catalog_work_for_discs() {
        use crate::catalog::UCatalog;
        let f = pdf();
        let cat = UCatalog::build_default(&f);
        assert_eq!(cat.len(), 6);
        // p-bounds nest and stay within the bounding box.
        for pair in cat.bounds().windows(2) {
            assert!(pair[0].rect.contains_rect(pair[1].rect));
        }
        assert_eq!(cat.bounds()[0].rect, f.region());
    }

    #[test]
    fn samples_inside_disc_with_uniform_spread() {
        let f = pdf();
        let mut rng = StdRng::seed_from_u64(8);
        const N: usize = 20_000;
        let mut inside_half_radius = 0usize;
        for _ in 0..N {
            let s = f.sample(&mut rng);
            assert!(f.disc().contains_point(s));
            if s.distance(Point::new(10.0, 20.0)) <= 2.5 {
                inside_half_radius += 1;
            }
        }
        // Uniform over the disc: a half-radius disc holds 25% of mass.
        let frac = inside_half_radius as f64 / N as f64;
        assert!((frac - 0.25).abs() < 0.02, "got {frac}");
    }

    #[test]
    #[should_panic(expected = "positive radius")]
    fn rejects_zero_radius() {
        let _ = DiscPdf::new(Point::new(0.0, 0.0), 0.0);
    }
}
