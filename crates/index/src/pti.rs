//! The Probability Threshold Index (PTI) of Cheng, Xia, Prabhakar, Shah
//! & Vitter (VLDB'04), as summarised in Section 5.3 of the paper.
//!
//! A PTI is an R-tree over uncertain objects whose entries additionally
//! carry, for every U-catalog level `m`, a merged rectangle `MBR(m)`
//! that tightly encloses the `m`-bounds of everything below. During a
//! constrained query (C-IUQ with threshold `Qp`) whole subtrees are
//! pruned with the Section-5.2 tests lifted to the node level:
//!
//! * **Strategy 2 (p-expanded-query)** — skip an entry whose `MBR(0)`
//!   (the union of the subtree's uncertainty regions) lies completely
//!   outside the issuer's `M`-expanded-query.
//! * **Strategy 1 (p-bounds)** — skip an entry when the expanded query
//!   `R ⊕ U0` lies entirely beyond the subtree's `MBR(m)` on some side,
//!   for the largest stored `m ≤ Qp`: every object below then has at
//!   most `m ≤ Qp` probability mass in the intersection.
//!
//! Strategy 3 (the `qmin · dmin` product rule) needs the *issuer's*
//! catalog and is applied per candidate by the query engine, above the
//! index.

use iloc_geometry::Rect;

use crate::rtree::RTreeParams;
use crate::stats::AccessStats;
use crate::traits::{RangeIndex, TraversalScratch};

/// PTI construction parameters.
#[derive(Debug, Clone, Copy, Default)]
pub struct PtiParams {
    /// Underlying R-tree fanout.
    pub rtree: RTreeParams,
}

/// One leaf entry: the object's per-level p-bound rectangles plus its
/// payload. `bounds[0]` is the uncertainty region (0-bound).
#[derive(Debug, Clone)]
struct LeafEntry<T> {
    bounds: Vec<Rect>,
    item: T,
}

/// One internal entry: per-level merged MBRs plus the child index.
#[derive(Debug, Clone)]
struct ChildEntry {
    bounds: Vec<Rect>,
    child: usize,
}

#[derive(Debug, Clone)]
enum PtiNodeKind<T> {
    Leaf(Vec<LeafEntry<T>>),
    Internal(Vec<ChildEntry>),
}

#[derive(Debug, Clone)]
struct PtiNode<T> {
    kind: PtiNodeKind<T>,
}

/// The pruning inputs of one constrained query.
#[derive(Debug, Clone, Copy)]
pub struct PtiQuery {
    /// The expanded query `R ⊕ U0` (Lemma 1 filter and Strategy 1 side
    /// tests).
    pub expanded: Rect,
    /// The issuer's `M`-expanded-query for the largest stored issuer
    /// level `M ≤ Qp` (Strategy 2). Must satisfy
    /// `p_expanded ⊆ expanded`; pass `expanded` itself when `Qp = 0`.
    pub p_expanded: Rect,
    /// The probability threshold `Qp ∈ [0, 1]`.
    pub threshold: f64,
}

/// The Probability Threshold Index.
///
/// Built by bulk loading (the experiments index static snapshots, as in
/// the paper) and maintained incrementally via [`Pti::insert`] /
/// [`Pti::remove`]; all stored objects must share the same catalog
/// levels.
#[derive(Debug, Clone)]
pub struct Pti<T> {
    levels: Vec<f64>,
    nodes: Vec<PtiNode<T>>,
    root: usize,
    len: usize,
    params: PtiParams,
    /// Arena slots released by removals, reused by inserts.
    free: Vec<usize>,
}

impl<T: Copy> Pti<T> {
    /// Bulk loads a PTI.
    ///
    /// `levels` are the shared catalog levels (ascending, starting at
    /// 0); each object supplies one rectangle per level
    /// (`bounds[k]` = its `levels[k]`-bound) plus a payload.
    ///
    /// # Panics
    ///
    /// Panics when `levels` is empty, does not start at 0, is not
    /// strictly increasing, or an object's bound count differs from
    /// `levels.len()`.
    pub fn bulk_load(levels: Vec<f64>, objects: Vec<(Vec<Rect>, T)>, params: PtiParams) -> Self {
        assert!(!levels.is_empty(), "levels must be non-empty");
        assert_eq!(levels[0], 0.0, "levels must start at 0");
        assert!(
            levels.windows(2).all(|w| w[0] < w[1]),
            "levels must be strictly increasing"
        );
        for (bounds, _) in &objects {
            assert_eq!(
                bounds.len(),
                levels.len(),
                "each object needs one bound per level"
            );
        }
        let len = objects.len();
        let mut pti = Pti {
            levels,
            nodes: Vec::new(),
            root: 0,
            len,
            params,
            free: Vec::new(),
        };
        if len == 0 {
            pti.nodes.push(PtiNode {
                kind: PtiNodeKind::Leaf(Vec::new()),
            });
            return pti;
        }

        // STR-pack on the 0-bound centres, like the plain R-tree.
        let cap = params.rtree.max_entries;
        let leaf_groups = str_pack(
            objects
                .into_iter()
                .map(|(bounds, item)| LeafEntry { bounds, item })
                .collect(),
            cap,
            |e| e.bounds[0],
        );
        let mut level_entries: Vec<ChildEntry> = leaf_groups
            .into_iter()
            .map(|group| {
                let bounds = merge_bounds(group.iter().map(|e| e.bounds.as_slice()));
                pti.nodes.push(PtiNode {
                    kind: PtiNodeKind::Leaf(group),
                });
                ChildEntry {
                    bounds,
                    child: pti.nodes.len() - 1,
                }
            })
            .collect();

        while level_entries.len() > 1 {
            let groups = str_pack(level_entries, cap, |e| e.bounds[0]);
            level_entries = groups
                .into_iter()
                .map(|group| {
                    let bounds = merge_bounds(group.iter().map(|e| e.bounds.as_slice()));
                    pti.nodes.push(PtiNode {
                        kind: PtiNodeKind::Internal(group),
                    });
                    ChildEntry {
                        bounds,
                        child: pti.nodes.len() - 1,
                    }
                })
                .collect();
        }
        pti.root = level_entries[0].child;
        pti
    }

    /// Inserts one object dynamically: `bounds[k]` is its p-bound at
    /// `levels()[k]` (with `bounds[0]` the uncertainty region).
    ///
    /// Uses Guttman-style ChooseSubtree / quadratic split keyed on the
    /// 0-bounds; merged per-level MBRs are maintained along the
    /// insertion path.
    ///
    /// # Panics
    ///
    /// Panics when the bound count does not match the catalog levels.
    pub fn insert(&mut self, bounds: Vec<Rect>, item: T) {
        assert_eq!(
            bounds.len(),
            self.levels.len(),
            "each object needs one bound per level"
        );
        let entry = LeafEntry { bounds, item };
        if let Some((b1, n1, b2, n2)) = self.insert_rec(self.root, entry) {
            let new_root = self.alloc(PtiNode {
                kind: PtiNodeKind::Internal(vec![
                    ChildEntry {
                        bounds: b1,
                        child: n1,
                    },
                    ChildEntry {
                        bounds: b2,
                        child: n2,
                    },
                ]),
            });
            self.root = new_root;
        }
        self.len += 1;
    }

    fn alloc(&mut self, node: PtiNode<T>) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    /// Puts an arena slot on the free list.
    fn release(&mut self, idx: usize) {
        debug_assert_ne!(idx, self.root, "cannot release the root");
        self.nodes[idx].kind = PtiNodeKind::Leaf(Vec::new());
        self.free.push(idx);
    }

    /// Recursive insert; on overflow returns `(bounds1, idx1, bounds2,
    /// idx2)` where `idx1` reuses the original node.
    fn insert_rec(
        &mut self,
        node_idx: usize,
        entry: LeafEntry<T>,
    ) -> Option<(Vec<Rect>, usize, Vec<Rect>, usize)> {
        let max = self.params.rtree.max_entries;
        let min = self.params.rtree.min_entries;
        match &mut self.nodes[node_idx].kind {
            PtiNodeKind::Leaf(entries) => {
                entries.push(entry);
                if entries.len() <= max {
                    return None;
                }
                let full = std::mem::take(entries);
                let (a, b) = quadratic_split_by(full, min, |e: &LeafEntry<T>| e.bounds[0]);
                let ba = merge_bounds(a.iter().map(|e| e.bounds.as_slice()));
                let bb = merge_bounds(b.iter().map(|e| e.bounds.as_slice()));
                self.nodes[node_idx].kind = PtiNodeKind::Leaf(a);
                let sibling = self.alloc(PtiNode {
                    kind: PtiNodeKind::Leaf(b),
                });
                Some((ba, node_idx, bb, sibling))
            }
            PtiNodeKind::Internal(children) => {
                // ChooseSubtree on 0-bound enlargement.
                let extent = entry.bounds[0];
                let mut best = 0usize;
                let mut best_enl = f64::INFINITY;
                let mut best_area = f64::INFINITY;
                for (i, c) in children.iter().enumerate() {
                    let mbr = c.bounds[0];
                    let area = mbr.area();
                    let enl = mbr.hull(extent).area() - area;
                    if enl < best_enl || (enl == best_enl && area < best_area) {
                        best = i;
                        best_enl = enl;
                        best_area = area;
                    }
                }
                let entry_bounds = entry.bounds.clone();
                let child_idx = children[best].child;
                let split_result = self.insert_rec(child_idx, entry);
                let PtiNodeKind::Internal(children) = &mut self.nodes[node_idx].kind else {
                    unreachable!("node kind cannot change during insert");
                };
                match split_result {
                    None => {
                        for (m, b) in children[best].bounds.iter_mut().zip(&entry_bounds) {
                            *m = m.hull(*b);
                        }
                        None
                    }
                    Some((b1, n1, b2, n2)) => {
                        children[best] = ChildEntry {
                            bounds: b1,
                            child: n1,
                        };
                        children.push(ChildEntry {
                            bounds: b2,
                            child: n2,
                        });
                        if children.len() <= max {
                            return None;
                        }
                        let full = std::mem::take(children);
                        let (a, b) = quadratic_split_by(full, min, |c: &ChildEntry| c.bounds[0]);
                        let ba = merge_bounds(a.iter().map(|c| c.bounds.as_slice()));
                        let bb = merge_bounds(b.iter().map(|c| c.bounds.as_slice()));
                        self.nodes[node_idx].kind = PtiNodeKind::Internal(a);
                        let sibling = self.alloc(PtiNode {
                            kind: PtiNodeKind::Internal(b),
                        });
                        Some((ba, node_idx, bb, sibling))
                    }
                }
            }
        }
    }

    /// Removes one stored object whose **0-bound** (uncertainty
    /// region) is `region` and whose payload equals `item`; returns
    /// `true` when found. When several identical entries exist, one of
    /// them is removed.
    ///
    /// This is the PTI's *constrained-rectangle repair*: every
    /// ancestor's per-level merged MBRs are recomputed exactly from
    /// its surviving children along the removal path (a hull can only
    /// shrink on removal, so in-place shrinking is not possible — the
    /// merge must be redone). Emptied nodes are dissolved and their
    /// arena slots go to the free list; a single-child internal root
    /// is demoted so repeated insert/remove churn cannot grow the
    /// height without bound.
    pub fn remove(&mut self, region: Rect, item: T) -> bool
    where
        T: PartialEq,
    {
        if self.len == 0 || !self.remove_rec(self.root, region, item) {
            return false;
        }
        self.len -= 1;
        // Demote the root while it is an internal node with one child.
        loop {
            let promote = match &self.nodes[self.root].kind {
                PtiNodeKind::Internal(children) if children.len() == 1 => Some(children[0].child),
                _ => None,
            };
            match promote {
                Some(child) => {
                    let old = self.root;
                    self.root = child;
                    self.release(old);
                }
                None => break,
            }
        }
        if self.len == 0 {
            self.nodes[self.root].kind = PtiNodeKind::Leaf(Vec::new());
        }
        true
    }

    /// Depth-first search and removal; returns `true` once removed.
    fn remove_rec(&mut self, node_idx: usize, region: Rect, item: T) -> bool
    where
        T: PartialEq,
    {
        // Leaf: remove in place.
        if let PtiNodeKind::Leaf(entries) = &mut self.nodes[node_idx].kind {
            let Some(pos) = entries
                .iter()
                .position(|e| e.bounds[0] == region && e.item == item)
            else {
                return false;
            };
            entries.swap_remove(pos);
            return true;
        }
        // Internal: collect candidate children (their 0-bound must
        // cover the object's region), then recurse without holding a
        // borrow on this node.
        let candidates: Vec<(usize, usize)> = match &self.nodes[node_idx].kind {
            PtiNodeKind::Internal(children) => children
                .iter()
                .enumerate()
                .filter(|(_, c)| c.bounds[0].contains_rect(region))
                .map(|(i, c)| (i, c.child))
                .collect(),
            PtiNodeKind::Leaf(_) => unreachable!("handled above"),
        };
        for (i, child_idx) in candidates {
            if !self.remove_rec(child_idx, region, item) {
                continue;
            }
            if self.node_entry_count(child_idx) == 0 {
                // Dissolve the emptied child.
                let PtiNodeKind::Internal(children) = &mut self.nodes[node_idx].kind else {
                    unreachable!("node kind is stable");
                };
                children.swap_remove(i);
                self.release(child_idx);
            } else {
                // Exact repair: re-merge the child's per-level bounds.
                let bounds = self.node_bounds(child_idx);
                let PtiNodeKind::Internal(children) = &mut self.nodes[node_idx].kind else {
                    unreachable!("node kind is stable");
                };
                children[i].bounds = bounds;
            }
            return true;
        }
        false
    }

    /// Number of entries directly stored in a node.
    fn node_entry_count(&self, idx: usize) -> usize {
        match &self.nodes[idx].kind {
            PtiNodeKind::Leaf(entries) => entries.len(),
            PtiNodeKind::Internal(children) => children.len(),
        }
    }

    /// Exact per-level merged MBRs of a node's entries.
    fn node_bounds(&self, idx: usize) -> Vec<Rect> {
        match &self.nodes[idx].kind {
            PtiNodeKind::Leaf(entries) => merge_bounds(entries.iter().map(|e| e.bounds.as_slice())),
            PtiNodeKind::Internal(children) => {
                merge_bounds(children.iter().map(|c| c.bounds.as_slice()))
            }
        }
    }

    /// Validates structural invariants (tests): every internal entry's
    /// per-level bounds equal the hull of its subtree's bounds; all
    /// leaves at one depth; item count consistent. Bulk-loaded trees
    /// may under-fill trailing nodes, so fill factors are not checked.
    pub fn check_invariants(&self) -> usize {
        fn walk<T: Copy>(
            pti: &Pti<T>,
            idx: usize,
            depth: usize,
            leaf_depth: &mut Option<usize>,
        ) -> (usize, Vec<Rect>) {
            match &pti.nodes[idx].kind {
                PtiNodeKind::Leaf(entries) => {
                    match leaf_depth {
                        None => *leaf_depth = Some(depth),
                        Some(d) => assert_eq!(*d, depth, "leaves at different depths"),
                    }
                    (
                        entries.len(),
                        merge_bounds(entries.iter().map(|e| e.bounds.as_slice())),
                    )
                }
                PtiNodeKind::Internal(children) => {
                    assert!(!children.is_empty());
                    let mut count = 0;
                    let mut all: Vec<Rect> = Vec::new();
                    for c in children {
                        let (n, actual) = walk(pti, c.child, depth + 1, leaf_depth);
                        assert_eq!(
                            c.bounds, actual,
                            "cached per-level bounds out of date at node {idx}"
                        );
                        count += n;
                        if all.is_empty() {
                            all = actual;
                        } else {
                            for (m, b) in all.iter_mut().zip(&actual) {
                                *m = m.hull(*b);
                            }
                        }
                    }
                    (count, all)
                }
            }
        }
        let mut leaf_depth = None;
        let (n, _) = walk(self, self.root, 0, &mut leaf_depth);
        assert_eq!(n, self.len, "len out of sync");
        n
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The shared catalog levels.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Index of the largest stored level `≤ qp` (always exists because
    /// level 0 is mandatory).
    fn level_floor(&self, qp: f64) -> usize {
        self.levels.partition_point(|&l| l <= qp).saturating_sub(1)
    }

    /// Returns `true` when the Strategy-1 side test prunes an entry
    /// whose `m`-level bound is `b`: the expanded query lies entirely in
    /// the `≤ m` tail on some side.
    fn strategy1_prunes(expanded: Rect, b: Rect) -> bool {
        expanded.min.x >= b.max.x // beyond r(m): right tail
            || expanded.max.x <= b.min.x // beyond l(m): left tail
            || expanded.min.y >= b.max.y // above t(m): top tail
            || expanded.max.y <= b.min.y // below b(m): bottom tail
    }

    /// Answers a constrained range filter: every object whose subtree
    /// survives the Strategy 1 + Strategy 2 node tests (and the same
    /// tests at the leaf level) is pushed into `out`.
    pub fn query_into(&self, q: &PtiQuery, stats: &mut AccessStats, out: &mut Vec<T>) {
        self.query_scratch(q, stats, &mut TraversalScratch::new(), out);
    }

    /// Like [`Pti::query_into`], but traversal state comes from (and
    /// returns to) `scratch`, so repeated probes through a warm scratch
    /// are allocation-free.
    pub fn query_scratch(
        &self,
        q: &PtiQuery,
        stats: &mut AccessStats,
        scratch: &mut TraversalScratch,
        out: &mut Vec<T>,
    ) {
        if self.len == 0 {
            return;
        }
        debug_assert!(
            q.expanded.contains_rect(q.p_expanded),
            "p-expanded query must be inside the expanded query"
        );
        let k = self.level_floor(q.threshold);
        let stack = &mut scratch.stack;
        stack.clear();
        stack.push(self.root);
        while let Some(idx) = stack.pop() {
            stats.nodes_visited += 1;
            match &self.nodes[idx].kind {
                PtiNodeKind::Leaf(entries) => {
                    for e in entries {
                        stats.items_tested += 1;
                        if !e.bounds[0].overlaps(q.p_expanded) {
                            continue; // Strategy 2
                        }
                        if k > 0 && Self::strategy1_prunes(q.expanded, e.bounds[k]) {
                            continue; // Strategy 1
                        }
                        stats.candidates += 1;
                        out.push(e.item);
                    }
                }
                PtiNodeKind::Internal(children) => {
                    for c in children {
                        if !c.bounds[0].overlaps(q.p_expanded) {
                            continue;
                        }
                        if k > 0 && Self::strategy1_prunes(q.expanded, c.bounds[k]) {
                            continue;
                        }
                        stack.push(c.child);
                    }
                }
            }
        }
    }

    /// Convenience wrapper returning a fresh vector.
    pub fn query(&self, q: &PtiQuery, stats: &mut AccessStats) -> Vec<T> {
        let mut out = Vec::new();
        self.query_into(q, stats, &mut out);
        out
    }
}

/// A PTI used as a plain spatial index: probes run at threshold 0 (no
/// p-bound pruning, exactly the Lemma-1 overlap filter), and
/// trait-level inserts store the extent replicated across every
/// catalog level — a sound, conservative p-bound (the true `m`-bound
/// of any pdf is contained in its region, so a larger stored bound
/// can only prune *less*). This keeps the PTI in the shared
/// `RangeIndex` conformance suite alongside the other backends.
impl<T: Copy> RangeIndex<T> for Pti<T> {
    fn len(&self) -> usize {
        self.len
    }

    fn insert(&mut self, extent: Rect, item: T) {
        assert!(
            extent.is_finite() && !extent.is_empty(),
            "extent must be finite and non-empty"
        );
        Pti::insert(self, vec![extent; self.levels.len()], item);
    }

    fn remove(&mut self, extent: Rect, item: T) -> bool
    where
        T: PartialEq,
    {
        Pti::remove(self, extent, item)
    }

    fn query_range_into(&self, query: Rect, stats: &mut AccessStats, out: &mut Vec<T>) {
        self.query_into(
            &PtiQuery {
                expanded: query,
                p_expanded: query,
                threshold: 0.0,
            },
            stats,
            out,
        );
    }

    fn query_range_scratch(
        &self,
        query: Rect,
        stats: &mut AccessStats,
        scratch: &mut TraversalScratch,
        out: &mut Vec<T>,
    ) {
        self.query_scratch(
            &PtiQuery {
                expanded: query,
                p_expanded: query,
                threshold: 0.0,
            },
            stats,
            scratch,
            out,
        );
    }
}

/// Merges per-level bounds of a group: `MBR(m)` is the hull of the
/// members' `m`-bounds, kept per level.
fn merge_bounds<'a>(groups: impl Iterator<Item = &'a [Rect]>) -> Vec<Rect> {
    let mut merged: Vec<Rect> = Vec::new();
    for bounds in groups {
        if merged.is_empty() {
            merged = bounds.to_vec();
        } else {
            for (m, b) in merged.iter_mut().zip(bounds) {
                *m = m.hull(*b);
            }
        }
    }
    merged
}

/// Guttman quadratic split for non-`Copy` entries, keyed by a
/// rectangle accessor (the 0-bound). Mirrors
/// `rtree::split::quadratic_split` but moves entries instead of
/// copying them.
fn quadratic_split_by<E>(
    entries: Vec<E>,
    min: usize,
    key: impl Fn(&E) -> Rect,
) -> (Vec<E>, Vec<E>) {
    debug_assert!(entries.len() >= 2 * min);
    let rects: Vec<Rect> = entries.iter().map(&key).collect();
    let n = rects.len();

    // PickSeeds.
    let (mut s1, mut s2) = (0usize, 1usize);
    let mut worst = f64::NEG_INFINITY;
    for i in 0..n {
        for j in (i + 1)..n {
            let d = rects[i].hull(rects[j]).area() - rects[i].area() - rects[j].area();
            if d > worst {
                worst = d;
                s1 = i;
                s2 = j;
            }
        }
    }

    // Greedy assignment of the remaining indices.
    let mut assign = vec![0u8; n];
    assign[s1] = 1;
    assign[s2] = 2;
    let mut mbr1 = rects[s1];
    let mut mbr2 = rects[s2];
    let mut n1 = 1usize;
    let mut n2 = 1usize;
    let mut rest: Vec<usize> = (0..n).filter(|&i| i != s1 && i != s2).collect();
    while !rest.is_empty() {
        let remaining = rest.len();
        if n1 + remaining == min {
            for i in rest.drain(..) {
                assign[i] = 1;
                mbr1 = mbr1.hull(rects[i]);
            }
            break;
        }
        if n2 + remaining == min {
            for i in rest.drain(..) {
                assign[i] = 2;
                mbr2 = mbr2.hull(rects[i]);
            }
            break;
        }
        // PickNext.
        let mut pick = 0usize;
        let mut pick_diff = f64::NEG_INFINITY;
        for (k, &i) in rest.iter().enumerate() {
            let d1 = mbr1.hull(rects[i]).area() - mbr1.area();
            let d2 = mbr2.hull(rects[i]).area() - mbr2.area();
            if (d1 - d2).abs() > pick_diff {
                pick_diff = (d1 - d2).abs();
                pick = k;
            }
        }
        let i = rest.swap_remove(pick);
        let d1 = mbr1.hull(rects[i]).area() - mbr1.area();
        let d2 = mbr2.hull(rects[i]).area() - mbr2.area();
        let to_g1 = d1 < d2
            || (d1 == d2
                && (mbr1.area() < mbr2.area() || (mbr1.area() == mbr2.area() && n1 <= n2)));
        if to_g1 {
            assign[i] = 1;
            mbr1 = mbr1.hull(rects[i]);
            n1 += 1;
        } else {
            assign[i] = 2;
            mbr2 = mbr2.hull(rects[i]);
            n2 += 1;
        }
    }

    let mut g1 = Vec::with_capacity(n1);
    let mut g2 = Vec::with_capacity(n2);
    for (i, e) in entries.into_iter().enumerate() {
        if assign[i] == 1 {
            g1.push(e);
        } else {
            g2.push(e);
        }
    }
    debug_assert!(g1.len() >= min && g2.len() >= min);
    (g1, g2)
}

/// STR tiling of arbitrary entries keyed by a rectangle accessor.
fn str_pack<E>(mut entries: Vec<E>, cap: usize, key: impl Fn(&E) -> Rect) -> Vec<Vec<E>> {
    let n = entries.len();
    if n <= cap {
        return vec![entries];
    }
    let node_count = n.div_ceil(cap);
    let slice_count = (node_count as f64).sqrt().ceil() as usize;
    let slice_size = slice_count.max(1) * cap;
    entries.sort_by(|a, b| {
        key(a)
            .center()
            .x
            .partial_cmp(&key(b).center().x)
            .expect("finite coordinates")
    });
    let mut groups = Vec::with_capacity(node_count);
    let mut rest = entries;
    while !rest.is_empty() {
        let take = slice_size.min(rest.len());
        let mut slice: Vec<E> = rest.drain(..take).collect();
        slice.sort_by(|a, b| {
            key(a)
                .center()
                .y
                .partial_cmp(&key(b).center().y)
                .expect("finite coordinates")
        });
        while !slice.is_empty() {
            let take = cap.min(slice.len());
            groups.push(slice.drain(..take).collect());
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc_geometry::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Uniform-pdf p-bounds for a region: linear shrink per level.
    fn uniform_bounds(region: Rect, levels: &[f64]) -> Vec<Rect> {
        levels
            .iter()
            .map(|&p| {
                let dx = p * region.width();
                let dy = p * region.height();
                Rect::from_coords(
                    region.min.x + dx,
                    region.min.y + dy,
                    region.max.x - dx,
                    region.max.y - dy,
                )
            })
            .collect()
    }

    fn levels() -> Vec<f64> {
        vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
    }

    fn build(n: usize, seed: u64) -> (Pti<usize>, Vec<Rect>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let regions: Vec<Rect> = (0..n)
            .map(|_| {
                let x = rng.gen_range(0.0..950.0);
                let y = rng.gen_range(0.0..950.0);
                Rect::from_coords(
                    x,
                    y,
                    x + rng.gen_range(5.0..50.0),
                    y + rng.gen_range(5.0..50.0),
                )
            })
            .collect();
        let objects = regions
            .iter()
            .enumerate()
            .map(|(k, &r)| (uniform_bounds(r, &levels()), k))
            .collect();
        (
            Pti::bulk_load(levels(), objects, PtiParams::default()),
            regions,
        )
    }

    #[test]
    fn zero_threshold_equals_plain_overlap_filter() {
        let (pti, regions) = build(500, 1);
        let expanded = Rect::from_coords(200.0, 200.0, 500.0, 500.0);
        let q = PtiQuery {
            expanded,
            p_expanded: expanded,
            threshold: 0.0,
        };
        let mut stats = AccessStats::new();
        let mut got = pti.query(&q, &mut stats);
        got.sort_unstable();
        let want: Vec<usize> = regions
            .iter()
            .enumerate()
            .filter(|(_, r)| r.overlaps(expanded))
            .map(|(k, _)| k)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn threshold_pruning_is_sound_and_effective() {
        // With a threshold, the PTI may only drop objects the plain
        // filter kept — and must keep every object whose true
        // probability could reach the threshold.
        let (pti, regions) = build(500, 2);
        let expanded = Rect::from_coords(300.0, 300.0, 600.0, 600.0);
        let qp = 0.4;
        // A p-expanded query strictly inside the expanded one.
        let p_expanded = expanded.expand(-30.0, -30.0);
        let q = PtiQuery {
            expanded,
            p_expanded,
            threshold: qp,
        };
        let mut stats = AccessStats::new();
        let constrained = pti.query(&q, &mut stats);

        let q0 = PtiQuery {
            expanded,
            p_expanded: expanded,
            threshold: 0.0,
        };
        let mut s0 = AccessStats::new();
        let unconstrained = pti.query(&q0, &mut s0);
        assert!(constrained.len() <= unconstrained.len());

        // Soundness: everything dropped violates one of the two tests.
        let lv = levels();
        let k = lv.partition_point(|&l| l <= qp) - 1;
        for id in &unconstrained {
            if constrained.contains(id) {
                continue;
            }
            let region = regions[*id];
            let bounds = uniform_bounds(region, &lv);
            let s2 = !region.overlaps(p_expanded);
            let s1 = Pti::<usize>::strategy1_prunes(expanded, bounds[k]);
            assert!(s1 || s2, "object {id} dropped without justification");
        }
    }

    #[test]
    fn node_level_pruning_visits_fewer_nodes() {
        let (pti, _) = build(5000, 3);
        let expanded = Rect::centered(Point::new(500.0, 500.0), 150.0, 150.0);
        let tight = PtiQuery {
            expanded,
            p_expanded: expanded.expand(-100.0, -100.0),
            threshold: 0.5,
        };
        let loose = PtiQuery {
            expanded,
            p_expanded: expanded,
            threshold: 0.0,
        };
        let mut s_tight = AccessStats::new();
        let mut s_loose = AccessStats::new();
        let _ = pti.query(&tight, &mut s_tight);
        let _ = pti.query(&loose, &mut s_loose);
        assert!(s_tight.candidates <= s_loose.candidates);
        assert!(s_tight.nodes_visited <= s_loose.nodes_visited);
    }

    #[test]
    fn empty_pti() {
        let pti: Pti<usize> = Pti::bulk_load(levels(), Vec::new(), PtiParams::default());
        assert!(pti.is_empty());
        let e = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let mut stats = AccessStats::new();
        assert!(pti
            .query(
                &PtiQuery {
                    expanded: e,
                    p_expanded: e,
                    threshold: 0.3
                },
                &mut stats
            )
            .is_empty());
    }

    #[test]
    fn level_floor_selection() {
        let (pti, _) = build(10, 4);
        assert_eq!(pti.level_floor(0.0), 0);
        assert_eq!(pti.level_floor(0.15), 1);
        assert_eq!(pti.level_floor(0.5), 5);
        assert_eq!(pti.level_floor(0.99), 5);
    }

    #[test]
    fn dynamic_inserts_match_bulk_load_results() {
        let mut rng = StdRng::seed_from_u64(21);
        let lv = levels();
        let regions: Vec<Rect> = (0..800)
            .map(|_| {
                let x = rng.gen_range(0.0..950.0);
                let y = rng.gen_range(0.0..950.0);
                Rect::from_coords(
                    x,
                    y,
                    x + rng.gen_range(5.0..40.0),
                    y + rng.gen_range(5.0..40.0),
                )
            })
            .collect();
        let bulk = Pti::bulk_load(
            lv.clone(),
            regions
                .iter()
                .enumerate()
                .map(|(k, &r)| (uniform_bounds(r, &lv), k))
                .collect(),
            PtiParams::default(),
        );
        let mut dynamic: Pti<usize> = Pti::bulk_load(lv.clone(), Vec::new(), PtiParams::default());
        for (k, &r) in regions.iter().enumerate() {
            dynamic.insert(uniform_bounds(r, &lv), k);
        }
        assert_eq!(dynamic.len(), 800);
        dynamic.check_invariants();
        bulk.check_invariants();

        for qp in [0.0, 0.2, 0.5] {
            let expanded = Rect::from_coords(100.0, 100.0, 600.0, 600.0);
            let q = PtiQuery {
                expanded,
                p_expanded: expanded.expand(-40.0, -40.0),
                threshold: qp,
            };
            let mut s1 = AccessStats::new();
            let mut s2 = AccessStats::new();
            let mut a = bulk.query(&q, &mut s1);
            let mut b = dynamic.query(&q, &mut s2);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "qp={qp}");
        }
    }

    #[test]
    fn insert_grows_tree_and_keeps_invariants() {
        let lv = levels();
        let mut pti: Pti<usize> = Pti::bulk_load(lv.clone(), Vec::new(), PtiParams::default());
        let mut rng = StdRng::seed_from_u64(5);
        for k in 0..5_000usize {
            let x = rng.gen_range(0.0..990.0);
            let y = rng.gen_range(0.0..990.0);
            let r = Rect::from_coords(x, y, x + 5.0, y + 5.0);
            pti.insert(uniform_bounds(r, &lv), k);
        }
        assert_eq!(pti.check_invariants(), 5_000);
    }

    #[test]
    fn remove_missing_returns_false() {
        let (mut pti, regions) = build(50, 6);
        assert!(!pti.remove(Rect::from_coords(-5.0, -5.0, -1.0, -1.0), 0));
        assert!(!pti.remove(regions[3], 99));
        assert_eq!(pti.len(), 50);
        pti.check_invariants();
    }

    #[test]
    fn remove_repairs_merged_bounds_exactly() {
        let (mut pti, regions) = build(600, 7);
        // Remove a third of the objects; after every removal the
        // cached per-level merged MBRs must still be exact hulls.
        for (k, &r) in regions.iter().enumerate() {
            if k % 3 == 0 {
                assert!(pti.remove(r, k), "object {k} not found");
            }
        }
        assert_eq!(pti.check_invariants(), 400);
        // Survivors are still found, removed objects are not.
        let expanded = Rect::from_coords(0.0, 0.0, 1_000.0, 1_000.0);
        let q = PtiQuery {
            expanded,
            p_expanded: expanded,
            threshold: 0.0,
        };
        let mut stats = AccessStats::new();
        let mut got = pti.query(&q, &mut stats);
        got.sort_unstable();
        let want: Vec<usize> = (0..600).filter(|k| k % 3 != 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn interleaved_inserts_and_removes_keep_invariants() {
        let lv = levels();
        let mut pti: Pti<usize> = Pti::bulk_load(lv.clone(), Vec::new(), PtiParams::default());
        let mut live: Vec<(Rect, usize)> = Vec::new();
        let mut rng = StdRng::seed_from_u64(13);
        let mut next_id = 0usize;
        for step in 0..2_000 {
            let grow = live.len() < 20 || rng.gen_bool(0.55);
            if grow {
                let x = rng.gen_range(0.0..950.0);
                let y = rng.gen_range(0.0..950.0);
                let r = Rect::from_coords(x, y, x + 10.0, y + 10.0);
                pti.insert(uniform_bounds(r, &lv), next_id);
                live.push((r, next_id));
                next_id += 1;
            } else {
                let k = rng.gen_range(0..live.len());
                let (r, id) = live.swap_remove(k);
                assert!(pti.remove(r, id), "step {step}: failed to remove {id}");
            }
        }
        assert_eq!(pti.check_invariants(), live.len());
        // Query equivalence with the surviving set at threshold 0.
        for _ in 0..30 {
            let x = rng.gen_range(0.0..900.0);
            let y = rng.gen_range(0.0..900.0);
            let expanded = Rect::from_coords(x, y, x + 80.0, y + 80.0);
            let q = PtiQuery {
                expanded,
                p_expanded: expanded,
                threshold: 0.0,
            };
            let mut stats = AccessStats::new();
            let mut got = pti.query(&q, &mut stats);
            got.sort_unstable();
            let mut want: Vec<usize> = live
                .iter()
                .filter(|(r, _)| r.overlaps(expanded))
                .map(|&(_, id)| id)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn remove_to_empty_reuses_arena_slots() {
        let lv = levels();
        let mut pti: Pti<usize> = Pti::bulk_load(lv.clone(), Vec::new(), PtiParams::default());
        for round in 0..3 {
            for k in 0..300usize {
                let x = (k % 30) as f64 * 30.0;
                let y = (k / 30) as f64 * 90.0;
                let r = Rect::from_coords(x, y, x + 8.0, y + 8.0);
                pti.insert(uniform_bounds(r, &lv), k);
            }
            let nodes = pti.nodes.len();
            for k in 0..300usize {
                let x = (k % 30) as f64 * 30.0;
                let y = (k / 30) as f64 * 90.0;
                let r = Rect::from_coords(x, y, x + 8.0, y + 8.0);
                assert!(pti.remove(r, k), "round {round}: object {k} not found");
            }
            assert!(pti.is_empty());
            // Dissolved slots are reused, so the arena stays bounded
            // across churn rounds.
            assert!(pti.nodes.len() <= nodes);
        }
        pti.check_invariants();
    }

    #[test]
    #[should_panic(expected = "one bound per level")]
    fn insert_rejects_wrong_bound_count() {
        let mut pti: Pti<usize> = Pti::bulk_load(levels(), Vec::new(), PtiParams::default());
        pti.insert(vec![Rect::from_coords(0.0, 0.0, 1.0, 1.0)], 0);
    }

    #[test]
    #[should_panic(expected = "levels must start at 0")]
    fn rejects_missing_zero_level() {
        let _: Pti<usize> = Pti::bulk_load(vec![0.1, 0.2], Vec::new(), PtiParams::default());
    }

    #[test]
    #[should_panic(expected = "one bound per level")]
    fn rejects_mismatched_bounds() {
        let _: Pti<usize> = Pti::bulk_load(
            vec![0.0, 0.1],
            vec![(vec![Rect::from_coords(0.0, 0.0, 1.0, 1.0)], 1)],
            PtiParams::default(),
        );
    }
}
