//! Mixture uncertainty pdf: a weighted combination of component pdfs.
//!
//! Real location beliefs are often multimodal — "the vehicle is near
//! one of these two intersections", or a particle-filter posterior
//! summarised by a few weighted blobs. Because every `LocationPdf`
//! operation is linear in the density, a mixture implements them all
//! by weighted combination of its components, staying exact whenever
//! the components are.

use std::sync::Arc;

use iloc_geometry::{Point, Rect};
use rand::Rng;
use rand::RngCore;

use crate::pdf::{Axis, LocationPdf, SharedPdf};

/// Weighted mixture of location pdfs.
#[derive(Debug, Clone)]
pub struct MixturePdf {
    /// `(normalised weight, component)`, weights summing to 1.
    components: Vec<(f64, SharedPdf)>,
    /// Cumulative weights for sampling.
    cum: Vec<f64>,
    /// Hull of the component regions.
    region: Rect,
}

impl MixturePdf {
    /// Builds a mixture from `(weight, pdf)` pairs; weights are
    /// normalised internally.
    ///
    /// # Panics
    ///
    /// Panics when no components are given, any weight is negative or
    /// non-finite, or all weights are zero.
    pub fn new(parts: Vec<(f64, SharedPdf)>) -> Self {
        assert!(!parts.is_empty(), "mixture needs at least one component");
        assert!(
            parts.iter().all(|(w, _)| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = parts.iter().map(|(w, _)| w).sum();
        assert!(total > 0.0, "at least one weight must be positive");
        let components: Vec<(f64, SharedPdf)> =
            parts.into_iter().map(|(w, p)| (w / total, p)).collect();
        let mut cum = Vec::with_capacity(components.len());
        let mut acc = 0.0;
        for (w, _) in &components {
            acc += w;
            cum.push(acc);
        }
        let region = components
            .iter()
            .fold(Rect::EMPTY, |r, (_, p)| r.hull(p.region()));
        MixturePdf {
            components,
            cum,
            region,
        }
    }

    /// Convenience constructor from concrete pdfs with equal weights.
    pub fn equally_weighted(pdfs: Vec<SharedPdf>) -> Self {
        MixturePdf::new(pdfs.into_iter().map(|p| (1.0, p)).collect())
    }

    /// Convenience: two-component mixture.
    pub fn bimodal(
        w1: f64,
        p1: impl LocationPdf + 'static,
        w2: f64,
        p2: impl LocationPdf + 'static,
    ) -> Self {
        MixturePdf::new(vec![(w1, Arc::new(p1) as SharedPdf), (w2, Arc::new(p2))])
    }

    /// The normalised component weights.
    pub fn weights(&self) -> impl Iterator<Item = f64> + '_ {
        self.components.iter().map(|(w, _)| *w)
    }

    /// Number of components.
    pub fn arity(&self) -> usize {
        self.components.len()
    }
}

impl LocationPdf for MixturePdf {
    fn region(&self) -> Rect {
        self.region
    }

    fn density(&self, p: Point) -> f64 {
        self.components.iter().map(|(w, c)| w * c.density(p)).sum()
    }

    fn prob_in_rect(&self, r: Rect) -> f64 {
        self.components
            .iter()
            .map(|(w, c)| w * c.prob_in_rect(r))
            .sum::<f64>()
            .clamp(0.0, 1.0)
    }

    fn marginal_cdf(&self, axis: Axis, v: f64) -> f64 {
        self.components
            .iter()
            .map(|(w, c)| w * c.marginal_cdf(axis, v))
            .sum::<f64>()
            .clamp(0.0, 1.0)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Point {
        let u: f64 = rng.gen_range(0.0..1.0);
        let idx = self
            .cum
            .partition_point(|&c| c < u)
            .min(self.components.len() - 1);
        self.components[idx].1.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::UniformPdf;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bimodal() -> MixturePdf {
        // 70% in the left box, 30% in the right box.
        MixturePdf::bimodal(
            0.7,
            UniformPdf::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0)),
            0.3,
            UniformPdf::new(Rect::from_coords(100.0, 0.0, 110.0, 10.0)),
        )
    }

    #[test]
    fn weights_are_normalised() {
        let m = MixturePdf::bimodal(
            7.0,
            UniformPdf::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0)),
            3.0,
            UniformPdf::new(Rect::from_coords(2.0, 0.0, 3.0, 1.0)),
        );
        let ws: Vec<f64> = m.weights().collect();
        assert!((ws[0] - 0.7).abs() < 1e-12);
        assert!((ws[1] - 0.3).abs() < 1e-12);
        assert_eq!(m.arity(), 2);
    }

    #[test]
    fn region_is_hull_of_components() {
        let m = bimodal();
        assert_eq!(m.region(), Rect::from_coords(0.0, 0.0, 110.0, 10.0));
    }

    #[test]
    fn total_mass_is_one_and_splits_by_weight() {
        let m = bimodal();
        assert!((m.prob_in_rect(m.region()) - 1.0).abs() < 1e-12);
        assert!((m.prob_in_rect(Rect::from_coords(0.0, 0.0, 10.0, 10.0)) - 0.7).abs() < 1e-12);
        assert!((m.prob_in_rect(Rect::from_coords(100.0, 0.0, 110.0, 10.0)) - 0.3).abs() < 1e-12);
        // The gap between the modes carries no mass.
        assert_eq!(
            m.prob_in_rect(Rect::from_coords(20.0, 0.0, 90.0, 10.0)),
            0.0
        );
    }

    #[test]
    fn density_is_weighted_sum() {
        let m = bimodal();
        assert!((m.density(Point::new(5.0, 5.0)) - 0.7 / 100.0).abs() < 1e-12);
        assert!((m.density(Point::new(105.0, 5.0)) - 0.3 / 100.0).abs() < 1e-12);
        assert_eq!(m.density(Point::new(50.0, 5.0)), 0.0);
    }

    #[test]
    fn marginal_cdf_steps_across_modes() {
        let m = bimodal();
        assert_eq!(m.marginal_cdf(Axis::X, -1.0), 0.0);
        assert!((m.marginal_cdf(Axis::X, 10.0) - 0.7).abs() < 1e-12);
        assert!((m.marginal_cdf(Axis::X, 50.0) - 0.7).abs() < 1e-12);
        assert_eq!(m.marginal_cdf(Axis::X, 110.0), 1.0);
    }

    #[test]
    fn quantile_bisection_works_on_flat_cdf_regions() {
        // The default quantile must cope with the plateau between the
        // modes.
        let m = bimodal();
        let q30 = m.quantile(Axis::X, 0.3);
        assert!((m.marginal_cdf(Axis::X, q30) - 0.3).abs() < 1e-9);
        let q90 = m.quantile(Axis::X, 0.9);
        assert!(q90 > 100.0 && q90 < 110.0);
    }

    #[test]
    fn pbounds_work_for_mixtures() {
        use crate::pbound::PBound;
        let m = bimodal();
        let b = PBound::compute(&m, 0.3);
        // The p-bound contract: exactly 30% of mass on the far side of
        // each cut line. (On the flat CDF plateau between the modes any
        // point is a valid quantile; the contract is on the masses.)
        assert!((m.marginal_cdf(Axis::X, b.left()) - 0.3).abs() < 1e-9);
        assert!((1.0 - m.marginal_cdf(Axis::X, b.right()) - 0.3).abs() < 1e-9);
        assert!(b.left() > 0.0 && b.left() < 10.0);
    }

    #[test]
    fn sampling_respects_weights_and_support() {
        let m = bimodal();
        let mut rng = StdRng::seed_from_u64(13);
        const N: usize = 20_000;
        let mut left = 0usize;
        for _ in 0..N {
            let s = m.sample(&mut rng);
            assert!(m.density(s) > 0.0, "sample outside support: {s}");
            if s.x <= 10.0 {
                left += 1;
            }
        }
        let frac = left as f64 / N as f64;
        assert!((frac - 0.7).abs() < 0.02, "got {frac}");
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn rejects_empty_mixture() {
        let _ = MixturePdf::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn rejects_all_zero_weights() {
        let _ = MixturePdf::new(vec![(
            0.0,
            Arc::new(UniformPdf::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0))) as SharedPdf,
        )]);
    }
}
