//! # iloc-uncertainty
//!
//! The probabilistic location-uncertainty model of Sistla et al. and
//! Pfoser & Jensen, as used by *Chen & Cheng (ICDE 2007)*: every
//! uncertain object `Oi` is a closed **uncertainty region** `Ui`
//! (an axis-parallel rectangle in this workspace) together with an
//! **uncertainty pdf** `fi(x, y)` that vanishes outside `Ui`
//! (Definitions 1–2 of the paper).
//!
//! This crate provides:
//!
//! * the [`LocationPdf`] trait plus three implementations — uniform
//!   (the paper's default, "worst-case" model), truncated Gaussian
//!   (the paper's non-uniform experiment, Figure 13), and a
//!   piecewise-constant histogram pdf (exercising the paper's claim
//!   that the methods work for *any* distribution);
//! * **p-bounds** ([`pbound`]) and **U-catalogs** ([`catalog`]) — the
//!   pre-computed pruning metadata of Section 5 and of the PTI index;
//! * the object types ([`object`]) shared by the index and the query
//!   engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod disc;
pub mod gaussian;
pub mod histogram;
pub mod kind;
pub mod math;
pub mod mixture;
pub mod object;
pub mod pbound;
pub mod pdf;
pub mod uniform;

pub use catalog::UCatalog;
pub use disc::DiscPdf;
pub use gaussian::TruncatedGaussianPdf;
pub use histogram::HistogramPdf;
pub use kind::PdfKind;
pub use mixture::MixturePdf;
pub use object::{ObjectId, PointObject, UncertainObject};
pub use pbound::PBound;
pub use pdf::{Axis, LocationPdf, SharedPdf};
pub use uniform::UniformPdf;

/// Glob-import surface.
pub mod prelude {
    pub use crate::catalog::UCatalog;
    pub use crate::disc::DiscPdf;
    pub use crate::gaussian::TruncatedGaussianPdf;
    pub use crate::histogram::HistogramPdf;
    pub use crate::kind::PdfKind;
    pub use crate::mixture::MixturePdf;
    pub use crate::object::{ObjectId, PointObject, UncertainObject};
    pub use crate::pbound::PBound;
    pub use crate::pdf::{Axis, LocationPdf, SharedPdf};
    pub use crate::uniform::UniformPdf;
}
