//! Best-first k-nearest-neighbour search on the R-tree
//! (Hjaltason & Samet's incremental algorithm).
//!
//! Used by the imprecise NN query's candidate stage and exposed as a
//! general index operation. Distances are measured from a query point
//! to entry extents (`MINDIST`); returned items are ordered by
//! non-decreasing distance.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use iloc_geometry::Point;

use super::{NodeKind, RTree};
use crate::stats::AccessStats;

/// Priority-queue element: min-heap on distance via reversed ordering.
struct HeapItem<T> {
    dist: f64,
    kind: QueueKind<T>,
}

enum QueueKind<T> {
    Node(usize),
    Item(T),
}

impl<T> PartialEq for HeapItem<T> {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl<T> Eq for HeapItem<T> {}
impl<T> PartialOrd for HeapItem<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapItem<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need the smallest
        // distance first. NaNs cannot occur (extents are finite).
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("finite distances")
    }
}

impl<T: Copy> RTree<T> {
    /// Returns the `k` stored items nearest to `q` (by `MINDIST` to
    /// their extents), closest first, with their distances. Returns
    /// fewer than `k` when the tree is smaller.
    pub fn nearest_neighbors(&self, q: Point, k: usize, stats: &mut AccessStats) -> Vec<(T, f64)> {
        use crate::traits::RangeIndex as _;
        let mut out = Vec::with_capacity(k.min(self.len()));
        if k == 0 || self.is_empty() {
            return out;
        }
        let mut heap: BinaryHeap<HeapItem<T>> = BinaryHeap::new();
        heap.push(HeapItem {
            dist: 0.0,
            kind: QueueKind::Node(self.root_index()),
        });
        while let Some(HeapItem { dist, kind }) = heap.pop() {
            match kind {
                QueueKind::Item(item) => {
                    out.push((item, dist));
                    if out.len() == k {
                        break;
                    }
                }
                QueueKind::Node(idx) => {
                    stats.nodes_visited += 1;
                    match self.node_kind(idx) {
                        NodeKind::Leaf(entries) => {
                            for &(extent, item) in entries {
                                stats.items_tested += 1;
                                heap.push(HeapItem {
                                    dist: extent.min_distance(q),
                                    kind: QueueKind::Item(item),
                                });
                            }
                        }
                        NodeKind::Internal(children) => {
                            for &(mbr, child) in children {
                                heap.push(HeapItem {
                                    dist: mbr.min_distance(q),
                                    kind: QueueKind::Node(child),
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtree::RTreeParams;
    use iloc_geometry::Rect;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<(Rect, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|k| {
                let p = Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
                (Rect::from_point(p), k)
            })
            .collect()
    }

    #[test]
    fn knn_matches_brute_force() {
        let items = random_points(2_000, 1);
        let tree = RTree::bulk_load(items.clone(), RTreeParams::default());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let q = Point::new(rng.gen_range(-100.0..1100.0), rng.gen_range(-100.0..1100.0));
            let k = rng.gen_range(1..20usize);
            let mut stats = AccessStats::new();
            let got = tree.nearest_neighbors(q, k, &mut stats);
            let mut brute: Vec<(usize, f64)> = items
                .iter()
                .map(|&(r, id)| (id, r.min_distance(q)))
                .collect();
            brute.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            assert_eq!(got.len(), k);
            for (i, (item, d)) in got.iter().enumerate() {
                // Ties can permute ids; distances must match exactly.
                assert!((d - brute[i].1).abs() < 1e-12, "rank {i}");
                let _ = item;
            }
        }
    }

    #[test]
    fn knn_ordered_and_prunes_nodes() {
        let items = random_points(5_000, 3);
        let tree = RTree::bulk_load(items, RTreeParams::default());
        let mut stats = AccessStats::new();
        let got = tree.nearest_neighbors(Point::new(500.0, 500.0), 10, &mut stats);
        for pair in got.windows(2) {
            assert!(pair[0].1 <= pair[1].1, "results must be sorted by distance");
        }
        // Best-first search must not visit most of the tree for k=10.
        assert!(
            (stats.nodes_visited as usize) < tree.node_count() / 4,
            "visited {} of {}",
            stats.nodes_visited,
            tree.node_count()
        );
    }

    #[test]
    fn knn_on_small_or_empty_trees() {
        let empty: RTree<usize> = RTree::default();
        let mut stats = AccessStats::new();
        assert!(empty
            .nearest_neighbors(Point::new(0.0, 0.0), 3, &mut stats)
            .is_empty());

        let tree = RTree::bulk_load(random_points(2, 4), RTreeParams::default());
        let got = tree.nearest_neighbors(Point::new(0.0, 0.0), 10, &mut stats);
        assert_eq!(got.len(), 2);
        assert_eq!(
            tree.nearest_neighbors(Point::new(0.0, 0.0), 0, &mut stats)
                .len(),
            0
        );
    }
}
