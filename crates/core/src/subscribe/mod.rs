//! Standing continuous queries with incremental re-evaluation — the
//! subscription subsystem.
//!
//! The paper's headline workload is *continuous* imprecise
//! location-dependent queries: an issuer registers a query once and
//! expects its answer to track both its own motion and the catalog's
//! churn. [`crate::continuous::ContinuousIpq`] evaluates that workload
//! in process against a borrowed, static [`crate::PointEngine`]; this
//! module is the serving-scale form — **snapshot-owning** standing
//! queries over [`ShardedEngine`] epochs, built so that millions of
//! subscriptions can be held server-side and only the ones a commit
//! actually touched ever do work.
//!
//! ## The three ideas
//!
//! 1. **Safe envelope as the per-subscription cache.** Each
//!    subscription probes the index once with its expanded query grown
//!    by a `slack` margin and keeps the candidate list (per shard,
//!    slot-sorted). Every tick whose expanded query still fits inside
//!    the envelope refines from that list — by Lemma 1 no object
//!    outside the envelope can qualify while the query stays inside
//!    it — performing **zero index probes and zero heap allocations**
//!    in steady state.
//! 2. **Pinned snapshots.** A subscription owns the [`Snapshot`] it
//!    last evaluated against. Commits never invalidate it: the epoch
//!    machinery keeps the old shard engines alive, so an unaffected
//!    subscription keeps answering from its pinned epoch, bit-identical
//!    to fresh evaluation there (and — because nothing inside its
//!    envelope changed — result-identical to the current epoch too).
//! 3. **Affected-subscription detection.** Envelopes live in a spatial
//!    stabbing index (an R-tree over envelope rectangles). When a
//!    commit publishes, its merged **dirty rectangle**
//!    ([`CommitReport::dirty`](crate::serve::CommitReport)) stabs that
//!    index; only the hit subscriptions rebind to the new epoch,
//!    re-probe, and re-evaluate. Everything else does *nothing* — not
//!    even a per-subscription check.
//!
//! Re-evaluation produces an [`AnswerDelta`] against the last answer
//! the subscriber saw: upserted matches (new or changed probability)
//! plus removed ids. Applying the delta to the subscriber's copy
//! reproduces the full fresh answer **bit-identically**
//! (`tests/subscribe.rs` pins this after every commit and tick).
//!
//! ## Determinism fine print
//!
//! Every emitted state is bit-identical to
//! [`Snapshot::execute_one`] of the subscription's request against its
//! **pinned** snapshot. For the deterministic integrators (`Auto`,
//! `Exact`, `Grid`) a per-object probability does not depend on the
//! candidate sequence, so an unaffected subscription's cached answer
//! is also bit-identical to evaluation at the *current* epoch.
//! `MonteCarlo` refinement consumes the per-query RNG in candidate
//! order, and object slots are renumbered across epochs — so for MC
//! subscriptions the bit-exact reference is the pinned epoch (the
//! result *set* still matches the current epoch whenever the envelope
//! stayed clean).
//!
//! Constrained subscriptions are **normalized to Minkowski-sum
//! filtering** (`CipqStrategy::MinkowskiSum` /
//! `CiuqStrategy::RTreeMinkowski`): the p-expanded and PTI plans prune
//! candidates a cached envelope cannot reproduce, and the envelope
//! cache already plays the role those filters play for one-shot
//! queries.

mod registry;

pub use registry::{SubId, Subscription, SubscriptionRegistry};

use iloc_geometry::Rect;
use iloc_index::{AccessStats, TraversalScratch};
use iloc_uncertainty::{ObjectId, PdfKind, PointObject, UncertainObject};

use crate::engine::{PointEngine, UncertainEngine};
use crate::expand::minkowski_query;
use crate::pipeline::{
    AcceptPolicy, EvaluatorKind, ExecutionContext, FilterStage, PointRequest, PreparedQuery,
    PruneChain, QueryPipeline, UncertainRequest,
};
use crate::query::{CipqStrategy, CiuqStrategy};
use crate::result::{Match, QueryAnswer};
use crate::serve::{ServeEngine, Snapshot};

/// An object a cached safe envelope can re-filter: its membership in a
/// filter rectangle is decidable from the object alone.
pub(crate) trait EnvelopeObject {
    /// `true` when the object can qualify for a query whose filter
    /// rectangle is `filter` (point containment for point objects,
    /// region overlap for uncertain ones — matching what an index
    /// probe with `filter` would report).
    fn within(&self, filter: Rect) -> bool;
}

impl EnvelopeObject for PointObject {
    #[inline]
    fn within(&self, filter: Rect) -> bool {
        filter.contains_point(self.loc)
    }
}

impl EnvelopeObject for UncertainObject {
    #[inline]
    fn within(&self, filter: Rect) -> bool {
        filter.overlaps(self.region())
    }
}

/// Filter stage serving candidates from a cached safe envelope,
/// re-checked against the *current* filter rectangle — the continuous
/// query's replacement for an index probe on cache hits. Writes the
/// surviving slots straight into the pipeline's scratch buffer; no
/// allocation per tick. Shared by [`crate::continuous::ContinuousIpq`]
/// and the [`SubscriptionRegistry`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct CachedFilter<'a, O> {
    /// Slot-sorted candidates of the current envelope.
    pub cached: &'a [u32],
    /// The engine's object table the slots index into.
    pub objects: &'a [O],
    /// The current query's filter rectangle (`⊆` the envelope).
    pub filter: Rect,
}

impl<O: EnvelopeObject> FilterStage for CachedFilter<'_, O> {
    fn candidates_into(
        &self,
        stats: &mut AccessStats,
        _traversal: &mut TraversalScratch,
        out: &mut Vec<u32>,
    ) {
        for &idx in self.cached {
            if self.objects[idx as usize].within(self.filter) {
                out.push(idx);
            }
        }
        stats.items_tested += self.cached.len() as u64;
        stats.candidates += out.len() as u64;
    }
}

/// The request fields the normalized continuous plan runs on —
/// identical for both catalogs, extracted once per evaluation.
struct CachedPlan<'a> {
    issuer: &'a crate::query::Issuer,
    range: crate::query::RangeSpec,
    integrator: crate::integrate::Integrator,
    /// `Some` for constrained standing queries (C-IPQ / C-IUQ).
    qp: Option<f64>,
}

/// Runs the normalized continuous plan over one shard's cached
/// candidates: Minkowski filter re-check from the cache, no pruning,
/// duality refinement, accept by the optional threshold — the one
/// definition both catalogs' [`ContinuousEngine::evaluate_cached_into`]
/// impls share, so the point and uncertain subscription paths can
/// never diverge.
fn run_cached_pipeline<O>(
    objects: &[O],
    plan: CachedPlan<'_>,
    cached: &[u32],
    ctx: &mut ExecutionContext,
    answer: &mut QueryAnswer,
) where
    O: crate::pipeline::PipelineObject + EnvelopeObject,
    EvaluatorKind: crate::pipeline::ProbabilityEvaluator<O>,
{
    ctx.prepare(plan.integrator);
    let query = PreparedQuery::new(plan.issuer, plan.range);
    let accept = match plan.qp {
        None => AcceptPolicy::Positive,
        Some(qp) => AcceptPolicy::AtLeast(qp),
    };
    QueryPipeline {
        query,
        objects,
        filter: CachedFilter {
            cached,
            objects,
            filter: query.expanded,
        },
        prune: PruneChain::none(),
        refine: EvaluatorKind::Duality,
        accept,
    }
    .execute_into(ctx, answer);
}

/// A shard engine the subscription layer can hold standing queries
/// over: its requests expose the geometry the safe envelope needs, and
/// the engine can both probe an envelope and refine from a cached
/// candidate list.
pub trait ContinuousEngine: ServeEngine {
    /// Normalizes a request to the filtering plan cached envelopes
    /// reproduce (Minkowski-sum; see the module docs).
    fn normalize_request(request: &mut Self::Request);

    /// The rectangle fresh filtering would probe the index with — the
    /// Minkowski sum `R ⊕ U0` of Lemma 1. The safe envelope is this
    /// grown by the slack margin, and a tick is a cache hit while this
    /// stays inside the envelope.
    fn filter_rect(request: &Self::Request) -> Rect;

    /// Replaces the request's issuer pdf in place (storage-reusing;
    /// what a TICK decodes into).
    fn set_issuer_pdf(request: &mut Self::Request, pdf: PdfKind);

    /// Probes this shard's index with the envelope, appending matching
    /// slots to `out` (allocation-free once `scratch`/`out` are warm).
    fn envelope_candidates_into(
        &self,
        envelope: Rect,
        stats: &mut AccessStats,
        scratch: &mut TraversalScratch,
        out: &mut Vec<u32>,
    );

    /// Answers the request over this shard from a cached candidate
    /// list, exactly as the engine's own (normalized) plan would from
    /// an index probe — same candidate set, same order, bit-identical
    /// probabilities.
    fn evaluate_cached_into(
        &self,
        request: &Self::Request,
        cached: &[u32],
        ctx: &mut ExecutionContext,
        answer: &mut QueryAnswer,
    );
}

impl ContinuousEngine for PointEngine {
    fn normalize_request(request: &mut PointRequest) {
        if let Some(c) = &mut request.constraint {
            c.strategy = CipqStrategy::MinkowskiSum;
        }
    }

    fn filter_rect(request: &PointRequest) -> Rect {
        minkowski_query(&request.issuer, request.range)
    }

    fn set_issuer_pdf(request: &mut PointRequest, pdf: PdfKind) {
        request.issuer.set_pdf(pdf);
    }

    fn envelope_candidates_into(
        &self,
        envelope: Rect,
        stats: &mut AccessStats,
        scratch: &mut TraversalScratch,
        out: &mut Vec<u32>,
    ) {
        self.raw_candidates_scratch(envelope, stats, scratch, out);
    }

    fn evaluate_cached_into(
        &self,
        request: &PointRequest,
        cached: &[u32],
        ctx: &mut ExecutionContext,
        answer: &mut QueryAnswer,
    ) {
        run_cached_pipeline(
            self.objects(),
            CachedPlan {
                issuer: &request.issuer,
                range: request.range,
                integrator: request.integrator,
                qp: request.constraint.map(|c| c.qp),
            },
            cached,
            ctx,
            answer,
        );
    }
}

impl ContinuousEngine for UncertainEngine {
    fn normalize_request(request: &mut UncertainRequest) {
        if let Some(c) = &mut request.constraint {
            c.strategy = CiuqStrategy::RTreeMinkowski;
        }
    }

    fn filter_rect(request: &UncertainRequest) -> Rect {
        minkowski_query(&request.issuer, request.range)
    }

    fn set_issuer_pdf(request: &mut UncertainRequest, pdf: PdfKind) {
        request.issuer.set_pdf(pdf);
    }

    fn envelope_candidates_into(
        &self,
        envelope: Rect,
        stats: &mut AccessStats,
        scratch: &mut TraversalScratch,
        out: &mut Vec<u32>,
    ) {
        self.raw_candidates_scratch(envelope, stats, scratch, out);
    }

    fn evaluate_cached_into(
        &self,
        request: &UncertainRequest,
        cached: &[u32],
        ctx: &mut ExecutionContext,
        answer: &mut QueryAnswer,
    ) {
        run_cached_pipeline(
            self.objects(),
            CachedPlan {
                issuer: &request.issuer,
                range: request.range,
                integrator: request.integrator,
                qp: request.constraint.map(|c| c.qp),
            },
            cached,
            ctx,
            answer,
        );
    }
}

/// The change between two answers of one standing query: matches that
/// are new or whose probability changed, plus ids that no longer
/// qualify. Both lists are id-sorted. Applying a delta to the previous
/// answer reproduces the next answer **bit-identically** — this is
/// what NOTIFY frames carry instead of full answers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnswerDelta {
    /// New or changed matches, sorted by id.
    pub upserts: Vec<Match>,
    /// Ids that left the result set, sorted.
    pub removals: Vec<ObjectId>,
}

impl AnswerDelta {
    /// An empty delta with no retained capacity.
    pub fn new() -> Self {
        AnswerDelta::default()
    }

    /// `true` when applying this delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.upserts.is_empty() && self.removals.is_empty()
    }

    /// Empties both lists, keeping their capacity.
    pub fn clear(&mut self) {
        self.upserts.clear();
        self.removals.clear();
    }

    /// Overwrites `out` with the delta turning `prev` into `next`
    /// (both id-sorted; a shared id with a bit-different probability
    /// becomes an upsert). Allocation-free once `out` is warm.
    pub fn diff_into(prev: &[Match], next: &[Match], out: &mut AnswerDelta) {
        out.clear();
        let (mut i, mut j) = (0usize, 0usize);
        while i < prev.len() && j < next.len() {
            match prev[i].id.cmp(&next[j].id) {
                std::cmp::Ordering::Less => {
                    out.removals.push(prev[i].id);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.upserts.push(next[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if prev[i].probability.to_bits() != next[j].probability.to_bits() {
                        out.upserts.push(next[j]);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out.removals.extend(prev[i..].iter().map(|m| m.id));
        out.upserts.extend_from_slice(&next[j..]);
    }

    /// Applies the delta to an id-sorted match list in place
    /// (the subscriber-side half of the delta contract).
    pub fn apply(&self, results: &mut Vec<Match>) {
        if self.is_empty() {
            return;
        }
        let prev = std::mem::take(results);
        results.reserve(prev.len() + self.upserts.len());
        let (mut i, mut u, mut r) = (0usize, 0usize, 0usize);
        loop {
            let take_upsert = match (prev.get(i), self.upserts.get(u)) {
                (None, None) => break,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (Some(p), Some(q)) => q.id <= p.id,
            };
            if take_upsert {
                let q = self.upserts[u];
                u += 1;
                if i < prev.len() && prev[i].id == q.id {
                    i += 1; // replaced in place
                }
                results.push(q);
            } else {
                let p = prev[i];
                i += 1;
                while r < self.removals.len() && self.removals[r] < p.id {
                    r += 1;
                }
                if r < self.removals.len() && self.removals[r] == p.id {
                    r += 1;
                    continue; // dropped
                }
                results.push(p);
            }
        }
    }
}

/// Re-evaluates one subscription's cached candidates over its pinned
/// snapshot: per-shard pipeline execution with the cached filter,
/// fan-in merged in id order — the cache-hit twin of
/// [`Snapshot::execute_one`].
pub(crate) fn eval_from_cache<E: ContinuousEngine>(
    snapshot: &Snapshot<E>,
    request: &E::Request,
    cached: &[Vec<u32>],
    ctx: &mut ExecutionContext,
    partial: &mut QueryAnswer,
    answer: &mut QueryAnswer,
) {
    answer.results.clear();
    let mut stats = crate::stats::QueryStats::new();
    for (shard, cached) in snapshot.shards().iter().zip(cached) {
        shard.evaluate_cached_into(request, cached, ctx, partial);
        answer.results.extend_from_slice(&partial.results);
        stats.absorb(&partial.stats);
    }
    crate::result::sort_matches(&mut answer.results);
    answer.stats = stats;
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc_geometry::Point;

    fn matches(ps: &[(u64, f64)]) -> Vec<Match> {
        ps.iter()
            .map(|&(id, p)| Match {
                id: ObjectId(id),
                probability: p,
            })
            .collect()
    }

    #[test]
    fn diff_then_apply_round_trips() {
        let cases: Vec<(Vec<Match>, Vec<Match>)> = vec![
            (matches(&[]), matches(&[])),
            (matches(&[]), matches(&[(1, 0.5), (7, 0.25)])),
            (matches(&[(1, 0.5), (7, 0.25)]), matches(&[])),
            (
                matches(&[(1, 0.5), (3, 0.1), (7, 0.25)]),
                matches(&[(1, 0.5), (3, 0.2), (9, 1.0)]),
            ),
            (
                matches(&[(2, 0.5), (4, 0.5), (6, 0.5)]),
                matches(&[(1, 0.5), (4, 0.5), (5, 0.5)]),
            ),
            // Probability changed by one ulp still travels.
            (
                matches(&[(1, 0.5)]),
                matches(&[(1, f64::from_bits(0.5f64.to_bits() + 1))]),
            ),
        ];
        let mut delta = AnswerDelta::new();
        for (prev, next) in cases {
            AnswerDelta::diff_into(&prev, &next, &mut delta);
            let mut applied = prev.clone();
            delta.apply(&mut applied);
            assert_eq!(applied.len(), next.len());
            for (a, b) in applied.iter().zip(&next) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.probability.to_bits(), b.probability.to_bits());
            }
            // Identical answers produce an empty delta.
            AnswerDelta::diff_into(&next, &next, &mut delta);
            assert!(delta.is_empty());
        }
    }

    #[test]
    fn cached_filter_matches_membership_semantics() {
        let pts = [
            PointObject::new(0u64, Point::new(5.0, 5.0)),
            PointObject::new(1u64, Point::new(50.0, 50.0)),
        ];
        assert!(pts[0].within(Rect::from_coords(0.0, 0.0, 10.0, 10.0)));
        assert!(!pts[1].within(Rect::from_coords(0.0, 0.0, 10.0, 10.0)));
        // Boundary inclusion matches an index probe's closed-region
        // semantics.
        assert!(pts[0].within(Rect::from_coords(5.0, 5.0, 6.0, 6.0)));

        let unc = UncertainObject::new(
            2u64,
            iloc_uncertainty::UniformPdf::new(Rect::from_coords(8.0, 8.0, 12.0, 12.0)),
        );
        assert!(unc.within(Rect::from_coords(0.0, 0.0, 10.0, 10.0)));
        assert!(!unc.within(Rect::from_coords(0.0, 0.0, 7.0, 7.0)));
    }
}
