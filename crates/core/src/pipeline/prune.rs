//! The **Prune** stage: object-level elimination before any
//! probability integral (paper Section 5.2).
//!
//! The paper's three strategies are applied through
//! [`super::PipelineObject::try_section_5_2`] (the single
//! implementation of the stack), each elimination attributed to its
//! own [`QueryStats`] counter — that is how the experiments report
//! pruning power per strategy (Figure 12's discussion). Custom boxed
//! [`PruneStage`]s can be appended for experimental plans.

use std::fmt;

use iloc_uncertainty::UncertainObject;

use crate::eval::constrained::PruneContext;
use crate::stats::QueryStats;

use super::PreparedQuery;

/// One object-level pruning test.
///
/// Returning `true` eliminates the candidate; the stage must record
/// the elimination in `stats` so per-strategy pruning power stays
/// observable.
pub trait PruneStage<O>: fmt::Debug + Sync {
    /// Short name used in plan debugging output.
    fn name(&self) -> &'static str;

    /// Applies the test to one candidate.
    fn try_prune(&self, query: &PreparedQuery<'_>, object: &O, stats: &mut QueryStats) -> bool;
}

/// An ordered chain of pruning stages; the first stage that fires
/// eliminates the candidate (cheapest-first, as in the paper).
///
/// The paper's Section-5.2 stack is held **inline** (one copied
/// [`PruneContext`]) rather than as boxed trait objects, so assembling
/// a constrained plan performs no heap allocation — part of the query
/// hot path's zero-allocation invariant. Custom boxed stages can still
/// be appended via [`PruneChain::new`] for experimental plans.
pub struct PruneChain<'p, O> {
    /// The built-in Section-5.2 stack, applied first (via
    /// [`super::PipelineObject::try_section_5_2`]).
    section52: Option<PruneContext<'p>>,
    /// Extension point: additional stages applied in order.
    custom: Vec<Box<dyn PruneStage<O> + 'p>>,
}

impl<'p, O: super::PipelineObject> PruneChain<'p, O> {
    /// The empty chain (unconstrained queries, and the paper's R-tree
    /// baseline which refines every candidate).
    pub fn none() -> Self {
        PruneChain {
            section52: None,
            custom: Vec::new(),
        }
    }

    /// A chain of explicit custom stages, applied in order.
    pub fn new(stages: Vec<Box<dyn PruneStage<O> + 'p>>) -> Self {
        PruneChain {
            section52: None,
            custom: stages,
        }
    }

    /// Number of stages (the built-in Section-5.2 stack counts as its
    /// three strategies).
    pub fn len(&self) -> usize {
        self.section52.map_or(0, |_| 3) + self.custom.len()
    }

    /// `true` when no stage is installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs the chain; `true` eliminates the candidate.
    #[inline]
    pub fn try_prune(&self, query: &PreparedQuery<'_>, object: &O, stats: &mut QueryStats) -> bool {
        if let Some(ctx) = &self.section52 {
            if object.try_section_5_2(ctx, stats) {
                return true;
            }
        }
        self.custom
            .iter()
            .any(|stage| stage.try_prune(query, object, stats))
    }
}

impl<'p> PruneChain<'p, UncertainObject> {
    /// The paper's Section 5.2 stack in its published order —
    /// Strategy 2 (cheapest), then Strategy 1, then the Strategy 3
    /// product rule. Allocation-free: the chain is the copied context.
    pub fn section_5_2(ctx: PruneContext<'p>) -> Self {
        PruneChain {
            section52: Some(ctx),
            custom: Vec::new(),
        }
    }
}

impl<O> fmt::Debug for PruneChain<'_, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let builtin = if self.section52.is_some() {
            &[
                "strategy2-p-expanded",
                "strategy1-tail",
                "strategy3-product",
            ][..]
        } else {
            &[]
        };
        f.debug_list()
            .entries(builtin.iter().copied())
            .entries(self.custom.iter().map(|s| s.name()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::{minkowski_query, p_expanded_query};
    use crate::query::{Issuer, RangeSpec};
    use iloc_geometry::Rect;
    use iloc_uncertainty::UniformPdf;

    #[test]
    fn chain_matches_legacy_try_prune_order_and_counters() {
        use crate::eval::constrained::{try_prune, PruneOutcome};
        let issuer = Issuer::uniform(Rect::from_coords(0.0, 0.0, 100.0, 100.0));
        let range = RangeSpec::square(20.0);
        let qp = 0.5;
        let expanded = minkowski_query(&issuer, range);
        let (_, p_expanded) = p_expanded_query(&issuer, range, qp);
        let ctx = PruneContext {
            qp,
            expanded,
            p_expanded,
            issuer: &issuer,
            range,
        };
        let chain = PruneChain::section_5_2(ctx);
        assert_eq!(chain.len(), 3);
        let query = PreparedQuery::new(&issuer, range);
        // Sweep a small object across the space; the chain must agree
        // with the legacy combined test everywhere, with counters
        // attributing each elimination to the same strategy.
        for i in 0..40 {
            for j in 0..40 {
                let c = iloc_geometry::Point::new(i as f64 * 5.0, j as f64 * 5.0);
                let o = UncertainObject::new(0u64, UniformPdf::new(Rect::centered(c, 8.0, 8.0)));
                let mut stats = QueryStats::new();
                let chained = chain.try_prune(&query, &o, &mut stats);
                let legacy = try_prune(&o, &ctx);
                assert_eq!(chained, legacy != PruneOutcome::Keep, "at {c}");
                match legacy {
                    PruneOutcome::Strategy1 => assert_eq!(stats.pruned_s1, 1),
                    PruneOutcome::Strategy2 => assert_eq!(stats.pruned_s2, 1),
                    PruneOutcome::Strategy3 => assert_eq!(stats.pruned_s3, 1),
                    PruneOutcome::Keep => {
                        assert_eq!(stats.pruned_s1 + stats.pruned_s2 + stats.pruned_s3, 0)
                    }
                }
            }
        }
    }

    #[test]
    fn empty_chain_keeps_everything() {
        let issuer = Issuer::uniform(Rect::from_coords(0.0, 0.0, 10.0, 10.0));
        let query = PreparedQuery::new(&issuer, RangeSpec::square(1.0));
        let chain: PruneChain<'_, UncertainObject> = PruneChain::none();
        assert!(chain.is_empty());
        let far = UncertainObject::new(
            1u64,
            UniformPdf::new(Rect::from_coords(900.0, 900.0, 910.0, 910.0)),
        );
        let mut stats = QueryStats::new();
        assert!(!chain.try_prune(&query, &far, &mut stats));
    }
}
