//! **Figure 11** — C-IPQ: Minkowski-sum filter vs `p`-expanded-query
//! filter as the probability threshold `Qp` varies.
//!
//! Paper: the Minkowski curve is flat in `Qp` (the filter ignores the
//! threshold) while the p-expanded-query curve falls as `Qp` rises —
//! about 3× better at `Qp = 0.6`. Expected reproduction shape: same
//! ordering, p-expanded monotonically cheaper with rising `Qp`
//! (flattening past `Qp = 0.5` where the issuer catalog tops out).

use iloc_core::{CipqStrategy, Issuer, RangeSpec};
use iloc_datagen::WorkloadGen;

use crate::config::{TestBed, DEFAULT_U, DEFAULT_W};
use crate::experiments::QP_SWEEP;
use crate::harness::{print_table, Row, Summary};

/// Runs the experiment and returns the rows.
pub fn run(bed: &TestBed) -> Vec<Row> {
    let range = RangeSpec::square(DEFAULT_W);
    let mut rows = Vec::new();
    for &qp in &QP_SWEEP {
        let issuers = WorkloadGen::new(1100).issuer_regions(bed.scale.queries, DEFAULT_U);
        let s_mink = Summary::collect(bed.scale.queries, |q| {
            bed.california.cipq(
                &Issuer::uniform(issuers[q]),
                range,
                qp,
                CipqStrategy::MinkowskiSum,
            )
        });
        rows.push(Row {
            x: qp,
            series: "Minkowski sum".into(),
            summary: s_mink,
        });
        let s_pexp = Summary::collect(bed.scale.queries, |q| {
            bed.california.cipq(
                &Issuer::uniform(issuers[q]),
                range,
                qp,
                CipqStrategy::PExpanded,
            )
        });
        rows.push(Row {
            x: qp,
            series: "p-expanded-query".into(),
            summary: s_pexp,
        });
    }
    print_table(
        "Figure 11: T vs Qp (C-IPQ, California)",
        "probability threshold Qp",
        &rows,
    );
    rows
}
