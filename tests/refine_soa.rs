//! Equivalence suite for the SoA refine batches.
//!
//! [`DualityEvaluator`] overrides `ProbabilityEvaluator::probabilities`
//! with a structure-of-arrays gather that sends uniform candidates to
//! the batched closed form, separable Gaussians to the hoisted axis
//! profile, and everything else through the per-candidate integrator.
//! The contract under test here: the override is **observably
//! identical** to the default scalar loop — same probability bits,
//! same cost counters, same RNG consumption — across every
//! [`PdfKind`] variant, every ragged batch tail, dirty scratch reuse,
//! and the subscription delta path that rides on top of it.

use std::sync::Arc;

use iloc::core::pipeline::{
    AcceptPolicy, DualityEvaluator, EvaluatorKind, ExecutionContext, PreparedQuery,
    ProbabilityEvaluator, PruneChain, QueryPipeline, RectFilter, UncertainRequest,
};
use iloc::core::serve::{ShardedEngine, Update};
use iloc::core::subscribe::SubscriptionRegistry;
use iloc::core::{Integrator, Issuer, RangeSpec, UncertainEngine};
use iloc::index::NaiveIndex;
use iloc::prelude::*;
use rand::RngCore;

/// The reference implementation: delegates per-candidate probability
/// to [`DualityEvaluator`] but inherits the trait's default scalar
/// `probabilities` loop, so any divergence is the SoA override's.
struct ScalarRef;

impl ProbabilityEvaluator<UncertainObject> for ScalarRef {
    fn probability(
        &self,
        query: &PreparedQuery<'_>,
        object: &UncertainObject,
        ctx: &mut ExecutionContext,
    ) -> f64 {
        DualityEvaluator.probability(query, object, ctx)
    }
}

/// `n` objects cycling through all four [`PdfKind`] variants on a grid
/// overlapping the test queries: plain uniforms (batched closed-form
/// lane), truncated Gaussians (hoisted separable lane), discs
/// (Monte-Carlo fallback lane, consumes RNG) and shared-handle
/// uniforms (fallback lane, closed form through the handle).
fn mixed_objects(n: usize) -> Vec<UncertainObject> {
    (0..n)
        .map(|k| {
            let c = Point::new(420.0 + (k % 8) as f64 * 22.0, 430.0 + (k / 8) as f64 * 26.0);
            let id = k as u64;
            match k % 4 {
                0 => UncertainObject::new(id, UniformPdf::new(Rect::centered(c, 15.0, 12.0))),
                1 => UncertainObject::new(
                    id,
                    TruncatedGaussianPdf::new(Rect::centered(c, 20.0, 20.0), c, 7.0, 9.0),
                ),
                2 => UncertainObject::new(id, DiscPdf::new(c, 13.0)),
                _ => UncertainObject::from_shared(
                    id,
                    Arc::new(UniformPdf::new(Rect::centered(c, 11.0, 14.0))),
                ),
            }
        })
        .collect()
}

fn uniform_objects(n: usize) -> Vec<UncertainObject> {
    (0..n)
        .map(|k| {
            let c = Point::new(440.0 + (k % 9) as f64 * 19.0, 450.0 + (k / 9) as f64 * 23.0);
            UncertainObject::new(k as u64, UniformPdf::new(Rect::centered(c, 14.0, 10.0)))
        })
        .collect()
}

/// Runs the SoA override and the scalar reference over the same
/// survivor set through freshly seeded contexts and asserts bitwise
/// probability equality, counter equality, and — via follow-up draws —
/// identical RNG stream positions.
fn assert_batch_matches_scalar(objects: &[UncertainObject], issuer: &Issuer, range: RangeSpec) {
    let query = PreparedQuery::new(issuer, range);
    let survivors: Vec<u32> = (0..objects.len() as u32).collect();

    let mut soa_ctx = ExecutionContext::new(Integrator::Auto);
    let mut scalar_ctx = ExecutionContext::new(Integrator::Auto);
    let mut soa = Vec::new();
    let mut scalar = Vec::new();
    DualityEvaluator.probabilities(&query, objects, &survivors, &mut soa_ctx, &mut soa);
    ScalarRef.probabilities(&query, objects, &survivors, &mut scalar_ctx, &mut scalar);

    assert_eq!(soa.len(), survivors.len());
    assert_eq!(scalar.len(), survivors.len());
    for (k, (a, b)) in soa.iter().zip(&scalar).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "survivor {k} diverged: SoA {a} vs scalar {b}"
        );
    }
    assert!(
        soa_ctx.stats.same_counters(&scalar_ctx.stats),
        "cost counters diverged:\nSoA    {:?}\nscalar {:?}",
        soa_ctx.stats,
        scalar_ctx.stats
    );
    for _ in 0..3 {
        assert_eq!(
            soa_ctx.rng.next_u64(),
            scalar_ctx.rng.next_u64(),
            "RNG streams out of sync after the batch"
        );
    }
}

fn test_issuer() -> Issuer {
    Issuer::uniform(Rect::centered(Point::new(500.0, 470.0), 30.0, 25.0))
}

#[test]
fn soa_matches_scalar_across_all_pdf_kinds() {
    let objects = mixed_objects(32);
    assert_batch_matches_scalar(&objects, &test_issuer(), RangeSpec::new(60.0, 55.0));
}

#[test]
fn soa_matches_scalar_on_each_kind_alone() {
    // Homogeneous batches: every candidate lands in one lane.
    for offset in 0..4usize {
        let objects: Vec<UncertainObject> = mixed_objects(32)
            .into_iter()
            .enumerate()
            .filter(|(k, _)| k % 4 == offset)
            .map(|(_, o)| o)
            .collect();
        assert_eq!(objects.len(), 8);
        assert_batch_matches_scalar(&objects, &test_issuer(), RangeSpec::new(60.0, 55.0));
    }
}

#[test]
fn ragged_tails_match_scalar() {
    // Uniform-only batches of every length 1..=9 exercise the SIMD
    // kernel's two-wide body plus every scalar tail shape.
    for n in 1..=9usize {
        let objects = uniform_objects(n);
        assert_batch_matches_scalar(&objects, &test_issuer(), RangeSpec::square(70.0));
    }
}

#[test]
fn gaussian_issuer_falls_back_to_scalar_identically() {
    // A non-uniform issuer pdf disables the closed-form lanes; the
    // override must degrade to the reference loop bit-for-bit.
    let issuer = Issuer::gaussian(Rect::centered(Point::new(500.0, 470.0), 28.0, 28.0));
    let objects = mixed_objects(24);
    assert_batch_matches_scalar(&objects, &issuer, RangeSpec::square(65.0));
}

#[test]
fn non_auto_integrator_falls_back_to_scalar_identically() {
    // Explicit quadrature also opts out of the SoA lanes.
    let issuer = test_issuer();
    let query = PreparedQuery::new(&issuer, RangeSpec::square(70.0));
    let objects = uniform_objects(7);
    let survivors: Vec<u32> = (0..objects.len() as u32).collect();
    let mut a_ctx = ExecutionContext::new(Integrator::Grid { per_axis: 40 });
    let mut b_ctx = ExecutionContext::new(Integrator::Grid { per_axis: 40 });
    let (mut a, mut b) = (Vec::new(), Vec::new());
    DualityEvaluator.probabilities(&query, &objects, &survivors, &mut a_ctx, &mut a);
    ScalarRef.probabilities(&query, &objects, &survivors, &mut b_ctx, &mut b);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert!(a_ctx.stats.same_counters(&b_ctx.stats));
}

#[test]
fn dirty_scratch_reuse_is_bit_identical() {
    // A large mixed batch leaves the gather lanes, probability buffer
    // and RNG in a well-used state; the small batch that follows must
    // still agree with the scalar reference driven through the same
    // history, and — RNG-free workload — with a fresh context.
    let issuer = test_issuer();
    let big = mixed_objects(48);
    let small = uniform_objects(3);
    let query_big = PreparedQuery::new(&issuer, RangeSpec::new(60.0, 55.0));
    let query_small = PreparedQuery::new(&issuer, RangeSpec::square(70.0));

    let mut soa_ctx = ExecutionContext::new(Integrator::Auto);
    let mut scalar_ctx = ExecutionContext::new(Integrator::Auto);
    let big_survivors: Vec<u32> = (0..big.len() as u32).collect();
    let small_survivors: Vec<u32> = (0..small.len() as u32).collect();
    let (mut soa, mut scalar) = (Vec::new(), Vec::new());

    DualityEvaluator.probabilities(&query_big, &big, &big_survivors, &mut soa_ctx, &mut soa);
    ScalarRef.probabilities(
        &query_big,
        &big,
        &big_survivors,
        &mut scalar_ctx,
        &mut scalar,
    );
    for (a, b) in soa.iter().zip(&scalar) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    // Reuse both contexts — and both output buffers — without clearing.
    DualityEvaluator.probabilities(
        &query_small,
        &small,
        &small_survivors,
        &mut soa_ctx,
        &mut soa,
    );
    ScalarRef.probabilities(
        &query_small,
        &small,
        &small_survivors,
        &mut scalar_ctx,
        &mut scalar,
    );
    assert_eq!(soa.len(), small.len(), "out buffer must be re-cleared");
    for (a, b) in soa.iter().zip(&scalar) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    // Uniform-only closed forms draw no randomness, so a fresh context
    // must reproduce the dirty-context answer exactly.
    let mut fresh_ctx = ExecutionContext::new(Integrator::Auto);
    let mut fresh = Vec::new();
    DualityEvaluator.probabilities(
        &query_small,
        &small,
        &small_survivors,
        &mut fresh_ctx,
        &mut fresh,
    );
    for (a, b) in soa.iter().zip(&fresh) {
        assert_eq!(a.to_bits(), b.to_bits(), "dirty scratch leaked state");
    }
}

#[test]
fn full_pipeline_answers_identical_under_both_evaluators() {
    let issuer = test_issuer();
    let range = RangeSpec::new(60.0, 55.0);
    let objects = mixed_objects(40);
    let entries: Vec<(Rect, u32)> = objects
        .iter()
        .enumerate()
        .map(|(k, o)| (o.region(), k as u32))
        .collect();
    let index = NaiveIndex::new(entries);
    let prepared = PreparedQuery::new(&issuer, range);

    let duality = QueryPipeline {
        query: prepared,
        objects: &objects,
        filter: RectFilter {
            index: &index,
            query: prepared.expanded,
        },
        prune: PruneChain::none(),
        refine: EvaluatorKind::Duality,
        accept: AcceptPolicy::Positive,
    };
    let scalar = QueryPipeline {
        query: prepared,
        objects: &objects,
        filter: RectFilter {
            index: &index,
            query: prepared.expanded,
        },
        prune: PruneChain::none(),
        refine: ScalarRef,
        accept: AcceptPolicy::Positive,
    };

    let mut ctx_a = ExecutionContext::new(Integrator::Auto);
    let mut ctx_b = ExecutionContext::new(Integrator::Auto);
    let a = duality.execute(&mut ctx_a);
    let b = scalar.execute(&mut ctx_b);
    assert!(
        !a.results.is_empty(),
        "degenerate scenario: nothing matched"
    );
    assert!(a.same_matches(&b), "pipeline answers diverged");
    assert!(
        a.stats.same_counters(&b.stats),
        "pipeline counters diverged:\nSoA    {:?}\nscalar {:?}",
        a.stats,
        b.stats
    );

    // Re-running through the now-dirty contexts reproduces the answer.
    let again = duality.execute(&mut ctx_a);
    assert!(again.same_matches(&a));
}

#[test]
fn subscription_deltas_track_fresh_reevaluation_over_mixed_pdfs() {
    // The standing-query path refines through the same SoA batches;
    // deltas applied in order must reproduce a fresh re-evaluation
    // bit-for-bit even with all four pdf kinds in play.
    let objects = mixed_objects(48);
    let engine: ShardedEngine<UncertainEngine> = ShardedEngine::build(objects, 3);
    let mut registry: SubscriptionRegistry<UncertainEngine> = SubscriptionRegistry::new();

    let issuer_at = |round: u64| {
        Issuer::uniform(Rect::centered(
            Point::new(490.0 + round as f64 * 9.0, 470.0 + (round % 3) as f64 * 7.0),
            30.0,
            25.0,
        ))
    };
    let request_at = |round: u64| UncertainRequest::iuq(issuer_at(round), RangeSpec::square(80.0));

    let mut request = request_at(0);
    let id = registry.subscribe(&engine, request.clone(), 90.0);
    let mut state = registry.get(id).unwrap().last_answer().to_vec();
    assert!(!state.is_empty(), "degenerate scenario: empty subscription");

    let mut seed = 0xD1CE_2007u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for round in 1..=8u64 {
        // Move a couple of objects, keeping each id's pdf kind.
        for _ in 0..2 {
            let k = next() % 48;
            let c = Point::new((next() % 900) as f64, (next() % 900) as f64);
            let moved = match k % 4 {
                0 => UncertainObject::new(k, UniformPdf::new(Rect::centered(c, 15.0, 12.0))),
                1 => UncertainObject::new(
                    k,
                    TruncatedGaussianPdf::new(Rect::centered(c, 20.0, 20.0), c, 7.0, 9.0),
                ),
                2 => UncertainObject::new(k, DiscPdf::new(c, 13.0)),
                _ => UncertainObject::from_shared(
                    k,
                    Arc::new(UniformPdf::new(Rect::centered(c, 11.0, 14.0))),
                ),
            };
            engine.submit(Update::Move(moved));
        }
        engine.commit();
        registry.pump(&engine, |got, _, delta| {
            assert_eq!(got, id);
            delta.apply(&mut state);
        });

        // Drift the issuer and tick.
        request = request_at(round);
        let (_, delta) = registry
            .tick(&engine, id, request.issuer.pdf().clone())
            .unwrap();
        delta.apply(&mut state);

        let fresh = engine.snapshot().execute_one(&request);
        assert_eq!(state.len(), fresh.results.len(), "round {round}");
        for (a, b) in state.iter().zip(&fresh.results) {
            assert_eq!(a.id, b.id, "round {round}");
            assert_eq!(
                a.probability.to_bits(),
                b.probability.to_bits(),
                "round {round}: object {:?}",
                a.id
            );
        }
    }
}
