//! The event-driven TCP query server.
//!
//! ## Architecture
//!
//! ```text
//!                         ┌────────────────────────────┐
//!  accept()  ─────────────▶ listener thread            │
//!                         └──────────┬─────────────────┘
//!                                    │ mpsc<TcpStream> + waker (round-robin)
//!                  ┌─────────────────┼─────────────────┐
//!                  ▼                 ▼                 ▼
//!           event loop 0      event loop 1  …   event loop N-1
//!        (epoll/poll readiness over MANY non-blocking connections;
//!         per-loop ShardServer ×2 + request/answer slots — the
//!         zero-alloc hot path; per-connection frame reassembly,
//!         buffered push queues, subscription registries)
//!                  │ reads: pinned epoch snapshot
//!                  │ writes: WriterMsg over one mpsc channel
//!                  ▼
//!           writer thread ── submit / commit on the ShardedEngines
//!                           └─ wakes every loop after a commit, so
//!                              pushes reach idle subscribers promptly
//! ```
//!
//! * **Connections multiplex onto a small loop pool.** Each event loop
//!   owns a slab of non-blocking connections and blocks in one
//!   readiness wait ([`crate::poll`] — epoll on Linux, `poll(2)`
//!   elsewhere). A mostly-idle standing subscriber costs one slab slot
//!   and one kernel registration, not a thread: C10K subscribers fit
//!   in a handful of loops. Frames are reassembled per connection from
//!   whatever bytes the socket has (partial length prefixes, split
//!   payloads, many pipelined frames in one read — all fine).
//! * **Queries never leave their loop**: the loop decodes into its
//!   long-lived request slot, executes against its pinned epoch
//!   snapshot through a warm [`ShardServer`] (rebinding — two atomic
//!   increments, no allocation — when the engine has published a newer
//!   epoch), and encodes the answer into the connection's output
//!   buffer. After warm-up the whole request path performs **zero heap
//!   allocations**; the CI smoke job gates on this over a real socket.
//! * **All writes are buffered and flushed on writability** — there is
//!   no blocking `write_all` anywhere on the serving path, and no
//!   silently swallowed write error: a failed flush is a typed
//!   connection close, and any NOTIFY frames still queued at close are
//!   counted in the server-wide `dropped_pushes` stat.
//! * **Push backpressure is explicit.** NOTIFY frames queue in the
//!   connection's output buffer. A subscriber that stops reading while
//!   commits keep changing its answers would grow that queue without
//!   bound; instead, once the buffered backlog exceeds
//!   [`ServerConfig::push_backlog`], the connection is closed and the
//!   undelivered pushes are counted. The contract is all-or-nothing:
//!   a live connection never silently loses a push — loss implies
//!   close, which the subscriber observes as EOF and answers by
//!   reconnecting and resubscribing.
//! * **Slow readers also exert backpressure on requests**: while a
//!   connection's un-flushed output exceeds the backlog budget the
//!   loop stops *reading* from it, so a client that pipelines requests
//!   without draining responses is flow-controlled instead of ballooning
//!   server memory.
//! * **Updates and commits** route through the single writer thread,
//!   so every mutation of the sharded engines is serialized in one
//!   place and the [`iloc_core::serve`] snapshot-consistency invariant
//!   ("no torn epochs, ever") holds across the network boundary
//!   exactly as it does in process. A client's own update → commit
//!   order is preserved end to end (same loop, same channel, FIFO).
//!   The issuing loop waits for the writer's reply, which briefly
//!   pauses its other connections — commits are rare next to queries,
//!   and the writer wakes every loop afterwards so the commit's pushes
//!   go out immediately.
//! * **Subscriptions live with their connection**: each connection
//!   lazily carries a [`SubscriptionRegistry`] per catalog. Before
//!   every frame — and on every loop sweep — the loop checks whether
//!   the writer published a new epoch
//!   ([`SubscriptionRegistry::needs_pump`], one atomic load) and pumps:
//!   the commit's dirty region stabs the envelope index, only affected
//!   subscriptions re-evaluate, and their deltas are **pushed** as
//!   NOTIFY frames (between, never inside, responses). Steady-state
//!   TICKs inside the safe envelope stay on the zero-allocation
//!   budget. Subscriptions end with the connection.
//! * **Idle connections are reaped on a monotonic deadline**: with
//!   [`ServerConfig::idle_timeout`] set, a connection whose last
//!   *complete* frame is older than the timeout is closed. The
//!   deadline is an [`Instant`] comparison — immune to the
//!   accumulated-poll-interval drift the blocking server suffered —
//!   and only whole frames re-arm it, so drip-feeding single bytes
//!   cannot keep a dead subscriber's slot alive. PING is the intended
//!   keepalive.
//!
//! Malformed frames are answered with error frames (see
//! [`crate::protocol`]); a frame that cannot be delimited (wild length
//! prefix, wrong version) poisons the connection: an error frame is
//! queued, reading stops, and the connection closes once the error has
//! drained. A panic while serving one frame — which validation should
//! make unreachable — is caught, answered with an `Internal` error
//! frame, and quarantined by rebuilding that loop's scratch state and
//! closing that connection; the loop's other connections are
//! unaffected.

use std::collections::VecDeque;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd as _;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use iloc_core::durable::{CatalogRecovery, DurableCatalog, FsyncPolicy, StoreConfig, StoreError};
use iloc_core::pipeline::{PointRequest, UncertainRequest};
use iloc_core::serve::{CommitReport, ShardServer};
use iloc_core::stats::REFINE_BATCH_BUCKETS;
use iloc_core::subscribe::SubscriptionRegistry;
use iloc_core::{Issuer, PointEngine, QueryAnswer, QueryStats, RangeSpec, UncertainEngine};
use iloc_geometry::Rect;
use iloc_uncertainty::{PointObject, UncertainObject};

use crate::alloc_count;
use crate::poll::{self, Event, Interest, Poller, WakeReceiver, Waker};
use crate::protocol::{
    self, opcode, CommitTarget, CountersView, ErrorCode, NotifyCause, WireError, WireUpdate,
    PROTOCOL_VERSION,
};

/// Standing subscriptions one connection may hold per catalog;
/// exceeding it is answered with
/// [`ErrorCode::TooManySubscriptions`].
pub const MAX_SUBSCRIPTIONS: usize = 4_096;

/// The two catalogs one server instance serves. Transient by default
/// ([`QueryServer::new`]); with a data directory ([`QueryServer::open`])
/// each catalog carries a write-ahead log on its commit path and
/// recovers from the newest checkpoint plus log replay.
#[derive(Debug)]
pub struct Engines {
    /// Point-object catalog (IPQ / C-IPQ).
    pub point: DurableCatalog<PointEngine>,
    /// Uncertain-object catalog (IUQ / C-IUQ).
    pub uncertain: DurableCatalog<UncertainEngine>,
}

/// Durability settings for [`QueryServer::open`].
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Directory holding both catalogs' stores (subdirectories
    /// `point/` and `uncertain/` are created inside it).
    pub data_dir: PathBuf,
    /// When WAL appends reach the disk.
    pub fsync: FsyncPolicy,
    /// Background-checkpoint a catalog once its epoch has advanced
    /// this many commits past its last checkpoint (0 disables the
    /// background checkpointer; a final checkpoint is still written on
    /// graceful shutdown).
    pub checkpoint_every: u64,
}

impl DurabilityOptions {
    /// Durable store in `data_dir` with fsync-always and a checkpoint
    /// every 256 commits.
    pub fn new(data_dir: impl Into<PathBuf>) -> DurabilityOptions {
        DurabilityOptions {
            data_dir: data_dir.into(),
            fsync: FsyncPolicy::Always,
            checkpoint_every: 256,
        }
    }
}

/// What [`QueryServer::open`] recovered, per catalog.
#[derive(Debug, Clone)]
pub struct RecoveryInfo {
    /// Point-catalog recovery report.
    pub point: CatalogRecovery,
    /// Uncertain-catalog recovery report.
    pub uncertain: CatalogRecovery,
}

/// Tunables for one listening server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`"127.0.0.1:0"` picks an ephemeral loopback
    /// port; read the real one from [`ServerHandle::addr`]).
    pub addr: String,
    /// Event-loop threads. Each owns many connections, so this scales
    /// with cores, not with clients — a few loops serve thousands of
    /// connections.
    pub event_loops: usize,
    /// Concurrent-connection cap across all loops; connections
    /// accepted beyond it are closed immediately. (Also raise the
    /// process's open-file limit: [`poll::raise_nofile_limit`].)
    pub max_connections: usize,
    /// Frames longer than this are rejected and the connection closed.
    pub max_frame_len: u32,
    /// Cadence of the loop sweep: pending pushes reach idle
    /// subscribers and idle deadlines are checked at least this often.
    pub idle_poll: Duration,
    /// Close a connection that completes no frame for this long (any
    /// complete frame re-arms it; PING is the cheapest keepalive).
    /// `None` disables reaping — fine for tests and in-process load
    /// generation; the standalone binary defaults it on so abandoned
    /// subscriber sockets cannot pin connection slots forever.
    pub idle_timeout: Option<Duration>,
    /// Per-connection buffered-output budget in bytes. While a
    /// connection's un-flushed output exceeds it, reading from that
    /// connection pauses (request flow control); a NOTIFY push that
    /// would exceed it closes the connection and counts the
    /// undelivered pushes (push backpressure — see the module docs).
    pub push_backlog: usize,
    /// Kernel send-buffer size (`SO_SNDBUF`) for accepted connections;
    /// `None` keeps the system default. Tests shrink it to force
    /// partial writes and backpressure within a few frames.
    pub send_buffer: Option<usize>,
}

impl ServerConfig {
    /// Loopback on an ephemeral port with two event loops — what tests
    /// and in-process load generation want.
    pub fn loopback() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            event_loops: 2,
            max_connections: 16_384,
            max_frame_len: protocol::MAX_FRAME_LEN,
            idle_poll: Duration::from_millis(50),
            idle_timeout: None,
            push_backlog: 1 << 20,
            send_buffer: None,
        }
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig::loopback()
    }
}

/// What one catalog mutation request asks the writer thread to do.
enum WriterMsg {
    /// Buffer updates; reply with how many were accepted plus the
    /// drained vector, so the loop's decode buffer keeps its capacity
    /// across batches.
    Submit(Vec<WireUpdate>, mpsc::SyncSender<(u32, Vec<WireUpdate>)>),
    /// Commit one catalog; reply with the report (or the durable
    /// store's failure — the epoch did not publish).
    Commit(
        CommitTarget,
        mpsc::SyncSender<Result<CommitReport, StoreError>>,
    ),
}

/// Process-wide pipeline-stage accounting: every answered query's
/// per-stage timers and refine-batch histogram are folded in here, so
/// one STATS probe tells an operator where the fleet's query time goes
/// (and how big the SoA refine batches actually run) without touching
/// the query hot path beyond a handful of relaxed adds.
#[derive(Debug, Default)]
struct StageCounters {
    filter_nanos: AtomicU64,
    prune_nanos: AtomicU64,
    refine_nanos: AtomicU64,
    refine_batches: [AtomicU64; REFINE_BATCH_BUCKETS],
}

impl StageCounters {
    /// Folds one answered query's stage stats in.
    fn absorb(&self, stats: &QueryStats) {
        self.filter_nanos
            .fetch_add(stats.filter_nanos, Ordering::Relaxed);
        self.prune_nanos
            .fetch_add(stats.prune_nanos, Ordering::Relaxed);
        self.refine_nanos
            .fetch_add(stats.refine_nanos, Ordering::Relaxed);
        for (slot, &n) in self.refine_batches.iter().zip(&stats.refine_batches) {
            if n != 0 {
                slot.fetch_add(n, Ordering::Relaxed);
            }
        }
    }
}

/// State shared by every serving thread.
struct Shared {
    engines: Arc<Engines>,
    requests_served: AtomicU64,
    stage: StageCounters,
    shutdown: Arc<AtomicBool>,
    max_frame_len: u32,
    /// Connection capacity ([`ServerConfig::max_connections`]).
    capacity: u32,
    event_loops: u32,
    /// Live-connection gauge (incremented at accept, decremented at
    /// close) — both the capacity check and the STATS report read it.
    connections: AtomicU64,
    /// NOTIFY frames that were due to a subscriber but never reached
    /// it: dropped at a backpressure close, or queued behind a write
    /// that failed. A live connection never silently loses a push —
    /// every lost push pairs with a connection close — so this counter
    /// plus EOF observation gives subscribers exact loss accounting.
    dropped_pushes: AtomicU64,
    idle_poll: Duration,
    idle_timeout: Option<Duration>,
    push_backlog: usize,
    send_buffer: Option<usize>,
    /// Engine epochs this process started at (per catalog) — carried
    /// in every SUB_ACK so reconnecting subscribers detect restarts.
    recovered_epochs: (u64, u64),
}

/// A query server over one pair of sharded catalogs.
///
/// Construction partitions the catalogs; [`QueryServer::start`] binds
/// a listener and spawns the serving threads. The engines stay
/// accessible through [`QueryServer::engines`] — the loopback tests
/// compare wire answers against in-process snapshot execution on the
/// very same engines.
#[derive(Debug)]
pub struct QueryServer {
    engines: Arc<Engines>,
    /// Background-checkpoint cadence in commits (0 = no checkpointer).
    checkpoint_every: u64,
    /// Engine epochs at construction — what SUB_ACK reports so a
    /// reconnecting subscriber can detect a restart.
    recovered_epochs: (u64, u64),
}

impl QueryServer {
    /// Builds the two sharded catalogs (`shards` each) and wraps them
    /// in a transient (in-memory only) server.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn new(
        points: Vec<PointObject>,
        uncertain: Vec<UncertainObject>,
        shards: usize,
    ) -> QueryServer {
        QueryServer {
            engines: Arc::new(Engines {
                point: DurableCatalog::transient(points, shards),
                uncertain: DurableCatalog::transient(uncertain, shards),
            }),
            checkpoint_every: 0,
            recovered_epochs: (0, 0),
        }
    }

    /// Opens (or creates) a durable server in `durability.data_dir`.
    /// A fresh directory is seeded with `points` / `uncertain`; an
    /// existing one **recovers** — the seeds are ignored and each
    /// catalog is rebuilt from its newest valid checkpoint plus WAL
    /// replay, answering bit-identically to the pre-crash process.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn open(
        points: Vec<PointObject>,
        uncertain: Vec<UncertainObject>,
        shards: usize,
        durability: &DurabilityOptions,
    ) -> Result<(QueryServer, RecoveryInfo), StoreError> {
        let point_cfg = StoreConfig {
            dir: durability.data_dir.join("point"),
            fsync: durability.fsync,
        };
        let uncertain_cfg = StoreConfig {
            dir: durability.data_dir.join("uncertain"),
            fsync: durability.fsync,
        };
        let (point, point_rec) = DurableCatalog::open(&point_cfg, shards, move || points)?;
        let (uncertain_cat, uncertain_rec) =
            DurableCatalog::open(&uncertain_cfg, shards, move || uncertain)?;
        let recovered_epochs = (point_rec.epoch, uncertain_rec.epoch);
        Ok((
            QueryServer {
                engines: Arc::new(Engines {
                    point,
                    uncertain: uncertain_cat,
                }),
                checkpoint_every: durability.checkpoint_every,
                recovered_epochs,
            },
            RecoveryInfo {
                point: point_rec,
                uncertain: uncertain_rec,
            },
        ))
    }

    /// The served engines (shared; snapshots taken from here see
    /// exactly the epochs the server serves).
    pub fn engines(&self) -> Arc<Engines> {
        Arc::clone(&self.engines)
    }

    /// Binds `config.addr` and spawns the listener, event-loop pool
    /// and writer threads. The returned handle owns the threads;
    /// dropping it (or calling [`ServerHandle::shutdown`]) stops them.
    pub fn start(&self, config: &ServerConfig) -> io::Result<ServerHandle> {
        assert!(config.event_loops > 0, "need at least one event loop");
        assert!(config.max_connections > 0, "need at least one connection");
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            engines: Arc::clone(&self.engines),
            requests_served: AtomicU64::new(0),
            stage: StageCounters::default(),
            shutdown: Arc::clone(&shutdown),
            max_frame_len: config.max_frame_len,
            capacity: config.max_connections.min(u32::MAX as usize) as u32,
            event_loops: config.event_loops as u32,
            connections: AtomicU64::new(0),
            dropped_pushes: AtomicU64::new(0),
            idle_poll: config.idle_poll,
            idle_timeout: config.idle_timeout,
            push_backlog: config.push_backlog,
            send_buffer: config.send_buffer,
            recovered_epochs: self.recovered_epochs,
        });

        let (writer_tx, writer_rx) = mpsc::channel::<WriterMsg>();
        let mut threads = Vec::with_capacity(config.event_loops + 2);
        let mut wakers = Vec::with_capacity(config.event_loops);
        let mut conn_txs = Vec::with_capacity(config.event_loops);

        for k in 0..config.event_loops {
            let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
            let (waker, wake_rx) = poll::waker()?;
            conn_txs.push(conn_tx);
            wakers.push(waker);
            let shared = Arc::clone(&shared);
            let writer_tx = writer_tx.clone();
            threads.push(
                thread::Builder::new()
                    .name(format!("iloc-loop-{k}"))
                    .spawn(move || event_loop(shared, conn_rx, wake_rx, writer_tx))?,
            );
        }
        let wakers = Arc::new(wakers);
        // The writer exits when the last sender drops: the loops hold
        // the only remaining clones.
        {
            let engines = Arc::clone(&self.engines);
            let wakers = Arc::clone(&wakers);
            threads.push(
                thread::Builder::new()
                    .name("iloc-writer".to_string())
                    .spawn(move || writer_loop(engines, writer_rx, wakers))?,
            );
        }
        drop(writer_tx);

        {
            let shared = Arc::clone(&shared);
            let wakers = Arc::clone(&wakers);
            threads.push(
                thread::Builder::new()
                    .name("iloc-listener".to_string())
                    .spawn(move || listener_loop(listener, shared, conn_txs, wakers))?,
            );
        }

        if self.checkpoint_every > 0 && self.engines.point.is_durable() {
            let engines = Arc::clone(&self.engines);
            let stop = Arc::clone(&shutdown);
            let every = self.checkpoint_every;
            let poll = config.idle_poll;
            threads.push(
                thread::Builder::new()
                    .name("iloc-checkpoint".to_string())
                    .spawn(move || checkpoint_loop(engines, stop, every, poll))?,
            );
        }

        Ok(ServerHandle {
            addr,
            shutdown,
            threads,
            engines: Arc::clone(&self.engines),
            wakers,
        })
    }
}

/// A running server: its bound address and its threads.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<thread::JoinHandle<()>>,
    engines: Arc<Engines>,
    wakers: Arc<Vec<Waker>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server: flags shutdown, wakes the listener and every
    /// event loop, joins every thread. Connections close; buffered
    /// output that has not reached the socket is discarded. Dropping
    /// the handle does the same.
    pub fn shutdown(self) {
        drop(self);
    }

    /// Blocks until the server stops (which, absent a shutdown from
    /// another handle-less path, is never) — what the standalone
    /// binary's main thread does.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for waker in self.wakers.iter() {
            waker.wake();
        }
        // Wake the listener's blocking accept.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Every serving thread is joined: no more commits can happen.
        // Make the final state durable — fsync any unsynced log tail
        // and write a clean checkpoint, so the next start replays
        // nothing.
        for flushed in [self.engines.point.flush(), self.engines.uncertain.flush()] {
            if let Err(e) = flushed {
                eprintln!("iloc-server: final WAL flush failed: {e}");
            }
        }
        for written in [
            self.engines.point.checkpoint().map(|_| ()),
            self.engines.uncertain.checkpoint().map(|_| ()),
        ] {
            if let Err(e) = written {
                eprintln!("iloc-server: final checkpoint failed: {e}");
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn listener_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    conn_txs: Vec<mpsc::Sender<TcpStream>>,
    wakers: Arc<Vec<Waker>>,
) {
    let mut next = 0usize;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Enforce the connection cap here, before the stream
                // reaches a loop: over-capacity connections close
                // immediately (the client sees EOF before any frame).
                let prev = shared.connections.fetch_add(1, Ordering::Relaxed);
                if prev >= shared.capacity as u64 {
                    shared.connections.fetch_sub(1, Ordering::Relaxed);
                    drop(stream);
                    continue;
                }
                let _ = stream.set_nodelay(true);
                if let Some(bytes) = shared.send_buffer {
                    let _ = poll::set_send_buffer(&stream, bytes);
                }
                if stream.set_nonblocking(true).is_err() {
                    shared.connections.fetch_sub(1, Ordering::Relaxed);
                    continue;
                }
                // Round-robin across the loop pool; wake the loop so a
                // connection landing on an idle loop registers now,
                // not at the next sweep tick.
                let k = next % conn_txs.len();
                next = next.wrapping_add(1);
                if conn_txs[k].send(stream).is_err() {
                    shared.connections.fetch_sub(1, Ordering::Relaxed);
                    break;
                }
                wakers[k].wake();
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept failure (EMFILE, aborted handshake):
                // keep listening.
            }
        }
    }
}

fn writer_loop(engines: Arc<Engines>, rx: mpsc::Receiver<WriterMsg>, wakers: Arc<Vec<Waker>>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            WriterMsg::Submit(mut updates, reply) => {
                let n = updates.len() as u32;
                for update in updates.drain(..) {
                    match update {
                        WireUpdate::Point(u) => engines.point.submit(u),
                        WireUpdate::Uncertain(u) => engines.uncertain.submit(u),
                    }
                }
                // Hand the drained vector back with the ack so the
                // loop's decode buffer keeps its capacity.
                let _ = reply.send((n, updates));
            }
            WriterMsg::Commit(target, reply) => {
                // On a durable catalog the commit appends and fsyncs
                // the WAL record *before* the epoch publishes; an
                // append failure leaves the epoch unpublished and is
                // surfaced to the client as an error frame.
                let report = match target {
                    CommitTarget::Point => engines.point.commit(),
                    CommitTarget::Uncertain => engines.uncertain.commit(),
                };
                let _ = reply.send(report);
                // A published epoch may owe pushes to subscribers on
                // any loop; wake them all so NOTIFY latency is bounded
                // by scheduling, not by the sweep interval.
                for waker in wakers.iter() {
                    waker.wake();
                }
            }
        }
    }
}

/// Background checkpointer: whenever a catalog's epoch has advanced
/// `every` commits past its last checkpoint, snapshot it to disk and
/// rotate its log — entirely off the commit path (commits proceed
/// concurrently; only the final log rotation takes the store lock).
fn checkpoint_loop(engines: Arc<Engines>, shutdown: Arc<AtomicBool>, every: u64, poll: Duration) {
    while !shutdown.load(Ordering::SeqCst) {
        thread::sleep(poll);
        let due_point = engines
            .point
            .last_checkpoint_epoch()
            .is_some_and(|last| engines.point.epoch() >= last + every);
        if due_point {
            if let Err(e) = engines.point.checkpoint() {
                eprintln!("iloc-server: point checkpoint failed: {e}");
            }
        }
        let due_uncertain = engines
            .uncertain
            .last_checkpoint_epoch()
            .is_some_and(|last| engines.uncertain.epoch() >= last + every);
        if due_uncertain {
            if let Err(e) = engines.uncertain.checkpoint() {
                eprintln!("iloc-server: uncertain checkpoint failed: {e}");
            }
        }
    }
}

/// Everything one event loop reuses across requests and connections —
/// the reason the steady-state path allocates nothing.
struct LoopState {
    point: ShardServer<PointEngine>,
    uncertain: ShardServer<UncertainEngine>,
    point_req: PointRequest,
    uncertain_req: UncertainRequest,
    answer: QueryAnswer,
    updates: Vec<WireUpdate>,
}

impl LoopState {
    fn new(engines: &Engines) -> LoopState {
        let placeholder = || Issuer::uniform(Rect::from_coords(0.0, 0.0, 1.0, 1.0));
        LoopState {
            point: ShardServer::new(engines.point.snapshot()),
            uncertain: ShardServer::new(engines.uncertain.snapshot()),
            point_req: PointRequest::ipq(placeholder(), RangeSpec::square(1.0)),
            uncertain_req: UncertainRequest::iuq(placeholder(), RangeSpec::square(1.0)),
            answer: QueryAnswer::default(),
            updates: Vec::new(),
        }
    }
}

/// A connection's standing queries, allocated on first SUBSCRIBE so
/// the thousands of query-only connections don't pay for registries.
struct ConnSubs {
    point: SubscriptionRegistry<PointEngine>,
    uncertain: SubscriptionRegistry<UncertainEngine>,
}

impl ConnSubs {
    fn new() -> ConnSubs {
        ConnSubs {
            point: SubscriptionRegistry::new(),
            uncertain: SubscriptionRegistry::new(),
        }
    }

    fn needs_pump(&self, engines: &Engines) -> bool {
        self.point.needs_pump(engines.point.engine())
            || self.uncertain.needs_pump(engines.uncertain.engine())
    }
}

/// One multiplexed connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Inbound bytes: `in_buf[parsed..in_len]` is un-consumed;
    /// compacted to the front after each processing pass so a partial
    /// frame's tail always has room to arrive.
    in_buf: Vec<u8>,
    in_len: usize,
    parsed: usize,
    /// Outbound bytes: `out[out_at..]` awaits the socket. The buffer
    /// only resets when fully flushed, so frame offsets in `push_ends`
    /// stay valid while anything is pending.
    out: Vec<u8>,
    out_at: usize,
    /// End offsets (into `out`) of queued NOTIFY push frames — what a
    /// close must count as dropped if not yet flushed past.
    push_ends: VecDeque<usize>,
    /// When the last *complete* frame arrived — the monotonic idle
    /// deadline base. Partial bytes do not re-arm it.
    last_frame: Instant,
    /// Lazily created on first SUBSCRIBE.
    subs: Option<Box<ConnSubs>>,
    /// Registered readiness interest (kept to skip no-op `modify`s).
    interest: Interest,
    /// Reading has stopped; close once `out` drains (a protocol error
    /// or caught panic queued a final error frame).
    close_after_flush: bool,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            in_buf: Vec::new(),
            in_len: 0,
            parsed: 0,
            out: Vec::new(),
            out_at: 0,
            push_ends: VecDeque::new(),
            last_frame: now,
            subs: None,
            interest: Interest::READ,
            close_after_flush: false,
        }
    }

    fn pending_out(&self) -> usize {
        self.out.len() - self.out_at
    }

    /// Queued push frames not yet fully flushed to the socket.
    fn undelivered_pushes(&self) -> u64 {
        self.push_ends
            .iter()
            .filter(|&&end| end > self.out_at)
            .count() as u64
    }
}

/// Why a connection must close now (soft closes — protocol errors,
/// panics — drain their error frame first and are not represented
/// here).
enum Close {
    /// EOF, socket error, idle reap, or over-capacity: nothing more to
    /// deliver.
    Gone,
    /// Push backpressure: the buffered backlog exceeded
    /// [`ServerConfig::push_backlog`] with pushes still due.
    PushOverflow,
}

/// Token the loop's waker registers under; connection tokens are slab
/// indices, which stay far below this.
const WAKE_TOKEN: u64 = u64::MAX;

/// Granularity of inbound reads before a frame's length is known.
const READ_CHUNK: usize = 4 * 1024;

struct EventLoop {
    shared: Arc<Shared>,
    writer_tx: mpsc::Sender<WriterMsg>,
    poller: Poller,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    state: LoopState,
}

fn event_loop(
    shared: Arc<Shared>,
    conn_rx: mpsc::Receiver<TcpStream>,
    wake_rx: WakeReceiver,
    writer_tx: mpsc::Sender<WriterMsg>,
) {
    let poller = match Poller::new() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("iloc-server: event loop failed to create poller: {e}");
            return;
        }
    };
    let state = LoopState::new(&shared.engines);
    let mut el = EventLoop {
        shared,
        writer_tx,
        poller,
        conns: Vec::new(),
        free: Vec::new(),
        state,
    };
    if let Err(e) = el
        .poller
        .register(wake_rx.raw_fd(), WAKE_TOKEN, Interest::READ)
    {
        eprintln!("iloc-server: event loop failed to register waker: {e}");
        return;
    }

    let mut events: Vec<Event> = Vec::new();
    let mut next_sweep = Instant::now();
    loop {
        if el
            .poller
            .wait(&mut events, Some(el.shared.idle_poll))
            .is_err()
        {
            break;
        }
        if el.shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let now = Instant::now();
        let mut woken = false;
        for ev in events.iter().copied() {
            if ev.token == WAKE_TOKEN {
                wake_rx.drain();
                woken = true;
            } else {
                el.conn_ready(ev.token as usize, ev, now);
            }
        }
        // Sweep on cadence, and immediately on wakes — the writer
        // wakes every loop after a commit so pushes to idle
        // subscribers don't wait out the poll interval.
        if woken || now >= next_sweep {
            el.sweep(now);
            next_sweep = now + el.shared.idle_poll;
        }
        // Adopt connections the listener handed over (after event
        // processing, so a slot freed above is not reused while its
        // stale events are still in this batch).
        for stream in conn_rx.try_iter() {
            el.adopt(stream, now);
        }
    }
    // Teardown: every owned connection closes; queued pushes that
    // never reached the socket are accounted.
    for idx in 0..el.conns.len() {
        el.close(idx);
    }
}

impl EventLoop {
    fn adopt(&mut self, stream: TcpStream, now: Instant) {
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        match self
            .poller
            .register(stream.as_raw_fd(), idx as u64, Interest::READ)
        {
            Ok(()) => self.conns[idx] = Some(Conn::new(stream, now)),
            Err(_) => {
                self.free.push(idx);
                self.shared.connections.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Closes and frees slot `idx` (idempotent): deregisters the fd,
    /// counts undelivered pushes, drops the stream.
    fn close(&mut self, idx: usize) {
        if let Some(conn) = self.conns.get_mut(idx).and_then(Option::take) {
            let undelivered = conn.undelivered_pushes();
            if undelivered > 0 {
                self.shared
                    .dropped_pushes
                    .fetch_add(undelivered, Ordering::Relaxed);
            }
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.shared.connections.fetch_sub(1, Ordering::Relaxed);
            self.free.push(idx);
        }
    }

    /// Handles one readiness event for connection `idx`.
    fn conn_ready(&mut self, idx: usize, ev: Event, now: Instant) {
        if self.conns.get(idx).is_none_or(Option::is_none) {
            return; // freed earlier in this same event batch
        }
        if ev.hangup && !ev.readable {
            self.close(idx);
            return;
        }
        let mut outcome = Ok(());
        if ev.readable {
            outcome = self.read_and_serve(idx, now);
        }
        if outcome.is_ok() {
            outcome = self.flush(idx);
        }
        match outcome {
            Ok(()) => self.settle(idx),
            Err(_close) => self.close(idx),
        }
    }

    /// Reads whatever the socket has, serving every complete frame.
    fn read_and_serve(&mut self, idx: usize, now: Instant) -> Result<(), Close> {
        let mut poisoned = false;
        let result = (|| -> Result<(), Close> {
            loop {
                let conn = self.conns[idx].as_mut().expect("live conn");
                if conn.close_after_flush {
                    return Ok(()); // draining; discard nothing, read nothing
                }
                // Reading pauses while the peer owes us a flush larger
                // than the backlog budget (request flow control).
                if conn.pending_out() > self.shared.push_backlog {
                    return Ok(());
                }
                // Compact consumed bytes, then make room: enough for
                // the current frame when its length is known, one
                // chunk otherwise.
                if conn.parsed > 0 {
                    conn.in_buf.copy_within(conn.parsed..conn.in_len, 0);
                    conn.in_len -= conn.parsed;
                    conn.parsed = 0;
                }
                // Anything left after the parse pass is an incomplete
                // frame, so `in_len` is always below the target size:
                // one chunk, or the whole frame once its length is
                // known (wild lengths are rejected in the parse pass;
                // here they just must not drive allocation).
                let needed = if conn.in_len >= 4 {
                    let len = u32::from_le_bytes(conn.in_buf[0..4].try_into().expect("4 bytes"));
                    (len.min(self.shared.max_frame_len) as usize + 4).max(READ_CHUNK)
                } else {
                    READ_CHUNK
                };
                if conn.in_buf.len() < needed {
                    conn.in_buf.resize(needed, 0);
                }
                let read = conn.stream.read(&mut conn.in_buf[conn.in_len..]);
                match read {
                    Ok(0) => {
                        // EOF. Complete frames were already served, so
                        // at most a partial frame is discarded; drain
                        // whatever output is still queued, then close
                        // (a half-closing peer still gets its
                        // responses).
                        conn.close_after_flush = true;
                        return Ok(());
                    }
                    Ok(n) => {
                        conn.in_len += n;
                        self.serve_parsed(idx, now, &mut poisoned)?;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return Err(Close::Gone),
                }
            }
        })();
        if poisoned {
            // A caught panic may have left the loop scratch mid-flight;
            // rebuild it. Other connections are unaffected.
            self.state = LoopState::new(&self.shared.engines);
        }
        result
    }

    /// Serves every complete frame currently buffered on `idx`.
    fn serve_parsed(&mut self, idx: usize, now: Instant, poisoned: &mut bool) -> Result<(), Close> {
        loop {
            let conn = self.conns[idx].as_mut().expect("live conn");
            if conn.close_after_flush {
                return Ok(());
            }
            let avail = conn.in_len - conn.parsed;
            if avail < 4 {
                return Ok(());
            }
            let len_bytes: [u8; 4] = conn.in_buf[conn.parsed..conn.parsed + 4]
                .try_into()
                .expect("4 bytes");
            let len = u32::from_le_bytes(len_bytes);
            if len < 2 || len > self.shared.max_frame_len {
                // The stream cannot be re-delimited after a wild
                // length: answer and close once the error drains.
                protocol::encode_error(
                    &mut conn.out,
                    ErrorCode::TooLarge,
                    "frame length out of bounds",
                );
                conn.close_after_flush = true;
                return Ok(());
            }
            if avail - 4 < len as usize {
                return Ok(()); // tail still en route
            }
            let frame_start = conn.parsed + 4;
            conn.parsed = frame_start + len as usize;
            conn.last_frame = now;
            self.shared.requests_served.fetch_add(1, Ordering::Relaxed);

            let version = conn.in_buf[frame_start];
            let op = conn.in_buf[frame_start + 1];
            if op == opcode::HELLO {
                // Version negotiation (v6): answered regardless of the
                // header version so a mismatched peer gets a typed
                // ERROR naming the version this build speaks instead
                // of a silent close.
                let payload = &conn.in_buf[frame_start + 2..frame_start + len as usize];
                let peer = protocol::hello_peer_version(payload).unwrap_or(version);
                if version != PROTOCOL_VERSION || peer != PROTOCOL_VERSION {
                    protocol::encode_error(
                        &mut conn.out,
                        ErrorCode::BadVersion,
                        &format!(
                            "unsupported protocol version {peer}; this node speaks v{PROTOCOL_VERSION}"
                        ),
                    );
                    conn.close_after_flush = true;
                    return Ok(());
                }
                match protocol::decode_hello(payload) {
                    Ok((_, _role, _flags)) => {
                        let point = self.shared.engines.point.snapshot();
                        let uncertain = self.shared.engines.uncertain.snapshot();
                        let ack = protocol::HelloAck {
                            role: protocol::Role::Server,
                            flags: 0,
                            point_epoch: point.epoch(),
                            uncertain_epoch: uncertain.epoch(),
                            point_recovered: self.shared.recovered_epochs.0,
                            uncertain_recovered: self.shared.recovered_epochs.1,
                            point_shards: point.shard_count() as u32,
                            uncertain_shards: uncertain.shard_count() as u32,
                        };
                        protocol::encode_hello_ack(&mut conn.out, &ack);
                    }
                    Err(e) => wire_error(&mut conn.out, e),
                }
                continue;
            }
            if version != PROTOCOL_VERSION {
                protocol::encode_error(
                    &mut conn.out,
                    ErrorCode::BadVersion,
                    "protocol version mismatch",
                );
                conn.close_after_flush = true;
                return Ok(());
            }

            // Commit-driven pushes go out *before* this frame's
            // response, so the subscriber's view advances in epoch
            // order and a TICK's delta composes on top of everything
            // already delivered.
            if let Some(subs) = conn.subs.as_mut() {
                if subs.needs_pump(&self.shared.engines) {
                    pump_subs(
                        subs,
                        &self.shared,
                        &mut conn.out,
                        conn.out_at,
                        &mut conn.push_ends,
                    )
                    .map_err(|fail| match fail {
                        PumpFail::Overflow => Close::PushOverflow,
                        PumpFail::Panicked => {
                            // Registries may be mid-broken; they die
                            // with the connection. Loop scratch was
                            // not involved.
                            Close::Gone
                        }
                    })?;
                }
            }

            // Split-borrow the connection so the frame (borrowing
            // `in_buf`) can be dispatched against the other fields.
            let handled = {
                let Conn {
                    in_buf, out, subs, ..
                } = conn;
                let payload = &in_buf[frame_start + 2..frame_start + len as usize];
                std::panic::catch_unwind(AssertUnwindSafe(|| {
                    handle_frame(
                        op,
                        payload,
                        &mut self.state,
                        subs,
                        out,
                        &self.shared,
                        &self.writer_tx,
                    )
                }))
            };
            if handled.is_err() {
                let conn = self.conns[idx].as_mut().expect("live conn");
                protocol::encode_error(
                    &mut conn.out,
                    ErrorCode::Internal,
                    "request handler panicked",
                );
                conn.close_after_flush = true;
                *poisoned = true;
                return Ok(());
            }
        }
    }

    /// Flushes as much buffered output as the socket takes.
    fn flush(&mut self, idx: usize) -> Result<(), Close> {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return Ok(());
        };
        while conn.out_at < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_at..]) {
                Ok(0) => return Err(Close::Gone),
                Ok(n) => conn.out_at += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Err(Close::Gone),
            }
        }
        if conn.out_at == conn.out.len() {
            conn.out.clear();
            conn.out_at = 0;
            conn.push_ends.clear();
        } else {
            // Drop fully-flushed push bookkeeping so a later close
            // counts only frames that truly never made it out whole.
            while conn
                .push_ends
                .front()
                .is_some_and(|&end| end <= conn.out_at)
            {
                conn.push_ends.pop_front();
            }
        }
        Ok(())
    }

    /// Post-I/O bookkeeping: finish a drain-close, or converge the
    /// poller's interest set with what the connection now needs.
    fn settle(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        let pending = conn.pending_out();
        if conn.close_after_flush && pending == 0 {
            self.close(idx);
            return;
        }
        let desired = Interest {
            readable: !conn.close_after_flush && pending <= self.shared.push_backlog,
            writable: pending > 0,
        };
        if desired != conn.interest {
            let fd = conn.stream.as_raw_fd();
            if self.poller.modify(fd, idx as u64, desired).is_ok() {
                conn.interest = desired;
            } else {
                self.close(idx);
            }
        }
    }

    /// The periodic pass over every connection: pump subscribers whose
    /// engines have moved on, enforce the monotonic idle deadline.
    fn sweep(&mut self, now: Instant) {
        for idx in 0..self.conns.len() {
            let Some(conn) = self.conns[idx].as_mut() else {
                continue;
            };
            if !conn.close_after_flush {
                if let Some(subs) = conn.subs.as_mut() {
                    if subs.needs_pump(&self.shared.engines) {
                        let pumped = pump_subs(
                            subs,
                            &self.shared,
                            &mut conn.out,
                            conn.out_at,
                            &mut conn.push_ends,
                        );
                        if pumped.is_err() {
                            self.close(idx);
                            continue;
                        }
                        if self.flush(idx).is_err() {
                            self.close(idx);
                            continue;
                        }
                        self.settle(idx);
                    }
                }
            }
            if let Some(timeout) = self.shared.idle_timeout {
                let conn = match self.conns[idx].as_ref() {
                    Some(conn) => conn,
                    None => continue, // settle() may have drain-closed it
                };
                if now.duration_since(conn.last_frame) >= timeout {
                    // Reap: an abandoned socket must not pin a slot
                    // forever. Closing is the signal.
                    self.close(idx);
                }
            }
        }
    }
}

/// Why a pump pass could not deliver its pushes.
enum PumpFail {
    /// Backlog budget exceeded with pushes still due.
    Overflow,
    /// A registry panicked mid-pump.
    Panicked,
}

/// Pumps both registries, appending one NOTIFY frame per changed
/// subscription to `out` (recording each frame's end in `push_ends`).
/// A push that would drive the un-flushed backlog past the budget is
/// rolled back and counted — with every later push of the pass — into
/// the server-wide dropped-push stat, and the pass fails with
/// [`PumpFail::Overflow`]: the caller closes the connection (typed
/// close; the subscriber re-syncs by resubscribing).
fn pump_subs(
    subs: &mut ConnSubs,
    shared: &Shared,
    out: &mut Vec<u8>,
    out_at: usize,
    push_ends: &mut VecDeque<usize>,
) -> Result<(), PumpFail> {
    let cap = shared.push_backlog;
    let mut over = false;
    let mut refused = 0u64;
    let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
        subs.point
            .pump(shared.engines.point.engine(), |id, epoch, delta| {
                if over {
                    refused += 1;
                    return;
                }
                let before = out.len();
                protocol::encode_notify(
                    out,
                    CommitTarget::Point,
                    id,
                    epoch,
                    NotifyCause::Commit,
                    delta,
                );
                if out.len() - out_at > cap {
                    out.truncate(before);
                    refused += 1;
                    over = true;
                } else {
                    push_ends.push_back(out.len());
                }
            });
        subs.uncertain
            .pump(shared.engines.uncertain.engine(), |id, epoch, delta| {
                if over {
                    refused += 1;
                    return;
                }
                let before = out.len();
                protocol::encode_notify(
                    out,
                    CommitTarget::Uncertain,
                    id,
                    epoch,
                    NotifyCause::Commit,
                    delta,
                );
                if out.len() - out_at > cap {
                    out.truncate(before);
                    refused += 1;
                    over = true;
                } else {
                    push_ends.push_back(out.len());
                }
            });
    }));
    if refused > 0 {
        shared.dropped_pushes.fetch_add(refused, Ordering::Relaxed);
    }
    match caught {
        Err(_) => Err(PumpFail::Panicked),
        Ok(()) if over => Err(PumpFail::Overflow),
        Ok(()) => Ok(()),
    }
}

/// Serves one frame: decodes the payload, executes, and appends the
/// response to `out`. Every failure mode becomes an error frame.
fn handle_frame(
    op: u8,
    payload: &[u8],
    state: &mut LoopState,
    subs: &mut Option<Box<ConnSubs>>,
    out: &mut Vec<u8>,
    shared: &Shared,
    writer_tx: &mpsc::Sender<WriterMsg>,
) {
    match op {
        opcode::POINT_QUERY => {
            match protocol::decode_point_query_into(payload, &mut state.point_req) {
                Ok(()) => {
                    let snapshot = shared.engines.point.snapshot();
                    if snapshot.epoch() != state.point.snapshot().epoch() {
                        state.point.rebind(snapshot);
                    }
                    state
                        .point
                        .execute_into(&state.point_req, &mut state.answer);
                    shared.stage.absorb(&state.answer.stats);
                    protocol::encode_answer(out, &state.answer);
                }
                Err(e) => wire_error(out, e),
            }
        }
        opcode::UNCERTAIN_QUERY => {
            match protocol::decode_uncertain_query_into(payload, &mut state.uncertain_req) {
                Ok(()) => {
                    let snapshot = shared.engines.uncertain.snapshot();
                    if snapshot.epoch() != state.uncertain.snapshot().epoch() {
                        state.uncertain.rebind(snapshot);
                    }
                    state
                        .uncertain
                        .execute_into(&state.uncertain_req, &mut state.answer);
                    shared.stage.absorb(&state.answer.stats);
                    protocol::encode_answer(out, &state.answer);
                }
                Err(e) => wire_error(out, e),
            }
        }
        opcode::UPDATE_BATCH => match protocol::decode_update_batch(payload, &mut state.updates) {
            Ok(()) => {
                let updates = std::mem::take(&mut state.updates);
                let (reply_tx, reply_rx) = mpsc::sync_channel(1);
                // The writer outlives the loops by construction;
                // failures here mean the server is tearing down.
                let sent = writer_tx.send(WriterMsg::Submit(updates, reply_tx));
                match sent.ok().and_then(|()| reply_rx.recv().ok()) {
                    Some((accepted, drained)) => {
                        state.updates = drained;
                        protocol::encode_update_ack(out, accepted)
                    }
                    None => protocol::encode_error(out, ErrorCode::Internal, "writer unavailable"),
                }
            }
            Err(e) => wire_error(out, e),
        },
        opcode::COMMIT => match protocol::decode_commit(payload) {
            Ok(target) => {
                let (reply_tx, reply_rx) = mpsc::sync_channel(1);
                let sent = writer_tx.send(WriterMsg::Commit(target, reply_tx));
                match sent.ok().and_then(|()| reply_rx.recv().ok()) {
                    Some(Ok(report)) => {
                        protocol::encode_commit_done(out, &report);
                    }
                    Some(Err(_)) => protocol::encode_error(
                        out,
                        ErrorCode::Internal,
                        "durable commit failed; epoch not published",
                    ),
                    None => protocol::encode_error(out, ErrorCode::Internal, "writer unavailable"),
                }
            }
            Err(e) => wire_error(out, e),
        },
        opcode::STATS => {
            if !payload.is_empty() {
                wire_error(out, WireError::Malformed("stats payload"));
                return;
            }
            // Read the counter before encoding so the probe excludes
            // its own response from the reported total.
            let mut refine_batches = [0u64; REFINE_BATCH_BUCKETS];
            for (slot, counter) in refine_batches.iter_mut().zip(&shared.stage.refine_batches) {
                *slot = counter.load(Ordering::Relaxed);
            }
            let counters = CountersView {
                alloc_counting: alloc_count::counting_installed(),
                allocations: alloc_count::allocations(),
                requests_served: shared.requests_served.load(Ordering::Relaxed),
                capacity: shared.capacity,
                event_loops: shared.event_loops,
                connections: shared.connections.load(Ordering::Relaxed),
                dropped_pushes: shared.dropped_pushes.load(Ordering::Relaxed),
                filter_nanos: shared.stage.filter_nanos.load(Ordering::Relaxed),
                prune_nanos: shared.stage.prune_nanos.load(Ordering::Relaxed),
                refine_nanos: shared.stage.refine_nanos.load(Ordering::Relaxed),
                refine_batches,
            };
            let point = shared.engines.point.snapshot();
            let uncertain = shared.engines.uncertain.snapshot();
            protocol::encode_stats_report(
                out,
                counters,
                (&point, shared.engines.point.pending_len() as u64),
                (&uncertain, shared.engines.uncertain.pending_len() as u64),
            );
        }
        opcode::PING => {
            if payload.is_empty() {
                protocol::encode_empty(out, opcode::PONG);
            } else {
                wire_error(out, WireError::Malformed("ping payload"));
            }
        }
        opcode::SUBSCRIBE => {
            let mut r = protocol::Reader::new(payload);
            match protocol::decode_subscribe_header(&mut r) {
                Ok((CommitTarget::Point, slack)) => {
                    match protocol::decode_subscribe_point_body(&mut r, &mut state.point_req) {
                        Ok(()) => {
                            let subs = subs.get_or_insert_with(|| Box::new(ConnSubs::new()));
                            if subs.point.len() >= MAX_SUBSCRIPTIONS {
                                protocol::encode_error(
                                    out,
                                    ErrorCode::TooManySubscriptions,
                                    "subscription limit reached",
                                );
                            } else {
                                let id = subs.point.subscribe(
                                    shared.engines.point.engine(),
                                    state.point_req.clone(),
                                    slack,
                                );
                                let sub = subs.point.get(id).expect("just subscribed");
                                protocol::encode_sub_ack(
                                    out,
                                    CommitTarget::Point,
                                    id,
                                    sub.epoch(),
                                    shared.recovered_epochs.0,
                                    sub.last_answer(),
                                );
                            }
                        }
                        Err(e) => wire_error(out, e),
                    }
                }
                Ok((CommitTarget::Uncertain, slack)) => {
                    match protocol::decode_subscribe_uncertain_body(
                        &mut r,
                        &mut state.uncertain_req,
                    ) {
                        Ok(()) => {
                            let subs = subs.get_or_insert_with(|| Box::new(ConnSubs::new()));
                            if subs.uncertain.len() >= MAX_SUBSCRIPTIONS {
                                protocol::encode_error(
                                    out,
                                    ErrorCode::TooManySubscriptions,
                                    "subscription limit reached",
                                );
                            } else {
                                let id = subs.uncertain.subscribe(
                                    shared.engines.uncertain.engine(),
                                    state.uncertain_req.clone(),
                                    slack,
                                );
                                let sub = subs.uncertain.get(id).expect("just subscribed");
                                protocol::encode_sub_ack(
                                    out,
                                    CommitTarget::Uncertain,
                                    id,
                                    sub.epoch(),
                                    shared.recovered_epochs.1,
                                    sub.last_answer(),
                                );
                            }
                        }
                        Err(e) => wire_error(out, e),
                    }
                }
                Err(e) => wire_error(out, e),
            }
        }
        opcode::UNSUBSCRIBE => match protocol::decode_unsubscribe(payload) {
            Ok((target, id)) => {
                let existed = match (target, subs.as_mut()) {
                    (CommitTarget::Point, Some(subs)) => subs.point.unsubscribe(id),
                    (CommitTarget::Uncertain, Some(subs)) => subs.uncertain.unsubscribe(id),
                    (_, None) => false,
                };
                protocol::encode_unsub_done(out, existed);
            }
            Err(e) => wire_error(out, e),
        },
        opcode::TICK => match protocol::decode_tick(payload) {
            Ok((target, id, pdf)) => {
                // The caller pumped before dispatch, so this tick's
                // delta composes on top of every commit already
                // delivered; a steady tick inside the envelope runs
                // probe-free and allocation-free.
                let ticked = match (target, subs.as_mut()) {
                    (CommitTarget::Point, Some(subs)) => subs
                        .point
                        .tick(shared.engines.point.engine(), id, pdf)
                        .map(|(epoch, delta)| {
                            protocol::encode_notify(
                                out,
                                target,
                                id,
                                epoch,
                                NotifyCause::Tick,
                                delta,
                            );
                        }),
                    (CommitTarget::Uncertain, Some(subs)) => subs
                        .uncertain
                        .tick(shared.engines.uncertain.engine(), id, pdf)
                        .map(|(epoch, delta)| {
                            protocol::encode_notify(
                                out,
                                target,
                                id,
                                epoch,
                                NotifyCause::Tick,
                                delta,
                            );
                        }),
                    (_, None) => None,
                };
                if ticked.is_none() {
                    wire_error(out, WireError::Malformed("unknown subscription id"));
                }
            }
            Err(e) => wire_error(out, e),
        },
        _ => protocol::encode_error(out, ErrorCode::BadOpcode, "unknown request opcode"),
    }
}

/// Encodes a decode failure as an error frame without allocating (the
/// message is the static string the decoder produced).
fn wire_error(buf: &mut Vec<u8>, e: WireError) {
    let message = match e {
        WireError::Malformed(what) => what,
        WireError::UnsupportedPdf => "pdf kind not encodable on the wire",
    };
    protocol::encode_error(buf, e.into(), message);
}
