//! Taxi dispatch: "find the available cabs within two miles of my
//! current location" — the paper's running example (Section 1).
//!
//! Cabs are moving objects whose positions are only known up to a
//! last-report box; the rider's own location is imprecise too. The
//! dispatcher wants cabs ranked by the probability they really are in
//! range, and only offers cabs that clear a confidence threshold.
//!
//! ```text
//! cargo run --release --example taxi_dispatch
//! ```

use iloc::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// World scale: 10 000 × 10 000 units ≈ a metro area; 1 mile ≈ 500
/// units for this demo, so "two miles" is a half-size-1000 square.
const TWO_MILES: f64 = 1_000.0;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 400 cabs. Each reported a position some time ago; the longer
    // ago, the larger its uncertainty box (max speed × staleness).
    let cabs: Vec<UncertainObject> = (0..400u64)
        .map(|id| {
            let cx = rng.gen_range(500.0..9_500.0);
            let cy = rng.gen_range(500.0..9_500.0);
            let staleness: f64 = rng.gen_range(5.0..120.0); // seconds
            let max_speed = 4.0; // units per second
            let r = (staleness * max_speed).min(480.0);
            UncertainObject::new(
                id,
                UniformPdf::new(Rect::centered(Point::new(cx, cy), r, r)),
            )
        })
        .collect();
    let dispatch = UncertainEngine::build(cabs);

    // The rider's phone reports a cell-tower fix: a 300×300 box.
    let rider = Issuer::uniform(Rect::centered(Point::new(5_000.0, 5_000.0), 150.0, 150.0));
    let range = RangeSpec::square(TWO_MILES);

    // Unconstrained IUQ: every cab with any chance of being in range.
    let all = dispatch.iuq(&rider, range);
    println!("{} cab(s) could be within two miles", all.results.len());

    // The dispatcher only calls cabs that are in range with ≥ 70 %
    // confidence — a C-IUQ with the PTI + p-expanded pipeline.
    let confident = dispatch.ciuq(&rider, range, 0.7, CiuqStrategy::PtiPExpanded);
    let mut ranked: Vec<&Match> = confident.results.iter().collect();
    ranked.sort_by(|a, b| b.probability.partial_cmp(&a.probability).unwrap());

    println!("{} cab(s) clear the 70% confidence bar:", ranked.len());
    for m in ranked.iter().take(10) {
        println!("  cab {:>4}  p = {:.3}", m.id.0, m.probability);
    }
    println!(
        "query cost: {} candidates filtered to {} integrations (S1/S2/S3 pruned {}/{}/{}), {:.3} ms",
        confident.stats.access.candidates,
        confident.stats.prob_evals,
        confident.stats.pruned_s1,
        confident.stats.pruned_s2,
        confident.stats.pruned_s3,
        confident.stats.elapsed.as_secs_f64() * 1e3,
    );

    // Sanity: every confident cab also appears in the unconstrained
    // answer with the same probability.
    for m in &confident.results {
        let p = all.probability_of(m.id).expect("subset of IUQ answer");
        assert!((p - m.probability).abs() < 1e-9);
    }
}
