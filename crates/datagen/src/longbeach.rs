//! Long-Beach-like rectangle set: clustered, skew-sized parcels.
//!
//! TIGER's Long Beach county data is a set of small rectangles (census
//! blocks / parcels) packed densely in built-up areas. We draw centres
//! from an urban-cluster mixture and sizes from a heavy-tailed
//! distribution, clipping everything into the data space. The
//! rectangles serve directly as the uncertainty regions of the
//! uncertain-object database.

use iloc_geometry::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::california::normal_draw;
use crate::SPACE;

/// Generates `n` rectangles (use [`crate::LONG_BEACH_SIZE`] for the
/// paper's cardinality). Deterministic in `seed`.
pub fn long_beach_rects(n: usize, seed: u64) -> Vec<Rect> {
    let mut rng = StdRng::seed_from_u64(seed);

    // Urban cores: 30 clusters, skewed weights (Zipf-ish) so a few
    // cores dominate, as in a real county.
    let cores = 30usize;
    let centers: Vec<(f64, f64, f64)> = (0..cores)
        .map(|_| {
            (
                rng.gen_range(SPACE.min.x..SPACE.max.x),
                rng.gen_range(SPACE.min.y..SPACE.max.y),
                40.0 + rng.gen_range(0.0f64..1.0).powi(2) * 800.0,
            )
        })
        .collect();
    let weights: Vec<f64> = (0..cores).map(|k| 1.0 / (k + 1) as f64).collect();
    let total_w: f64 = weights.iter().sum();

    let mut rects = Vec::with_capacity(n);
    for _ in 0..n {
        // 85 % clustered, 15 % scattered.
        let (cx, cy) = if rng.gen_range(0.0..1.0) < 0.85 {
            let mut pick = rng.gen_range(0.0..total_w);
            let mut idx = 0;
            for (k, w) in weights.iter().enumerate() {
                if pick < *w {
                    idx = k;
                    break;
                }
                pick -= w;
            }
            let (cx, cy, r) = centers[idx];
            (
                cx + normal_draw(&mut rng) * r,
                cy + normal_draw(&mut rng) * r,
            )
        } else {
            (
                rng.gen_range(SPACE.min.x..SPACE.max.x),
                rng.gen_range(SPACE.min.y..SPACE.max.y),
            )
        };
        // Heavy-tailed half-extents: most parcels tiny, some blocks big.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let scale = 8.0 * u.powf(-0.35); // ~Pareto, min 8, long tail
        let half_w = (scale * rng.gen_range(0.5..1.5)).min(400.0);
        let half_h = (scale * rng.gen_range(0.5..1.5)).min(400.0);
        let c = Point::new(
            cx.clamp(SPACE.min.x + half_w, SPACE.max.x - half_w),
            cy.clamp(SPACE.min.y + half_h, SPACE.max.y - half_h),
        );
        rects.push(Rect::centered(c, half_w, half_h));
    }
    rects
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LONG_BEACH_SIZE;

    #[test]
    fn cardinality_bounds_and_positive_area() {
        let rs = long_beach_rects(10_000, 5);
        assert_eq!(rs.len(), 10_000);
        for r in &rs {
            assert!(SPACE.contains_rect(*r), "{r:?} escapes the space");
            assert!(r.area() > 0.0);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(long_beach_rects(500, 1), long_beach_rects(500, 1));
        assert_ne!(long_beach_rects(500, 1), long_beach_rects(500, 2));
    }

    #[test]
    fn full_size_dataset_generates() {
        assert_eq!(long_beach_rects(LONG_BEACH_SIZE, 1).len(), LONG_BEACH_SIZE);
    }

    #[test]
    fn sizes_are_heavy_tailed() {
        let rs = long_beach_rects(20_000, 9);
        let mut widths: Vec<f64> = rs.iter().map(|r| r.width()).collect();
        widths.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = widths[widths.len() / 2];
        let p99 = widths[widths.len() * 99 / 100];
        // Heavy tail: the 99th percentile is far above the median.
        assert!(p99 > 4.0 * median, "median {median}, p99 {p99}");
    }

    #[test]
    fn centres_are_clustered() {
        let rs = long_beach_rects(20_000, 11);
        let mut counts = [0usize; 100];
        for r in &rs {
            let c = r.center();
            let i = ((c.x / 1_000.0) as usize).min(9);
            let j = ((c.y / 1_000.0) as usize).min(9);
            counts[j * 10 + i] += 1;
        }
        let mean = 200.0f64;
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / 100.0;
        assert!(var > 5.0 * mean, "variance {var} too close to uniform");
    }
}
