//! Crash-recovery smoke: SIGKILL a durable server mid-stream, restart
//! it, and prove the recovered catalog answers **bit-identically** to
//! a clean engine that applied the same committed prefix.
//!
//! ```text
//! cargo run --release -p iloc-bench --bin crash_recovery -- [flags]
//!
//! --server PATH       iloc-server binary (default: sibling of this
//!                     binary in the same target directory)
//! --data-dir PATH     durable store (default: fresh temp directory,
//!                     removed on success)
//! --points N          point catalog size   (default 6,200)
//! --uncertain N       uncertain catalog    (default 5,300)
//! --shards N          shards per catalog   (default 4)
//! --batch N           updates per commit   (default 64)
//! --max-batches N     stream length cap    (default 4,096)
//! --kill-after-ms MS  SIGKILL delay        (default 500)
//! --fsync POLICY      always | every=N | off (default always)
//! --seed N            dataset seed         (default 2007)
//! ```
//!
//! The run:
//!
//! 1. starts `iloc-server --data-dir` on an ephemeral port and opens a
//!    [`ResilientClient`] with one standing subscription (fresh store,
//!    so its SUB_ACK must report recovered epoch 0);
//! 2. streams deterministic update batches (submit + commit per epoch)
//!    on a second connection while a killer thread SIGKILLs the server
//!    process mid-stream — the kill races WAL appends, fsyncs and
//!    epoch publishes, exactly the torn states recovery must handle;
//! 3. restarts the server on the **same port** against the same data
//!    directory; the next resilient query transparently reconnects and
//!    re-subscribes, and the SUB_ACK's recovered epoch `R` tells us
//!    which prefix survived (`acked ≤ R ≤ attempted` under
//!    `--fsync always`: every acknowledged commit is durable, plus at
//!    most the one that was in flight when the kill landed);
//! 4. rebuilds a reference in-process server from the same seed and
//!    applies the first `R` deterministic batches, then runs a mixed
//!    IPQ/C-IPQ/IUQ pool against both servers and compares every match
//!    id and probability **by f64 bit pattern**;
//! 5. commits one more batch to the recovered server (epoch must
//!    continue at `R + 1`) and stops it with SIGTERM, asserting a
//!    clean exit 0 (drain, WAL flush, final checkpoint).
//!
//! Exit status 0 means every assertion held; any mismatch prints the
//! offending query and exits 1.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, SystemTime};

use iloc_bench::ResilientClient;
use iloc_core::pipeline::{PointRequest, UncertainRequest};
use iloc_core::serve::Update;
use iloc_core::{CipqStrategy, Issuer, QueryAnswer, RangeSpec};
use iloc_datagen::{
    california_points, long_beach_rects, uniform_objects, PointUpdate, PointUpdateGen, UpdateMix,
    WorkloadGen,
};
use iloc_server::client::Client;
use iloc_server::protocol::{CommitTarget, WireUpdate};
use iloc_server::server::{QueryServer, ServerConfig};
use iloc_uncertainty::{ObjectId, PointObject};

/// Paper Table 2 defaults shared with the loadgen scenarios.
const U: f64 = 250.0;
const W: f64 = 500.0;

/// Distinct requests in the comparison pool.
const POOL: usize = 48;

const CONNECT_TIMEOUT: Duration = Duration::from_secs(60);

struct Config {
    server_bin: PathBuf,
    data_dir: PathBuf,
    ephemeral_dir: bool,
    points: usize,
    uncertain: usize,
    shards: usize,
    batch: usize,
    max_batches: usize,
    kill_after: Duration,
    fsync: String,
    seed: u64,
}

fn parse_config() -> Config {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let number = |name: &str, default: usize| -> usize {
        value(name)
            .map(|v| v.parse().unwrap_or_else(|_| die(name)))
            .unwrap_or(default)
    };
    let server_bin = value("--server").map(PathBuf::from).unwrap_or_else(|| {
        std::env::current_exe()
            .expect("current exe")
            .parent()
            .expect("exe dir")
            .join("iloc-server")
    });
    let (data_dir, ephemeral_dir) = match value("--data-dir") {
        Some(dir) => (PathBuf::from(dir), false),
        None => {
            let nanos = SystemTime::now()
                .duration_since(SystemTime::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0);
            let dir = std::env::temp_dir().join(format!(
                "iloc-crash-recovery-{}-{nanos}",
                std::process::id()
            ));
            (dir, true)
        }
    };
    Config {
        server_bin,
        data_dir,
        ephemeral_dir,
        points: number("--points", 6_200),
        uncertain: number("--uncertain", 5_300),
        shards: number("--shards", 4),
        batch: number("--batch", 64),
        max_batches: number("--max-batches", 4_096),
        kill_after: Duration::from_millis(number("--kill-after-ms", 500) as u64),
        fsync: value("--fsync").unwrap_or_else(|| "always".to_string()),
        seed: number("--seed", 2007) as u64,
    }
}

fn die(name: &str) -> ! {
    eprintln!("invalid value for {name}");
    std::process::exit(2);
}

/// Spawns the server binary and blocks until it announces its bound
/// address on stdout ("listening on ADDR").
fn spawn_server(cfg: &Config, addr: &str) -> (Child, SocketAddr) {
    let mut child = Command::new(&cfg.server_bin)
        .arg("--addr")
        .arg(addr)
        .arg("--points")
        .arg(cfg.points.to_string())
        .arg("--uncertain")
        .arg(cfg.uncertain.to_string())
        .arg("--shards")
        .arg(cfg.shards.to_string())
        .arg("--seed")
        .arg(cfg.seed.to_string())
        .arg("--data-dir")
        .arg(&cfg.data_dir)
        .arg("--fsync")
        .arg(&cfg.fsync)
        .arg("--checkpoint-every")
        .arg("64")
        .stdout(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| {
            eprintln!("failed to spawn {}: {e}", cfg.server_bin.display());
            std::process::exit(2);
        });
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let bound = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(rest) = line.strip_prefix("listening on ") {
                    break rest.trim().parse::<SocketAddr>().expect("bound address");
                }
            }
            _ => {
                eprintln!("server exited before announcing its address");
                std::process::exit(2);
            }
        }
    };
    // Drain the rest of stdout in the background so the server never
    // blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, bound)
}

/// The deterministic update stream: batch `k` is always identical for
/// a given seed/catalog size, so "apply the first R batches" is a
/// complete description of any recovered state.
fn make_batches(cfg: &Config) -> Vec<Vec<PointUpdate>> {
    let (_, mut gen) = PointUpdateGen::over_california(cfg.points, cfg.seed, UpdateMix::balanced());
    (0..cfg.max_batches)
        .map(|_| gen.stream(cfg.batch))
        .collect()
}

fn to_wire(batch: &[PointUpdate]) -> Vec<WireUpdate> {
    batch
        .iter()
        .map(|u| {
            WireUpdate::Point(match *u {
                PointUpdate::Arrive { id, loc } => Update::Arrive(PointObject::new(id, loc)),
                PointUpdate::Depart { id } => Update::Depart(ObjectId(id)),
                PointUpdate::Move { id, to } => Update::Move(PointObject::new(id, to)),
            })
        })
        .collect()
}

fn point_pool(seed: u64) -> Vec<PointRequest> {
    let mut gen = WorkloadGen::new(seed);
    (0..POOL)
        .map(|k| {
            let issuer = Issuer::uniform(gen.issuer_region(U));
            if k % 5 == 3 {
                PointRequest::cipq(issuer, RangeSpec::square(W), 0.3, CipqStrategy::PExpanded)
            } else {
                PointRequest::ipq(issuer, RangeSpec::square(W))
            }
        })
        .collect()
}

fn uncertain_pool(seed: u64) -> Vec<UncertainRequest> {
    let mut gen = WorkloadGen::new(seed);
    (0..POOL / 4)
        .map(|_| UncertainRequest::iuq(Issuer::uniform(gen.issuer_region(U)), RangeSpec::square(W)))
        .collect()
}

/// Bit-exact comparison: same ids in the same order, and every
/// probability is the same 64-bit pattern — not "close", identical.
fn same_answer(a: &QueryAnswer, b: &QueryAnswer) -> bool {
    a.results.len() == b.results.len()
        && a.results
            .iter()
            .zip(&b.results)
            .all(|(x, y)| x.id == y.id && x.probability.to_bits() == y.probability.to_bits())
}

fn wait_exit(child: &mut Child) -> ExitStatus {
    child.wait().expect("wait on server process")
}

fn main() {
    let cfg = parse_config();
    std::fs::create_dir_all(&cfg.data_dir).expect("create data dir");
    let batches = make_batches(&cfg);

    // --- Phase 1: fresh durable server + standing subscription -------
    let (child1, addr) = spawn_server(&cfg, "127.0.0.1:0");
    eprintln!("server up at {addr}, data dir {}", cfg.data_dir.display());
    let mut resilient = ResilientClient::connect(addr, CONNECT_TIMEOUT).expect("connect");
    let sub_req = point_pool(cfg.seed + 101)[0].clone();
    let (ack, _) = resilient.subscribe_point(&sub_req, 0.0).expect("subscribe");
    assert_eq!(
        ack.recovered_epoch, 0,
        "fresh durable store must report recovered epoch 0"
    );

    // --- Phase 2: stream commits, SIGKILL mid-stream -----------------
    let killer = {
        let mut child = child1;
        let delay = cfg.kill_after;
        std::thread::spawn(move || {
            std::thread::sleep(delay);
            let _ = child.kill();
            wait_exit(&mut child)
        })
    };
    let mut driver = Client::connect_retry(addr, CONNECT_TIMEOUT).expect("driver connect");
    let mut acked: u64 = 0;
    let mut attempted: u64 = 0;
    for batch in &batches {
        let wire = to_wire(batch);
        if driver.submit(&wire).is_err() {
            break;
        }
        attempted += 1;
        match driver.commit(CommitTarget::Point) {
            Ok(report) => acked = report.epoch,
            Err(_) => break,
        }
    }
    let status = killer.join().expect("killer thread");
    assert!(
        !status.success(),
        "server was SIGKILLed; it must not report a clean exit"
    );
    if attempted as usize >= batches.len() {
        eprintln!(
            "warning: stream exhausted before the kill landed; \
             raise --max-batches or lower --kill-after-ms"
        );
    }
    eprintln!("killed mid-stream: {acked} commits acked, {attempted} attempted");

    // --- Phase 3: restart on the same port, heal the client ----------
    let (mut child2, addr2) = spawn_server(&cfg, &addr.to_string());
    assert_eq!(addr2, addr, "restart must reuse the port");
    // The next query transparently reconnects and re-subscribes; the
    // re-subscription's SUB_ACK carries the recovered epoch.
    resilient
        .point_query(&sub_req)
        .expect("query after restart");
    let recovered = resilient.last_recovered_epoch();
    assert!(
        resilient.reconnects() >= 1,
        "the restart must have forced a reconnect"
    );
    if cfg.fsync == "always" {
        assert!(
            recovered >= acked,
            "fsync=always lost acknowledged commits: recovered epoch \
             {recovered} < acked {acked}"
        );
    }
    assert!(
        recovered <= attempted,
        "recovered epoch {recovered} exceeds the {attempted} commits ever attempted"
    );
    eprintln!(
        "recovered at epoch {recovered} after {} reconnect(s)",
        resilient.reconnects()
    );

    // --- Phase 4: bit-identical comparison against a clean rebuild ---
    let reference = {
        let points: Vec<PointObject> = california_points(cfg.points, cfg.seed)
            .into_iter()
            .enumerate()
            .map(|(k, p)| PointObject::new(k as u64, p))
            .collect();
        let uncertain = uniform_objects(&long_beach_rects(cfg.uncertain, cfg.seed + 1));
        QueryServer::new(points, uncertain, cfg.shards)
    };
    let ref_handle = reference
        .start(&ServerConfig::loopback())
        .expect("reference server");
    let mut ref_client = Client::connect_retry(ref_handle.addr(), CONNECT_TIMEOUT).expect("ref");
    for batch in &batches[..recovered as usize] {
        ref_client.submit(&to_wire(batch)).expect("ref submit");
        ref_client.commit(CommitTarget::Point).expect("ref commit");
    }

    let live = resilient.raw().expect("live connection");
    let mut got = QueryAnswer::default();
    let mut want = QueryAnswer::default();
    let mut mismatches = 0usize;
    let mut compared = 0usize;
    for req in &point_pool(cfg.seed + 7) {
        live.point_query_into(req, &mut got)
            .expect("recovered query");
        ref_client
            .point_query_into(req, &mut want)
            .expect("reference query");
        compared += 1;
        if !same_answer(&got, &want) {
            mismatches += 1;
            eprintln!(
                "MISMATCH on point request #{compared}: recovered {} matches, reference {}",
                got.results.len(),
                want.results.len()
            );
        }
    }
    for req in &uncertain_pool(cfg.seed + 13) {
        live.uncertain_query_into(req, &mut got)
            .expect("recovered query");
        ref_client
            .uncertain_query_into(req, &mut want)
            .expect("reference query");
        compared += 1;
        if !same_answer(&got, &want) {
            mismatches += 1;
            eprintln!("MISMATCH on uncertain request #{compared}");
        }
    }
    ref_handle.shutdown();
    if mismatches > 0 {
        eprintln!("{mismatches}/{compared} queries diverged after recovery");
        std::process::exit(1);
    }
    eprintln!("{compared} queries compared bit-identically");

    // --- Phase 5: epochs continue, then graceful SIGTERM -------------
    let next = &batches[recovered as usize];
    live.submit(&to_wire(next)).expect("post-recovery submit");
    let report = live
        .commit(CommitTarget::Point)
        .expect("post-recovery commit");
    assert_eq!(
        report.epoch,
        recovered + 1,
        "epochs must continue where recovery left off"
    );

    let term = Command::new("kill")
        .arg("-TERM")
        .arg(child2.id().to_string())
        .status()
        .expect("send SIGTERM");
    assert!(term.success(), "kill -TERM failed");
    let status = wait_exit(&mut child2);
    assert!(
        status.success(),
        "SIGTERM must produce a clean exit 0, got {status}"
    );
    eprintln!("graceful shutdown confirmed (exit 0)");

    if cfg.ephemeral_dir {
        let _ = std::fs::remove_dir_all(&cfg.data_dir);
    }
    println!(
        "crash-recovery-smoke ok: acked={acked} attempted={attempted} \
         recovered={recovered} compared={compared}"
    );
}
