//! # iloc-geometry
//!
//! Two-dimensional computational-geometry substrate for the `iloc`
//! reproduction of *Chen & Cheng, "Efficient Evaluation of Imprecise
//! Location-Dependent Queries" (ICDE 2007)*.
//!
//! The paper works exclusively with axis-parallel rectangles: uncertainty
//! regions `Ui`, range queries `R(x, y)`, Minkowski sums `R ⊕ U0`, and
//! `p`-expanded queries are all axis-parallel boxes. This crate provides
//! those primitives plus the one non-obvious piece of machinery the
//! "enhanced" evaluation method needs: **piecewise-linear overlap
//! profiles** and their exact integrals (see [`piecewise`] and
//! [`profile`]), which turn the doubly-nested integral of the paper's
//! Equation 8 into a closed form when both pdfs are uniform.
//!
//! All coordinates are `f64`. The crate is `#![forbid(unsafe_code)]` and
//! has no dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circle;
pub mod interval;
pub mod minkowski;
pub mod num;
pub mod piecewise;
pub mod point;
pub mod profile;
pub mod rect;

pub use circle::Circle;
pub use interval::Interval;
pub use minkowski::minkowski_sum;
pub use piecewise::PiecewiseLinear;
pub use point::Point;
pub use profile::{overlap_profile, OverlapProfile};
pub use rect::Rect;
