//! Loopback integration suite for the continuous-serving
//! (subscription) layer.
//!
//! The contract: a subscriber that applies its SUB_ACK answer, then
//! every NOTIFY delta **in wire order** (pushed and tick-response
//! alike), always holds exactly the answer a fresh in-process
//! evaluation of its standing query gives — bit-identically — while
//! commits stream in from other connections. Plus: adversarial
//! subscribe/tick frames are typed error frames that never disturb the
//! connection, and idle connections are reaped on the keepalive
//! deadline while pinging ones survive.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use iloc::core::pipeline::PointRequest;
use iloc::core::serve::Update;
use iloc::core::{Issuer, Match, RangeSpec};
use iloc::geometry::{Point, Rect};
use iloc::server::protocol::{self, opcode, ErrorCode, NotifyCause, WireUpdate};
use iloc::server::server::{QueryServer, ServerConfig};
use iloc::server::{Client, ClientError, CommitTarget};
use iloc::uncertainty::{ObjectId, PointObject, UncertainObject, UniformPdf};

/// The same deterministic scene the query-path suite uses: a 20×20
/// point grid and a 6×6 grid of uncertain boxes over [0, 1000]².
fn scene() -> (Vec<PointObject>, Vec<UncertainObject>) {
    let points = (0..400u64)
        .map(|k| {
            PointObject::new(
                k,
                Point::new((k % 20) as f64 * 50.0 + 10.0, (k / 20) as f64 * 50.0 + 10.0),
            )
        })
        .collect();
    let uncertain = (0..36u64)
        .map(|k| {
            let c = Point::new((k % 6) as f64 * 160.0 + 80.0, (k / 6) as f64 * 160.0 + 80.0);
            UncertainObject::new(k, UniformPdf::new(Rect::centered(c, 30.0, 30.0)))
        })
        .collect();
    (points, uncertain)
}

fn start_server(config: &ServerConfig) -> (QueryServer, iloc::server::ServerHandle) {
    let (points, uncertain) = scene();
    let server = QueryServer::new(points, uncertain, 3);
    let handle = server.start(config).expect("bind loopback");
    (server, handle)
}

fn request_at(x: f64, y: f64) -> PointRequest {
    PointRequest::ipq(
        Issuer::uniform(Rect::centered(Point::new(x, y), 50.0, 50.0)),
        RangeSpec::square(80.0),
    )
}

fn assert_bits_equal(state: &[Match], fresh: &[Match], what: &str) {
    assert_eq!(state.len(), fresh.len(), "{what}: result-set size");
    for (a, b) in state.iter().zip(fresh) {
        assert_eq!(a.id, b.id, "{what}");
        assert_eq!(a.probability.to_bits(), b.probability.to_bits(), "{what}");
    }
}

#[test]
fn subscription_lifecycle_tracks_fresh_evaluation_over_the_wire() {
    let (server, handle) = start_server(&ServerConfig {
        event_loops: 3,
        ..ServerConfig::loopback()
    });
    let engines = server.engines();
    let mut subscriber = Client::connect(handle.addr()).expect("connect subscriber");
    let mut writer = Client::connect(handle.addr()).expect("connect writer");

    // SUB_ACK carries the initial answer, bit-identical to in-process
    // evaluation of the same standing query.
    let mut request = request_at(260.0, 260.0);
    let (ack, mut answer) = subscriber
        .subscribe_point(&request, 120.0)
        .expect("subscribe");
    let sub_id = ack.sub_id;
    // A fresh in-memory server recovered nothing.
    assert_eq!(ack.recovered_epoch, 0);
    assert_bits_equal(
        &answer.results,
        &engines.point.snapshot().execute_one(&request).results,
        "initial answer",
    );
    assert!(!answer.results.is_empty());

    let mut note = Default::default();
    for round in 0..6u64 {
        // Commits from ANOTHER connection change the catalog under the
        // standing query...
        let mut updates = vec![
            WireUpdate::Point(Update::Move(PointObject::new(
                round * 3,
                Point::new(250.0 + round as f64, 250.0),
            ))),
            WireUpdate::Point(Update::Depart(ObjectId(100 + round))),
        ];
        if round.is_multiple_of(2) {
            updates.push(WireUpdate::Point(Update::Arrive(PointObject::new(
                5_000 + round,
                Point::new(270.0, 260.0 + round as f64),
            ))));
        }
        writer.submit(&updates).expect("submit");
        writer.commit(CommitTarget::Point).expect("commit");

        // ...and the pushed deltas arrive without the subscriber
        // sending anything. Apply every pushed frame in order.
        let mut pushed = 0;
        while let Some(push) = subscriber
            .poll_notification(Duration::from_secs(5))
            .expect("poll")
        {
            assert_eq!(push.cause, NotifyCause::Commit);
            assert_eq!(push.sub_id, sub_id);
            push.delta.apply(&mut answer.results);
            pushed += 1;
            // One commit produces at most one NOTIFY per subscription;
            // stop polling once caught up with this round's epoch.
            if push.epoch > round {
                break;
            }
        }
        assert!(pushed <= 1, "round {round}: {pushed} pushes for one commit");
        assert_bits_equal(
            &answer.results,
            &engines.point.snapshot().execute_one(&request).results,
            &format!("after commit {round}"),
        );

        // A tick composes on top: move the issuer, apply the response
        // delta (pushes that raced in front come first, in order).
        request = request_at(260.0 + round as f64 * 15.0, 260.0);
        subscriber
            .tick_into(CommitTarget::Point, sub_id, request.issuer.pdf(), &mut note)
            .expect("tick");
        while let Some(push) = subscriber.take_notification() {
            push.delta.apply(&mut answer.results);
        }
        note.delta.apply(&mut answer.results);
        assert_bits_equal(
            &answer.results,
            &engines.point.snapshot().execute_one(&request).results,
            &format!("after tick {round}"),
        );
    }

    // Unsubscribe: acknowledged once, idempotently false after, and no
    // further pushes arrive for new commits.
    assert!(subscriber
        .unsubscribe(CommitTarget::Point, sub_id)
        .expect("unsubscribe"));
    assert!(!subscriber
        .unsubscribe(CommitTarget::Point, sub_id)
        .expect("re-unsubscribe"));
    writer
        .submit(&[WireUpdate::Point(Update::Depart(ObjectId(42)))])
        .expect("submit");
    writer.commit(CommitTarget::Point).expect("commit");
    assert!(subscriber
        .poll_notification(Duration::from_millis(300))
        .expect("poll after unsubscribe")
        .is_none());
    // Ticking a dead subscription is a clean, typed error.
    match subscriber.tick_into(CommitTarget::Point, sub_id, request.issuer.pdf(), &mut note) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, Some(ErrorCode::Malformed)),
        other => panic!("expected server error, got {other:?}"),
    }
    subscriber.ping().expect("connection unharmed");

    handle.shutdown();
}

#[test]
fn unaffected_subscriptions_receive_no_pushes() {
    let (server, handle) = start_server(&ServerConfig {
        event_loops: 2,
        ..ServerConfig::loopback()
    });
    let _engines = server.engines();
    let mut subscriber = Client::connect(handle.addr()).expect("connect");
    let mut writer = Client::connect(handle.addr()).expect("connect writer");

    // Standing far from the churn: the commit's dirty rectangle never
    // stabs this envelope, so nothing is pushed — the subscription did
    // zero work server-side.
    let request = request_at(900.0, 900.0);
    let (_, answer) = subscriber
        .subscribe_point(&request, 60.0)
        .expect("subscribe");
    assert!(!answer.results.is_empty());

    for k in 0..5u64 {
        writer
            .submit(&[WireUpdate::Point(Update::Move(PointObject::new(
                k,
                Point::new(30.0 + k as f64, 30.0),
            )))])
            .expect("submit");
        writer.commit(CommitTarget::Point).expect("commit");
    }
    assert!(subscriber
        .poll_notification(Duration::from_millis(400))
        .expect("poll")
        .is_none());
    handle.shutdown();
}

#[test]
fn uncertain_subscriptions_work_over_the_wire() {
    let (server, handle) = start_server(&ServerConfig {
        event_loops: 2,
        ..ServerConfig::loopback()
    });
    let engines = server.engines();
    let mut subscriber = Client::connect(handle.addr()).expect("connect");
    let mut writer = Client::connect(handle.addr()).expect("connect writer");

    let request = iloc::core::pipeline::UncertainRequest::iuq(
        Issuer::uniform(Rect::centered(Point::new(240.0, 240.0), 60.0, 60.0)),
        RangeSpec::square(120.0),
    );
    let (ack, mut answer) = subscriber
        .subscribe_uncertain(&request, 100.0)
        .expect("subscribe");
    let sub_id = ack.sub_id;
    assert_bits_equal(
        &answer.results,
        &engines.uncertain.snapshot().execute_one(&request).results,
        "initial uncertain answer",
    );

    // Move an in-range object out to the expanded-query boundary,
    // where its qualification probability lands strictly between 0
    // and 1 — the answer must change, so a push must follow. (A move
    // that keeps the probability at 1.0 correctly pushes nothing.)
    writer
        .submit(&[WireUpdate::Uncertain(Update::Move(UncertainObject::new(
            7u64,
            UniformPdf::new(Rect::centered(Point::new(400.0, 400.0), 25.0, 25.0)),
        )))])
        .expect("submit");
    writer.commit(CommitTarget::Uncertain).expect("commit");

    let push = subscriber
        .poll_notification(Duration::from_secs(5))
        .expect("poll")
        .expect("a push must arrive");
    assert_eq!(push.target, CommitTarget::Uncertain);
    assert_eq!(push.sub_id, sub_id);
    push.delta.apply(&mut answer.results);
    assert_bits_equal(
        &answer.results,
        &engines.uncertain.snapshot().execute_one(&request).results,
        "after uncertain commit",
    );
    handle.shutdown();
}

/// Writes raw bytes and returns the first response frame, if any.
fn raw_exchange(addr: std::net::SocketAddr, bytes: &[u8]) -> Option<(u8, u8, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr).expect("connect raw");
    stream.set_nodelay(true).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    stream.write_all(bytes).expect("write raw");
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf).ok()?;
    let len = u32::from_le_bytes(len_buf) as usize;
    let mut frame = vec![0u8; len];
    stream.read_exact(&mut frame).ok()?;
    Some((frame[0], frame[1], frame[2..].to_vec()))
}

#[test]
fn adversarial_subscription_frames_yield_typed_errors() {
    let (_server, handle) = start_server(&ServerConfig {
        event_loops: 2,
        ..ServerConfig::loopback()
    });
    let addr = handle.addr();

    // A well-formed subscribe frame to mutate.
    let mut good = Vec::new();
    protocol::encode_subscribe_point(&mut good, 50.0, &request_at(500.0, 500.0)).unwrap();

    // Poisoned slack values: the frame-level payload keeps its shape,
    // only the slack f64 (payload bytes 1..9, frame bytes 7..15) is
    // adversarial. Typed Malformed errors, never a panic, and the
    // server keeps serving.
    for bad in [-5.0f64, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let mut frame = good.clone();
        frame[7..15].copy_from_slice(&bad.to_bits().to_le_bytes());
        let (_, op, payload) = raw_exchange(addr, &frame).expect("response");
        assert_eq!(op, opcode::ERROR, "slack {bad}");
        assert_eq!(payload[0], ErrorCode::Malformed as u8, "slack {bad}");
    }

    // Unknown catalog target byte.
    let mut frame = good.clone();
    frame[6] = 9;
    let (_, op, payload) = raw_exchange(addr, &frame).expect("response");
    assert_eq!(op, opcode::ERROR);
    assert_eq!(payload[0], ErrorCode::Malformed as u8);

    // Truncated subscribe payloads at every length fail cleanly.
    {
        let mut client = Client::connect(addr).expect("connect");
        for n in 0..good.len() - 6 {
            let mut truncated = ((n + 2) as u32).to_le_bytes().to_vec();
            truncated.extend_from_slice(&good[4..6 + n]);
            let (_, op, payload) = raw_exchange(addr, &truncated).expect("response");
            assert_eq!(op, opcode::ERROR, "prefix {n}");
            assert_eq!(payload[0], ErrorCode::Malformed as u8, "prefix {n}");
        }
        // Other connections were never disturbed.
        client.ping().expect("ping");
    }

    // A tick for a subscription that never existed.
    let mut tick = Vec::new();
    protocol::encode_tick(
        &mut tick,
        CommitTarget::Point,
        777,
        request_at(10.0, 10.0).issuer.pdf(),
    )
    .unwrap();
    let (_, op, payload) = raw_exchange(addr, &tick).expect("response");
    assert_eq!(op, opcode::ERROR);
    assert_eq!(payload[0], ErrorCode::Malformed as u8);

    // Client-side validation rejects bad slack before sending.
    let mut buf = Vec::new();
    assert!(protocol::encode_subscribe_point(&mut buf, f64::NAN, &request_at(0.0, 0.0)).is_err());
    assert!(buf.is_empty());

    handle.shutdown();
}

#[test]
fn idle_connections_are_reaped_and_pinging_ones_survive() {
    let (_server, handle) = start_server(&ServerConfig {
        event_loops: 1,
        idle_poll: Duration::from_millis(20),
        idle_timeout: Some(Duration::from_millis(150)),
        ..ServerConfig::loopback()
    });
    let addr = handle.addr();

    // A connection that keeps pinging within the deadline stays up
    // well past it.
    {
        let mut client = Client::connect(addr).expect("connect");
        for _ in 0..10 {
            std::thread::sleep(Duration::from_millis(60));
            client
                .ping()
                .expect("keepalive ping must keep the connection alive");
        }
    }

    // An abandoned connection is reaped: its slot is freed and a new
    // connection gets served. (The reaped socket itself errors or
    // EOFs on its next use.)
    {
        let mut idle = Client::connect(addr).expect("connect idle");
        idle.ping().expect("first ping");
        std::thread::sleep(Duration::from_millis(600));
        let mut fresh = Client::connect(addr).expect("connect fresh");
        fresh
            .ping()
            .expect("the connection slot must have been reclaimed from the idle connection");
        assert!(idle.ping().is_err(), "reaped connection must be closed");
    }

    // A connection stalled MID-FRAME (half a length prefix, then
    // silence) is just as abandoned and must not bypass the deadline.
    {
        let mut stalled = TcpStream::connect(addr).expect("connect stalled");
        stalled.write_all(&[7u8, 0]).expect("half a length prefix");
        std::thread::sleep(Duration::from_millis(600));
        let mut fresh = Client::connect(addr).expect("connect fresh");
        fresh
            .ping()
            .expect("the connection slot must have been reclaimed from the mid-frame stall");
    }

    handle.shutdown();
}

/// One churn round: 150 arrivals (even rounds) or departures (odd
/// rounds) of the same synthetic ids, all inside the [130, 390]²
/// qualifying region of the standing query at (260, 260) — every
/// commit changes that query's answer, so every commit owes the
/// subscriber exactly one NOTIFY.
fn churn_batch(round: u64) -> Vec<WireUpdate> {
    (0..150u64)
        .map(|j| {
            let id = 50_000 + j;
            if round.is_multiple_of(2) {
                WireUpdate::Point(Update::Arrive(PointObject::new(
                    id,
                    Point::new(140.0 + (j % 30) as f64 * 8.0, 160.0 + (j / 30) as f64 * 8.0),
                )))
            } else {
                WireUpdate::Point(Update::Depart(ObjectId(id)))
            }
        })
        .collect()
}

#[test]
fn stalled_subscriber_receives_every_push_intact_after_draining() {
    // A tiny server-side SO_SNDBUF forces NOTIFY pushes through the
    // partial-write path: while the subscriber stalls mid-stream, the
    // queued pushes sit in the per-connection write buffer and drain a
    // few KB per writability event once the subscriber resumes.
    // Nothing may be lost, duplicated, reordered, or torn on the way.
    let (server, handle) = start_server(&ServerConfig {
        event_loops: 2,
        send_buffer: Some(4_096),
        ..ServerConfig::loopback()
    });
    let engines = server.engines();
    let mut subscriber = Client::connect(handle.addr()).expect("connect subscriber");
    let mut writer = Client::connect(handle.addr()).expect("connect writer");

    let request = request_at(260.0, 260.0);
    let (ack, mut answer) = subscriber
        .subscribe_point(&request, 120.0)
        .expect("subscribe");
    let sub_id = ack.sub_id;

    // 24 answer-changing commits while the subscriber reads NOTHING.
    const ROUNDS: u64 = 24;
    for round in 0..ROUNDS {
        writer.submit(&churn_batch(round)).expect("submit");
        writer.commit(CommitTarget::Point).expect("commit");
    }

    // Drain: exactly ROUNDS pushes with consecutive epochs — one per
    // commit, none lost, none duplicated, in commit order.
    let mut seen = 0u64;
    while seen < ROUNDS {
        let push = subscriber
            .poll_notification(Duration::from_secs(10))
            .expect("poll")
            .expect("a push per commit is still due");
        assert_eq!(push.sub_id, sub_id);
        assert_eq!(push.cause, NotifyCause::Commit);
        seen += 1;
        assert_eq!(
            push.epoch, seen,
            "pushes must arrive exactly once, in commit order"
        );
        push.delta.apply(&mut answer.results);
    }
    assert!(subscriber
        .poll_notification(Duration::from_millis(300))
        .expect("poll")
        .is_none());
    assert_bits_equal(
        &answer.results,
        &engines.point.snapshot().execute_one(&request).results,
        "after draining every stalled push",
    );
    handle.shutdown();
}

#[test]
fn overflowing_slow_subscriber_is_closed_and_drops_are_counted() {
    // The push-backpressure contract: a live connection never silently
    // loses a push. When a subscriber stops reading and its queued
    // pushes outgrow `push_backlog`, the server must CLOSE it — a loss
    // the subscriber can observe — and account every undelivered frame
    // in the stats counter, while other connections stay unharmed.
    let (_server, handle) = start_server(&ServerConfig {
        event_loops: 1,
        send_buffer: Some(4_096),
        push_backlog: 8_192,
        ..ServerConfig::loopback()
    });
    let addr = handle.addr();
    let mut writer = Client::connect(addr).expect("connect writer");
    let mut control = Client::connect(addr).expect("connect control");

    // A raw subscriber with a deliberately tiny receive buffer that
    // never reads past the SUB_ACK.
    let mut stalled = TcpStream::connect(addr).expect("connect stalled");
    iloc::server::poll::set_recv_buffer(&stalled, 4_096).expect("SO_RCVBUF");
    let mut sub = Vec::new();
    protocol::encode_subscribe_point(&mut sub, 120.0, &request_at(260.0, 260.0)).unwrap();
    stalled.write_all(&sub).expect("subscribe");
    let mut len_buf = [0u8; 4];
    stalled.read_exact(&mut len_buf).expect("ack length");
    let mut ack = vec![0u8; u32::from_le_bytes(len_buf) as usize];
    stalled.read_exact(&mut ack).expect("ack frame");
    assert_eq!(ack[1], opcode::SUB_ACK);

    // Churn until the backlog overflows and the server reaps the
    // stalled subscriber. The kernel absorbs a bounded amount (small
    // SO_SNDBUF + small SO_RCVBUF); after that the per-connection
    // queue grows past `push_backlog` and the typed close fires.
    let mut dropped = 0u64;
    for round in 0..400u64 {
        writer.submit(&churn_batch(round)).expect("submit");
        writer.commit(CommitTarget::Point).expect("commit");
        dropped = control.stats().expect("stats").dropped_pushes;
        if dropped > 0 {
            break;
        }
    }
    assert!(
        dropped > 0,
        "a subscriber that never reads must eventually be closed with its drops counted"
    );

    // Whatever did reach the socket is a clean prefix of the push
    // stream: complete NOTIFY frames with strictly increasing epochs.
    // The final frame may be cut where the server closed — a visible
    // break, never a silent gap or interleaved corruption.
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut bytes = Vec::new();
    let mut chunk = [0u8; 4_096];
    loop {
        match stalled.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => bytes.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => break,
            Err(e) => panic!("reading the closed subscriber: {e}"),
        }
    }
    let mut note = iloc::server::Notification::default();
    let mut at = 0usize;
    let mut prev_epoch = 0u64;
    while bytes.len() - at >= 4 {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        if bytes.len() - at - 4 < len {
            break; // cut mid-frame by the close
        }
        let frame = &bytes[at + 4..at + 4 + len];
        assert_eq!(frame[0], protocol::PROTOCOL_VERSION);
        assert_eq!(frame[1], opcode::NOTIFY, "only pushes on this stream");
        protocol::decode_notify_into(&frame[2..], &mut note).expect("complete pushes decode");
        assert!(note.epoch > prev_epoch, "no duplicated or reordered push");
        prev_epoch = note.epoch;
        at += 4 + len;
    }

    // The server is unharmed: other connections keep serving.
    control
        .ping()
        .expect("server healthy after reaping the slow reader");
    writer.ping().expect("writer connection unharmed");
    handle.shutdown();
}
