//! Criterion microbenchmark for Figure 9: IPQ response time across
//! issuer sizes `u` and range sizes `w`.

use criterion::{criterion_group, criterion_main, Criterion};
use iloc_bench::{Scale, TestBed};
use iloc_core::{Issuer, RangeSpec};
use iloc_datagen::WorkloadGen;

fn bench(c: &mut Criterion) {
    let bed = TestBed::build(Scale::quick());
    let mut group = c.benchmark_group("fig09");
    for w in [500.0, 1000.0, 1500.0] {
        for u in [250.0, 1000.0] {
            let issuer = Issuer::uniform(WorkloadGen::new(9).issuer_region(u));
            group.bench_function(format!("ipq/w{w}/u{u}"), |b| {
                b.iter(|| bed.california.ipq(&issuer, RangeSpec::square(w)))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
