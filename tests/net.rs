//! Loopback integration suite for the network serving layer.
//!
//! The contract under test: an answer obtained **over the wire** is
//! bit-identical ([`QueryAnswer::same_matches`]) to the answer the
//! in-process engine gives for the same request against the same
//! epoch — under concurrency, under an interleaved update/commit
//! stream, and regardless of pipelining. Plus: malformed and truncated
//! frames are rejected with error frames (never a crash) and do not
//! disturb other connections.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use iloc::core::pipeline::{PointRequest, UncertainRequest};
use iloc::core::serve::Update;
use iloc::core::{CipqStrategy, CiuqStrategy, Issuer, RangeSpec};
use iloc::geometry::{Point, Rect};
use iloc::server::protocol::{self, opcode, CommitTarget, ErrorCode, WireUpdate};
use iloc::server::server::{QueryServer, ServerConfig};
use iloc::server::{Client, ClientError};
use iloc::uncertainty::{ObjectId, PointObject, UncertainObject, UniformPdf};

/// A deterministic little scene: a 20×20 point grid and a 6×6 grid of
/// uncertain boxes, both covering [0, 1000]².
fn scene() -> (Vec<PointObject>, Vec<UncertainObject>) {
    let points = (0..400u64)
        .map(|k| {
            PointObject::new(
                k,
                Point::new((k % 20) as f64 * 50.0 + 10.0, (k / 20) as f64 * 50.0 + 10.0),
            )
        })
        .collect();
    let uncertain = (0..36u64)
        .map(|k| {
            let c = Point::new((k % 6) as f64 * 160.0 + 80.0, (k / 6) as f64 * 160.0 + 80.0);
            UncertainObject::new(k, UniformPdf::new(Rect::centered(c, 30.0, 30.0)))
        })
        .collect();
    (points, uncertain)
}

fn start_server(shards: usize, event_loops: usize) -> (QueryServer, iloc::server::ServerHandle) {
    let (points, uncertain) = scene();
    let server = QueryServer::new(points, uncertain, shards);
    let handle = server
        .start(&ServerConfig {
            event_loops,
            ..ServerConfig::loopback()
        })
        .expect("bind loopback");
    (server, handle)
}

fn point_requests(n: usize, salt: u64) -> Vec<PointRequest> {
    (0..n as u64)
        .map(|k| {
            let s = k.wrapping_mul(2654435761).wrapping_add(salt * 97);
            let c = Point::new((s % 900) as f64 + 50.0, (s / 7 % 900) as f64 + 50.0);
            let issuer = Issuer::uniform(Rect::centered(c, 60.0, 60.0));
            if k % 3 == 0 {
                PointRequest::cipq(
                    issuer,
                    RangeSpec::square(90.0),
                    0.2,
                    CipqStrategy::PExpanded,
                )
            } else {
                PointRequest::ipq(issuer, RangeSpec::square(90.0))
            }
        })
        .collect()
}

fn uncertain_requests(n: usize, salt: u64) -> Vec<UncertainRequest> {
    (0..n as u64)
        .map(|k| {
            let s = k.wrapping_mul(40503).wrapping_add(salt * 131);
            let c = Point::new((s % 800) as f64 + 100.0, (s / 11 % 800) as f64 + 100.0);
            let issuer = Issuer::uniform(Rect::centered(c, 80.0, 80.0));
            if k % 2 == 0 {
                UncertainRequest::iuq(issuer, RangeSpec::square(150.0))
            } else {
                UncertainRequest::ciuq(
                    issuer,
                    RangeSpec::square(150.0),
                    0.25,
                    CiuqStrategy::PtiPExpanded,
                )
            }
        })
        .collect()
}

#[test]
fn concurrent_clients_match_in_process_execution() {
    let (server, handle) = start_server(4, 6);
    let engines = server.engines();
    let addr = handle.addr();

    let clients: Vec<_> = (0..4u64)
        .map(|c| {
            let engines = Arc::clone(&engines);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let point_snapshot = engines.point.snapshot();
                let uncertain_snapshot = engines.uncertain.snapshot();
                for (k, request) in point_requests(24, c).iter().enumerate() {
                    let got = client.point_query(request).expect("point query");
                    let want = point_snapshot.execute_one(request);
                    assert!(got.same_matches(&want), "client {c} point request {k}");
                }
                for (k, request) in uncertain_requests(12, c).iter().enumerate() {
                    let got = client.uncertain_query(request).expect("uncertain query");
                    let want = uncertain_snapshot.execute_one(request);
                    assert!(got.same_matches(&want), "client {c} uncertain request {k}");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    handle.shutdown();
}

#[test]
fn many_multiplexed_connections_match_in_process_execution() {
    // Far more connections than event loops: a single loop serves
    // dozens of interleaved frame streams, and every answer must still
    // be bit-identical to in-process execution. With the old
    // thread-per-connection server this shape would have parked 24
    // threads; here 2 loops multiplex all of them.
    let (server, handle) = start_server(2, 2);
    let engines = server.engines();
    let addr = handle.addr();

    let clients: Vec<_> = (0..24u64)
        .map(|c| {
            let engines = Arc::clone(&engines);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let snapshot = engines.point.snapshot();
                for (k, request) in point_requests(8, c).iter().enumerate() {
                    let got = client.point_query(request).expect("point query");
                    let want = snapshot.execute_one(request);
                    assert!(got.same_matches(&want), "client {c} request {k}");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    handle.shutdown();
}

#[test]
fn pipelined_batch_matches_sequential_calls() {
    let (server, handle) = start_server(2, 2);
    let engines = server.engines();
    let mut client = Client::connect(handle.addr()).expect("connect");

    let requests = point_requests(100, 9);
    let mut batched = Vec::new();
    client
        .point_query_batch_into(&requests, &mut batched, 16)
        .expect("batch");
    assert_eq!(batched.len(), requests.len());
    let snapshot = engines.point.snapshot();
    for (k, (request, got)) in requests.iter().zip(&batched).enumerate() {
        assert!(
            got.same_matches(&snapshot.execute_one(request)),
            "request {k}"
        );
        assert!(
            got.same_matches(&client.point_query(request).unwrap()),
            "request {k} vs one-shot"
        );
    }
    handle.shutdown();
}

#[test]
fn interleaved_updates_and_commits_stay_bit_identical() {
    let (server, handle) = start_server(3, 4);
    let engines = server.engines();
    let mut writer = Client::connect(handle.addr()).expect("connect writer");
    let mut reader = Client::connect(handle.addr()).expect("connect reader");

    let requests = point_requests(12, 3);
    let mut next_id = 10_000u64;
    for round in 0..8u64 {
        // A batch of arrivals, moves and departures...
        let mut updates = Vec::new();
        for j in 0..20u64 {
            let k = round * 20 + j;
            match k % 4 {
                0 => {
                    updates.push(WireUpdate::Point(Update::Arrive(PointObject::new(
                        next_id,
                        Point::new((k * 37 % 1000) as f64, (k * 53 % 1000) as f64),
                    ))));
                    next_id += 1;
                }
                1 => updates.push(WireUpdate::Point(Update::Move(PointObject::new(
                    k % 400,
                    Point::new((k * 71 % 1000) as f64, (k * 29 % 1000) as f64),
                )))),
                2 => updates.push(WireUpdate::Point(Update::Depart(ObjectId(k * 13 % 500)))),
                _ => updates.push(WireUpdate::Uncertain(Update::Move(UncertainObject::new(
                    k % 36,
                    UniformPdf::new(Rect::centered(
                        Point::new((k * 91 % 900) as f64 + 50.0, (k * 17 % 900) as f64 + 50.0),
                        25.0,
                        25.0,
                    )),
                )))),
            }
        }
        let accepted = writer.submit(&updates).expect("submit");
        assert_eq!(accepted as usize, updates.len());

        // ...committed as one epoch per catalog.
        let report = writer.commit(CommitTarget::Point).expect("commit point");
        assert_eq!(report.epoch, round + 1);
        writer
            .commit(CommitTarget::Uncertain)
            .expect("commit uncertain");

        // Queries through a *different* connection (hence a different
        // worker, which must rebind to the new epoch) match in-process
        // execution on the same engines.
        let point_snapshot = engines.point.snapshot();
        assert_eq!(point_snapshot.epoch(), round + 1);
        for (k, request) in requests.iter().enumerate() {
            let got = reader.point_query(request).expect("read-after-commit");
            assert!(
                got.same_matches(&point_snapshot.execute_one(request)),
                "round {round} request {k}"
            );
        }
        let uncertain_snapshot = engines.uncertain.snapshot();
        for (k, request) in uncertain_requests(6, round).iter().enumerate() {
            let got = reader.uncertain_query(request).expect("uncertain");
            assert!(
                got.same_matches(&uncertain_snapshot.execute_one(request)),
                "round {round} uncertain {k}"
            );
        }
    }
    handle.shutdown();
}

#[test]
fn stats_frame_reports_epochs_sizes_and_shards() {
    let (server, handle) = start_server(5, 2);
    let engines = server.engines();
    let mut client = Client::connect(handle.addr()).expect("connect");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.point.epoch, 0);
    assert_eq!(stats.point.len, 400);
    assert_eq!(stats.point.shard_sizes.len(), 5);
    assert_eq!(stats.point.shard_sizes.iter().sum::<u64>(), 400);
    assert_eq!(stats.uncertain.len, 36);
    assert_eq!(stats.uncertain.shard_sizes.len(), 5);
    assert_eq!(stats.point.pending, 0);
    // Tests don't register the counting allocator.
    assert!(!stats.alloc_counting);
    assert!(stats.requests_served >= 1);

    // Pending counts surface before a commit, epochs after.
    client
        .submit(&[WireUpdate::Point(Update::Depart(ObjectId(0)))])
        .expect("submit");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.point.pending, 1);
    client.commit(CommitTarget::Point).expect("commit");
    let stats = client.stats().expect("stats");
    assert_eq!((stats.point.pending, stats.point.epoch), (0, 1));
    assert_eq!(stats.point.len, 399);
    assert_eq!(engines.point.len(), 399);

    handle.shutdown();
}

/// Writes raw bytes and returns the first response frame, if any.
fn raw_exchange(addr: std::net::SocketAddr, bytes: &[u8]) -> Option<(u8, u8, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr).expect("connect raw");
    stream.set_nodelay(true).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    stream.write_all(bytes).expect("write raw");
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf).ok()?;
    let len = u32::from_le_bytes(len_buf) as usize;
    let mut frame = vec![0u8; len];
    stream.read_exact(&mut frame).ok()?;
    Some((frame[0], frame[1], frame[2..].to_vec()))
}

#[test]
fn malformed_and_truncated_frames_are_rejected() {
    let (_server, handle) = start_server(2, 3);
    let addr = handle.addr();

    // Wrong version: error frame, code BadVersion.
    let mut frame = 2u32.to_le_bytes().to_vec();
    frame.extend_from_slice(&[99, opcode::PING]);
    let (_, op, payload) = raw_exchange(addr, &frame).expect("response");
    assert_eq!(op, opcode::ERROR);
    assert_eq!(payload[0], ErrorCode::BadVersion as u8);

    // Unknown opcode: error frame, connection stays usable.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut bad = 2u32.to_le_bytes().to_vec();
        bad.extend_from_slice(&[protocol::PROTOCOL_VERSION, 0x55]);
        stream.write_all(&bad).unwrap();
        let mut len_buf = [0u8; 4];
        stream.read_exact(&mut len_buf).unwrap();
        let mut frame = vec![0u8; u32::from_le_bytes(len_buf) as usize];
        stream.read_exact(&mut frame).unwrap();
        assert_eq!(frame[1], opcode::ERROR);
        assert_eq!(frame[2], ErrorCode::BadOpcode as u8);
        // Same connection still answers a well-formed ping.
        let mut ping = Vec::new();
        protocol::encode_empty(&mut ping, opcode::PING);
        stream.write_all(&ping).unwrap();
        stream.read_exact(&mut len_buf).unwrap();
        let mut frame = vec![0u8; u32::from_le_bytes(len_buf) as usize];
        stream.read_exact(&mut frame).unwrap();
        assert_eq!(frame[1], opcode::PONG);
    }

    // Truncated payload inside a well-formed frame: Malformed, and the
    // connection keeps serving.
    {
        let mut client = Client::connect(addr).unwrap();
        let mut good = Vec::new();
        protocol::encode_point_query(
            &mut good,
            &PointRequest::ipq(
                Issuer::uniform(Rect::from_coords(0.0, 0.0, 100.0, 100.0)),
                RangeSpec::square(50.0),
            ),
        )
        .unwrap();
        // Chop the payload but keep the frame self-consistent.
        let chopped_payload_len = (good.len() - 6) / 2;
        let mut truncated = ((chopped_payload_len + 2) as u32).to_le_bytes().to_vec();
        truncated.extend_from_slice(&good[4..6 + chopped_payload_len]);
        let (_, op, payload) = raw_exchange(addr, &truncated).expect("response");
        assert_eq!(op, opcode::ERROR);
        assert_eq!(payload[0], ErrorCode::Malformed as u8);
        // Other connections were never disturbed.
        client.ping().expect("ping");
    }

    // A wild length prefix: TooLarge, then the server closes.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(&u32::MAX.to_le_bytes())
            .expect("write length");
        let mut len_buf = [0u8; 4];
        stream.read_exact(&mut len_buf).unwrap();
        let mut frame = vec![0u8; u32::from_le_bytes(len_buf) as usize];
        stream.read_exact(&mut frame).unwrap();
        assert_eq!(frame[1], opcode::ERROR);
        assert_eq!(frame[2], ErrorCode::TooLarge as u8);
        match stream.read(&mut len_buf) {
            Ok(0) | Err(_) => {} // closed (FIN or RST) — both fine
            Ok(n) => panic!("server kept talking ({n} bytes) after an undelimitable frame"),
        }
    }

    // Half a frame then disconnect: the server must shrug it off and
    // keep serving new connections.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&100u32.to_le_bytes()).unwrap();
        stream.write_all(&[1, 2, 3]).unwrap();
        drop(stream);
        let mut client = Client::connect(addr).unwrap();
        client.ping().expect("server survived a hangup mid-frame");
    }

    // Unencodable request: rejected client-side, nothing sent.
    {
        let mut client = Client::connect(addr).unwrap();
        let request = PointRequest::ipq(
            Issuer::with_pdf(iloc::uncertainty::PdfKind::shared(UniformPdf::new(
                Rect::from_coords(0.0, 0.0, 1.0, 1.0),
            ))),
            RangeSpec::square(1.0),
        );
        match client.point_query(&request) {
            Err(ClientError::Wire(protocol::WireError::UnsupportedPdf)) => {}
            other => panic!("expected UnsupportedPdf, got {other:?}"),
        }
        client.ping().expect("connection unharmed");
    }

    handle.shutdown();
}

#[test]
fn snapshot_pinning_never_shows_torn_epochs_over_the_wire() {
    // One query's result set is flipped between "all present" and "all
    // departed" by commits while reader clients hammer the server; a
    // partial result set would mean a worker read a torn epoch.
    let (server, handle) = start_server(4, 5);
    let engines = server.engines();
    let addr = handle.addr();
    let request = PointRequest::ipq(
        Issuer::uniform(Rect::centered(Point::new(260.0, 260.0), 60.0, 60.0)),
        RangeSpec::square(90.0),
    );
    let full = engines.point.snapshot().execute_one(&request);
    assert!(full.results.len() >= 4);

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let request = request.clone();
            let want = full.results.len();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect reader");
                let mut answer = Default::default();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    client
                        .point_query_into(&request, &mut answer)
                        .expect("query");
                    let n = answer.results.len();
                    assert!(
                        n == want || n == 0,
                        "torn epoch over the wire: {n} of {want}"
                    );
                }
            })
        })
        .collect();

    let mut writer = Client::connect(addr).expect("connect writer");
    for _ in 0..10 {
        let departs: Vec<WireUpdate> = full
            .results
            .iter()
            .map(|m| WireUpdate::Point(Update::Depart(m.id)))
            .collect();
        writer.submit(&departs).unwrap();
        writer.commit(CommitTarget::Point).unwrap();
        let arrivals: Vec<WireUpdate> = full
            .results
            .iter()
            .map(|m| {
                let k = m.id.0;
                WireUpdate::Point(Update::Arrive(PointObject::new(
                    m.id,
                    Point::new((k % 20) as f64 * 50.0 + 10.0, (k / 20) as f64 * 50.0 + 10.0),
                )))
            })
            .collect();
        writer.submit(&arrivals).unwrap();
        writer.commit(CommitTarget::Point).unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for r in readers {
        r.join().expect("reader");
    }
    assert_eq!(engines.point.epoch(), 20);
    handle.shutdown();
}
