//! Overlap profiles: the 1-D building block of the exact (closed-form)
//! IUQ evaluator.
//!
//! For a query half-extent `w` and a fixed interval `[a, b]` (one side
//! of the issuer region `U0`), the *overlap profile* is
//!
//! ```text
//! ox(x) = |[x − w, x + w] ∩ [a, b]|
//! ```
//!
//! the length of the overlap between the query's side and `U0`'s side
//! when the query is centred at `x`. It is a trapezoid: zero outside
//! `[a − w, b + w]`, rising with slope 1, a plateau of height
//! `min(2w, b − a)`, then falling with slope −1.
//!
//! Because `Area(R(x,y) ∩ U0) = ox(x) · oy(y)`, the paper's Eq. 8
//! integrand separates for uniform pdfs and the qualification
//! probability becomes a product of two exact 1-D integrals — the
//! "enhanced method" measured in Figure 8.

use crate::interval::Interval;
use crate::piecewise::PiecewiseLinear;

/// An overlap profile held entirely on the stack: a trapezoid needs at
/// most four knots, so the query hot path can build and integrate one
/// per candidate without touching the heap (the heap-backed
/// [`PiecewiseLinear`] view is available via [`overlap_profile`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapProfile {
    knots: [(f64, f64); 4],
    len: usize,
}

impl OverlapProfile {
    /// Builds the profile `x ↦ |[x−w, x+w] ∩ side|`.
    ///
    /// `w` must be non-negative and `side` non-empty. Degenerate inputs
    /// (`w == 0` or a zero-length side) yield the zero function, which
    /// makes downstream probabilities vanish exactly as measure theory
    /// dictates.
    #[inline]
    pub fn new(w: f64, side: Interval) -> Self {
        // Hard asserts, matching `overlap_profile`: both branches are
        // perfectly predicted in the hot loop, and an inverted side or
        // negative half-extent must surface as a caller bug rather
        // than a silently-clamped probability.
        assert!(w >= 0.0, "query half-extent must be non-negative");
        assert!(!side.is_empty(), "issuer side interval must be non-empty");
        let (a, b) = (side.lo, side.hi);
        let plateau = (2.0 * w).min(b - a);
        let x_lo = a - w;
        let x_hi = b + w;
        let mut p = OverlapProfile {
            knots: [(0.0, 0.0); 4],
            len: 0,
        };
        if x_hi <= x_lo {
            // Only possible when w == 0 and a == b: a single point of
            // zero measure — the zero function.
            return p;
        }
        let mid_lo = (a + w).min(b - w);
        let mid_hi = (a + w).max(b - w);
        p.push(x_lo, 0.0);
        if mid_lo > x_lo {
            p.push(mid_lo, plateau);
        }
        if mid_hi > p.knots[p.len - 1].0 {
            p.push(mid_hi, plateau);
        }
        if x_hi > p.knots[p.len - 1].0 {
            p.push(x_hi, 0.0);
        }
        if p.len < 2 {
            p.len = 0;
        }
        p
    }

    #[inline]
    fn push(&mut self, x: f64, y: f64) {
        self.knots[self.len] = (x, y);
        self.len += 1;
    }

    /// The knots defining the trapezoid (empty for the zero function).
    #[inline]
    pub fn knots(&self) -> &[(f64, f64)] {
        &self.knots[..self.len]
    }

    /// Exact integral `∫_I f(x) dx` over an arbitrary interval `I`
    /// (portions outside the support contribute zero). Identical
    /// segment arithmetic to [`PiecewiseLinear::integral_over`], so the
    /// two representations agree bit for bit.
    #[inline]
    pub fn integral_over(&self, i: Interval) -> f64 {
        if self.len < 2 {
            return 0.0;
        }
        let support = Interval::new(self.knots[0].0, self.knots[self.len - 1].0);
        let i = i.intersect(support);
        if i.is_empty() || i.length() == 0.0 {
            return 0.0;
        }
        let mut total = 0.0;
        for pair in self.knots[..self.len].windows(2) {
            let (x0, y0) = pair[0];
            let (x1, y1) = pair[1];
            let seg = Interval::new(x0, x1).intersect(i);
            if seg.is_empty() || seg.length() == 0.0 {
                continue;
            }
            let slope = (y1 - y0) / (x1 - x0);
            let f_lo = y0 + slope * (seg.lo - x0);
            let f_hi = y0 + slope * (seg.hi - x0);
            total += 0.5 * (f_lo + f_hi) * seg.length();
        }
        total
    }
}

/// Builds the overlap profile `x ↦ |[x−w, x+w] ∩ side|` as a
/// heap-backed piecewise-linear function (see [`OverlapProfile`] for
/// the allocation-free representation the hot path uses).
///
/// `w` must be non-negative and `side` non-empty. Degenerate inputs
/// (`w == 0` or a zero-length side) yield the zero function on the
/// correct support, which makes downstream probabilities vanish exactly
/// as measure theory dictates.
pub fn overlap_profile(w: f64, side: Interval) -> PiecewiseLinear {
    assert!(w >= 0.0, "query half-extent must be non-negative");
    assert!(!side.is_empty(), "issuer side interval must be non-empty");
    let p = OverlapProfile::new(w, side);
    if p.knots().len() < 2 {
        return PiecewiseLinear::zero();
    }
    PiecewiseLinear::new(p.knots().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(w: f64, side: Interval, x: f64) -> f64 {
        Interval::centered(x, w).overlap_length(side)
    }

    #[test]
    fn profile_matches_direct_overlap_everywhere() {
        let cases = [
            (2.0, Interval::new(0.0, 10.0)), // wide side, plateau = 2w
            (10.0, Interval::new(0.0, 4.0)), // narrow side, plateau = |side|
            (3.0, Interval::new(-5.0, 1.0)), // negative coordinates
            (2.0, Interval::new(0.0, 4.0)),  // exactly 2w == |side|
        ];
        for (w, side) in cases {
            let f = overlap_profile(w, side);
            let sup = f.support();
            let n = 1000;
            for k in 0..=n {
                let x = sup.lo - 1.0 + (sup.length() + 2.0) * k as f64 / n as f64;
                let expect = brute(w, side, x);
                assert!(
                    (f.eval(x) - expect).abs() < 1e-9,
                    "w={w} side=[{},{}] x={x}: got {} want {expect}",
                    side.lo,
                    side.hi,
                    f.eval(x)
                );
            }
        }
    }

    #[test]
    fn plateau_height_is_min_of_widths() {
        let f = overlap_profile(2.0, Interval::new(0.0, 10.0));
        assert_eq!(f.max_value(), 4.0); // 2w
        let g = overlap_profile(10.0, Interval::new(0.0, 4.0));
        assert_eq!(g.max_value(), 4.0); // side length
    }

    #[test]
    fn support_is_side_expanded_by_w() {
        let f = overlap_profile(3.0, Interval::new(1.0, 5.0));
        assert_eq!(f.support(), Interval::new(-2.0, 8.0));
    }

    #[test]
    fn total_integral_is_2w_times_side_length() {
        // ∫ |[x−w,x+w] ∩ side| dx = 2w · |side| (Fubini on the indicator).
        let w = 2.5;
        let side = Interval::new(1.0, 7.0);
        let f = overlap_profile(w, side);
        assert!((f.integral() - 2.0 * w * side.length()).abs() < 1e-9);
    }

    #[test]
    fn degenerate_w_zero_gives_zero_function() {
        let f = overlap_profile(0.0, Interval::new(0.0, 5.0));
        assert_eq!(f.eval(2.0), 0.0);
        assert_eq!(f.integral(), 0.0);
    }

    #[test]
    fn degenerate_point_side() {
        // A point issuer region: overlap length is 0 almost everywhere …
        let f = overlap_profile(2.0, Interval::new(3.0, 3.0));
        assert_eq!(f.integral(), 0.0);
        // … and the profile is identically zero.
        assert_eq!(f.max_value(), 0.0);
    }
}
