//! The common interface all spatial indexes implement.

use iloc_geometry::Rect;

use crate::stats::AccessStats;

/// Reusable tree-traversal state (the DFS stack of node indices).
///
/// Hierarchical indexes (`RTree`, `Pti`) need a stack of pending nodes
/// per probe; allocating it anew for every query shows up directly in
/// the hot path. Callers that probe repeatedly keep one
/// `TraversalScratch` alive and pass it to
/// [`RangeIndex::query_range_scratch`] — after warm-up the probe then
/// performs no heap allocation. Flat indexes ignore it.
#[derive(Debug, Clone, Default)]
pub struct TraversalScratch {
    /// Pending node arena indices (empty between probes).
    pub(crate) stack: Vec<usize>,
}

impl TraversalScratch {
    /// A scratch with no retained capacity.
    pub fn new() -> Self {
        TraversalScratch::default()
    }
}

/// A spatial index over items with rectangular extents (a point object
/// is a degenerate rectangle).
///
/// The only operation the paper's query pipeline needs is the **range
/// filter**: report every stored item whose extent overlaps a query
/// rectangle (the Minkowski sum `R ⊕ U0` or a `p`-expanded query).
/// Probability refinement happens above the index.
pub trait RangeIndex<T: Copy> {
    /// Number of stored items.
    fn len(&self) -> usize;

    /// `true` when the index stores nothing.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes every item whose extent overlaps `query` into `out`,
    /// updating `stats` with the logical accesses performed.
    fn query_range_into(&self, query: Rect, stats: &mut AccessStats, out: &mut Vec<T>);

    /// Like [`RangeIndex::query_range_into`], but traversal state comes
    /// from (and returns to) `scratch`, so repeated probes through a
    /// warm scratch are allocation-free. The default forwards to
    /// `query_range_into`; hierarchical indexes override it.
    fn query_range_scratch(
        &self,
        query: Rect,
        stats: &mut AccessStats,
        scratch: &mut TraversalScratch,
        out: &mut Vec<T>,
    ) {
        let _ = scratch;
        self.query_range_into(query, stats, out);
    }

    /// Convenience wrapper returning a fresh vector.
    fn query_range(&self, query: Rect, stats: &mut AccessStats) -> Vec<T> {
        let mut out = Vec::new();
        self.query_range_into(query, stats, &mut out);
        out
    }
}
