//! Uniform uncertainty pdf — the paper's default model.
//!
//! `fi(x, y) = 1 / Area(Ui)` inside `Ui`, zero outside: the
//! "worst-case" model of Pfoser & Jensen where nothing is known about
//! which point of the region is more likely. Everything about it is
//! closed-form, which is what makes the paper's enhanced evaluation
//! methods (Eq. 6, Eq. 8) fast.

use iloc_geometry::{Point, Rect};
use rand::Rng;
use rand::RngCore;

use crate::pdf::{Axis, LocationPdf};

/// Uniform density over a non-degenerate axis-parallel rectangle.
#[derive(Debug, Clone, PartialEq)]
pub struct UniformPdf {
    region: Rect,
    inv_area: f64,
}

impl UniformPdf {
    /// Creates the uniform pdf over `region`.
    ///
    /// # Panics
    ///
    /// Panics when `region` is empty or has zero area: a uniform
    /// *density* does not exist on a degenerate region (model a point
    /// object with [`crate::object::PointObject`] instead).
    pub fn new(region: Rect) -> Self {
        assert!(
            region.area() > 0.0,
            "uniform pdf requires a region of positive area"
        );
        UniformPdf {
            region,
            inv_area: 1.0 / region.area(),
        }
    }

    /// The constant density value `1 / Area(U)`.
    #[inline]
    pub fn density_value(&self) -> f64 {
        self.inv_area
    }
}

impl LocationPdf for UniformPdf {
    fn region(&self) -> Rect {
        self.region
    }

    fn density(&self, p: Point) -> f64 {
        if self.region.contains_point(p) {
            self.inv_area
        } else {
            0.0
        }
    }

    fn prob_in_rect(&self, r: Rect) -> f64 {
        // Paper Eq. 6 numerator: uniform mass is an area ratio.
        self.region.intersection_area(r) * self.inv_area
    }

    fn marginal_cdf(&self, axis: Axis, v: f64) -> f64 {
        let side = match axis {
            Axis::X => self.region.x_interval(),
            Axis::Y => self.region.y_interval(),
        };
        ((v - side.lo) / side.length()).clamp(0.0, 1.0)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Point {
        let x = rng.gen_range(self.region.min.x..=self.region.max.x);
        let y = rng.gen_range(self.region.min.y..=self.region.max.y);
        Point::new(x, y)
    }

    fn quantile(&self, axis: Axis, p: f64) -> f64 {
        let side = match axis {
            Axis::X => self.region.x_interval(),
            Axis::Y => self.region.y_interval(),
        };
        side.lo + p.clamp(0.0, 1.0) * side.length()
    }

    fn uniform_region(&self) -> Option<Rect> {
        Some(self.region)
    }

    fn linear_marginal_integral(
        &self,
        axis: Axis,
        i: iloc_geometry::Interval,
        c0: f64,
        c1: f64,
    ) -> Option<f64> {
        // Marginal density is constant 1/len on the side interval:
        // ∫ (c0 + c1·x) dx / len over the clipped interval.
        let side = match axis {
            Axis::X => self.region.x_interval(),
            Axis::Y => self.region.y_interval(),
        };
        let c = side.intersect(i);
        if c.is_empty() {
            return Some(0.0);
        }
        let raw = c0 * c.length() + 0.5 * c1 * (c.hi * c.hi - c.lo * c.lo);
        Some(raw / side.length())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pdf() -> UniformPdf {
        UniformPdf::new(Rect::from_coords(0.0, 0.0, 10.0, 5.0))
    }

    #[test]
    #[should_panic(expected = "positive area")]
    fn rejects_degenerate_region() {
        let _ = UniformPdf::new(Rect::from_point(Point::new(1.0, 1.0)));
    }

    #[test]
    fn density_inside_and_outside() {
        let f = pdf();
        assert!((f.density(Point::new(5.0, 2.0)) - 0.02).abs() < 1e-12);
        assert_eq!(f.density(Point::new(11.0, 2.0)), 0.0);
    }

    #[test]
    fn total_mass_is_one() {
        let f = pdf();
        assert!((f.prob_in_rect(f.region()) - 1.0).abs() < 1e-12);
        assert!(
            (f.prob_in_rect(Rect::from_coords(-100.0, -100.0, 100.0, 100.0)) - 1.0).abs() < 1e-12
        );
    }

    #[test]
    fn prob_is_area_ratio() {
        let f = pdf();
        let r = Rect::from_coords(0.0, 0.0, 5.0, 5.0);
        assert!((f.prob_in_rect(r) - 0.5).abs() < 1e-12);
        assert_eq!(
            f.prob_in_rect(Rect::from_coords(20.0, 20.0, 30.0, 30.0)),
            0.0
        );
    }

    #[test]
    fn marginal_cdf_linear() {
        let f = pdf();
        assert_eq!(f.marginal_cdf(Axis::X, -1.0), 0.0);
        assert!((f.marginal_cdf(Axis::X, 2.5) - 0.25).abs() < 1e-12);
        assert_eq!(f.marginal_cdf(Axis::X, 10.0), 1.0);
        assert!((f.marginal_cdf(Axis::Y, 1.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_exact_inverse() {
        let f = pdf();
        for &p in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            let q = f.quantile(Axis::X, p);
            assert!((f.marginal_cdf(Axis::X, q) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_fall_in_region_and_cover_it() {
        let f = pdf();
        let mut rng = StdRng::seed_from_u64(7);
        let mut mean = Point::ORIGIN;
        const N: usize = 20_000;
        for _ in 0..N {
            let s = f.sample(&mut rng);
            assert!(f.region().contains_point(s));
            mean.x += s.x / N as f64;
            mean.y += s.y / N as f64;
        }
        // Law of large numbers: the mean approaches the region centre.
        assert!((mean.x - 5.0).abs() < 0.1);
        assert!((mean.y - 2.5).abs() < 0.05);
    }
}
