//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to
//! crates.io, so this vendored crate provides the *exact* subset of the
//! `rand 0.8` public API the workspace uses — [`RngCore`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] /
//! [`Rng::gen_bool`], and [`rngs::StdRng`] — with compatible semantics:
//! deterministic streams per seed, uniform floating-point and integer
//! ranges, and object-safe `&mut dyn RngCore` sampling.
//!
//! The generator behind [`rngs::StdRng`] is **xoshiro256++** seeded via
//! SplitMix64 (Blackman & Vigna), a small, fast, well-tested PRNG that
//! comfortably passes the statistical tolerances the test-suite's
//! Monte-Carlo assertions rely on. Streams differ from upstream
//! `rand`'s ChaCha12-based `StdRng`, which is fine: the workspace only
//! relies on *reproducibility under a fixed seed*, never on specific
//! upstream streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

/// The core of a random number generator: a source of uniformly
/// distributed bits. Object-safe, so pdf sampling can take
/// `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Identical seeds yield
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling conveniences, blanket-implemented for every
/// [`RngCore`] (including unsized `dyn RngCore`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`
    /// (`lo..hi` half-open or `lo..=hi` inclusive).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform value in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from the half-open interval `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from the closed interval `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let v = lo + unit_f64(rng) * (hi - lo);
        // Guard against round-up to `hi` at the top of huge ranges.
        if v < hi {
            v
        } else {
            lo
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_inclusive(rng, lo as f64, hi as f64) as f32
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = widening_mod(rng.next_u64(), span);
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = widening_mod(rng.next_u64(), span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `x mod span` — the modulo bias for 64-bit draws over the spans used
/// in this workspace (all far below 2^48) is negligible for test and
/// data-generation purposes.
fn widening_mod(x: u64, span: u128) -> u128 {
    debug_assert!(span > 0);
    x as u128 % span
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3.0..2.0);
            assert!((-3.0..2.0).contains(&v));
            let w: f64 = rng.gen_range(5.0..=6.0);
            assert!((5.0..=6.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 5e-3, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(5);
        let dynamic: &mut dyn RngCore = &mut rng;
        let v = dynamic.gen_range(0.0..10.0);
        assert!((0.0..10.0).contains(&v));
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
