//! The `subscribers-c10k` load-generation scenario: a **herd** of
//! thousands of mostly-idle subscriber connections — each holding one
//! standing continuous query and then going silent — plus a small
//! **active** set ticking along random walks while an updater commits
//! catalog churn. This is the workload the event-driven connection
//! core exists for: with one thread per connection, 10,000 idle
//! subscribers would mean 10,000 parked threads; the event loops
//! multiplex them all through a handful of readiness waits.
//!
//! Three measured phases:
//!
//! 1. **Herd setup** — `herd` connections connect and register one
//!    standing point query each (scattered deterministic positions,
//!    small ranges), then never speak again. Setup wall clock and the
//!    server-reported connection gauge are part of the report.
//! 2. **Mixed window** — `active` subscribers tick along random walks
//!    while the updater interleaves update batches and epoch commits;
//!    every commit makes the event loops sweep the full herd's
//!    subscription registries. Tick round-trip percentiles under that
//!    load are the scenario's headline number, gated in CI via
//!    `--max-p99-ms`.
//! 3. **Steady window** — one warm control connection ticks a
//!    fixed-position standing query with no commits running, bracketed
//!    by stats frames: the server-side **allocations-per-tick** gate
//!    must hold at zero *with the herd still connected*.
//!
//! The herd count is clamped to the file-descriptor budget: an
//! in-process run spends two fds per connection (client + server end
//! in one process), a cross-process run (`--addr`) one. The process
//! asks the kernel to raise `RLIMIT_NOFILE` first and prints what it
//! actually got, so a truncated run is visible, never silent.

use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use iloc_core::pipeline::PointRequest;
use iloc_core::{Issuer, RangeSpec};
use iloc_geometry::{Point, Rect};
use iloc_server::client::{Client, ClientError};
use iloc_server::protocol::{CommitTarget, Notification, StatsReport};
use iloc_server::server::ServerConfig;

use crate::net::{build_server, NetConfig};
use crate::subscribers::{churn_run, issuer_at, Walk};

/// Connect retry budget (shared with the other scenarios).
const CONNECT_TIMEOUT: Duration = Duration::from_secs(60);

/// Non-connection fds the processes need: listener, loop wakers,
/// stdio, dataset files, and slack for anything the allocator maps.
const FD_MARGIN: u64 = 256;

/// Tunables for one c10k run.
#[derive(Debug, Clone)]
pub struct C10kConfig {
    /// Idle herd connections, one silent standing query each.
    pub herd: usize,
    /// Actively ticking subscriber connections.
    pub active: usize,
    /// Shards per catalog (in-process server only).
    pub shards: usize,
    /// Event-loop threads (in-process server only); 0 means the
    /// server default.
    pub event_loops: usize,
    /// Point-catalog size (in-process server only).
    pub points: usize,
    /// Herd standing-query range half-size (small, so commits touch
    /// few herd envelopes and pushes stay sparse).
    pub herd_range: f64,
    /// Safe-envelope slack for every subscription.
    pub slack: f64,
    /// Active-walker step per tick.
    pub step: f64,
    /// Ticks per active subscriber in the measured mixed window.
    pub ticks_per_active: usize,
    /// Update batches the updater commits during the mixed window.
    pub update_rounds: usize,
    /// Updates per batch (each batch is followed by a commit).
    pub updates_per_round: usize,
    /// Ticks in the alloc-gated steady window.
    pub steady_ticks: usize,
    /// Warm-up ticks per active connection before measurement.
    pub warmup: usize,
    /// Workload seed (shared with the server's dataset seed).
    pub seed: u64,
}

impl C10kConfig {
    /// CI-smoke scale: a few hundred idle connections — enough to
    /// prove the multiplexing (connections ≫ event loops ≫ threads)
    /// within any sane fd limit.
    pub fn quick() -> Self {
        C10kConfig {
            herd: 512,
            active: 4,
            shards: 4,
            event_loops: 2,
            points: 6_200,
            herd_range: 100.0,
            slack: 100.0,
            step: 20.0,
            ticks_per_active: 96,
            update_rounds: 4,
            updates_per_round: 64,
            steady_ticks: 256,
            warmup: 32,
            seed: 2007,
        }
    }

    /// The tracked-report configuration: ten thousand subscribers.
    pub fn full() -> Self {
        C10kConfig {
            herd: 10_000,
            active: 8,
            shards: 4,
            event_loops: 2,
            points: iloc_datagen::CALIFORNIA_SIZE,
            herd_range: 100.0,
            slack: 100.0,
            step: 20.0,
            ticks_per_active: 192,
            update_rounds: 8,
            updates_per_round: 256,
            steady_ticks: 1_024,
            warmup: 64,
            seed: 2007,
        }
    }
}

/// What one c10k run measured.
#[derive(Debug, Clone)]
pub struct C10kReport {
    /// Idle herd connections actually established (post fd-clamp).
    pub herd: usize,
    /// Active subscriber connections driven.
    pub active: usize,
    /// Wall clock of herd connect + subscribe.
    pub setup: Duration,
    /// Total ticks answered in the mixed window.
    pub ticks: usize,
    /// Wall clock of the mixed window.
    pub elapsed: Duration,
    /// Median active-tick round trip with the herd connected.
    pub p50: Duration,
    /// 99th-percentile active-tick round trip — the gated number.
    pub p99: Duration,
    /// Commit-pushed NOTIFY frames the active subscribers received.
    pub pushes: usize,
    /// Updates the updater submitted.
    pub updates_submitted: usize,
    /// Epoch commits during the mixed window.
    pub commits: usize,
    /// Ticks in the steady (alloc-gated) window.
    pub steady_ticks: usize,
    /// Server-side allocations per tick across the steady window
    /// (−1.0 when the server does not count allocations).
    pub steady_allocs_per_tick: f64,
    /// Whether the server counts allocations at all.
    pub alloc_counting: bool,
    /// Server connection gauge sampled with the full herd attached.
    pub server_connections: u64,
    /// Event loops the server multiplexes those connections over.
    pub server_event_loops: u32,
    /// Pushes the server dropped (closing slow readers); an idle herd
    /// must not provoke any.
    pub dropped_pushes: u64,
}

impl C10kReport {
    /// Mixed-window tick throughput per second.
    pub fn ticks_per_sec(&self) -> f64 {
        self.ticks as f64 / self.elapsed.as_secs_f64()
    }
}

/// Raises `RLIMIT_NOFILE` toward what the run wants and converts the
/// resulting limit into a connection budget at `fds_per_conn` each.
fn connection_budget(want_conns: usize, fds_per_conn: u64) -> usize {
    let want_fds = want_conns as u64 * fds_per_conn + FD_MARGIN;
    let limit = match iloc_server::poll::raise_nofile_limit(want_fds) {
        Ok(limit) => limit,
        Err(e) => {
            eprintln!("c10k: could not read/raise RLIMIT_NOFILE ({e}); assuming 1024");
            1024
        }
    };
    (limit.saturating_sub(FD_MARGIN) / fds_per_conn) as usize
}

/// Clamps the herd to the fd budget, loudly.
fn clamp_herd(cfg: &C10kConfig, fds_per_conn: u64) -> usize {
    // Herd + active + updater + control, all at `fds_per_conn` each.
    let others = cfg.active + 2;
    let budget = connection_budget(cfg.herd + others, fds_per_conn);
    if budget < cfg.herd + others {
        let herd = budget.saturating_sub(others).max(1);
        eprintln!(
            "c10k: fd budget admits {budget} connections at {fds_per_conn} fd(s) each; \
             clamping herd from {} to {herd}",
            cfg.herd
        );
        herd
    } else {
        cfg.herd
    }
}

/// Deterministic scatter for herd standing-query positions.
fn herd_position(seed: u64, k: u64) -> (f64, f64) {
    let mix = |v: u64| {
        let mut x = seed.wrapping_add(v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 29;
        x.wrapping_mul(0xBF58_476D_1CE4_E5B9) >> 11
    };
    let unit = |v: u64| (v % 100_000) as f64 / 100_000.0;
    (
        500.0 + unit(mix(2 * k)) * 9_000.0,
        500.0 + unit(mix(2 * k + 1)) * 9_000.0,
    )
}

/// Spawns an in-process loopback server sized for the herd, drives
/// it, shuts it down. Two fds per connection live in this process.
pub fn run_in_process(cfg: &C10kConfig) -> Result<C10kReport, ClientError> {
    let mut cfg = cfg.clone();
    cfg.herd = clamp_herd(&cfg, 2);

    let mut net = NetConfig::quick();
    net.points = cfg.points;
    net.uncertain = 64; // tiny; this scenario drives the point catalog
    net.shards = cfg.shards;
    net.seed = cfg.seed;
    let server = build_server(&net);

    let mut server_config = ServerConfig::loopback();
    if cfg.event_loops > 0 {
        server_config.event_loops = cfg.event_loops;
    }
    server_config.max_connections = cfg.herd + cfg.active + 8;
    let handle = server.start(&server_config).map_err(ClientError::Io)?;
    let report = run_against(handle.addr(), &cfg);
    handle.shutdown();
    report
}

/// One active subscriber: subscribes, walks, ticks, measures.
fn active_run(
    addr: SocketAddr,
    cfg: &C10kConfig,
    salt: u64,
    start: &Barrier,
) -> Result<(Vec<Duration>, usize), ClientError> {
    let mut client = Client::connect_retry(addr, CONNECT_TIMEOUT)?;
    let mut walk = Walk::new(cfg.seed.wrapping_add(salt * 7919), cfg.step);
    let (x0, y0) = walk.advance();
    let request = PointRequest::ipq(issuer_at(x0, y0), RangeSpec::square(500.0));
    let (ack, _) = client.subscribe_point(&request, cfg.slack)?;
    let sub_id = ack.sub_id;

    let mut note = Notification::default();
    let mut latencies = Vec::with_capacity(cfg.ticks_per_active);
    let mut pushes = 0usize;
    for _ in 0..cfg.warmup {
        let (x, y) = walk.advance();
        client.tick_into(
            CommitTarget::Point,
            sub_id,
            issuer_at(x, y).pdf(),
            &mut note,
        )?;
        while client.take_notification().is_some() {
            pushes += 1;
        }
    }
    start.wait();
    for _ in 0..cfg.ticks_per_active {
        let (x, y) = walk.advance();
        let t0 = Instant::now();
        client.tick_into(
            CommitTarget::Point,
            sub_id,
            issuer_at(x, y).pdf(),
            &mut note,
        )?;
        latencies.push(t0.elapsed());
        while client.take_notification().is_some() {
            pushes += 1;
        }
    }
    client.unsubscribe(CommitTarget::Point, sub_id)?;
    Ok((latencies, pushes))
}

/// Drives a server at `addr`: connects the herd, runs the mixed and
/// steady windows, disconnects. One client fd per connection lives in
/// this process; the server enforces its own capacity, which also
/// clamps the herd (stats frame).
pub fn run_against(addr: SocketAddr, cfg: &C10kConfig) -> Result<C10kReport, ClientError> {
    let mut cfg = cfg.clone();
    cfg.herd = clamp_herd(&cfg, 1);

    let mut control = Client::connect_retry(addr, CONNECT_TIMEOUT)?;
    let stats = control.stats()?;
    let capacity = stats.capacity as usize;
    let others = cfg.active + 2;
    if capacity < others + 1 {
        return Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("server admits {capacity} connection(s); c10k needs at least {others} + herd"),
        )));
    }
    if cfg.herd + others > capacity {
        let herd = capacity - others;
        eprintln!(
            "c10k: server admits {capacity} connections; clamping herd from {} to {herd}",
            cfg.herd
        );
        cfg.herd = herd;
    }

    // --- Herd setup ---------------------------------------------------
    // Sequential connect + one SUBSCRIBE round trip each. The herd
    // holds its sockets open (and its standing queries registered) for
    // the rest of the run without ever writing another byte.
    let t0 = Instant::now();
    let mut herd: Vec<Client> = Vec::with_capacity(cfg.herd);
    let range = RangeSpec::square(cfg.herd_range);
    for k in 0..cfg.herd as u64 {
        let (x, y) = herd_position(cfg.seed, k);
        let issuer = Issuer::uniform(Rect::centered(Point::new(x, y), 100.0, 100.0));
        let mut client = Client::connect_retry(addr, CONNECT_TIMEOUT)?;
        client.subscribe_point(&PointRequest::ipq(issuer, range), cfg.slack)?;
        herd.push(client);
    }
    let setup = t0.elapsed();
    let stats_full = control.stats()?;

    // --- Mixed window -------------------------------------------------
    let start = Arc::new(Barrier::new(cfg.active + 2));
    let actives: Vec<_> = (0..cfg.active as u64)
        .map(|s| {
            let cfg = cfg.clone();
            let start = Arc::clone(&start);
            std::thread::spawn(move || active_run(addr, &cfg, s, &start))
        })
        .collect();
    let updater = {
        let cfg = cfg.clone();
        let start = Arc::clone(&start);
        std::thread::spawn(move || {
            churn_run(
                addr,
                cfg.points,
                cfg.seed,
                cfg.update_rounds,
                cfg.updates_per_round,
                &start,
            )
        })
    };
    start.wait();
    let t0 = Instant::now();
    let mut latencies: Vec<Duration> = Vec::new();
    let mut pushes = 0usize;
    for a in actives {
        let (lat, p) = a.join().expect("active subscriber thread")?;
        latencies.extend(lat);
        pushes += p;
    }
    let (updates_submitted, commits) = updater.join().expect("updater thread")?;
    let elapsed = t0.elapsed();
    latencies.sort_unstable();

    // --- Steady window (alloc-gated), herd still connected ------------
    let request = PointRequest::ipq(issuer_at(5_000.0, 5_000.0), RangeSpec::square(500.0));
    let (ack, _) = control.subscribe_point(&request, cfg.slack)?;
    let sub_id = ack.sub_id;
    let pdf = request.issuer.pdf().clone();
    let mut note = Notification::default();
    let mut s1 = StatsReport::default();
    let mut s2 = StatsReport::default();
    for _ in 0..cfg.warmup.max(32) {
        control.tick_into(CommitTarget::Point, sub_id, &pdf, &mut note)?;
    }
    control.stats_into(&mut s1)?; // also warms the report buffers
    control.stats_into(&mut s1)?;
    for _ in 0..cfg.steady_ticks {
        control.tick_into(CommitTarget::Point, sub_id, &pdf, &mut note)?;
    }
    control.stats_into(&mut s2)?;
    control.unsubscribe(CommitTarget::Point, sub_id)?;
    drop(herd);

    let steady_allocs_per_tick = if s1.alloc_counting {
        (s2.allocations - s1.allocations) as f64 / cfg.steady_ticks.max(1) as f64
    } else {
        -1.0
    };
    let percentile = |q: f64| -> Duration {
        if latencies.is_empty() {
            return Duration::ZERO;
        }
        latencies[((latencies.len() - 1) as f64 * q).round() as usize]
    };

    Ok(C10kReport {
        herd: cfg.herd,
        active: cfg.active,
        setup,
        ticks: cfg.active * cfg.ticks_per_active,
        elapsed,
        p50: percentile(0.50),
        p99: percentile(0.99),
        pushes,
        updates_submitted,
        commits,
        steady_ticks: cfg.steady_ticks,
        steady_allocs_per_tick,
        alloc_counting: s1.alloc_counting,
        server_connections: stats_full.connections,
        server_event_loops: stats_full.event_loops,
        dropped_pushes: s2.dropped_pushes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_in_process_c10k_round_trips() {
        // Connections (64 + 2 + 2) far exceed event loops (2): the
        // multiplexing itself is what this pins down.
        let cfg = C10kConfig {
            herd: 64,
            active: 2,
            shards: 2,
            event_loops: 2,
            points: 400,
            herd_range: 60.0,
            slack: 100.0,
            step: 20.0,
            ticks_per_active: 12,
            update_rounds: 2,
            updates_per_round: 8,
            steady_ticks: 16,
            warmup: 4,
            seed: 7,
        };
        let report = run_in_process(&cfg).expect("c10k loadgen");
        assert_eq!(report.herd, 64);
        assert_eq!(report.active, 2);
        assert_eq!(report.ticks, 24);
        assert_eq!(report.commits, 2);
        // The gauge saw the whole herd plus control attached at once.
        assert!(report.server_connections >= 65);
        assert_eq!(report.server_event_loops, 2);
        // An idle herd must never have pushes dropped on it.
        assert_eq!(report.dropped_pushes, 0);
        assert!(report.p99 >= report.p50);
        // The test binary doesn't install the counting allocator.
        assert!(!report.alloc_counting);
        assert_eq!(report.steady_allocs_per_tick, -1.0);
    }
}
