//! # iloc-server
//!
//! The network serving layer: a compact binary **wire protocol**, an
//! event-driven **TCP query server** over the sharded serving engine,
//! and a sync **client** — the layer that carries the workspace's
//! zero-allocation, snapshot-consistent query guarantees across a
//! socket.
//!
//! The paper evaluates imprecise location-dependent queries as a
//! library; a deployed location service answers them for remote
//! issuers — fleets of long-lived, mostly-idle standing subscribers.
//! This crate adds that front end **with no dependencies beyond
//! `std`** (the build environment has no crates.io access, so no
//! tokio/mio): one listener thread accepts connections and hands them
//! to a small pool of event-loop threads, each multiplexing thousands
//! of non-blocking connections through one readiness wait ([`poll`] —
//! epoll on Linux, `poll(2)` elsewhere); a single writer thread
//! applies catalog updates, preserving the [`iloc_core::serve`]
//! snapshot-consistency invariant end to end.
//!
//! ## The four pieces
//!
//! * [`protocol`] — versioned, length-prefixed frames encoding the
//!   paper's four query types (IPQ / C-IPQ / IUQ / C-IUQ), catalog
//!   update batches (arrive / depart / move), commits, a stats probe,
//!   the **continuous-query subscription lifecycle** (SUBSCRIBE /
//!   TICK / UNSUBSCRIBE with pushed NOTIFY delta frames), and explicit
//!   error frames. See `docs/PROTOCOL.md` for the full byte-level
//!   spec.
//! * [`poll`] — the std-only readiness substrate: an epoll/`poll(2)`
//!   wrapper over `extern "C"` libc symbols (std links libc; no crate
//!   needed), plus a `UnixStream`-pair waker and rlimit/sockopt
//!   helpers. The only module in the crate allowed `unsafe`.
//! * [`server`] — [`server::QueryServer`]: owns a
//!   [`iloc_core::serve::ShardedEngine`] per catalog (point and
//!   uncertain); every event loop holds a long-lived
//!   [`iloc_core::serve::ShardServer`] plus per-connection frame
//!   reassembly and buffered push queues with **explicit
//!   backpressure**, so a **steady-state query performs zero heap
//!   allocations** from the moment the request bytes arrive to the
//!   moment the answer bytes are written back. Reads run against the
//!   loop's pinned epoch snapshot; updates and commits route through
//!   the single writer thread.
//! * [`client`] — [`client::Client`]: sync, connection-reusing, with a
//!   windowed **pipelined batch mode**; used by the loopback
//!   integration tests and by the `loadgen` scenario in `iloc-bench`.
//!
//! ## Quickstart
//!
//! ```
//! use iloc_core::pipeline::PointRequest;
//! use iloc_core::{Issuer, RangeSpec};
//! use iloc_geometry::{Point, Rect};
//! use iloc_server::client::Client;
//! use iloc_server::server::{QueryServer, ServerConfig};
//! use iloc_uncertainty::PointObject;
//!
//! let objects: Vec<PointObject> = (0..100)
//!     .map(|k| PointObject::new(k as u64, Point::new(k as f64 * 10.0, 500.0)))
//!     .collect();
//! let server = QueryServer::new(objects, Vec::new(), 4);
//! let handle = server.start(&ServerConfig::loopback()).unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let issuer = Issuer::uniform(Rect::centered(Point::new(500.0, 500.0), 50.0, 50.0));
//! let answer = client
//!     .point_query(&PointRequest::ipq(issuer, RangeSpec::square(80.0)))
//!     .unwrap();
//! assert!(!answer.results.is_empty());
//!
//! drop(client);
//! handle.shutdown();
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_count;
pub mod client;
pub mod poll;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError};
pub use protocol::{
    CommitTarget, HelloAck, NodeHealth, Notification, NotifyCause, Role, StatsReport, WireError,
    WireUpdate, PROTOCOL_VERSION,
};
pub use server::{QueryServer, ServerConfig, ServerHandle, MAX_SUBSCRIPTIONS};
