//! Guttman's quadratic split.
//!
//! On overflow, pick the two entries whose combined MBR wastes the most
//! area as seeds, then greedily assign the rest to the group whose MBR
//! grows least, switching to forced assignment once a group must absorb
//! everything left to reach the minimum fill.

use iloc_geometry::Rect;

/// One node entry: an extent plus its payload (item or child index).
pub type Entry<E> = (Rect, E);

/// MBR over a slice of entries.
pub fn entries_mbr<E>(entries: &[Entry<E>]) -> Rect {
    entries.iter().fold(Rect::EMPTY, |acc, (r, _)| acc.hull(*r))
}

/// Splits an overflowing entry list into two groups, each with at least
/// `min` entries.
pub fn quadratic_split<E: Copy>(
    entries: Vec<Entry<E>>,
    min: usize,
) -> (Vec<Entry<E>>, Vec<Entry<E>>) {
    debug_assert!(entries.len() >= 2 * min, "cannot split below 2*min entries");
    let n = entries.len();

    // PickSeeds: maximise dead area of the pair's hull.
    let (mut s1, mut s2) = (0usize, 1usize);
    let mut worst = f64::NEG_INFINITY;
    for i in 0..n {
        for j in (i + 1)..n {
            let d =
                entries[i].0.hull(entries[j].0).area() - entries[i].0.area() - entries[j].0.area();
            if d > worst {
                worst = d;
                s1 = i;
                s2 = j;
            }
        }
    }

    let mut g1: Vec<(Rect, E)> = vec![entries[s1]];
    let mut g2: Vec<(Rect, E)> = vec![entries[s2]];
    let mut mbr1 = entries[s1].0;
    let mut mbr2 = entries[s2].0;
    let mut rest: Vec<(Rect, E)> = entries
        .into_iter()
        .enumerate()
        .filter(|&(i, _)| i != s1 && i != s2)
        .map(|(_, e)| e)
        .collect();

    while !rest.is_empty() {
        // Forced assignment to satisfy the minimum fill.
        let remaining = rest.len();
        if g1.len() + remaining == min {
            for e in rest.drain(..) {
                mbr1 = mbr1.hull(e.0);
                g1.push(e);
            }
            break;
        }
        if g2.len() + remaining == min {
            for e in rest.drain(..) {
                mbr2 = mbr2.hull(e.0);
                g2.push(e);
            }
            break;
        }

        // PickNext: the entry with the strongest preference.
        let mut pick = 0usize;
        let mut pick_diff = f64::NEG_INFINITY;
        for (i, &(r, _)) in rest.iter().enumerate() {
            let d1 = mbr1.hull(r).area() - mbr1.area();
            let d2 = mbr2.hull(r).area() - mbr2.area();
            let diff = (d1 - d2).abs();
            if diff > pick_diff {
                pick_diff = diff;
                pick = i;
            }
        }
        let e = rest.swap_remove(pick);
        let d1 = mbr1.hull(e.0).area() - mbr1.area();
        let d2 = mbr2.hull(e.0).area() - mbr2.area();
        // Ties: smaller enlargement, then smaller area, then fewer entries.
        let to_g1 = match d1.partial_cmp(&d2).expect("finite areas") {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                if mbr1.area() != mbr2.area() {
                    mbr1.area() < mbr2.area()
                } else {
                    g1.len() <= g2.len()
                }
            }
        };
        if to_g1 {
            mbr1 = mbr1.hull(e.0);
            g1.push(e);
        } else {
            mbr2 = mbr2.hull(e.0);
            g2.push(e);
        }
    }

    debug_assert!(g1.len() >= min && g2.len() >= min);
    (g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> Rect {
        Rect::from_coords(x, y, x, y)
    }

    #[test]
    fn split_separates_two_clusters() {
        // Two far-apart clusters of 4 points each must not be mixed.
        let mut entries = Vec::new();
        for k in 0..4 {
            entries.push((pt(k as f64, k as f64), k));
        }
        for k in 0..4 {
            entries.push((pt(100.0 + k as f64, 100.0 + k as f64), 10 + k));
        }
        let (g1, g2) = quadratic_split(entries, 2);
        let m1 = entries_mbr(&g1);
        let m2 = entries_mbr(&g2);
        assert!(!m1.overlaps(m2), "clusters should be disjoint after split");
        assert_eq!(g1.len() + g2.len(), 8);
    }

    #[test]
    fn split_respects_min_fill() {
        // 9 collinear near-identical points plus one outlier: the
        // outlier group must still be topped up to `min`.
        let mut entries: Vec<(Rect, usize)> =
            (0..9).map(|k| (pt(k as f64 * 0.01, 0.0), k)).collect();
        entries.push((pt(1000.0, 1000.0), 9));
        let min = 4;
        let (g1, g2) = quadratic_split(entries, min);
        assert!(g1.len() >= min && g2.len() >= min);
        assert_eq!(g1.len() + g2.len(), 10);
    }

    #[test]
    fn entries_mbr_hulls_all() {
        let entries = vec![(pt(0.0, 0.0), 0), (pt(5.0, -2.0), 1), (pt(3.0, 7.0), 2)];
        assert_eq!(
            entries_mbr(&entries),
            Rect::from_coords(0.0, -2.0, 5.0, 7.0)
        );
        assert!(entries_mbr::<usize>(&[]).is_empty());
    }
}
