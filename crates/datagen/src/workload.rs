//! Query workload generation (paper Section 6.1).
//!
//! Each experiment runs 500 queries whose issuer uncertainty regions
//! `U0` are squares of half-size `u` with centres uniformly distributed
//! over the data space; the range query is a square of half-size `w`.

use iloc_geometry::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::SPACE;

/// Deterministic workload generator.
#[derive(Debug)]
pub struct WorkloadGen {
    rng: StdRng,
}

impl WorkloadGen {
    /// Creates a generator with a fixed seed.
    pub fn new(seed: u64) -> Self {
        WorkloadGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// One issuer uncertainty region: a square of half-size `u` centred
    /// uniformly in the data space (the paper lets regions straddle the
    /// space border, and so do we).
    pub fn issuer_region(&mut self, u: f64) -> Rect {
        assert!(u > 0.0, "issuer half-size must be positive");
        let c = Point::new(
            self.rng.gen_range(SPACE.min.x..=SPACE.max.x),
            self.rng.gen_range(SPACE.min.y..=SPACE.max.y),
        );
        Rect::centered(c, u, u)
    }

    /// A batch of issuer regions.
    pub fn issuer_regions(&mut self, count: usize, u: f64) -> Vec<Rect> {
        (0..count).map(|_| self.issuer_region(u)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_have_requested_size() {
        let mut g = WorkloadGen::new(1);
        let r = g.issuer_region(250.0);
        assert!((r.width() - 500.0).abs() < 1e-9);
        assert!((r.height() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_batches() {
        let a = WorkloadGen::new(5).issuer_regions(100, 100.0);
        let b = WorkloadGen::new(5).issuer_regions(100, 100.0);
        assert_eq!(a, b);
    }

    #[test]
    fn centres_cover_the_space() {
        let rs = WorkloadGen::new(2).issuer_regions(2_000, 10.0);
        let mut quadrants = [0usize; 4];
        for r in &rs {
            let c = r.center();
            let q = (c.x > 5_000.0) as usize + 2 * ((c.y > 5_000.0) as usize);
            quadrants[q] += 1;
        }
        for q in quadrants {
            assert!(q > 300, "quadrant count {q} too low for uniform centres");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_u() {
        let _ = WorkloadGen::new(1).issuer_region(0.0);
    }
}
