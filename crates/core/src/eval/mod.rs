//! Qualification-probability evaluators.
//!
//! * [`basic`] — Section 3.3: direct numerical integration over the
//!   issuer region `U0` (Eq. 2 / Eq. 4). The expensive baseline of
//!   Figure 8.
//! * [`duality`] — Section 4.2: the query–data duality theorem
//!   (Lemmas 2–4) that the enhanced evaluators are built on.
//! * [`constrained`] — Section 5.2: the three object-level pruning
//!   strategies for constrained queries.

//! * [`oracle`] — a Monte-Carlo simulation of the probability model
//!   itself, independent of all evaluation machinery; the differential
//!   reference the oracle test layer checks every pipeline against.
//! * [`nn`] — beyond the paper: imprecise probabilistic
//!   nearest-neighbour queries (the conclusion's future-work item).

pub mod basic;
pub mod constrained;
pub mod duality;
pub mod nn;
pub mod oracle;
