//! Workload execution and result aggregation.

use std::time::Duration;

use iloc_core::{QueryAnswer, QueryStats};

/// Averages accumulated over one experiment configuration
/// (one point on one curve of one figure).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Queries executed.
    pub queries: usize,
    /// Mean response time in milliseconds (the paper's `T`).
    pub avg_ms: f64,
    /// Mean candidates surviving the index filter.
    pub avg_candidates: f64,
    /// Mean probability evaluations (refinement work).
    pub avg_prob_evals: f64,
    /// Mean index nodes/buckets visited (logical I/O).
    pub avg_node_accesses: f64,
    /// Mean result-set size.
    pub avg_results: f64,
    /// Mean candidates removed by Strategies 1/2/3.
    pub avg_pruned: (f64, f64, f64),
}

impl Summary {
    /// Runs `queries` times via `f` and averages the outcome.
    pub fn collect(queries: usize, mut f: impl FnMut(usize) -> QueryAnswer) -> Summary {
        assert!(queries > 0, "need at least one query");
        let mut total = QueryStats::new();
        let mut results = 0usize;
        let mut elapsed = Duration::ZERO;
        for q in 0..queries {
            let ans = f(q);
            results += ans.results.len();
            elapsed += ans.stats.elapsed;
            total.absorb(&ans.stats);
        }
        let n = queries as f64;
        Summary {
            queries,
            avg_ms: elapsed.as_secs_f64() * 1_000.0 / n,
            avg_candidates: total.access.candidates as f64 / n,
            avg_prob_evals: total.prob_evals as f64 / n,
            avg_node_accesses: (total.access.nodes_visited + total.access.buckets_visited) as f64
                / n,
            avg_results: results as f64 / n,
            avg_pruned: (
                total.pruned_s1 as f64 / n,
                total.pruned_s2 as f64 / n,
                total.pruned_s3 as f64 / n,
            ),
        }
    }
}

/// One printed row of an experiment table.
#[derive(Debug, Clone)]
pub struct Row {
    /// x-axis value (e.g. `u` or `Qp`).
    pub x: f64,
    /// Series label (e.g. "basic" / "enhanced").
    pub series: String,
    /// The averaged measurements.
    pub summary: Summary,
}

impl Row {
    /// Renders the row in the fixed-width format used by `reproduce`.
    pub fn render(&self) -> String {
        format!(
            "{:>8.2}  {:<28} T={:>9.3} ms  cand={:>9.1}  evals={:>9.1}  io={:>7.1}  results={:>8.1}",
            self.x,
            self.series,
            self.summary.avg_ms,
            self.summary.avg_candidates,
            self.summary.avg_prob_evals,
            self.summary.avg_node_accesses,
            self.summary.avg_results,
        )
    }
}

/// Prints an experiment header plus rows.
pub fn print_table(title: &str, x_name: &str, rows: &[Row]) {
    println!();
    println!("== {title}");
    println!("   ({x_name} on the x-axis; T = mean response time)");
    for row in rows {
        println!("{}", row.render());
    }
}

/// Serialises rows as CSV (plotting-friendly; one line per row).
pub fn to_csv(x_name: &str, rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{x_name},series,queries,avg_ms,avg_candidates,avg_prob_evals,avg_node_accesses,avg_results,pruned_s1,pruned_s2,pruned_s3\n"
    ));
    for r in rows {
        let m = &r.summary;
        s.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{}\n",
            r.x,
            r.series.replace(',', ";"),
            m.queries,
            m.avg_ms,
            m.avg_candidates,
            m.avg_prob_evals,
            m.avg_node_accesses,
            m.avg_results,
            m.avg_pruned.0,
            m.avg_pruned.1,
            m.avg_pruned.2,
        ));
    }
    s
}

/// Writes rows as a CSV file.
pub fn write_csv(
    path: impl AsRef<std::path::Path>,
    x_name: &str,
    rows: &[Row],
) -> std::io::Result<()> {
    std::fs::write(path, to_csv(x_name, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc_core::Match;
    use iloc_uncertainty::ObjectId;

    #[test]
    fn collect_averages() {
        let s = Summary::collect(4, |q| {
            let mut a = QueryAnswer::default();
            a.stats.prob_evals = (q + 1) as u64; // 1,2,3,4 → avg 2.5
            a.stats.elapsed = Duration::from_millis(2);
            if q % 2 == 0 {
                a.results.push(Match {
                    id: ObjectId(q as u64),
                    probability: 0.5,
                });
            }
            a
        });
        assert_eq!(s.queries, 4);
        assert!((s.avg_prob_evals - 2.5).abs() < 1e-12);
        assert!((s.avg_ms - 2.0).abs() < 0.5);
        assert!((s.avg_results - 0.5).abs() < 1e-12);
    }

    #[test]
    fn row_renders_all_fields() {
        let r = Row {
            x: 250.0,
            series: "enhanced".into(),
            summary: Summary::default(),
        };
        let s = r.render();
        assert!(s.contains("enhanced"));
        assert!(s.contains("250.00"));
    }

    #[test]
    fn csv_has_header_and_escapes_commas() {
        let rows = vec![Row {
            x: 0.5,
            series: "a,b".into(),
            summary: Summary {
                queries: 3,
                avg_ms: 1.5,
                ..Default::default()
            },
        }];
        let csv = to_csv("qp", &rows);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("qp,series,queries"));
        let row = lines.next().unwrap();
        assert!(row.starts_with("0.5,a;b,3,1.5"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn csv_roundtrips_through_file() {
        let rows = vec![Row {
            x: 1.0,
            series: "s".into(),
            summary: Summary::default(),
        }];
        // Unique per process *and* per call: parallel test runs (or two
        // checkouts sharing a machine) must not race on one temp path.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_nanos();
        let path =
            std::env::temp_dir().join(format!("iloc_csv_test_{}_{nanos}.csv", std::process::id()));
        write_csv(&path, "u", &rows).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, to_csv("u", &rows));
        let _ = std::fs::remove_file(path);
    }
}
