//! Shared `RangeIndex` conformance suite.
//!
//! One generic scenario is run against every backend — `RTree`, `Pti`,
//! `GridFile`, `NaiveIndex` — and checked against an independent
//! brute-force oracle (a plain `Vec`, *not* `NaiveIndex`, which is
//! itself under test). Covered per backend:
//!
//! * `query_range` and `query_range_scratch` (including a deliberately
//!   dirty, reused scratch) return the same candidate **set** as the
//!   oracle;
//! * `insert` / `remove` keep queries equivalent to the oracle under
//!   interleaved churn, and `remove` reports presence correctly;
//! * degenerate extents (points, zero-width slivers) and
//!   boundary-straddling extents are stored and found.
//!
//! Candidate *order* is backend-specific (the query pipeline sorts),
//! so all comparisons are on sorted outputs.

use iloc_geometry::{Point, Rect};
use iloc_index::rtree::RTreeParams;
use iloc_index::{
    AccessStats, GridFile, NaiveIndex, Pti, PtiParams, RTree, RangeIndex, TraversalScratch,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The space the scenario plays in (entries may straddle its border).
const SPACE: Rect = Rect::from_coords(0.0, 0.0, 1_000.0, 1_000.0);

/// A deterministic random extent: mostly small rectangles, some
/// degenerate points and slivers, a few straddling the space border.
fn random_extent(rng: &mut StdRng) -> Rect {
    let x = rng.gen_range(-20.0..SPACE.max.x + 20.0);
    let y = rng.gen_range(-20.0..SPACE.max.y + 20.0);
    match rng.gen_range(0..10) {
        // Degenerate point.
        0 => Rect::from_point(Point::new(x, y)),
        // Zero-width / zero-height sliver.
        1 => Rect::from_coords(x, y, x, y + rng.gen_range(1.0..30.0)),
        2 => Rect::from_coords(x, y, x + rng.gen_range(1.0..30.0), y),
        // Ordinary rectangle.
        _ => Rect::from_coords(
            x,
            y,
            x + rng.gen_range(0.5..40.0),
            y + rng.gen_range(0.5..40.0),
        ),
    }
}

/// Sorted oracle answer over the live `(extent, item)` set.
fn oracle_answer(live: &[(Rect, u32)], query: Rect) -> Vec<u32> {
    let mut want: Vec<u32> = live
        .iter()
        .filter(|(r, _)| r.overlaps(query))
        .map(|&(_, item)| item)
        .collect();
    want.sort_unstable();
    want
}

/// Asserts both probe paths of `index` agree with the oracle on
/// `query`. `scratch` is reused (dirty) across calls on purpose.
fn check_query<I: RangeIndex<u32>>(
    index: &I,
    live: &[(Rect, u32)],
    query: Rect,
    scratch: &mut TraversalScratch,
    ctx: &str,
) {
    let want = oracle_answer(live, query);

    let mut stats = AccessStats::new();
    let mut got = index.query_range(query, &mut stats);
    got.sort_unstable();
    assert_eq!(got, want, "{ctx}: query_range diverged on {query:?}");

    let mut stats = AccessStats::new();
    let mut got_scratch = Vec::new();
    index.query_range_scratch(query, &mut stats, scratch, &mut got_scratch);
    got_scratch.sort_unstable();
    assert_eq!(
        got_scratch, want,
        "{ctx}: query_range_scratch diverged on {query:?}"
    );
}

/// The conformance scenario, generic over how the backend is built
/// from an initial entry set.
fn conformance<I: RangeIndex<u32>>(name: &str, build: impl Fn(Vec<(Rect, u32)>) -> I) {
    let mut rng = StdRng::seed_from_u64(0x1D0C);
    let mut scratch = TraversalScratch::new();

    // Phase 0: empty index answers nothing and rejects removes.
    let mut index = build(Vec::new());
    assert_eq!(index.len(), 0);
    assert!(index.is_empty());
    check_query(&index, &[], SPACE, &mut scratch, name);
    assert!(!index.remove(Rect::from_point(Point::new(1.0, 1.0)), 7));

    // Phase 1: bulk construction from a random scene.
    let mut next_item = 0u32;
    let mut live: Vec<(Rect, u32)> = (0..400)
        .map(|_| {
            let e = (random_extent(&mut rng), next_item);
            next_item += 1;
            e
        })
        .collect();
    let mut index = build(live.clone());
    assert_eq!(index.len(), live.len());

    let queries: Vec<Rect> = (0..60)
        .map(|_| random_extent(&mut rng))
        .chain([
            SPACE,
            Rect::from_point(Point::new(500.0, 500.0)),
            Rect::from_coords(-50.0, -50.0, -10.0, -10.0),
            Rect::from_coords(990.0, 990.0, 1_050.0, 1_050.0),
        ])
        .collect();
    for &q in &queries {
        check_query(&index, &live, q, &mut scratch, name);
    }

    // Phase 2: interleaved insert/remove churn, checking queries and
    // remove's return value as we go.
    for step in 0..1_200 {
        let grow = live.len() < 40 || rng.gen_bool(0.55);
        if grow {
            let extent = random_extent(&mut rng);
            index.insert(extent, next_item);
            live.push((extent, next_item));
            next_item += 1;
        } else {
            let k = rng.gen_range(0..live.len());
            let (extent, item) = live.swap_remove(k);
            assert!(
                index.remove(extent, item),
                "{name}: step {step}: failed to remove live item {item}"
            );
            // A second remove of the same entry must miss.
            assert!(
                !index.remove(extent, item),
                "{name}: step {step}: double-removed item {item}"
            );
        }
        assert_eq!(index.len(), live.len(), "{name}: step {step}: len drifted");
        if step % 100 == 0 {
            check_query(
                &index,
                &live,
                random_extent(&mut rng),
                &mut scratch,
                &format!("{name} step {step}"),
            );
        }
    }
    for &q in &queries {
        check_query(&index, &live, q, &mut scratch, &format!("{name} churned"));
    }

    // Phase 3: drain to empty; the index stays usable.
    for (extent, item) in live.drain(..) {
        assert!(index.remove(extent, item));
    }
    assert!(index.is_empty());
    check_query(&index, &[], SPACE, &mut scratch, name);
    index.insert(Rect::from_point(Point::new(3.0, 4.0)), 999_999);
    assert_eq!(index.len(), 1);
    check_query(
        &index,
        &[(Rect::from_point(Point::new(3.0, 4.0)), 999_999)],
        SPACE,
        &mut scratch,
        name,
    );
}

#[test]
fn rtree_conforms() {
    conformance("rtree", |entries| {
        RTree::bulk_load(entries, RTreeParams::default())
    });
}

#[test]
fn rtree_small_fanout_conforms() {
    // A tiny fanout forces deep trees, frequent splits and condenses.
    conformance("rtree(4,2)", |entries| {
        let mut tree = RTree::new(RTreeParams::new(4, 2));
        for (extent, item) in entries {
            RTree::insert(&mut tree, extent, item);
        }
        tree
    });
}

#[test]
fn pti_single_level_conforms() {
    conformance("pti[0]", |entries| {
        Pti::bulk_load(
            vec![0.0],
            entries.into_iter().map(|(r, t)| (vec![r], t)).collect(),
            PtiParams::default(),
        )
    });
}

#[test]
fn pti_multi_level_conforms() {
    // Multi-level catalog with the region replicated per level (the
    // conservative bound the trait-level insert also uses).
    let levels = vec![0.0, 0.25, 0.5];
    conformance("pti[0,.25,.5]", move |entries| {
        Pti::bulk_load(
            levels.clone(),
            entries.into_iter().map(|(r, t)| (vec![r; 3], t)).collect(),
            PtiParams::default(),
        )
    });
}

#[test]
fn gridfile_conforms() {
    // The grid space deliberately does NOT cover the scenario's
    // straddling extents, exercising the border-cell clamping.
    conformance("gridfile", |entries| GridFile::new(SPACE, 16, 16, entries));
}

#[test]
fn gridfile_coarse_conforms() {
    conformance("gridfile(1x1)", |entries| {
        GridFile::new(SPACE, 1, 1, entries)
    });
}

#[test]
fn naive_conforms() {
    conformance("naive", NaiveIndex::new);
}
