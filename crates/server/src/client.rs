//! The sync, connection-reusing client.
//!
//! One [`Client`] owns one TCP connection plus reusable encode/decode
//! buffers; the `*_into` methods are **allocation-free once warm**
//! (the load generator's steady-state loop runs through them), and the
//! `*_batch_into` methods pipeline a whole request slice through the
//! socket in windows, amortising round trips.
//!
//! ## Pushed deltas
//!
//! A connection holding subscriptions receives **unsolicited NOTIFY
//! frames** whenever a commit changes a standing query's answer. The
//! server only ever interleaves them *between* responses, so the
//! stream stays "one response per request, pushes in the gaps". The
//! client preserves that order: any NOTIFY read while waiting for a
//! response is queued, [`Client::take_notification`] drains the queue
//! in arrival order, and [`Client::poll_notification`] additionally
//! polls the socket when the queue is empty. Apply deltas in exactly
//! the order they are taken — each composes on the state produced by
//! the previous one.

use std::collections::VecDeque;
use std::io::{self, Read as _, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use iloc_core::pipeline::{PointRequest, UncertainRequest};
use iloc_core::serve::CommitReport;
use iloc_core::QueryAnswer;
use iloc_uncertainty::PdfKind;

use crate::protocol::{
    self, opcode, CommitTarget, ErrorCode, HelloAck, Notification, NotifyCause, Role, StatsReport,
    WireError, WireUpdate, PROTOCOL_VERSION,
};

/// Default pipeline window for the batch methods: deep enough to hide
/// round trips, shallow enough that neither end's socket buffer fills
/// while the other is still writing.
pub const DEFAULT_PIPELINE_WINDOW: usize = 32;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The response (or this request) violated the wire format.
    Wire(WireError),
    /// The server answered with an error frame.
    Server {
        /// Decoded error code, when the byte is a known code.
        code: Option<ErrorCode>,
        /// Raw code byte.
        raw_code: u8,
        /// Server-provided message.
        message: String,
    },
    /// The server answered with a frame this call did not expect.
    Unexpected {
        /// The opcode received.
        opcode: u8,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server {
                code,
                raw_code,
                message,
            } => write!(f, "server error {code:?} ({raw_code}): {message}"),
            ClientError::Unexpected { opcode } => {
                write!(f, "unexpected response opcode {opcode:#04x}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A SUB_ACK's bookkeeping: the subscription's id, the epoch its
/// initial answer evaluated against, and the epoch the server process
/// recovered at (0 for a fresh or transient catalog). A reconnecting
/// subscriber that sees `recovered_epoch` change knows the server
/// restarted and its old subscription ids are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubAck {
    /// Server-assigned subscription id (per connection).
    pub sub_id: u64,
    /// Epoch the initial answer evaluated against.
    pub epoch: u64,
    /// Engine epoch at server-process start for this catalog.
    pub recovered_epoch: u64,
}

/// A blocking protocol client over one reused connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Pushed NOTIFY frames read while waiting for a response, in
    /// arrival order.
    pending: VecDeque<Notification>,
    /// The server's HELLO_ACK from the v6 connect handshake.
    hello: Option<HelloAck>,
}

impl Client {
    /// Connects as [`Role::Client`] (with `TCP_NODELAY`, as every
    /// frame is a full request or response) and performs the v6
    /// HELLO handshake. A version-mismatched server answers the HELLO
    /// with a typed ERROR naming its supported version, which surfaces
    /// here as `InvalidData` carrying that message.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::connect_as(addr, Role::Client)
    }

    /// [`Client::connect`] with an explicit role — the router connects
    /// upstream as [`Role::Router`].
    pub fn connect_as(addr: impl ToSocketAddrs, role: Role) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Client::from_stream(stream, role)
    }

    /// Wraps an already-connected stream (the router dials its nodes
    /// with the non-blocking connect in [`crate::poll`] and hands the
    /// finished sockets here) and performs the v6 HELLO handshake.
    /// The stream must be in blocking mode.
    pub fn from_stream(stream: TcpStream, role: Role) -> io::Result<Client> {
        stream.set_nodelay(true)?;
        let mut client = Client {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            pending: VecDeque::new(),
            hello: None,
        };
        match client.handshake(role) {
            Ok(()) => Ok(client),
            Err(ClientError::Io(e)) => Err(e),
            Err(e) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("handshake failed: {e}"),
            )),
        }
    }

    fn handshake(&mut self, role: Role) -> Result<(), ClientError> {
        self.write_buf.clear();
        protocol::encode_hello(&mut self.write_buf, role, 0);
        self.send()?;
        self.expect_frame(opcode::HELLO_ACK)?;
        self.hello = Some(protocol::decode_hello_ack(&self.read_buf[2..])?);
        Ok(())
    }

    /// The server's handshake introspection (role, epochs, recovered
    /// epochs, shard counts). Always present after a successful
    /// connect.
    pub fn hello(&self) -> Option<&HelloAck> {
        self.hello.as_ref()
    }

    /// Retries [`Client::connect`] until `timeout` elapses — for
    /// racing a server that is still binding (the CI smoke job starts
    /// the server binary and the load generator back to back).
    pub fn connect_retry(addr: impl ToSocketAddrs + Copy, timeout: Duration) -> io::Result<Client> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    fn send(&mut self) -> io::Result<()> {
        self.stream.write_all(&self.write_buf)
    }

    /// Reads exactly `buf` from the stream, tolerantly: `Interrupted`
    /// is always retried, and `WouldBlock` / `TimedOut` (a read
    /// timeout another call armed, or the event-driven server flushing
    /// a frame in pieces) are retried once any of the frame's bytes
    /// have arrived — a frame, once started, is read whole. With
    /// `started == false` a leading timeout surfaces to the caller. A
    /// mid-frame disconnect is a typed `UnexpectedEof`, never a panic.
    fn read_patient(stream: &mut TcpStream, buf: &mut [u8], mut started: bool) -> io::Result<()> {
        let mut filled = 0;
        while filled < buf.len() {
            match stream.read(&mut buf[filled..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-frame",
                    ))
                }
                Ok(n) => {
                    filled += n;
                    started = true;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if started
                        && matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Reads one frame into `read_buf`; returns its opcode. The
    /// payload is `&self.read_buf[2..]`.
    fn recv(&mut self) -> Result<u8, ClientError> {
        let mut len_buf = [0u8; 4];
        Self::read_patient(&mut self.stream, &mut len_buf, false)?;
        let len = u32::from_le_bytes(len_buf);
        if !(2..=protocol::MAX_FRAME_LEN).contains(&len) {
            return Err(WireError::Malformed("response frame length").into());
        }
        self.read_buf.clear();
        self.read_buf.resize(len as usize, 0);
        Self::read_patient(&mut self.stream, &mut self.read_buf, true)?;
        // ERROR frames are exempt from the version check: a peer
        // speaking another protocol version still reports its version
        // complaint as a typed error frame (in its own dialect's
        // header), and that message beats "malformed response".
        if self.read_buf[0] != PROTOCOL_VERSION && self.read_buf[1] != opcode::ERROR {
            return Err(WireError::Malformed("response protocol version").into());
        }
        Ok(self.read_buf[1])
    }

    /// Receives one frame and requires opcode `want`; pushed NOTIFY
    /// frames encountered on the way are queued in arrival order, and
    /// error frames surface as [`ClientError::Server`].
    fn expect_frame(&mut self, want: u8) -> Result<(), ClientError> {
        loop {
            let op = self.recv()?;
            if op == want {
                return Ok(());
            }
            if op == opcode::NOTIFY {
                let mut note = Notification::default();
                protocol::decode_notify_into(&self.read_buf[2..], &mut note)?;
                self.pending.push_back(note);
                continue;
            }
            if op == opcode::ERROR {
                let (raw_code, message) = protocol::decode_error(&self.read_buf[2..])?;
                return Err(ClientError::Server {
                    code: ErrorCode::from_u8(raw_code),
                    raw_code,
                    message,
                });
            }
            return Err(ClientError::Unexpected { opcode: op });
        }
    }

    /// Writes one pre-encoded frame verbatim — the router's scatter
    /// half: the downstream bytes are valid upstream unchanged because
    /// both hops speak the same version, and scattering to every node
    /// *before* reading any answer pipelines the fan-out (N nodes cost
    /// one round trip, not N).
    pub fn send_raw(&mut self, frame: &[u8]) -> io::Result<()> {
        self.stream.write_all(frame)
    }

    /// Reads one ANSWER into a reusable answer — the router's gather
    /// half (allocation-free once warm).
    pub fn recv_answer_into(&mut self, answer: &mut QueryAnswer) -> Result<(), ClientError> {
        self.expect_frame(opcode::ANSWER)?;
        protocol::decode_answer_into(&self.read_buf[2..], answer)?;
        Ok(())
    }

    /// Forwards one pre-encoded SUBSCRIBE frame verbatim and reads the
    /// SUB_ACK: the initial answer lands in `initial`, and the ack's
    /// `(target, sub_id, epoch, recovered_epoch)` comes back — the
    /// router's subscription fan-out, which must keep each node's
    /// assigned sub id to route later frames.
    pub fn forward_subscribe_into(
        &mut self,
        frame: &[u8],
        initial: &mut QueryAnswer,
    ) -> Result<(CommitTarget, u64, u64, u64), ClientError> {
        self.stream.write_all(frame)?;
        self.expect_frame(opcode::SUB_ACK)?;
        Ok(protocol::decode_sub_ack_into(&self.read_buf[2..], initial)?)
    }

    /// Sets (or clears) the socket read timeout for every subsequent
    /// call. The router arms one on its upstream connections so a dead
    /// node surfaces as a timed-out read instead of a hang; a frame
    /// whose first byte has arrived is still always read whole.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// IPQ / C-IPQ into a reusable answer (allocation-free once warm).
    pub fn point_query_into(
        &mut self,
        request: &PointRequest,
        answer: &mut QueryAnswer,
    ) -> Result<(), ClientError> {
        self.write_buf.clear();
        protocol::encode_point_query(&mut self.write_buf, request)?;
        self.send()?;
        self.expect_frame(opcode::ANSWER)?;
        protocol::decode_answer_into(&self.read_buf[2..], answer)?;
        Ok(())
    }

    /// IPQ / C-IPQ, allocating the answer.
    pub fn point_query(&mut self, request: &PointRequest) -> Result<QueryAnswer, ClientError> {
        let mut answer = QueryAnswer::default();
        self.point_query_into(request, &mut answer)?;
        Ok(answer)
    }

    /// IUQ / C-IUQ into a reusable answer (allocation-free once warm).
    pub fn uncertain_query_into(
        &mut self,
        request: &UncertainRequest,
        answer: &mut QueryAnswer,
    ) -> Result<(), ClientError> {
        self.write_buf.clear();
        protocol::encode_uncertain_query(&mut self.write_buf, request)?;
        self.send()?;
        self.expect_frame(opcode::ANSWER)?;
        protocol::decode_answer_into(&self.read_buf[2..], answer)?;
        Ok(())
    }

    /// IUQ / C-IUQ, allocating the answer.
    pub fn uncertain_query(
        &mut self,
        request: &UncertainRequest,
    ) -> Result<QueryAnswer, ClientError> {
        let mut answer = QueryAnswer::default();
        self.uncertain_query_into(request, &mut answer)?;
        Ok(answer)
    }

    /// Pipelined batch mode: encodes `window`-sized chunks of
    /// requests, writes each chunk as one burst, then drains its
    /// answers — so the socket always has several requests in flight.
    /// `answers` is resized to match and its elements are reused.
    ///
    /// On a mid-batch error the remaining in-flight responses are
    /// drained so the connection stays usable, then the error returns.
    pub fn point_query_batch_into(
        &mut self,
        requests: &[PointRequest],
        answers: &mut Vec<QueryAnswer>,
        window: usize,
    ) -> Result<(), ClientError> {
        let window = window.max(1);
        answers.resize_with(requests.len(), QueryAnswer::default);
        let mut done = 0;
        for chunk in requests.chunks(window) {
            self.write_buf.clear();
            for request in chunk {
                protocol::encode_point_query(&mut self.write_buf, request)?;
            }
            self.send()?;
            for k in 0..chunk.len() {
                if let Err(e) = self.expect_frame(opcode::ANSWER).and_then(|()| {
                    Ok(protocol::decode_answer_into(
                        &self.read_buf[2..],
                        &mut answers[done + k],
                    )?)
                }) {
                    for _ in k + 1..chunk.len() {
                        let _ = self.recv();
                    }
                    return Err(e);
                }
            }
            done += chunk.len();
        }
        Ok(())
    }

    /// Buffers a batch of updates server-side; returns how many the
    /// server accepted for the next commit.
    pub fn submit(&mut self, updates: &[WireUpdate]) -> Result<u32, ClientError> {
        self.write_buf.clear();
        protocol::encode_update_batch(&mut self.write_buf, updates)?;
        self.send()?;
        self.expect_frame(opcode::UPDATE_ACK)?;
        Ok(protocol::decode_update_ack(&self.read_buf[2..])?)
    }

    /// Commits one catalog's buffered updates, publishing the next
    /// epoch; returns the server's commit report.
    pub fn commit(&mut self, target: CommitTarget) -> Result<CommitReport, ClientError> {
        self.write_buf.clear();
        protocol::encode_commit(&mut self.write_buf, target);
        self.send()?;
        self.expect_frame(opcode::COMMIT_DONE)?;
        Ok(protocol::decode_commit_done(&self.read_buf[2..])?)
    }

    /// Server stats into a reusable report (shard-size buffers keep
    /// their capacity — the steady-state allocation probe brackets its
    /// measured window with two of these).
    pub fn stats_into(&mut self, report: &mut StatsReport) -> Result<(), ClientError> {
        self.write_buf.clear();
        protocol::encode_empty(&mut self.write_buf, opcode::STATS);
        self.send()?;
        self.expect_frame(opcode::STATS_REPORT)?;
        protocol::decode_stats_report_into(&self.read_buf[2..], report)?;
        Ok(())
    }

    /// Server stats, allocating the report.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        let mut report = StatsReport::default();
        self.stats_into(&mut report)?;
        Ok(report)
    }

    /// Liveness round trip. Also the keepalive: a quiet subscriber
    /// pings within the server's idle timeout to avoid being reaped.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.write_buf.clear();
        protocol::encode_empty(&mut self.write_buf, opcode::PING);
        self.send()?;
        self.expect_frame(opcode::PONG)
    }

    // -- Subscriptions ------------------------------------------------

    /// Registers a standing continuous query on the point catalog;
    /// returns the acknowledgement (id, epochs) and the initial full
    /// answer (the base every subsequent delta composes on). `slack`
    /// is the safe-envelope margin in space units.
    pub fn subscribe_point(
        &mut self,
        request: &PointRequest,
        slack: f64,
    ) -> Result<(SubAck, QueryAnswer), ClientError> {
        self.write_buf.clear();
        protocol::encode_subscribe_point(&mut self.write_buf, slack, request)?;
        self.send()?;
        self.expect_frame(opcode::SUB_ACK)?;
        let mut answer = QueryAnswer::default();
        let (_, sub_id, epoch, recovered_epoch) =
            protocol::decode_sub_ack_into(&self.read_buf[2..], &mut answer)?;
        Ok((
            SubAck {
                sub_id,
                epoch,
                recovered_epoch,
            },
            answer,
        ))
    }

    /// Registers a standing continuous query on the uncertain catalog.
    pub fn subscribe_uncertain(
        &mut self,
        request: &UncertainRequest,
        slack: f64,
    ) -> Result<(SubAck, QueryAnswer), ClientError> {
        self.write_buf.clear();
        protocol::encode_subscribe_uncertain(&mut self.write_buf, slack, request)?;
        self.send()?;
        self.expect_frame(opcode::SUB_ACK)?;
        let mut answer = QueryAnswer::default();
        let (_, sub_id, epoch, recovered_epoch) =
            protocol::decode_sub_ack_into(&self.read_buf[2..], &mut answer)?;
        Ok((
            SubAck {
                sub_id,
                epoch,
                recovered_epoch,
            },
            answer,
        ))
    }

    /// Drops a standing query; `true` when the server knew the id.
    pub fn unsubscribe(&mut self, target: CommitTarget, sub_id: u64) -> Result<bool, ClientError> {
        self.write_buf.clear();
        protocol::encode_unsubscribe(&mut self.write_buf, target, sub_id);
        self.send()?;
        self.expect_frame(opcode::UNSUB_DONE)?;
        Ok(protocol::decode_unsub_done(&self.read_buf[2..])?)
    }

    /// Moves a subscription's issuer and receives the tick's delta
    /// into a reusable slot (allocation-free once warm — the
    /// `subscribers` load scenario's steady loop runs through this).
    ///
    /// Commit-pushed NOTIFY frames that arrive before the tick's
    /// response are queued; drain them with
    /// [`Client::take_notification`] **and apply them first** — they
    /// precede the tick's delta on the wire, and deltas compose in
    /// order.
    pub fn tick_into(
        &mut self,
        target: CommitTarget,
        sub_id: u64,
        pdf: &PdfKind,
        note: &mut Notification,
    ) -> Result<(), ClientError> {
        self.write_buf.clear();
        protocol::encode_tick(&mut self.write_buf, target, sub_id, pdf)?;
        self.send()?;
        loop {
            self.expect_frame(opcode::NOTIFY)?;
            protocol::decode_notify_into(&self.read_buf[2..], note)?;
            if note.cause == NotifyCause::Tick {
                // A tick response for some other subscription means the
                // stream is desynchronized — a typed error the caller
                // can recover from (reconnect), never a panic.
                if note.target != target || note.sub_id != sub_id {
                    return Err(
                        WireError::Malformed("tick response for another subscription").into(),
                    );
                }
                return Ok(());
            }
            // A commit push raced in front of the response: queue it
            // (clones — the racing-push path is not the steady loop).
            self.pending.push_back(note.clone());
        }
    }

    /// Next queued pushed notification, in arrival order.
    pub fn take_notification(&mut self) -> Option<Notification> {
        self.pending.pop_front()
    }

    /// Waits up to `timeout` for a pushed notification: drains the
    /// queue first, then polls the socket. `Ok(None)` means nothing
    /// arrived in time; the connection is unharmed either way.
    pub fn poll_notification(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<Notification>, ClientError> {
        if let Some(note) = self.pending.pop_front() {
            return Ok(Some(note));
        }
        // Peek with a timeout so a quiet socket consumes nothing; a
        // positive peek means at least the length prefix is en route
        // and the normal (blocking) read path can take over. A zero
        // timeout would be rejected by `set_read_timeout`; clamp it to
        // the shortest wait instead so `Duration::ZERO` acts as the
        // natural non-blocking poll.
        self.stream
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        let mut probe = [0u8; 1];
        let peeked = self.stream.peek(&mut probe);
        self.stream.set_read_timeout(None)?;
        match peeked {
            Ok(0) => {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )))
            }
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(None)
            }
            Err(e) => return Err(ClientError::Io(e)),
        }
        let op = self.recv()?;
        if op != opcode::NOTIFY {
            return Err(ClientError::Unexpected { opcode: op });
        }
        let mut note = Notification::default();
        protocol::decode_notify_into(&self.read_buf[2..], &mut note)?;
        Ok(Some(note))
    }
}
