//! # iloc-index
//!
//! Spatial access methods built from scratch for the `iloc` workspace,
//! replacing the Spatial Index Library the paper used:
//!
//! * [`rtree`] — a Guttman R-tree with quadratic node splitting and
//!   Sort-Tile-Recursive (STR) bulk loading; the paper's default index
//!   (Section 4.3).
//! * [`gridfile`] — a grid file (Nievergelt et al.), the alternative
//!   index the paper mentions; used by the index ablation experiment.
//! * [`pti`] — the **Probability Threshold Index** of Cheng et al.
//!   (VLDB'04) as summarised in Section 5.3: an R-tree whose internal
//!   entries additionally store one merged MBR per U-catalog level so
//!   that constrained queries (C-IUQ) prune whole subtrees.
//! * [`naive`] — a linear-scan baseline that higher-level tests and
//!   experiments compare the indexes against.
//!
//! All indexes count node/bucket accesses through [`AccessStats`],
//! giving the experiments a machine-independent I/O metric alongside
//! wall-clock time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gridfile;
pub mod naive;
pub mod pti;
pub mod rtree;
pub mod stats;
pub mod traits;

pub use gridfile::GridFile;
pub use naive::NaiveIndex;
pub use pti::{Pti, PtiParams, PtiQuery};
pub use rtree::{RTree, RTreeParams, SplitPolicy};
pub use stats::AccessStats;
pub use traits::{RangeIndex, TraversalScratch};
