//! Object-level pruning for constrained queries (paper Section 5.2).
//!
//! Given a C-IUQ with threshold `Qp`, each candidate uncertain object
//! is put through three increasingly clever tests before any
//! probability integral is evaluated:
//!
//! * **Strategy 1** — if the region the object could possibly qualify
//!   from, `Ui ∩ (R ⊕ U0)`, lies entirely in one of the object's
//!   `m`-tails (beyond `ri(m)` / `li(m)` / `ti(m)` / `bi(m)`) for the
//!   largest stored `m ≤ Qp`, then `pi ≤ m ≤ Qp`: prune.
//! * **Strategy 2** — if `Ui` lies completely outside the issuer's
//!   `M`-expanded-query (`M ≤ Qp`), every dual point of the object has
//!   `Q < M`, hence `pi < Qp`: prune.
//! * **Strategy 3** — when neither single test fires, combine them:
//!   find the smallest stored `dmin ≥ Qp` whose tail test passes and
//!   the smallest stored `qmin ≥ Qp` whose expanded-query test passes;
//!   then `pi ≤ qmin · dmin`, so if `qmin · dmin < Qp`: prune.

use iloc_geometry::Rect;
use iloc_uncertainty::UncertainObject;

use crate::expand::p_expanded_from_bound;
use crate::query::{Issuer, RangeSpec};

/// Pre-computed per-query pruning context shared by all candidates.
#[derive(Debug, Clone, Copy)]
pub struct PruneContext<'a> {
    /// Probability threshold `Qp`.
    pub qp: f64,
    /// `R ⊕ U0`.
    pub expanded: Rect,
    /// The issuer's conservative `M`-expanded query (`M ≤ Qp`).
    pub p_expanded: Rect,
    /// The issuer (for Strategy 3's `qmin` search).
    pub issuer: &'a Issuer,
    /// Query shape (to build `qmin`-expanded queries).
    pub range: RangeSpec,
}

/// Which test, if any, eliminated the candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneOutcome {
    /// Object's p-bound tail test (Strategy 1).
    Strategy1,
    /// Issuer's p-expanded-query test (Strategy 2).
    Strategy2,
    /// Product rule `qmin · dmin < Qp` (Strategy 3).
    Strategy3,
    /// Not prunable without computing `pi`.
    Keep,
}

/// `true` when `region` lies entirely in one of `bound`'s four tails
/// (the side tests shared by Strategies 1 and 3 and by the PTI).
#[inline]
fn in_tail(region: Rect, bound: Rect) -> bool {
    region.min.x >= bound.max.x
        || region.max.x <= bound.min.x
        || region.min.y >= bound.max.y
        || region.max.y <= bound.min.y
}

/// Strategy 1 in isolation: the possible-qualification region
/// `Ui ∩ (R ⊕ U0)` lies in a `≤ Qp` tail of the object's own pdf
/// (or is empty, in which case Lemma 1 already rules the object out).
pub fn strategy1_prunes(object: &UncertainObject, ctx: &PruneContext<'_>) -> bool {
    let overlap = object.region().intersect(ctx.expanded);
    if overlap.is_empty() {
        return true;
    }
    let own = object.catalog().best_at_most(ctx.qp);
    own.p > 0.0 && in_tail(overlap, own.rect)
}

/// Strategy 2 in isolation: `Ui` lies completely outside the issuer's
/// conservative `M`-expanded query.
pub fn strategy2_prunes(object: &UncertainObject, ctx: &PruneContext<'_>) -> bool {
    !object.region().overlaps(ctx.p_expanded)
}

/// Strategy 3 in isolation: the `qmin · dmin < Qp` product rule.
pub fn strategy3_prunes(object: &UncertainObject, ctx: &PruneContext<'_>) -> bool {
    let ui = object.region();
    let overlap = ui.intersect(ctx.expanded);
    if overlap.is_empty() {
        return false; // attributed to Strategy 1
    }
    let dmin = object
        .catalog()
        .at_least(ctx.qp)
        .find(|b| in_tail(overlap, b.rect))
        .map(|b| b.p);
    let qmin = ctx
        .issuer
        .catalog()
        .at_least(ctx.qp)
        .find(|b| !ui.overlaps(p_expanded_from_bound(b, ctx.range)))
        .map(|b| b.p);
    matches!((dmin, qmin), (Some(d), Some(q)) if q * d < ctx.qp)
}

/// Applies Strategies 1–3 in the paper's order (cheapest test first)
/// and reports which one, if any, eliminated the candidate.
pub fn try_prune(object: &UncertainObject, ctx: &PruneContext<'_>) -> PruneOutcome {
    if strategy2_prunes(object, ctx) {
        return PruneOutcome::Strategy2;
    }
    if strategy1_prunes(object, ctx) {
        return PruneOutcome::Strategy1;
    }
    if strategy3_prunes(object, ctx) {
        return PruneOutcome::Strategy3;
    }
    PruneOutcome::Keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::{minkowski_query, p_expanded_query};
    use crate::integrate::Integrator;
    use crate::stats::QueryStats;
    use iloc_geometry::Point;
    use iloc_uncertainty::{UncertainObject, UniformPdf};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ctx<'a>(issuer: &'a Issuer, range: RangeSpec, qp: f64) -> PruneContext<'a> {
        let expanded = minkowski_query(issuer, range);
        let (_, p_expanded) = p_expanded_query(issuer, range, qp);
        PruneContext {
            qp,
            expanded,
            p_expanded,
            issuer,
            range,
        }
    }

    fn obj(region: Rect) -> UncertainObject {
        UncertainObject::new(0u64, UniformPdf::new(region))
    }

    #[test]
    fn strategy2_fires_outside_p_expanded_query() {
        let issuer = Issuer::uniform(Rect::from_coords(0.0, 0.0, 100.0, 100.0));
        let range = RangeSpec::square(20.0);
        // With Qp = 0.5 the issuer's 0.5-bound collapses to the centre
        // point (50,50), so the p-expanded query is [30,70]². An object
        // inside the Minkowski sum but outside that must be pruned by
        // Strategy 2.
        let c = ctx(&issuer, range, 0.5);
        let o = obj(Rect::from_coords(95.0, 95.0, 118.0, 118.0));
        assert!(
            o.region().overlaps(c.expanded),
            "test setup: in Minkowski sum"
        );
        assert_eq!(try_prune(&o, &c), PruneOutcome::Strategy2);
    }

    #[test]
    fn strategy1_fires_when_overlap_in_own_tail() {
        let issuer = Issuer::uniform(Rect::from_coords(0.0, 0.0, 100.0, 100.0));
        let range = RangeSpec::square(20.0);
        let c = ctx(&issuer, range, 0.3);
        // Wide object whose left sliver only pokes into the expanded
        // query: the overlap is left of its own l(0.3) line.
        // Object on [80, 380] × [40, 60]: it overlaps the 0.3-expanded
        // query [10, 90]² (so Strategy 2 cannot fire), the expanded
        // query is [-20, 120]², the overlap is [80, 120] × [40, 60],
        // and l(0.3) = 80 + 0.3·300 = 170 > 120 → left-tail prune.
        let o = obj(Rect::from_coords(80.0, 40.0, 380.0, 60.0));
        assert_eq!(try_prune(&o, &c), PruneOutcome::Strategy1);
    }

    #[test]
    fn keep_when_no_test_applies() {
        let issuer = Issuer::uniform(Rect::from_coords(0.0, 0.0, 100.0, 100.0));
        let range = RangeSpec::square(30.0);
        let c = ctx(&issuer, range, 0.2);
        // Object dead-centre on the issuer: certainly not prunable.
        let o = obj(Rect::from_coords(40.0, 40.0, 60.0, 60.0));
        assert_eq!(try_prune(&o, &c), PruneOutcome::Keep);
    }

    #[test]
    fn pruning_is_sound_on_random_configurations() {
        // Soundness: anything pruned must truly have pi < qp (we allow
        // pi == qp on the boundary, which has measure zero and matches
        // the paper's usage).
        let mut rng = StdRng::seed_from_u64(33);
        let mut pruned = 0usize;
        for trial in 0..300 {
            let issuer = Issuer::uniform(Rect::centered(
                Point::new(rng.gen_range(100.0..900.0), rng.gen_range(100.0..900.0)),
                rng.gen_range(10.0..120.0),
                rng.gen_range(10.0..120.0),
            ));
            let range = RangeSpec::new(rng.gen_range(10.0..150.0), rng.gen_range(10.0..150.0));
            let qp = rng.gen_range(0.05..0.9);
            let c = ctx(&issuer, range, qp);
            let o = obj(Rect::centered(
                Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)),
                rng.gen_range(5.0..200.0),
                rng.gen_range(5.0..200.0),
            ));
            let outcome = try_prune(&o, &c);
            if outcome != PruneOutcome::Keep {
                pruned += 1;
                let mut stats = QueryStats::new();
                let mut r = StdRng::seed_from_u64(trial);
                let pi = Integrator::Exact.object_probability(
                    issuer.pdf(),
                    range,
                    o.pdf(),
                    c.expanded,
                    &mut r,
                    &mut stats,
                );
                assert!(
                    pi <= qp + 1e-9,
                    "trial {trial}: pruned by {outcome:?} but pi={pi} > qp={qp}"
                );
            }
        }
        assert!(pruned > 20, "test should exercise pruning ({pruned})");
    }

    #[test]
    fn strategy3_product_rule_fires() {
        // Construct a configuration where both single tests fail but
        // the product rule succeeds: choose Qp = 0.3 and arrange the
        // object so the overlap crosses its 0.3 line but is inside its
        // 0.4 tail, and Ui crosses the 0.3-expanded query but is
        // outside the 0.4-expanded one. Then qmin = dmin = 0.4 and
        // 0.16 < 0.3 prunes.
        let issuer = Issuer::uniform(Rect::from_coords(0.0, 0.0, 100.0, 100.0));
        let range = RangeSpec::square(10.0);
        let qp = 0.3;
        let c = ctx(&issuer, range, qp);
        // p-expanded(0.3) = [30,70]+±10 → [20,80]²; p-expanded(0.4) =
        // [40,60]±10 → [30,70]².
        // Expanded = [-10,110]².
        // Object x-range [72, 132]: overlaps pexp(0.3) (x ≤ 80) but is
        // outside pexp(0.4) (x ≥ 70 boundary: 72 > 70 ✓ outside).
        // Its own l(0.4) = 72 + 0.4·60 = 96 < overlap? overlap x =
        // [72, 110]; need overlap inside a 0.4 tail: right of r(0.4) =
        // 132−24 = 108? No. Use the left tail: l(0.4) = 96; overlap
        // must be ≤ 96 ... overlap is [72,110]: crosses. Shrink the
        // object: x ∈ [72, 300]: l(0.4) = 72+91.2=163.2, overlap =
        // [72, 110] ≤ 163.2 → inside left 0.4-tail ✓; l(0.3) =
        // 72+68.4 = 140.4 → also inside 0.3 tail... that would fire S1.
        // S1 uses best_at_most(0.3) = level 0.3: overlap [72,110] is
        // left of l(0.3)=140.4 → S1 fires first. To *demonstrate* S3 we
        // need the S1 level-0.3 test to fail: overlap must cross
        // l(0.3) but stay under l(0.4). l(0.3)=72+0.3·W,
        // l(0.4)=72+0.4·W; need 72+0.3W < 110 < 72+0.4W → 95 < W <
        // 126.67. Take W = 100: object x ∈ [72, 172], l(0.3)=102,
        // l(0.4)=112. Overlap=[72,110]: crosses 102, under 112. ✓
        // y: keep trivially overlapping (object y = issuer y range).
        let o = obj(Rect::from_coords(72.0, 0.0, 172.0, 100.0));
        assert_eq!(try_prune(&o, &c), PruneOutcome::Strategy3);
    }
}
