//! Static dispatch over the workspace's concrete pdfs.
//!
//! Objects and issuers used to hold their pdf behind `Arc<dyn
//! LocationPdf>`, which put **two** virtual calls on every refinement
//! (`evaluator → pdf`) and kept the closed-form math of
//! `iloc-core::integrate` from inlining. [`PdfKind`] replaces that with
//! an enum over the concrete pdfs the query hot path meets — uniform
//! (the paper's default), truncated Gaussian (Figure 13) and disc —
//! plus a [`SharedPdf`] escape hatch for everything else (histogram,
//! mixture, user-defined). All [`LocationPdf`] methods dispatch with an
//! inlinable `match`, so a pipeline monomorphised over `PdfKind`
//! compiles the uniform/uniform closed form down to straight-line
//! arithmetic.

use std::sync::Arc;

use iloc_geometry::{Interval, Point, Rect};
use rand::RngCore;

use crate::disc::DiscPdf;
use crate::gaussian::TruncatedGaussianPdf;
use crate::histogram::HistogramPdf;
use crate::mixture::MixturePdf;
use crate::pdf::{Axis, LocationPdf, SharedPdf};
use crate::uniform::UniformPdf;

/// A location pdf with statically-dispatched concrete fast paths.
///
/// Construct via `From`/`Into` from any of the workspace pdf types (or
/// a [`SharedPdf`]); [`crate::UncertainObject`] and query issuers store
/// their pdfs this way.
#[derive(Debug, Clone)]
pub enum PdfKind {
    /// Uniform density (the paper's default model).
    Uniform(UniformPdf),
    /// Truncated Gaussian (the paper's non-uniform model, Figure 13).
    Gaussian(TruncatedGaussianPdf),
    /// Uniform density over a disc.
    Disc(DiscPdf),
    /// Any other [`LocationPdf`] behind a shared handle (histogram,
    /// mixture, user-defined) — dynamic dispatch, exactly as before.
    Shared(SharedPdf),
}

impl PdfKind {
    /// Wraps an arbitrary pdf implementation in the dynamic variant.
    pub fn shared(pdf: impl LocationPdf + 'static) -> Self {
        PdfKind::Shared(Arc::new(pdf))
    }

    /// The uniform pdf when this is the uniform variant (the key the
    /// closed-form IUQ evaluator switches on).
    #[inline]
    pub fn as_uniform(&self) -> Option<&UniformPdf> {
        match self {
            PdfKind::Uniform(u) => Some(u),
            _ => None,
        }
    }
}

impl From<UniformPdf> for PdfKind {
    fn from(pdf: UniformPdf) -> Self {
        PdfKind::Uniform(pdf)
    }
}

impl From<TruncatedGaussianPdf> for PdfKind {
    fn from(pdf: TruncatedGaussianPdf) -> Self {
        PdfKind::Gaussian(pdf)
    }
}

impl From<DiscPdf> for PdfKind {
    fn from(pdf: DiscPdf) -> Self {
        PdfKind::Disc(pdf)
    }
}

impl From<HistogramPdf> for PdfKind {
    fn from(pdf: HistogramPdf) -> Self {
        PdfKind::shared(pdf)
    }
}

impl From<MixturePdf> for PdfKind {
    fn from(pdf: MixturePdf) -> Self {
        PdfKind::shared(pdf)
    }
}

impl From<SharedPdf> for PdfKind {
    fn from(pdf: SharedPdf) -> Self {
        PdfKind::Shared(pdf)
    }
}

/// Expands one delegating method for every variant.
macro_rules! dispatch {
    ($self:ident, $pdf:ident => $body:expr) => {
        match $self {
            PdfKind::Uniform($pdf) => $body,
            PdfKind::Gaussian($pdf) => $body,
            PdfKind::Disc($pdf) => $body,
            PdfKind::Shared($pdf) => $body,
        }
    };
}

impl LocationPdf for PdfKind {
    #[inline]
    fn region(&self) -> Rect {
        dispatch!(self, pdf => pdf.region())
    }

    #[inline]
    fn density(&self, p: Point) -> f64 {
        dispatch!(self, pdf => pdf.density(p))
    }

    #[inline]
    fn prob_in_rect(&self, r: Rect) -> f64 {
        dispatch!(self, pdf => pdf.prob_in_rect(r))
    }

    #[inline]
    fn marginal_cdf(&self, axis: Axis, v: f64) -> f64 {
        dispatch!(self, pdf => pdf.marginal_cdf(axis, v))
    }

    #[inline]
    fn sample(&self, rng: &mut dyn RngCore) -> Point {
        dispatch!(self, pdf => pdf.sample(rng))
    }

    #[inline]
    fn quantile(&self, axis: Axis, p: f64) -> f64 {
        dispatch!(self, pdf => pdf.quantile(axis, p))
    }

    #[inline]
    fn uniform_region(&self) -> Option<Rect> {
        dispatch!(self, pdf => pdf.uniform_region())
    }

    #[inline]
    fn linear_marginal_integral(&self, axis: Axis, i: Interval, c0: f64, c1: f64) -> Option<f64> {
        dispatch!(self, pdf => pdf.linear_marginal_integral(axis, i, c0, c1))
    }

    #[inline]
    fn marginal_prob(&self, axis: Axis, i: Interval) -> f64 {
        dispatch!(self, pdf => pdf.marginal_prob(axis, i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    type Probe = Box<dyn Fn(&dyn LocationPdf) -> f64>;

    #[test]
    fn every_variant_delegates_like_the_inner_pdf() {
        let region = Rect::from_coords(0.0, 0.0, 10.0, 20.0);
        let probes: Vec<Probe> = vec![
            Box::new(|p| p.prob_in_rect(Rect::from_coords(2.0, 3.0, 8.0, 12.0))),
            Box::new(|p| p.density(Point::new(5.0, 5.0))),
            Box::new(|p| p.marginal_cdf(Axis::X, 4.0)),
            Box::new(|p| p.quantile(Axis::Y, 0.25)),
            Box::new(|p| p.marginal_prob(Axis::X, Interval::new(1.0, 6.0))),
        ];
        let pairs: Vec<(PdfKind, SharedPdf)> = vec![
            (
                UniformPdf::new(region).into(),
                Arc::new(UniformPdf::new(region)),
            ),
            (
                TruncatedGaussianPdf::paper_default(region).into(),
                Arc::new(TruncatedGaussianPdf::paper_default(region)),
            ),
            (
                DiscPdf::new(Point::new(5.0, 10.0), 4.0).into(),
                Arc::new(DiscPdf::new(Point::new(5.0, 10.0), 4.0)),
            ),
            (
                PdfKind::shared(UniformPdf::new(region)),
                Arc::new(UniformPdf::new(region)),
            ),
        ];
        for (kind, reference) in &pairs {
            assert_eq!(kind.region(), reference.region());
            for probe in &probes {
                let a = probe(kind);
                let b = probe(reference.as_ref());
                assert_eq!(a.to_bits(), b.to_bits(), "kind {kind:?} diverged");
            }
            // Sampling consumes the RNG identically.
            let mut r1 = StdRng::seed_from_u64(3);
            let mut r2 = StdRng::seed_from_u64(3);
            assert_eq!(kind.sample(&mut r1), reference.sample(&mut r2));
        }
    }

    #[test]
    fn uniform_fast_path_accessor() {
        let region = Rect::from_coords(0.0, 0.0, 4.0, 4.0);
        let kind = PdfKind::from(UniformPdf::new(region));
        assert!(kind.as_uniform().is_some());
        assert_eq!(kind.uniform_region(), Some(region));
        let gaussian = PdfKind::from(TruncatedGaussianPdf::paper_default(region));
        assert!(gaussian.as_uniform().is_none());
    }

    #[test]
    fn linear_marginal_integral_delegates() {
        let region = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let kind = PdfKind::from(UniformPdf::new(region));
        let inner = UniformPdf::new(region);
        let i = Interval::new(2.0, 7.0);
        assert_eq!(
            kind.linear_marginal_integral(Axis::X, i, 1.0, 0.5),
            inner.linear_marginal_integral(Axis::X, i, 1.0, 0.5)
        );
        // Disc pdfs stay on the sampling paths.
        let disc = PdfKind::from(DiscPdf::new(Point::new(5.0, 5.0), 2.0));
        assert_eq!(disc.linear_marginal_integral(Axis::X, i, 1.0, 0.5), None);
    }
}
