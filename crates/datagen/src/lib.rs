//! # iloc-datagen
//!
//! Seeded synthetic spatial datasets standing in for the TIGER/Line
//! census data used in the paper's evaluation (Section 6.1):
//!
//! * **California** — 62 000 points in a 10 000 × 10 000 space, used as
//!   the point-object database (IPQ / C-IPQ experiments);
//! * **Long Beach** — 53 000 small rectangles in the same space, used
//!   as the uncertain-object database (IUQ / C-IUQ experiments).
//!
//! The real TIGER files are not redistributable here, so we generate
//! data with the properties the experiments actually exercise:
//! identical cardinality and extent, and realistic spatial skew —
//! road-like polylines plus dense urban clusters over a sparse rural
//! background for the point set; clustered, skew-sized parcels for the
//! rectangle set. Every generator is deterministic in its seed, so
//! experiments are exactly repeatable. See DESIGN.md ("Substitutions")
//! for the full rationale.
//!
//! Beyond the static sets, [`updates`] generates seeded
//! arrival/departure/move streams over them — the churn workload the
//! sharded serving layer and the `mixed` throughput scenario consume.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod california;
pub mod io;
pub mod longbeach;
pub mod objects;
pub mod updates;
pub mod workload;

pub use california::california_points;
pub use longbeach::long_beach_rects;
pub use objects::{gaussian_objects, point_objects, uniform_objects};
pub use updates::{PointUpdate, PointUpdateGen, RectUpdate, RectUpdateGen, UpdateMix};
pub use workload::WorkloadGen;

use iloc_geometry::Rect;

/// The 10 000 × 10 000 data space both datasets occupy (paper
/// Section 6.1).
pub const SPACE: Rect = Rect::from_coords(0.0, 0.0, 10_000.0, 10_000.0);

/// Cardinality of the California point set (62 K).
pub const CALIFORNIA_SIZE: usize = 62_000;

/// Cardinality of the Long Beach rectangle set (53 K).
pub const LONG_BEACH_SIZE: usize = 53_000;
