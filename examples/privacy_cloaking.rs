//! Location privacy vs service quality — the trade-off that motivates
//! imprecise queries (paper Section 1 and the authors' earlier privacy
//! work).
//!
//! A user deliberately enlarges ("cloaks") the uncertainty region sent
//! to the service. Bigger cloaks hide the user better but make answers
//! vaguer: qualification probabilities drift toward small values and
//! the high-confidence answer set shrinks while the maybe-set balloons.
//! This example quantifies that with the real query engine.
//!
//! ```text
//! cargo run --release --example privacy_cloaking
//! ```

use iloc::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // A downtown full of restaurants (point objects).
    let restaurants: Vec<Point> = (0..5_000)
        .map(|_| Point::new(rng.gen_range(0.0..10_000.0), rng.gen_range(0.0..10_000.0)))
        .collect();
    let engine = PointEngine::build(restaurants);

    // The user is actually at (5000, 5000) and asks for restaurants
    // within ±400 units, but reports ever larger cloaking boxes.
    let here = Point::new(5_000.0, 5_000.0);
    let range = RangeSpec::square(400.0);
    let qp = 0.8;

    println!("cloak half-size | possible | ≥80% sure | E[in range] | mean p | vagueness (entropy)");
    for cloak in [10.0, 50.0, 100.0, 250.0, 500.0, 1_000.0, 2_000.0] {
        let issuer = Issuer::uniform(Rect::centered(here, cloak, cloak));
        let all = engine.ipq(&issuer, range);
        let sure = engine.cipq(&issuer, range, qp, CipqStrategy::PExpanded);
        let q = assess(&all);
        println!(
            "{:>15} | {:>8} | {:>9} | {:>11.1} | {:>6.3} | {:>19.3}",
            cloak,
            q.answers,
            sure.results.len(),
            q.expected_result_size,
            q.mean_probability,
            q.mean_entropy,
        );
    }
    println!();
    println!("Reading the table: larger cloaks (more privacy) inflate the");
    println!("maybe-set and starve the high-confidence set — the service-");
    println!("quality cost of location privacy, computed with probabilistic");
    println!("guarantees rather than guesses.");
}
