//! Load generator for the network serving layer.
//!
//! ```text
//! cargo run --release -p iloc-bench --bin loadgen -- [flags]
//!
//! --scenario NAME   net (default): mixed query/update traffic
//!                   subscribers: standing continuous queries ticking
//!                   while an updater commits
//!                   subscribers-c10k: thousands of idle subscriber
//!                   connections multiplexed over a few event loops
//!                   while a small active set ticks under churn
//!                   cluster: the net workload through an iloc-router
//!                   scatter-gathering over N server nodes
//! --addr HOST:PORT  drive an external server (e.g. the `iloc-server`
//!                   binary) — or, for the cluster scenario, an
//!                   external `iloc-router`; without it an in-process
//!                   loopback deployment is spawned
//! --nodes N         cluster nodes behind the in-process router
//!                   (cluster scenario only; default 3)
//! --quick           CI-smoke scale (default: full paper scale)
//! --clients N       query connections / subscribers  (default 4/8)
//! --herd N          idle standing-query connections  (c10k only;
//!                   default 512 quick / 10,000 full, clamped to the
//!                   fd budget and the server's connection capacity)
//! --shards N        shards per catalog           (in-process only)
//! --event-loops N   server event-loop threads    (in-process only;
//!                   --workers is accepted as a legacy alias)
//! --queries N       queries (ticks) per client in the mixed window
//! --rounds N        update batches during the window
//! --updates N       updates per batch
//! --steady N        queries (ticks) in the alloc-gated steady window
//! --seed N          workload seed (default 2007)
//! --check-allocs    exit non-zero unless the steady window performed
//!                   exactly zero server-side allocations per request
//! --max-p99-ms MS   exit non-zero when the mixed-window p99 round
//!                   trip exceeds MS milliseconds (the c10k CI gate)
//! ```
//!
//! The allocation gate reads the **server's own counter** over the
//! wire (stats frames bracketing the steady window), so it works
//! identically against the in-process server and a separate
//! `iloc-server` process — the CI smoke job runs both scenarios
//! against a real server binary. For the `subscribers` scenario the
//! steady window is a fixed-position tick loop: motion inside the safe
//! envelope with no commits, gated at **zero allocations per tick**.

use std::net::SocketAddr;

use iloc_bench::c10k::{self, C10kConfig};
use iloc_bench::cluster::{self, ClusterConfig};
use iloc_bench::net::{run_against, run_in_process, NetConfig};
use iloc_bench::subscribers::{self, SubscribersConfig};
use iloc_server::alloc_count::{self, CountingAllocator};

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn main() {
    alloc_count::mark_installed();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let number = |name: &str, default: usize| -> usize {
        value(name)
            .map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid value for {name}: {v}");
                    std::process::exit(2);
                })
            })
            .unwrap_or(default)
    };

    let quick = flag("--quick");
    let scenario = value("--scenario").unwrap_or_else(|| "net".to_string());
    match scenario.as_str() {
        "net" => {}
        "subscribers" => {
            run_subscribers(quick, &flag, &value, &number);
            return;
        }
        "subscribers-c10k" => {
            run_c10k(quick, &flag, &value, &number);
            return;
        }
        "cluster" => {
            run_cluster(quick, &flag, &value, &number);
            return;
        }
        other => {
            eprintln!(
                "unknown --scenario {other} (expected: net, subscribers, subscribers-c10k, cluster)"
            );
            std::process::exit(2);
        }
    }

    let mut cfg = if quick {
        NetConfig::quick()
    } else {
        NetConfig::full()
    };
    cfg.clients = number("--clients", cfg.clients);
    cfg.shards = number("--shards", cfg.shards);
    cfg.event_loops = number("--event-loops", number("--workers", cfg.event_loops));
    cfg.points = number("--points", cfg.points);
    cfg.uncertain = number("--uncertain", cfg.uncertain);
    cfg.queries_per_client = number("--queries", cfg.queries_per_client);
    cfg.update_rounds = number("--rounds", cfg.update_rounds);
    cfg.updates_per_round = number("--updates", cfg.updates_per_round);
    cfg.steady_queries = number("--steady", cfg.steady_queries);
    cfg.seed = number("--seed", cfg.seed as usize) as u64;

    let report = match value("--addr") {
        Some(addr) => {
            let addr: SocketAddr = addr.parse().unwrap_or_else(|e| {
                eprintln!("invalid --addr {addr}: {e}");
                std::process::exit(2);
            });
            eprintln!(
                "loadgen: driving external server at {addr} with {} clients",
                cfg.clients
            );
            run_against(addr, &cfg)
        }
        None => {
            eprintln!(
                "loadgen: in-process loopback server ({} points, {} uncertain, {} shards, {} event loops)",
                cfg.points,
                cfg.uncertain,
                cfg.shards,
                cfg.server_config().event_loops
            );
            run_in_process(&cfg)
        }
    }
    .unwrap_or_else(|e| {
        eprintln!("loadgen failed: {e}");
        std::process::exit(1);
    });

    println!(
        "net: {} queries from {} clients in {:.3}s -> {:.0} q/s (p50 {:.1}us, p99 {:.1}us)",
        report.queries,
        report.clients,
        report.elapsed.as_secs_f64(),
        report.qps(),
        report.p50.as_secs_f64() * 1e6,
        report.p99.as_secs_f64() * 1e6,
    );
    println!(
        "     {} updates in {} commits interleaved; {} matches returned",
        report.updates_submitted, report.commits, report.results_total
    );
    println!(
        "     server stage split: filter {:.1}ms / prune {:.1}ms / refine {:.1}ms \
         ({:.0}% refine); refine batches {:?}",
        report.stage_filter_nanos as f64 / 1e6,
        report.stage_prune_nanos as f64 / 1e6,
        report.stage_refine_nanos as f64 / 1e6,
        report.refine_share() * 100.0,
        report.refine_batches,
    );
    if report.alloc_counting {
        println!(
            "     steady window: {} queries, {:.3} server allocations/request",
            report.steady_queries, report.steady_allocs_per_request
        );
    } else {
        println!(
            "     steady window: {} queries (server does not count allocations)",
            report.steady_queries
        );
    }

    if flag("--check-allocs") {
        if !report.alloc_counting {
            eprintln!("FAIL: --check-allocs needs a server that counts allocations");
            std::process::exit(1);
        }
        if report.steady_allocs_per_request > 0.0 {
            eprintln!(
                "FAIL: steady-state request path performed {:.3} allocations/request (expected 0)",
                report.steady_allocs_per_request
            );
            std::process::exit(1);
        }
        eprintln!("OK: zero steady-state allocations per request");
    }
}

/// The `cluster` scenario: the `net` workload through an
/// `iloc-router` fanning out to N nodes, gated on the **router's**
/// steady-window allocation counter — the scatter-gather query path
/// must be allocation-free once warm, like the single server's.
fn run_cluster(
    quick: bool,
    flag: &dyn Fn(&str) -> bool,
    value: &dyn Fn(&str) -> Option<String>,
    number: &dyn Fn(&str, usize) -> usize,
) {
    let mut cfg = if quick {
        ClusterConfig::quick()
    } else {
        ClusterConfig::full()
    };
    cfg.nodes = number("--nodes", cfg.nodes);
    cfg.net.clients = number("--clients", cfg.net.clients);
    cfg.net.shards = number("--shards", cfg.net.shards);
    cfg.net.event_loops = number("--event-loops", number("--workers", cfg.net.event_loops));
    cfg.net.points = number("--points", cfg.net.points);
    cfg.net.uncertain = number("--uncertain", cfg.net.uncertain);
    cfg.net.queries_per_client = number("--queries", cfg.net.queries_per_client);
    cfg.net.update_rounds = number("--rounds", cfg.net.update_rounds);
    cfg.net.updates_per_round = number("--updates", cfg.net.updates_per_round);
    cfg.net.steady_queries = number("--steady", cfg.net.steady_queries);
    cfg.net.seed = number("--seed", cfg.net.seed as usize) as u64;

    let report = match value("--addr") {
        Some(addr) => {
            let addr: SocketAddr = addr.parse().unwrap_or_else(|e| {
                eprintln!("invalid --addr {addr}: {e}");
                std::process::exit(2);
            });
            eprintln!(
                "cluster: driving external router at {addr} with {} clients",
                cfg.net.clients
            );
            cluster::run_against(addr, &cfg)
        }
        None => {
            eprintln!(
                "cluster: in-process router over {} nodes ({} points, {} uncertain)",
                cfg.nodes, cfg.net.points, cfg.net.uncertain
            );
            cluster::run_in_process(&cfg)
        }
    }
    .unwrap_or_else(|e| {
        eprintln!("cluster loadgen failed: {e}");
        std::process::exit(1);
    });

    let net = &report.net;
    println!(
        "cluster: {} queries from {} clients in {:.3}s -> {:.0} q/s (p50 {:.1}us, p99 {:.1}us)",
        net.queries,
        net.clients,
        net.elapsed.as_secs_f64(),
        net.qps(),
        net.p50.as_secs_f64() * 1e6,
        net.p99.as_secs_f64() * 1e6,
    );
    println!(
        "     {} updates in {} commits interleaved; {} matches returned",
        net.updates_submitted, net.commits, net.results_total
    );
    for (i, node) in report.nodes.iter().enumerate() {
        println!(
            "     node {i}: {} epochs point/uncertain {}/{}, {} routed, {} merged",
            if node.connected { "up," } else { "DOWN," },
            node.point_epoch,
            node.uncertain_epoch,
            node.routed,
            node.merged,
        );
    }
    if net.alloc_counting {
        println!(
            "     steady window: {} queries, {:.3} router allocations/request",
            net.steady_queries, net.steady_allocs_per_request
        );
    } else {
        println!(
            "     steady window: {} queries (router does not count allocations)",
            net.steady_queries
        );
    }

    if report.nodes.iter().any(|n| !n.connected) {
        eprintln!("FAIL: a cluster node went unhealthy during the run");
        std::process::exit(1);
    }
    if flag("--check-allocs") {
        if !net.alloc_counting {
            eprintln!("FAIL: --check-allocs needs a router that counts allocations");
            std::process::exit(1);
        }
        if net.steady_allocs_per_request > 0.0 {
            eprintln!(
                "FAIL: steady-state scatter-gather path performed {:.3} allocations/request \
                 (expected 0)",
                net.steady_allocs_per_request
            );
            std::process::exit(1);
        }
        eprintln!("OK: zero steady-state allocations per routed request");
    }
}

/// The `subscribers` scenario: standing continuous queries ticking
/// along random walks while an updater commits churn, with a steady
/// fixed-position tick window gated at zero server allocations.
fn run_subscribers(
    quick: bool,
    flag: &dyn Fn(&str) -> bool,
    value: &dyn Fn(&str) -> Option<String>,
    number: &dyn Fn(&str, usize) -> usize,
) {
    let mut cfg = if quick {
        SubscribersConfig::quick()
    } else {
        SubscribersConfig::full()
    };
    cfg.subscribers = number("--clients", cfg.subscribers);
    cfg.shards = number("--shards", cfg.shards);
    cfg.event_loops = number("--event-loops", number("--workers", cfg.event_loops));
    cfg.points = number("--points", cfg.points);
    cfg.ticks_per_sub = number("--queries", cfg.ticks_per_sub);
    cfg.update_rounds = number("--rounds", cfg.update_rounds);
    cfg.updates_per_round = number("--updates", cfg.updates_per_round);
    cfg.steady_ticks = number("--steady", cfg.steady_ticks);
    cfg.seed = number("--seed", cfg.seed as usize) as u64;

    let report = match value("--addr") {
        Some(addr) => {
            let addr: SocketAddr = addr.parse().unwrap_or_else(|e| {
                eprintln!("invalid --addr {addr}: {e}");
                std::process::exit(2);
            });
            eprintln!(
                "subscribers: driving external server at {addr} with {} standing queries",
                cfg.subscribers
            );
            subscribers::run_against(addr, &cfg)
        }
        None => {
            eprintln!(
                "subscribers: in-process loopback server ({} points, {} shards, {} event loops)",
                cfg.points,
                cfg.shards,
                if cfg.event_loops > 0 {
                    cfg.event_loops
                } else {
                    iloc_server::server::ServerConfig::loopback().event_loops
                }
            );
            subscribers::run_in_process(&cfg)
        }
    }
    .unwrap_or_else(|e| {
        eprintln!("subscribers loadgen failed: {e}");
        std::process::exit(1);
    });

    println!(
        "subscribers: {} ticks from {} standing queries in {:.3}s -> {:.0} ticks/s \
         (p50 {:.1}us, p99 {:.1}us)",
        report.ticks,
        report.subscribers,
        report.elapsed.as_secs_f64(),
        report.ticks_per_sec(),
        report.p50.as_secs_f64() * 1e6,
        report.p99.as_secs_f64() * 1e6,
    );
    println!(
        "     {} updates in {} commits interleaved; {} pushed NOTIFYs, {} delta entries applied",
        report.updates_submitted, report.commits, report.pushes, report.delta_entries
    );
    if report.alloc_counting {
        println!(
            "     steady window: {} ticks, {:.3} server allocations/tick",
            report.steady_ticks, report.steady_allocs_per_tick
        );
    } else {
        println!(
            "     steady window: {} ticks (server does not count allocations)",
            report.steady_ticks
        );
    }

    if flag("--check-allocs") {
        if !report.alloc_counting {
            eprintln!("FAIL: --check-allocs needs a server that counts allocations");
            std::process::exit(1);
        }
        if report.steady_allocs_per_tick > 0.0 {
            eprintln!(
                "FAIL: steady-state tick path performed {:.3} allocations/tick (expected 0)",
                report.steady_allocs_per_tick
            );
            std::process::exit(1);
        }
        eprintln!("OK: zero steady-state allocations per tick");
    }
}

/// The `subscribers-c10k` scenario: an idle herd of standing-query
/// connections multiplexed over a few event loops while a small
/// active set ticks under commit churn; gated on steady allocations
/// per tick and (optionally) mixed-window p99.
fn run_c10k(
    quick: bool,
    flag: &dyn Fn(&str) -> bool,
    value: &dyn Fn(&str) -> Option<String>,
    number: &dyn Fn(&str, usize) -> usize,
) {
    let mut cfg = if quick {
        C10kConfig::quick()
    } else {
        C10kConfig::full()
    };
    cfg.herd = number("--herd", cfg.herd);
    cfg.active = number("--clients", cfg.active);
    cfg.shards = number("--shards", cfg.shards);
    cfg.event_loops = number("--event-loops", number("--workers", cfg.event_loops));
    cfg.points = number("--points", cfg.points);
    cfg.ticks_per_active = number("--queries", cfg.ticks_per_active);
    cfg.update_rounds = number("--rounds", cfg.update_rounds);
    cfg.updates_per_round = number("--updates", cfg.updates_per_round);
    cfg.steady_ticks = number("--steady", cfg.steady_ticks);
    cfg.seed = number("--seed", cfg.seed as usize) as u64;

    let report = match value("--addr") {
        Some(addr) => {
            let addr: SocketAddr = addr.parse().unwrap_or_else(|e| {
                eprintln!("invalid --addr {addr}: {e}");
                std::process::exit(2);
            });
            eprintln!(
                "c10k: driving external server at {addr} with a {}-connection herd",
                cfg.herd
            );
            c10k::run_against(addr, &cfg)
        }
        None => {
            eprintln!(
                "c10k: in-process loopback server ({} points, {} shards, {} event loops, \
                 herd target {})",
                cfg.points, cfg.shards, cfg.event_loops, cfg.herd
            );
            c10k::run_in_process(&cfg)
        }
    }
    .unwrap_or_else(|e| {
        eprintln!("c10k loadgen failed: {e}");
        std::process::exit(1);
    });

    println!(
        "c10k: {} idle subscribers over {} event loops (server gauge {}), \
         herd setup {:.3}s",
        report.herd,
        report.server_event_loops,
        report.server_connections,
        report.setup.as_secs_f64(),
    );
    println!(
        "     {} ticks from {} active subscribers in {:.3}s -> {:.0} ticks/s \
         (p50 {:.1}us, p99 {:.1}us)",
        report.ticks,
        report.active,
        report.elapsed.as_secs_f64(),
        report.ticks_per_sec(),
        report.p50.as_secs_f64() * 1e6,
        report.p99.as_secs_f64() * 1e6,
    );
    println!(
        "     {} updates in {} commits interleaved; {} pushed NOTIFYs to active subs; \
         {} pushes dropped server-side",
        report.updates_submitted, report.commits, report.pushes, report.dropped_pushes
    );
    if report.alloc_counting {
        println!(
            "     steady window: {} ticks with the herd connected, {:.3} server allocations/tick",
            report.steady_ticks, report.steady_allocs_per_tick
        );
    } else {
        println!(
            "     steady window: {} ticks (server does not count allocations)",
            report.steady_ticks
        );
    }

    if report.dropped_pushes > 0 {
        eprintln!(
            "FAIL: server dropped {} pushes on an idle herd (expected 0)",
            report.dropped_pushes
        );
        std::process::exit(1);
    }
    if let Some(max_ms) = value("--max-p99-ms") {
        let max_ms: f64 = max_ms.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --max-p99-ms: {max_ms}");
            std::process::exit(2);
        });
        let p99_ms = report.p99.as_secs_f64() * 1e3;
        if p99_ms > max_ms {
            eprintln!("FAIL: mixed-window tick p99 {p99_ms:.2}ms exceeds the {max_ms:.2}ms gate");
            std::process::exit(1);
        }
        eprintln!("OK: tick p99 {p99_ms:.2}ms within the {max_ms:.2}ms gate");
    }
    if flag("--check-allocs") {
        if !report.alloc_counting {
            eprintln!("FAIL: --check-allocs needs a server that counts allocations");
            std::process::exit(1);
        }
        if report.steady_allocs_per_tick > 0.0 {
            eprintln!(
                "FAIL: steady-state tick path performed {:.3} allocations/tick with the herd \
                 connected (expected 0)",
                report.steady_allocs_per_tick
            );
            std::process::exit(1);
        }
        eprintln!("OK: zero steady-state allocations per tick with the herd connected");
    }
}
