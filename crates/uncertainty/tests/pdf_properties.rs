//! Property suite run uniformly over **every** `LocationPdf`
//! implementation: the trait contract the rest of the workspace builds
//! on (query evaluation, p-bounds, PTI) must hold for uniform,
//! truncated-Gaussian, histogram, disc and mixture pdfs alike.

use std::sync::Arc;

use iloc_geometry::{Point, Rect};
use iloc_uncertainty::{
    Axis, DiscPdf, HistogramPdf, MixturePdf, PBound, SharedPdf, TruncatedGaussianPdf, UCatalog,
    UniformPdf,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: parameters for one pdf of each kind over a region near
/// the origin.
fn any_pdf() -> impl Strategy<Value = SharedPdf> {
    let region = (0.0..500.0f64, 0.0..500.0f64, 10.0..200.0f64, 10.0..200.0f64)
        .prop_map(|(x, y, w, h)| Rect::centered(Point::new(x, y), w, h));
    prop_oneof![
        region
            .clone()
            .prop_map(|r| Arc::new(UniformPdf::new(r)) as SharedPdf),
        region
            .clone()
            .prop_map(|r| Arc::new(TruncatedGaussianPdf::paper_default(r)) as SharedPdf),
        (region.clone(), proptest::collection::vec(0.1..5.0f64, 12))
            .prop_map(|(r, w)| Arc::new(HistogramPdf::new(r, 4, 3, &w)) as SharedPdf),
        (0.0..500.0f64, 0.0..500.0f64, 10.0..150.0f64)
            .prop_map(|(x, y, rad)| Arc::new(DiscPdf::new(Point::new(x, y), rad)) as SharedPdf),
        (region.clone(), region).prop_map(|(a, b)| {
            Arc::new(MixturePdf::bimodal(
                0.6,
                UniformPdf::new(a),
                0.4,
                TruncatedGaussianPdf::paper_default(b),
            )) as SharedPdf
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Total mass over the region is 1; a covering rectangle sees all
    /// of it; a far rectangle none.
    #[test]
    fn mass_axioms(pdf in any_pdf()) {
        let region = pdf.region();
        prop_assert!((pdf.prob_in_rect(region) - 1.0).abs() < 1e-6);
        prop_assert!((pdf.prob_in_rect(region.expand(100.0, 100.0)) - 1.0).abs() < 1e-6);
        let far = region.translate(10_000.0, 10_000.0);
        prop_assert!(pdf.prob_in_rect(far).abs() < 1e-12);
    }

    /// Rectangle mass is monotone under inclusion.
    #[test]
    fn mass_monotone(pdf in any_pdf(), shrink in 0.0..0.45f64) {
        let region = pdf.region();
        let inner = region.expand(-shrink * region.width() / 2.0, -shrink * region.height() / 2.0);
        prop_assert!(pdf.prob_in_rect(inner) <= pdf.prob_in_rect(region) + 1e-12);
    }

    /// Marginal CDFs are monotone with the right limits.
    #[test]
    fn marginal_cdf_axioms(pdf in any_pdf()) {
        for axis in [Axis::X, Axis::Y] {
            let side = match axis {
                Axis::X => pdf.region().x_interval(),
                Axis::Y => pdf.region().y_interval(),
            };
            prop_assert!(pdf.marginal_cdf(axis, side.lo - 1.0).abs() < 1e-12);
            prop_assert!((pdf.marginal_cdf(axis, side.hi + 1.0) - 1.0).abs() < 1e-12);
            let mut prev: f64 = 0.0;
            for k in 0..=20 {
                let v = side.lo + side.length() * k as f64 / 20.0;
                let c = pdf.marginal_cdf(axis, v);
                prop_assert!(c >= prev - 1e-12, "cdf not monotone at {v}");
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&c));
                prev = c;
            }
        }
    }

    /// `quantile` is a right-inverse of the marginal CDF.
    #[test]
    fn quantile_inverts_cdf(pdf in any_pdf(), p in 0.01..0.99f64) {
        for axis in [Axis::X, Axis::Y] {
            let q = pdf.quantile(axis, p);
            prop_assert!(
                (pdf.marginal_cdf(axis, q) - p).abs() < 1e-6,
                "axis {axis:?}: cdf(quantile({p})) = {}",
                pdf.marginal_cdf(axis, q)
            );
        }
    }

    /// p-bounds nest and carry exactly the advertised tail masses.
    #[test]
    fn pbounds_nest_and_cut_tails(pdf in any_pdf(), p in 0.05..0.5f64) {
        let b = PBound::compute(pdf.as_ref(), p);
        prop_assert!(pdf.region().contains_rect(b.rect));
        // Tail masses via the marginal CDFs.
        prop_assert!((pdf.marginal_cdf(Axis::X, b.left()) - p).abs() < 1e-6);
        prop_assert!((1.0 - pdf.marginal_cdf(Axis::X, b.right()) - p).abs() < 1e-6);
        prop_assert!((pdf.marginal_cdf(Axis::Y, b.bottom()) - p).abs() < 1e-6);
        prop_assert!((1.0 - pdf.marginal_cdf(Axis::Y, b.top()) - p).abs() < 1e-6);
        // Nesting against a smaller p.
        let smaller = PBound::compute(pdf.as_ref(), p / 2.0);
        prop_assert!(smaller.rect.contains_rect(b.rect));
    }

    /// Default catalogs exist, start at the region, and nest.
    #[test]
    fn catalogs_nest(pdf in any_pdf()) {
        let cat = UCatalog::build_default(pdf.as_ref());
        prop_assert_eq!(cat.len(), 6);
        prop_assert_eq!(cat.bounds()[0].rect, pdf.region());
        for pair in cat.bounds().windows(2) {
            prop_assert!(pair[0].rect.contains_rect(pair[1].rect));
        }
    }

    /// Samples land in the region, on positive density.
    #[test]
    fn samples_in_support(pdf in any_pdf(), seed in 0u64..1_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let s = pdf.sample(&mut rng);
            prop_assert!(pdf.region().contains_point(s), "{s} outside region");
            prop_assert!(pdf.density(s) > 0.0, "{s} sampled with zero density");
        }
    }

    /// Density vanishes outside the region and is non-negative inside.
    #[test]
    fn density_support(pdf in any_pdf(), fx in -0.2..1.2f64, fy in -0.2..1.2f64) {
        let r = pdf.region();
        let p = Point::new(
            r.min.x + fx * r.width(),
            r.min.y + fy * r.height(),
        );
        let d = pdf.density(p);
        prop_assert!(d >= 0.0);
        if !r.contains_point(p) {
            prop_assert_eq!(d, 0.0);
        }
    }
}
