//! The blocking TCP query server.
//!
//! ## Architecture
//!
//! ```text
//!                         ┌────────────────────────────┐
//!  accept()  ─────────────▶ listener thread            │
//!                         └──────────┬─────────────────┘
//!                                    │ mpsc<TcpStream>
//!                  ┌─────────────────┼─────────────────┐
//!                  ▼                 ▼                 ▼
//!           worker 0          worker 1     …    worker N-1
//!        (ShardServer ×2,  long-lived request/answer slots,
//!         reusable frame buffers — the zero-alloc hot path)
//!                  │ reads: pinned epoch snapshot
//!                  │ writes: WriterMsg over one mpsc channel
//!                  ▼
//!           writer thread ── submit / commit on the ShardedEngines
//! ```
//!
//! * **Queries** never leave their worker: the worker decodes into its
//!   long-lived request slot, executes against its pinned epoch
//!   snapshot through a warm [`ShardServer`] (rebinding — two atomic
//!   increments, no allocation — when the engine has published a newer
//!   epoch), and encodes the answer from its reusable buffer. After
//!   warm-up the whole request path performs **zero heap
//!   allocations**; the CI smoke job gates on this over a real socket.
//! * **Updates and commits** route through the single writer thread,
//!   so every mutation of the sharded engines is serialized in one
//!   place and the [`iloc_core::serve`] snapshot-consistency invariant
//!   ("no torn epochs, ever") holds across the network boundary
//!   exactly as it does in process. A client's own update → commit
//!   order is preserved end to end (same worker, same channel, FIFO).
//! * **Subscriptions live with their connection**: each worker keeps a
//!   [`SubscriptionRegistry`] per catalog for the connection it is
//!   serving. Before every frame — and on every idle poll tick — the
//!   worker checks whether the writer published a new epoch and pumps
//!   the registries: the commit's dirty region stabs the envelope
//!   index, only the affected subscriptions re-evaluate, and their
//!   deltas are **pushed** as NOTIFY frames (between, never inside,
//!   responses — the stream stays one-response-per-request plus
//!   interleaved pushes). Steady-state TICKs inside the safe envelope
//!   stay on the zero-allocation budget. Subscriptions end with the
//!   connection.
//! * **Idle connections are reaped**: with
//!   [`ServerConfig::idle_timeout`] set, a connection that sends no
//!   frame for that long is closed, so an abandoned subscriber socket
//!   cannot pin a worker slot forever. Any frame re-arms the deadline;
//!   PING is the intended keepalive.
//! * **Connections map to workers**: a worker serves one connection at
//!   a time, frame by frame, then takes the next waiting connection.
//!   Keep client counts at or below the worker count for latency;
//!   extra connections queue.
//!
//! Malformed frames are answered with error frames (see
//! [`crate::protocol`]); a frame that cannot be delimited (wild length
//! prefix, wrong version) poisons the connection and closes it. A
//! panic while serving one frame — which validation should make
//! unreachable — is caught, answered with an `Internal` error frame,
//! and quarantined by discarding that worker's state and connection.

use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

use iloc_core::durable::{CatalogRecovery, DurableCatalog, FsyncPolicy, StoreConfig, StoreError};
use iloc_core::pipeline::{PointRequest, UncertainRequest};
use iloc_core::serve::{CommitReport, ShardServer};
use iloc_core::stats::REFINE_BATCH_BUCKETS;
use iloc_core::subscribe::SubscriptionRegistry;
use iloc_core::{Issuer, PointEngine, QueryAnswer, QueryStats, RangeSpec, UncertainEngine};
use iloc_geometry::Rect;
use iloc_uncertainty::{PointObject, UncertainObject};

use crate::alloc_count;
use crate::protocol::{
    self, opcode, CommitTarget, CountersView, ErrorCode, NotifyCause, WireError, WireUpdate,
    PROTOCOL_VERSION,
};

/// Standing subscriptions one connection may hold per catalog;
/// exceeding it is answered with
/// [`ErrorCode::TooManySubscriptions`].
pub const MAX_SUBSCRIPTIONS: usize = 4_096;

/// The two catalogs one server instance serves. Transient by default
/// ([`QueryServer::new`]); with a data directory ([`QueryServer::open`])
/// each catalog carries a write-ahead log on its commit path and
/// recovers from the newest checkpoint plus log replay.
#[derive(Debug)]
pub struct Engines {
    /// Point-object catalog (IPQ / C-IPQ).
    pub point: DurableCatalog<PointEngine>,
    /// Uncertain-object catalog (IUQ / C-IUQ).
    pub uncertain: DurableCatalog<UncertainEngine>,
}

/// Durability settings for [`QueryServer::open`].
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Directory holding both catalogs' stores (subdirectories
    /// `point/` and `uncertain/` are created inside it).
    pub data_dir: PathBuf,
    /// When WAL appends reach the disk.
    pub fsync: FsyncPolicy,
    /// Background-checkpoint a catalog once its epoch has advanced
    /// this many commits past its last checkpoint (0 disables the
    /// background checkpointer; a final checkpoint is still written on
    /// graceful shutdown).
    pub checkpoint_every: u64,
}

impl DurabilityOptions {
    /// Durable store in `data_dir` with fsync-always and a checkpoint
    /// every 256 commits.
    pub fn new(data_dir: impl Into<PathBuf>) -> DurabilityOptions {
        DurabilityOptions {
            data_dir: data_dir.into(),
            fsync: FsyncPolicy::Always,
            checkpoint_every: 256,
        }
    }
}

/// What [`QueryServer::open`] recovered, per catalog.
#[derive(Debug, Clone)]
pub struct RecoveryInfo {
    /// Point-catalog recovery report.
    pub point: CatalogRecovery,
    /// Uncertain-catalog recovery report.
    pub uncertain: CatalogRecovery,
}

/// Tunables for one listening server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`"127.0.0.1:0"` picks an ephemeral loopback
    /// port; read the real one from [`ServerHandle::addr`]).
    pub addr: String,
    /// Fixed worker-pool size. One worker serves one connection at a
    /// time, so keep this at or above the expected client count.
    pub workers: usize,
    /// Frames longer than this are rejected and the connection closed.
    pub max_frame_len: u32,
    /// Granularity at which blocked reads re-check the shutdown flag
    /// and pump subscription notifications.
    pub idle_poll: Duration,
    /// Close a connection that sends no frame for this long (any
    /// frame re-arms it; PING is the cheapest keepalive). `None`
    /// disables reaping — fine for tests and in-process load
    /// generation; the standalone binary defaults it on so abandoned
    /// subscriber sockets cannot pin worker slots forever.
    pub idle_timeout: Option<Duration>,
}

impl ServerConfig {
    /// Loopback on an ephemeral port with four workers — what tests
    /// and in-process load generation want.
    pub fn loopback() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_frame_len: protocol::MAX_FRAME_LEN,
            idle_poll: Duration::from_millis(50),
            idle_timeout: None,
        }
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig::loopback()
    }
}

/// What one catalog mutation request asks the writer thread to do.
enum WriterMsg {
    /// Buffer updates; reply with how many were accepted plus the
    /// drained vector, so the worker's decode buffer keeps its
    /// capacity across batches.
    Submit(Vec<WireUpdate>, mpsc::SyncSender<(u32, Vec<WireUpdate>)>),
    /// Commit one catalog; reply with the report (or the durable
    /// store's failure — the epoch did not publish).
    Commit(
        CommitTarget,
        mpsc::SyncSender<Result<CommitReport, StoreError>>,
    ),
}

/// Process-wide pipeline-stage accounting: every answered query's
/// per-stage timers and refine-batch histogram are folded in here, so
/// one STATS probe tells an operator where the fleet's query time goes
/// (and how big the SoA refine batches actually run) without touching
/// the query hot path beyond a handful of relaxed adds.
#[derive(Debug, Default)]
struct StageCounters {
    filter_nanos: AtomicU64,
    prune_nanos: AtomicU64,
    refine_nanos: AtomicU64,
    refine_batches: [AtomicU64; REFINE_BATCH_BUCKETS],
}

impl StageCounters {
    /// Folds one answered query's stage stats in.
    fn absorb(&self, stats: &QueryStats) {
        self.filter_nanos
            .fetch_add(stats.filter_nanos, Ordering::Relaxed);
        self.prune_nanos
            .fetch_add(stats.prune_nanos, Ordering::Relaxed);
        self.refine_nanos
            .fetch_add(stats.refine_nanos, Ordering::Relaxed);
        for (slot, &n) in self.refine_batches.iter().zip(&stats.refine_batches) {
            if n != 0 {
                slot.fetch_add(n, Ordering::Relaxed);
            }
        }
    }
}

/// State shared by every serving thread.
struct Shared {
    engines: Arc<Engines>,
    requests_served: AtomicU64,
    stage: StageCounters,
    shutdown: Arc<AtomicBool>,
    max_frame_len: u32,
    workers: u32,
    idle_poll: Duration,
    idle_timeout: Option<Duration>,
    /// Engine epochs this process started at (per catalog) — carried
    /// in every SUB_ACK so reconnecting subscribers detect restarts.
    recovered_epochs: (u64, u64),
}

/// A query server over one pair of sharded catalogs.
///
/// Construction partitions the catalogs; [`QueryServer::start`] binds
/// a listener and spawns the serving threads. The engines stay
/// accessible through [`QueryServer::engines`] — the loopback tests
/// compare wire answers against in-process snapshot execution on the
/// very same engines.
#[derive(Debug)]
pub struct QueryServer {
    engines: Arc<Engines>,
    /// Background-checkpoint cadence in commits (0 = no checkpointer).
    checkpoint_every: u64,
    /// Engine epochs at construction — what SUB_ACK reports so a
    /// reconnecting subscriber can detect a restart.
    recovered_epochs: (u64, u64),
}

impl QueryServer {
    /// Builds the two sharded catalogs (`shards` each) and wraps them
    /// in a transient (in-memory only) server.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn new(
        points: Vec<PointObject>,
        uncertain: Vec<UncertainObject>,
        shards: usize,
    ) -> QueryServer {
        QueryServer {
            engines: Arc::new(Engines {
                point: DurableCatalog::transient(points, shards),
                uncertain: DurableCatalog::transient(uncertain, shards),
            }),
            checkpoint_every: 0,
            recovered_epochs: (0, 0),
        }
    }

    /// Opens (or creates) a durable server in `durability.data_dir`.
    /// A fresh directory is seeded with `points` / `uncertain`; an
    /// existing one **recovers** — the seeds are ignored and each
    /// catalog is rebuilt from its newest valid checkpoint plus WAL
    /// replay, answering bit-identically to the pre-crash process.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn open(
        points: Vec<PointObject>,
        uncertain: Vec<UncertainObject>,
        shards: usize,
        durability: &DurabilityOptions,
    ) -> Result<(QueryServer, RecoveryInfo), StoreError> {
        let point_cfg = StoreConfig {
            dir: durability.data_dir.join("point"),
            fsync: durability.fsync,
        };
        let uncertain_cfg = StoreConfig {
            dir: durability.data_dir.join("uncertain"),
            fsync: durability.fsync,
        };
        let (point, point_rec) = DurableCatalog::open(&point_cfg, shards, move || points)?;
        let (uncertain_cat, uncertain_rec) =
            DurableCatalog::open(&uncertain_cfg, shards, move || uncertain)?;
        let recovered_epochs = (point_rec.epoch, uncertain_rec.epoch);
        Ok((
            QueryServer {
                engines: Arc::new(Engines {
                    point,
                    uncertain: uncertain_cat,
                }),
                checkpoint_every: durability.checkpoint_every,
                recovered_epochs,
            },
            RecoveryInfo {
                point: point_rec,
                uncertain: uncertain_rec,
            },
        ))
    }

    /// The served engines (shared; snapshots taken from here see
    /// exactly the epochs the server serves).
    pub fn engines(&self) -> Arc<Engines> {
        Arc::clone(&self.engines)
    }

    /// Binds `config.addr` and spawns the listener, worker pool and
    /// writer threads. The returned handle owns the threads; dropping
    /// it (or calling [`ServerHandle::shutdown`]) stops them.
    pub fn start(&self, config: &ServerConfig) -> io::Result<ServerHandle> {
        assert!(config.workers > 0, "need at least one worker");
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            engines: Arc::clone(&self.engines),
            requests_served: AtomicU64::new(0),
            stage: StageCounters::default(),
            shutdown: Arc::clone(&shutdown),
            max_frame_len: config.max_frame_len,
            workers: config.workers as u32,
            idle_poll: config.idle_poll,
            idle_timeout: config.idle_timeout,
            recovered_epochs: self.recovered_epochs,
        });

        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let (writer_tx, writer_rx) = mpsc::channel::<WriterMsg>();

        let mut threads = Vec::with_capacity(config.workers + 2);

        {
            let engines = Arc::clone(&self.engines);
            threads.push(
                thread::Builder::new()
                    .name("iloc-writer".to_string())
                    .spawn(move || writer_loop(engines, writer_rx))?,
            );
        }

        for k in 0..config.workers {
            let shared = Arc::clone(&shared);
            let conn_rx = Arc::clone(&conn_rx);
            let writer_tx = writer_tx.clone();
            threads.push(
                thread::Builder::new()
                    .name(format!("iloc-worker-{k}"))
                    .spawn(move || worker_loop(shared, conn_rx, writer_tx))?,
            );
        }
        // The writer exits when the last sender drops: the workers
        // hold the only remaining clones.
        drop(writer_tx);

        {
            let shared = Arc::clone(&shared);
            let idle_poll = config.idle_poll;
            threads.push(
                thread::Builder::new()
                    .name("iloc-listener".to_string())
                    .spawn(move || listener_loop(listener, shared, conn_tx, idle_poll))?,
            );
        }

        if self.checkpoint_every > 0 && self.engines.point.is_durable() {
            let engines = Arc::clone(&self.engines);
            let stop = Arc::clone(&shutdown);
            let every = self.checkpoint_every;
            let poll = config.idle_poll;
            threads.push(
                thread::Builder::new()
                    .name("iloc-checkpoint".to_string())
                    .spawn(move || checkpoint_loop(engines, stop, every, poll))?,
            );
        }

        Ok(ServerHandle {
            addr,
            shutdown,
            threads,
            engines: Arc::clone(&self.engines),
        })
    }
}

/// A running server: its bound address and its threads.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<thread::JoinHandle<()>>,
    engines: Arc<Engines>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server: flags shutdown, wakes the listener, joins
    /// every thread. In-flight frames finish; idle connections close
    /// within the configured poll interval. Dropping the handle does
    /// the same.
    pub fn shutdown(self) {
        drop(self);
    }

    /// Blocks until the server stops (which, absent a shutdown from
    /// another handle-less path, is never) — what the standalone
    /// binary's main thread does.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the listener's blocking accept.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Every serving thread is joined: no more commits can happen.
        // Make the final state durable — fsync any unsynced log tail
        // and write a clean checkpoint, so the next start replays
        // nothing.
        for flushed in [self.engines.point.flush(), self.engines.uncertain.flush()] {
            if let Err(e) = flushed {
                eprintln!("iloc-server: final WAL flush failed: {e}");
            }
        }
        for written in [
            self.engines.point.checkpoint().map(|_| ()),
            self.engines.uncertain.checkpoint().map(|_| ()),
        ] {
            if let Err(e) = written {
                eprintln!("iloc-server: final checkpoint failed: {e}");
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn listener_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    conn_tx: mpsc::Sender<TcpStream>,
    idle_poll: Duration,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(idle_poll));
                if conn_tx.send(stream).is_err() {
                    break;
                }
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept failure (EMFILE, aborted handshake):
                // keep listening.
            }
        }
    }
    // Dropping conn_tx drains the worker pool: every worker's queue
    // recv fails once the buffered connections are served.
}

fn writer_loop(engines: Arc<Engines>, rx: mpsc::Receiver<WriterMsg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            WriterMsg::Submit(mut updates, reply) => {
                let n = updates.len() as u32;
                for update in updates.drain(..) {
                    match update {
                        WireUpdate::Point(u) => engines.point.submit(u),
                        WireUpdate::Uncertain(u) => engines.uncertain.submit(u),
                    }
                }
                // Hand the drained vector back with the ack so the
                // worker's decode buffer keeps its capacity.
                let _ = reply.send((n, updates));
            }
            WriterMsg::Commit(target, reply) => {
                // On a durable catalog the commit appends and fsyncs
                // the WAL record *before* the epoch publishes; an
                // append failure leaves the epoch unpublished and is
                // surfaced to the client as an error frame.
                let report = match target {
                    CommitTarget::Point => engines.point.commit(),
                    CommitTarget::Uncertain => engines.uncertain.commit(),
                };
                let _ = reply.send(report);
            }
        }
    }
}

/// Background checkpointer: whenever a catalog's epoch has advanced
/// `every` commits past its last checkpoint, snapshot it to disk and
/// rotate its log — entirely off the commit path (commits proceed
/// concurrently; only the final log rotation takes the store lock).
fn checkpoint_loop(engines: Arc<Engines>, shutdown: Arc<AtomicBool>, every: u64, poll: Duration) {
    while !shutdown.load(Ordering::SeqCst) {
        thread::sleep(poll);
        let due_point = engines
            .point
            .last_checkpoint_epoch()
            .is_some_and(|last| engines.point.epoch() >= last + every);
        if due_point {
            if let Err(e) = engines.point.checkpoint() {
                eprintln!("iloc-server: point checkpoint failed: {e}");
            }
        }
        let due_uncertain = engines
            .uncertain
            .last_checkpoint_epoch()
            .is_some_and(|last| engines.uncertain.epoch() >= last + every);
        if due_uncertain {
            if let Err(e) = engines.uncertain.checkpoint() {
                eprintln!("iloc-server: uncertain checkpoint failed: {e}");
            }
        }
    }
}

/// Everything one worker reuses across requests — the reason the
/// steady-state path allocates nothing.
struct WorkerState {
    point: ShardServer<PointEngine>,
    uncertain: ShardServer<UncertainEngine>,
    point_req: PointRequest,
    uncertain_req: UncertainRequest,
    answer: QueryAnswer,
    updates: Vec<WireUpdate>,
    /// Standing queries of the connection currently served (cleared
    /// when the connection ends — subscriptions are per-connection).
    point_subs: SubscriptionRegistry<PointEngine>,
    uncertain_subs: SubscriptionRegistry<UncertainEngine>,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
}

impl WorkerState {
    fn new(engines: &Engines) -> WorkerState {
        let placeholder = || Issuer::uniform(Rect::from_coords(0.0, 0.0, 1.0, 1.0));
        WorkerState {
            point: ShardServer::new(engines.point.snapshot()),
            uncertain: ShardServer::new(engines.uncertain.snapshot()),
            point_req: PointRequest::ipq(placeholder(), RangeSpec::square(1.0)),
            uncertain_req: UncertainRequest::iuq(placeholder(), RangeSpec::square(1.0)),
            answer: QueryAnswer::default(),
            updates: Vec::new(),
            point_subs: SubscriptionRegistry::new(),
            uncertain_subs: SubscriptionRegistry::new(),
            read_buf: Vec::new(),
            write_buf: Vec::new(),
        }
    }

    /// `true` when the current connection holds any standing query.
    fn has_subscriptions(&self) -> bool {
        !self.point_subs.is_empty() || !self.uncertain_subs.is_empty()
    }
}

fn worker_loop(
    shared: Arc<Shared>,
    conn_rx: Arc<Mutex<mpsc::Receiver<TcpStream>>>,
    writer_tx: mpsc::Sender<WriterMsg>,
) {
    let mut state = WorkerState::new(&shared.engines);
    loop {
        // Holding the lock across the blocking recv is the intended
        // hand-off: exactly one idle worker waits on the queue, the
        // rest wait on the mutex.
        let conn = match conn_rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => break,
        };
        let Ok(stream) = conn else { break };
        match serve_connection(stream, &mut state, &shared, &writer_tx) {
            Ok(()) | Err(ConnectionEnd::Io) => {
                // Subscriptions end with their connection; the
                // registries' warm buffers carry over.
                state.point_subs.clear();
                state.uncertain_subs.clear();
            }
            Err(ConnectionEnd::Poisoned) => {
                // A caught panic may have left buffers mid-flight;
                // start from a clean slate.
                state = WorkerState::new(&shared.engines);
            }
        }
    }
}

/// Why a connection stopped being served.
enum ConnectionEnd {
    /// The socket failed or the peer vanished mid-frame.
    Io,
    /// A frame handler panicked; the worker state must be rebuilt.
    Poisoned,
}

/// Outcome of a blocking read that polls the shutdown flag.
enum ReadStatus {
    Done,
    /// Clean EOF at a frame boundary.
    Eof,
    /// A read-timeout tick elapsed at a frame boundary with nothing
    /// read: the caller may pump subscriptions and check its idle
    /// deadline before retrying.
    Idle,
    Shutdown,
}

/// Reads exactly `buf.len()` bytes, re-checking the shutdown flag on
/// every read-timeout tick. `at_boundary` makes a leading EOF clean
/// (the peer closed between frames) rather than an error, and
/// surfaces leading timeout ticks as [`ReadStatus::Idle`] so the
/// caller regains control between frames. Mid-frame timeouts keep
/// waiting — a frame, once started, is read whole — but the time
/// spent stalled across the *whole frame* is capped by
/// `stall_deadline`: a peer that goes silent mid-frame is just as
/// abandoned as one idle at a boundary, and the cap is cumulative so
/// drip-feeding one byte per poll tick cannot rewind it and pin the
/// worker indefinitely.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    at_boundary: bool,
    idle_poll: Duration,
    stall_deadline: Option<Duration>,
) -> io::Result<ReadStatus> {
    let mut filled = 0;
    let mut stalled = Duration::ZERO;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && at_boundary {
                    Ok(ReadStatus::Eof)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed mid-frame",
                    ))
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(ReadStatus::Shutdown);
                }
                if filled == 0 && at_boundary {
                    return Ok(ReadStatus::Idle);
                }
                stalled += idle_poll;
                if let Some(deadline) = stall_deadline {
                    if stalled >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "peer stalled mid-frame",
                        ));
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadStatus::Done)
}

fn serve_connection(
    mut stream: TcpStream,
    state: &mut WorkerState,
    shared: &Shared,
    writer_tx: &mpsc::Sender<WriterMsg>,
) -> Result<(), ConnectionEnd> {
    let io_end = |_| ConnectionEnd::Io;
    let mut len_buf = [0u8; 4];
    let mut idle = Duration::ZERO;
    loop {
        match read_full(
            &mut stream,
            &mut len_buf,
            &shared.shutdown,
            true,
            shared.idle_poll,
            shared.idle_timeout,
        )
        .map_err(io_end)?
        {
            ReadStatus::Done => idle = Duration::ZERO,
            ReadStatus::Idle => {
                // Between frames: push any commit-driven subscription
                // deltas, then enforce the keepalive deadline.
                pump_subscriptions(&mut stream, state, shared)?;
                idle += shared.idle_poll;
                if let Some(deadline) = shared.idle_timeout {
                    if idle >= deadline {
                        // Reap: an abandoned socket must not pin this
                        // worker slot forever. Closing is the signal.
                        return Ok(());
                    }
                }
                continue;
            }
            ReadStatus::Eof | ReadStatus::Shutdown => return Ok(()),
        }
        let len = u32::from_le_bytes(len_buf);
        if len < 2 || len > shared.max_frame_len {
            // The stream cannot be re-delimited after a wild length:
            // answer and close.
            state.write_buf.clear();
            protocol::encode_error(
                &mut state.write_buf,
                ErrorCode::TooLarge,
                "frame length out of bounds",
            );
            let _ = stream.write_all(&state.write_buf);
            return Ok(());
        }
        state.read_buf.clear();
        state.read_buf.resize(len as usize, 0);
        match read_full(
            &mut stream,
            &mut state.read_buf,
            &shared.shutdown,
            false,
            shared.idle_poll,
            shared.idle_timeout,
        )
        .map_err(io_end)?
        {
            ReadStatus::Done => {}
            ReadStatus::Eof | ReadStatus::Idle => {
                unreachable!("mid-frame EOF maps to an error, mid-frame ticks keep reading")
            }
            ReadStatus::Shutdown => return Ok(()),
        }
        shared.requests_served.fetch_add(1, Ordering::Relaxed);

        state.write_buf.clear();
        let version = state.read_buf[0];
        if version != PROTOCOL_VERSION {
            protocol::encode_error(
                &mut state.write_buf,
                ErrorCode::BadVersion,
                "protocol version mismatch",
            );
            let _ = stream.write_all(&state.write_buf);
            return Ok(());
        }
        let op = state.read_buf[1];

        // Commit-driven pushes go out *before* this frame's response,
        // so the subscriber's view advances in epoch order and a TICK's
        // delta composes on top of everything already delivered.
        pump_subscriptions(&mut stream, state, shared)?;

        // The payload borrows the read buffer, which must stay intact
        // while the handler fills the other state fields; park it
        // locally for the duration of the dispatch.
        let read_buf = std::mem::take(&mut state.read_buf);
        let handled = std::panic::catch_unwind(AssertUnwindSafe(|| {
            handle_frame(op, &read_buf[2..], state, shared, writer_tx)
        }));
        state.read_buf = read_buf;

        match handled {
            Ok(()) => {}
            Err(_) => {
                state.write_buf.clear();
                protocol::encode_error(
                    &mut state.write_buf,
                    ErrorCode::Internal,
                    "request handler panicked",
                );
                let _ = stream.write_all(&state.write_buf);
                return Err(ConnectionEnd::Poisoned);
            }
        }
        stream.write_all(&state.write_buf).map_err(io_end)?;
    }
}

/// Pushes commit-driven subscription deltas: pumps both registries
/// against the engines' current epochs and writes one NOTIFY frame
/// per changed subscription. A no-op (two atomic epoch loads) when
/// the connection holds no subscriptions or nothing was committed.
fn pump_subscriptions(
    stream: &mut TcpStream,
    state: &mut WorkerState,
    shared: &Shared,
) -> Result<(), ConnectionEnd> {
    if !state.has_subscriptions() {
        return Ok(());
    }
    let WorkerState {
        point_subs,
        uncertain_subs,
        write_buf,
        ..
    } = state;
    write_buf.clear();
    let pumped = std::panic::catch_unwind(AssertUnwindSafe(|| {
        point_subs.pump(shared.engines.point.engine(), |id, epoch, delta| {
            protocol::encode_notify(
                write_buf,
                CommitTarget::Point,
                id,
                epoch,
                NotifyCause::Commit,
                delta,
            );
        });
        uncertain_subs.pump(shared.engines.uncertain.engine(), |id, epoch, delta| {
            protocol::encode_notify(
                write_buf,
                CommitTarget::Uncertain,
                id,
                epoch,
                NotifyCause::Commit,
                delta,
            );
        });
    }));
    if pumped.is_err() {
        state.write_buf.clear();
        protocol::encode_error(
            &mut state.write_buf,
            ErrorCode::Internal,
            "subscription wake-up panicked",
        );
        let _ = stream.write_all(&state.write_buf);
        return Err(ConnectionEnd::Poisoned);
    }
    if !state.write_buf.is_empty() {
        stream
            .write_all(&state.write_buf)
            .map_err(|_| ConnectionEnd::Io)?;
        state.write_buf.clear();
    }
    Ok(())
}

/// Serves one frame: decodes the payload, executes, and encodes the
/// response into `state.write_buf` (cleared by the caller). Every
/// failure mode becomes an error frame.
fn handle_frame(
    op: u8,
    payload: &[u8],
    state: &mut WorkerState,
    shared: &Shared,
    writer_tx: &mpsc::Sender<WriterMsg>,
) {
    match op {
        opcode::POINT_QUERY => {
            match protocol::decode_point_query_into(payload, &mut state.point_req) {
                Ok(()) => {
                    let snapshot = shared.engines.point.snapshot();
                    if snapshot.epoch() != state.point.snapshot().epoch() {
                        state.point.rebind(snapshot);
                    }
                    state
                        .point
                        .execute_into(&state.point_req, &mut state.answer);
                    shared.stage.absorb(&state.answer.stats);
                    protocol::encode_answer(&mut state.write_buf, &state.answer);
                }
                Err(e) => wire_error(&mut state.write_buf, e),
            }
        }
        opcode::UNCERTAIN_QUERY => {
            match protocol::decode_uncertain_query_into(payload, &mut state.uncertain_req) {
                Ok(()) => {
                    let snapshot = shared.engines.uncertain.snapshot();
                    if snapshot.epoch() != state.uncertain.snapshot().epoch() {
                        state.uncertain.rebind(snapshot);
                    }
                    state
                        .uncertain
                        .execute_into(&state.uncertain_req, &mut state.answer);
                    shared.stage.absorb(&state.answer.stats);
                    protocol::encode_answer(&mut state.write_buf, &state.answer);
                }
                Err(e) => wire_error(&mut state.write_buf, e),
            }
        }
        opcode::UPDATE_BATCH => {
            match protocol::decode_update_batch(payload, &mut state.updates) {
                Ok(()) => {
                    let updates = std::mem::take(&mut state.updates);
                    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
                    // The writer outlives the workers by construction;
                    // failures here mean the server is tearing down.
                    let sent = writer_tx.send(WriterMsg::Submit(updates, reply_tx));
                    match sent.ok().and_then(|()| reply_rx.recv().ok()) {
                        Some((accepted, drained)) => {
                            state.updates = drained;
                            protocol::encode_update_ack(&mut state.write_buf, accepted)
                        }
                        None => protocol::encode_error(
                            &mut state.write_buf,
                            ErrorCode::Internal,
                            "writer unavailable",
                        ),
                    }
                }
                Err(e) => wire_error(&mut state.write_buf, e),
            }
        }
        opcode::COMMIT => match protocol::decode_commit(payload) {
            Ok(target) => {
                let (reply_tx, reply_rx) = mpsc::sync_channel(1);
                let sent = writer_tx.send(WriterMsg::Commit(target, reply_tx));
                match sent.ok().and_then(|()| reply_rx.recv().ok()) {
                    Some(Ok(report)) => {
                        protocol::encode_commit_done(&mut state.write_buf, &report);
                    }
                    Some(Err(_)) => protocol::encode_error(
                        &mut state.write_buf,
                        ErrorCode::Internal,
                        "durable commit failed; epoch not published",
                    ),
                    None => protocol::encode_error(
                        &mut state.write_buf,
                        ErrorCode::Internal,
                        "writer unavailable",
                    ),
                }
            }
            Err(e) => wire_error(&mut state.write_buf, e),
        },
        opcode::STATS => {
            if !payload.is_empty() {
                wire_error(&mut state.write_buf, WireError::Malformed("stats payload"));
                return;
            }
            // Read the counter before encoding so the probe excludes
            // its own response from the reported total.
            let mut refine_batches = [0u64; REFINE_BATCH_BUCKETS];
            for (slot, counter) in refine_batches.iter_mut().zip(&shared.stage.refine_batches) {
                *slot = counter.load(Ordering::Relaxed);
            }
            let counters = CountersView {
                alloc_counting: alloc_count::counting_installed(),
                allocations: alloc_count::allocations(),
                requests_served: shared.requests_served.load(Ordering::Relaxed),
                workers: shared.workers,
                filter_nanos: shared.stage.filter_nanos.load(Ordering::Relaxed),
                prune_nanos: shared.stage.prune_nanos.load(Ordering::Relaxed),
                refine_nanos: shared.stage.refine_nanos.load(Ordering::Relaxed),
                refine_batches,
            };
            let point = shared.engines.point.snapshot();
            let uncertain = shared.engines.uncertain.snapshot();
            protocol::encode_stats_report(
                &mut state.write_buf,
                counters,
                (&point, shared.engines.point.pending_len() as u64),
                (&uncertain, shared.engines.uncertain.pending_len() as u64),
            );
        }
        opcode::PING => {
            if payload.is_empty() {
                protocol::encode_empty(&mut state.write_buf, opcode::PONG);
            } else {
                wire_error(&mut state.write_buf, WireError::Malformed("ping payload"));
            }
        }
        opcode::SUBSCRIBE => {
            let mut r = protocol::Reader::new(payload);
            match protocol::decode_subscribe_header(&mut r) {
                Ok((CommitTarget::Point, slack)) => {
                    match protocol::decode_subscribe_point_body(&mut r, &mut state.point_req) {
                        Ok(()) if state.point_subs.len() >= MAX_SUBSCRIPTIONS => {
                            protocol::encode_error(
                                &mut state.write_buf,
                                ErrorCode::TooManySubscriptions,
                                "subscription limit reached",
                            );
                        }
                        Ok(()) => {
                            let id = state.point_subs.subscribe(
                                shared.engines.point.engine(),
                                state.point_req.clone(),
                                slack,
                            );
                            let sub = state.point_subs.get(id).expect("just subscribed");
                            protocol::encode_sub_ack(
                                &mut state.write_buf,
                                CommitTarget::Point,
                                id,
                                sub.epoch(),
                                shared.recovered_epochs.0,
                                sub.last_answer(),
                            );
                        }
                        Err(e) => wire_error(&mut state.write_buf, e),
                    }
                }
                Ok((CommitTarget::Uncertain, slack)) => {
                    match protocol::decode_subscribe_uncertain_body(
                        &mut r,
                        &mut state.uncertain_req,
                    ) {
                        Ok(()) if state.uncertain_subs.len() >= MAX_SUBSCRIPTIONS => {
                            protocol::encode_error(
                                &mut state.write_buf,
                                ErrorCode::TooManySubscriptions,
                                "subscription limit reached",
                            );
                        }
                        Ok(()) => {
                            let id = state.uncertain_subs.subscribe(
                                shared.engines.uncertain.engine(),
                                state.uncertain_req.clone(),
                                slack,
                            );
                            let sub = state.uncertain_subs.get(id).expect("just subscribed");
                            protocol::encode_sub_ack(
                                &mut state.write_buf,
                                CommitTarget::Uncertain,
                                id,
                                sub.epoch(),
                                shared.recovered_epochs.1,
                                sub.last_answer(),
                            );
                        }
                        Err(e) => wire_error(&mut state.write_buf, e),
                    }
                }
                Err(e) => wire_error(&mut state.write_buf, e),
            }
        }
        opcode::UNSUBSCRIBE => match protocol::decode_unsubscribe(payload) {
            Ok((target, id)) => {
                let existed = match target {
                    CommitTarget::Point => state.point_subs.unsubscribe(id),
                    CommitTarget::Uncertain => state.uncertain_subs.unsubscribe(id),
                };
                protocol::encode_unsub_done(&mut state.write_buf, existed);
            }
            Err(e) => wire_error(&mut state.write_buf, e),
        },
        opcode::TICK => match protocol::decode_tick(payload) {
            Ok((target, id, pdf)) => {
                // The caller pumped before dispatch, so this tick's
                // delta composes on top of every commit already
                // delivered; a steady tick inside the envelope runs
                // probe-free and allocation-free.
                let ticked = match target {
                    CommitTarget::Point => state
                        .point_subs
                        .tick(shared.engines.point.engine(), id, pdf)
                        .map(|(epoch, delta)| {
                            protocol::encode_notify(
                                &mut state.write_buf,
                                target,
                                id,
                                epoch,
                                NotifyCause::Tick,
                                delta,
                            );
                        }),
                    CommitTarget::Uncertain => state
                        .uncertain_subs
                        .tick(shared.engines.uncertain.engine(), id, pdf)
                        .map(|(epoch, delta)| {
                            protocol::encode_notify(
                                &mut state.write_buf,
                                target,
                                id,
                                epoch,
                                NotifyCause::Tick,
                                delta,
                            );
                        }),
                };
                if ticked.is_none() {
                    wire_error(
                        &mut state.write_buf,
                        WireError::Malformed("unknown subscription id"),
                    );
                }
            }
            Err(e) => wire_error(&mut state.write_buf, e),
        },
        _ => protocol::encode_error(
            &mut state.write_buf,
            ErrorCode::BadOpcode,
            "unknown request opcode",
        ),
    }
}

/// Encodes a decode failure as an error frame without allocating (the
/// message is the static string the decoder produced).
fn wire_error(buf: &mut Vec<u8>, e: WireError) {
    let message = match e {
        WireError::Malformed(what) => what,
        WireError::UnsupportedPdf => "pdf kind not encodable on the wire",
    };
    protocol::encode_error(buf, e.into(), message);
}
