//! Criterion microbenchmark for Figure 8: basic (Eq. 4) vs enhanced
//! (Eq. 8) IUQ evaluation on the quick-scale Long Beach dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use iloc_bench::{Scale, TestBed};
use iloc_core::{Issuer, RangeSpec};
use iloc_datagen::WorkloadGen;

fn bench(c: &mut Criterion) {
    let bed = TestBed::build(Scale::quick());
    let range = RangeSpec::square(500.0);
    let mut group = c.benchmark_group("fig08");
    for u in [250.0, 500.0, 1000.0] {
        let region = WorkloadGen::new(42).issuer_region(u);
        let issuer = Issuer::uniform(region);
        group.bench_function(format!("enhanced/u{u}"), |b| {
            b.iter(|| bed.long_beach.iuq(&issuer, range))
        });
        group
            .sample_size(10)
            .bench_function(format!("basic/u{u}"), |b| {
                b.iter(|| bed.long_beach.iuq_basic(&issuer, range, 30))
            });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
