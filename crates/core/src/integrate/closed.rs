//! Exact closed form for the uniform/uniform case — the paper's
//! "enhanced method" (Eq. 6 for IPQ, Eq. 8 + separability for IUQ).
//!
//! With a uniform issuer, the point-object qualification `Q(x, y)` of a
//! location `(x, y)` is `Area(R(x,y) ∩ U0) / Area(U0)`, and the area
//! factorises into two 1-D overlap profiles:
//! `Area(R(x,y) ∩ U0) = ox(x) · oy(y)`. With a uniform object pdf the
//! Eq. 8 integrand is constant times that product, so
//!
//! ```text
//! pi = (∫_{Dx} ox dx) · (∫_{Dy} oy dy) / (Area(U0) · Area(Ui))
//! ```
//!
//! where `D = Ui ∩ (R ⊕ U0)`. Both factors are exact integrals of
//! trapezoid functions (`iloc_geometry::piecewise`); evaluation is
//! O(1), independent of region sizes — this is what Figure 8 measures
//! against the sampling baseline.

use iloc_geometry::{Interval, OverlapProfile, Rect};
use iloc_uncertainty::{Axis, LocationPdf};

use crate::query::RangeSpec;

/// Exact IUQ qualification probability for a uniform issuer on `u0` and
/// a uniform object on `ui`; `expanded` is `R ⊕ U0`.
///
/// This is the innermost function of the zero-allocation hot path: the
/// overlap profiles live on the stack ([`OverlapProfile`]) and the
/// whole evaluation is branch-light straight-line arithmetic.
#[inline]
pub fn uniform_uniform(u0: Rect, ui: Rect, range: RangeSpec, expanded: Rect) -> f64 {
    let domain = ui.intersect(expanded);
    if domain.is_empty() || u0.area() == 0.0 || ui.area() == 0.0 {
        return 0.0;
    }
    let ox = OverlapProfile::new(range.w, u0.x_interval());
    let oy = OverlapProfile::new(range.h, u0.y_interval());
    let ix = ox.integral_over(domain.x_interval());
    let iy = oy.integral_over(domain.y_interval());
    ((ix * iy) / (u0.area() * ui.area())).clamp(0.0, 1.0)
}

/// Exact IUQ probability for a uniform issuer and **any axis-separable
/// object pdf** (one providing
/// [`linear_marginal_integral`](LocationPdf::linear_marginal_integral),
/// e.g. the truncated Gaussian the paper evaluates by Monte-Carlo).
///
/// Extends Eq. 8's separability beyond the uniform/uniform case:
/// `pi = (∫ fx·ox)(∫ fy·oy)/Area(U0)`, where each factor integrates a
/// piecewise-*linear* overlap profile against the object's marginal —
/// exact segment by segment. Returns `None` when the object pdf does
/// not expose closed-form marginals.
///
/// Generic over the pdf type so calls with a concrete pdf (from the
/// `PdfKind` dispatch) monomorphise and inline; `&dyn LocationPdf`
/// still works.
pub fn uniform_separable<P: LocationPdf + ?Sized>(
    u0: Rect,
    object_pdf: &P,
    range: RangeSpec,
    expanded: Rect,
) -> Option<f64> {
    if u0.area() == 0.0 {
        return Some(0.0);
    }
    let domain = object_pdf.region().intersect(expanded);
    if domain.is_empty() {
        return Some(0.0);
    }
    let ox = OverlapProfile::new(range.w, u0.x_interval());
    let oy = OverlapProfile::new(range.h, u0.y_interval());
    let ix = profile_against_marginal(object_pdf, Axis::X, &ox, domain.x_interval())?;
    let iy = profile_against_marginal(object_pdf, Axis::Y, &oy, domain.y_interval())?;
    Some(((ix * iy) / u0.area()).clamp(0.0, 1.0))
}

/// `∫_I profile(x) dF_axis(x)`, exact per linear segment.
fn profile_against_marginal<P: LocationPdf + ?Sized>(
    pdf: &P,
    axis: Axis,
    profile: &OverlapProfile,
    i: Interval,
) -> Option<f64> {
    let mut acc = 0.0;
    for seg in profile.knots().windows(2) {
        let (x0, y0) = seg[0];
        let (x1, y1) = seg[1];
        let clip = Interval::new(x0, x1).intersect(i);
        if clip.is_empty() || clip.length() == 0.0 {
            continue;
        }
        // On [x0, x1]: profile(x) = y0 + slope·(x − x0) = c0 + c1·x.
        let slope = (y1 - y0) / (x1 - x0);
        let c1 = slope;
        let c0 = y0 - slope * x0;
        acc += pdf.linear_marginal_integral(axis, clip, c0, c1)?;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc_geometry::minkowski::expand_query;
    use iloc_geometry::Point;

    fn expanded(u0: Rect, range: RangeSpec) -> Rect {
        expand_query(u0, range.w, range.h)
    }

    #[test]
    fn object_far_away_has_zero_probability() {
        let u0 = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let ui = Rect::from_coords(100.0, 100.0, 110.0, 110.0);
        let range = RangeSpec::square(5.0);
        assert_eq!(uniform_uniform(u0, ui, range, expanded(u0, range)), 0.0);
    }

    #[test]
    fn object_always_in_range_has_probability_one() {
        // Tiny U0 and Ui sitting on top of each other, huge range.
        let u0 = Rect::centered(Point::new(50.0, 50.0), 1.0, 1.0);
        let ui = Rect::centered(Point::new(50.0, 50.0), 1.0, 1.0);
        let range = RangeSpec::square(100.0);
        let p = uniform_uniform(u0, ui, range, expanded(u0, range));
        assert!((p - 1.0).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn coincident_unit_squares_quarter_overlap() {
        // U0 = Ui = unit square at origin, range half-size 0.5.
        // pi = E[Area(R(X) ∩ U0)] = ∫∫ ox·oy / (1·1); by symmetry
        // ∫_0^1 ox(x) dx with w=0.5 over side [0,1]: trapezoid of
        // support [-0.5,1.5], plateau 1 on [0.5,0.5]… plateau height
        // min(2w, 1) = 1 at the single point x=0.5; ∫_0^1 = 0.75.
        // pi = 0.75² = 0.5625.
        let u0 = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let ui = u0;
        let range = RangeSpec::square(0.5);
        let p = uniform_uniform(u0, ui, range, expanded(u0, range));
        assert!((p - 0.5625).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn matches_monte_carlo_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let u0 = Rect::from_coords(0.0, 0.0, 40.0, 20.0);
        let ui = Rect::from_coords(30.0, 10.0, 90.0, 50.0);
        let range = RangeSpec::new(15.0, 10.0);
        let p = uniform_uniform(u0, ui, range, expanded(u0, range));

        // Double Monte-Carlo on the definition (Eq. 4): sample issuer
        // and object positions, count range membership.
        let mut rng = StdRng::seed_from_u64(17);
        const N: usize = 400_000;
        let mut hits = 0usize;
        for _ in 0..N {
            let q = Point::new(rng.gen_range(0.0..40.0), rng.gen_range(0.0..20.0));
            let o = Point::new(rng.gen_range(30.0..90.0), rng.gen_range(10.0..50.0));
            if (o.x - q.x).abs() <= range.w && (o.y - q.y).abs() <= range.h {
                hits += 1;
            }
        }
        let reference = hits as f64 / N as f64;
        assert!((p - reference).abs() < 5e-3, "closed {p} vs mc {reference}");
    }

    #[test]
    fn restricting_to_expanded_region_changes_nothing() {
        // Lemma 4: integrating over Ui ∩ (R ⊕ U0) instead of Ui is
        // lossless because Q vanishes outside. Equivalently, passing a
        // *larger* `expanded` must give the same result.
        let u0 = Rect::from_coords(0.0, 0.0, 20.0, 20.0);
        let ui = Rect::from_coords(25.0, 0.0, 60.0, 35.0);
        let range = RangeSpec::square(10.0);
        let tight = uniform_uniform(u0, ui, range, expanded(u0, range));
        let loose = uniform_uniform(
            u0,
            ui,
            range,
            Rect::from_coords(-1_000.0, -1_000.0, 1_000.0, 1_000.0),
        );
        assert!((tight - loose).abs() < 1e-12);
    }

    #[test]
    fn separable_matches_uniform_uniform() {
        use iloc_uncertainty::UniformPdf;
        let u0 = Rect::from_coords(0.0, 0.0, 30.0, 50.0);
        let ui = Rect::from_coords(20.0, 10.0, 80.0, 90.0);
        let range = RangeSpec::new(12.0, 18.0);
        let expanded = expanded(u0, range);
        let reference = uniform_uniform(u0, ui, range, expanded);
        let via_separable = uniform_separable(u0, &UniformPdf::new(ui), range, expanded)
            .expect("uniform is separable");
        assert!((reference - via_separable).abs() < 1e-12);
    }

    #[test]
    fn separable_gaussian_matches_quadrature() {
        use crate::stats::QueryStats;
        use iloc_uncertainty::TruncatedGaussianPdf;
        use iloc_uncertainty::UniformPdf;
        let u0 = Rect::from_coords(0.0, 0.0, 40.0, 40.0);
        let issuer = UniformPdf::new(u0);
        let range = RangeSpec::square(15.0);
        let expanded = expanded(u0, range);
        for ui in [
            Rect::from_coords(30.0, 10.0, 90.0, 70.0), // partial overlap
            Rect::from_coords(-10.0, -10.0, 50.0, 50.0), // covers U0
            Rect::from_coords(52.0, 52.0, 100.0, 100.0), // corner graze
        ] {
            let object = TruncatedGaussianPdf::paper_default(ui);
            let exact =
                uniform_separable(u0, &object, range, expanded).expect("gaussian is separable");
            let mut stats = QueryStats::new();
            let approx = crate::integrate::grid::object_probability(
                &issuer, range, &object, expanded, 300, &mut stats,
            );
            assert!(
                (exact - approx).abs() < 2e-3,
                "ui={ui:?}: exact {exact} vs grid {approx}"
            );
        }
    }

    #[test]
    fn separable_returns_none_for_non_separable_pdfs() {
        use iloc_geometry::Point;
        use iloc_uncertainty::DiscPdf;
        let u0 = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let object = DiscPdf::new(Point::new(12.0, 5.0), 4.0);
        let range = RangeSpec::square(5.0);
        assert_eq!(
            uniform_separable(u0, &object, range, expanded(u0, range)),
            None
        );
    }

    #[test]
    fn separable_gaussian_far_object_is_zero() {
        use iloc_uncertainty::TruncatedGaussianPdf;
        let u0 = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let object =
            TruncatedGaussianPdf::paper_default(Rect::from_coords(500.0, 500.0, 560.0, 560.0));
        let range = RangeSpec::square(5.0);
        assert_eq!(
            uniform_separable(u0, &object, range, expanded(u0, range)),
            Some(0.0)
        );
    }

    #[test]
    fn probability_monotone_in_range_size() {
        let u0 = Rect::from_coords(0.0, 0.0, 20.0, 20.0);
        let ui = Rect::from_coords(30.0, 30.0, 50.0, 50.0);
        let mut prev = 0.0;
        for k in 1..=10 {
            let range = RangeSpec::square(5.0 * k as f64);
            let p = uniform_uniform(u0, ui, range, expanded(u0, range));
            assert!(p >= prev - 1e-12, "not monotone at k={k}");
            prev = p;
        }
        assert!(prev > 0.99, "large range should almost surely contain Ui");
    }
}
