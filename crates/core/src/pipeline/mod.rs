//! The unified query-execution pipeline.
//!
//! Both of the paper's engines answer every query with the same shape
//! of plan — **filter → prune → refine** — which earlier versions of
//! this workspace had duplicated (with small variations) inside
//! `PointEngine` and `UncertainEngine`. This module makes the plan an
//! explicit, composable object so the two engines become thin facades
//! and later scaling work (sharding, caching, async serving) has one
//! seam to plug into.
//!
//! ## Stages ↔ paper sections
//!
//! | Stage | Type | Paper |
//! |-------|------|-------|
//! | **Filter** | [`FilterStage`]: [`RectFilter`] over any [`iloc_index::RangeIndex`] backend (R-tree, grid file, naive scan) probed with the Minkowski sum `R ⊕ U0` (Lemma 1, Section 4.1) or a `p`-expanded query (Definition 7 + Lemma 5); [`PtiFilter`] for the PTI's node-level pruning (Section 5.3) | 4.1, 5.1, 5.3 |
//! | **Prune** | [`PruneChain`] of trait-object [`PruneStage`]s — the three object-level pruning strategies for constrained queries, each recording its eliminations in [`QueryStats`] (`pruned_s1`/`s2`/`s3`) | 5.2 |
//! | **Refine** | [`EvaluatorKind`] (static dispatch over the two [`ProbabilityEvaluator`]s): [`DualityEvaluator`] computes qualification probabilities through the query–data duality closed/numeric forms (Lemmas 2–4) via the context's [`Integrator`]; [`BasicEvaluator`] is the Section 3.3 baseline that integrates over the issuer region (Eq. 2 / Eq. 4) | 3.3, 4.2 |
//!
//! Execution state (integrator choice, the seeded RNG, the per-query
//! cost counters and the reusable [`QueryScratch`] buffers) travels in
//! an [`ExecutionContext`], so a pipeline value itself is immutable
//! and shareable.
//!
//! ## The zero-allocation invariant
//!
//! A steady-state query — [`QueryPipeline::execute_into`] through a
//! warm, reused context into a reused answer — performs **no heap
//! allocation**: the filter stage writes candidates into the context's
//! scratch, index probes run on the scratch traversal stack, the
//! built-in prune chain is held inline, and both refine evaluators are
//! statically dispatched (`EvaluatorKind` over the concrete
//! [`iloc_uncertainty::PdfKind`] pdfs). The batched refine stage's SoA
//! lane buffers (survivors, probabilities, per-`PdfKind` lanes) live in
//! the same scratch under the same cleared-never-shrunk discipline.
//! CI enforces this with the
//! throughput bench's `--check-allocs` gate; treat an allocation on
//! this path as a regression.
//!
//! ## Batching
//!
//! [`execute_batch`] runs any slice of requests against a
//! [`BatchEngine`] on all cores via rayon: requests are chunked per
//! worker, each worker reuses one long-lived context (reset and
//! reseeded identically for every query), so answers are
//! **bit-identical** to sequential execution (property-tested in
//! `tests/pipeline.rs`).
//!
//! ```
//! use iloc_core::pipeline::{execute_batch, PointRequest};
//! use iloc_core::{Issuer, PointEngine, RangeSpec};
//! use iloc_geometry::{Point, Rect};
//!
//! let engine = PointEngine::build(vec![Point::new(5.0, 5.0)]);
//! let requests: Vec<PointRequest> = (0..64)
//!     .map(|k| {
//!         let c = Point::new(k as f64, 5.0);
//!         PointRequest::ipq(Issuer::uniform(Rect::centered(c, 2.0, 2.0)), RangeSpec::square(4.0))
//!     })
//!     .collect();
//! let answers = execute_batch(&engine, &requests);
//! assert_eq!(answers.len(), 64);
//! ```

mod batch;
mod filter;
mod prune;
mod refine;

pub use batch::{
    execute_batch, execute_batch_sequential, BatchEngine, PointConstraint, PointRequest,
    UncertainConstraint, UncertainRequest,
};
pub use filter::{FilterStage, PtiFilter, RectFilter};
pub use prune::{PruneChain, PruneStage};
pub use refine::{
    BasicEvaluator, DualityEvaluator, EvaluatorKind, PipelineObject, ProbabilityEvaluator,
};

use std::time::Instant;

use iloc_geometry::Rect;
use iloc_index::TraversalScratch;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::engine::DEFAULT_QUERY_SEED;
use crate::expand::minkowski_query;
use crate::integrate::Integrator;
use crate::query::{Issuer, RangeSpec};
use crate::result::{Match, QueryAnswer};
use crate::stats::QueryStats;

/// Reusable buffers of one query execution: the candidate list the
/// filter stage writes into and the index-traversal stack.
///
/// The scratch lives inside an [`ExecutionContext`]; executing through
/// a warm (reused) context touches only these buffers, which is what
/// makes the steady-state query path allocation-free. Buffers are
/// cleared — never shrunk — between executions, and their contents
/// carry no information across queries (property-tested: a dirty
/// scratch answers bit-identically to a fresh one).
#[derive(Debug, Clone, Default)]
pub struct QueryScratch {
    /// Candidate object slots produced by the filter stage.
    pub(crate) candidates: Vec<u32>,
    /// DFS stack for R-tree / PTI probes.
    pub(crate) traversal: TraversalScratch,
    /// Ping-pong buffer for the candidate radix sort.
    pub(crate) radix: Vec<u32>,
    /// Candidates surviving the prune pass, in slot order — the refine
    /// stage's batch input.
    pub(crate) survivors: Vec<u32>,
    /// One refined probability per survivor.
    pub(crate) probs: Vec<f64>,
    /// SoA lane buffers of the batched refine stage.
    pub(crate) lanes: refine::RefineLanes,
    /// Per-shard partial answer reused by the sharded fan-out (taken
    /// out of the scratch for the duration of the fan-out so the
    /// per-shard executions can borrow the context mutably).
    pub(crate) shard_partial: crate::result::QueryAnswer,
}

/// Sorts candidate slots with an LSD radix sort through a caller-owned
/// ping-pong buffer.
///
/// Index probes emit candidates in DFS order; refining them that way
/// means the final by-id match sort dominates the whole query (a
/// comparison sort of the result set costs more than the refinement
/// itself at paper scale). Counting passes over the *slots* are far
/// cheaper — `O(passes · n)` with 256-way buckets, no comparisons —
/// and because the engines assign ids in slot order, the produced
/// matches then come out already sorted. Allocation-free once `aux`
/// has grown to workload size.
pub(crate) fn sort_candidates(v: &mut Vec<u32>, aux: &mut Vec<u32>) {
    /// One counting pass on the byte at `shift`.
    fn radix_pass(src: &[u32], dst: &mut [u32], shift: u32) {
        let mut pos = [0usize; 256];
        for &x in src {
            pos[((x >> shift) & 0xff) as usize] += 1;
        }
        let mut acc = 0usize;
        for p in pos.iter_mut() {
            let count = *p;
            *p = acc;
            acc += count;
        }
        for &x in src {
            let bucket = ((x >> shift) & 0xff) as usize;
            dst[pos[bucket]] = x;
            pos[bucket] += 1;
        }
    }

    if v.len() < 2 || v.windows(2).all(|w| w[0] <= w[1]) {
        return;
    }
    let max = *v.iter().max().expect("non-empty") as u64;
    aux.clear();
    aux.resize(v.len(), 0);
    let mut data_in_v = true;
    let mut shift = 0u32;
    loop {
        if data_in_v {
            radix_pass(v, aux, shift);
        } else {
            radix_pass(aux, v, shift);
        }
        data_in_v = !data_in_v;
        shift += 8;
        if (max >> shift) == 0 {
            break;
        }
    }
    if !data_in_v {
        std::mem::swap(v, aux);
    }
}

impl QueryScratch {
    /// A scratch with no retained capacity.
    pub fn new() -> Self {
        QueryScratch::default()
    }
}

/// Mutable per-execution state threaded through the stages: the
/// integrator the refine stage uses, the seeded RNG feeding its
/// Monte-Carlo paths, the cost counters every stage records into, and
/// the reusable [`QueryScratch`] buffers.
///
/// One context serves one query execution *at a time* and is designed
/// to be **reused**: every execution starts by [`reset`]ting the
/// context (zeroed stats, reseeded RNG), so answers through a reused
/// context are bit-identical to answers through a fresh one, while the
/// scratch buffers keep their capacity. Batch execution keeps one
/// long-lived context per worker.
///
/// [`reset`]: ExecutionContext::reset
#[derive(Debug, Clone)]
pub struct ExecutionContext {
    /// Strategy for the refine stage's probability integrals.
    pub integrator: Integrator,
    /// Deterministic RNG for sampling integrators.
    pub rng: StdRng,
    /// Cost counters; moved into the [`QueryAnswer`] on completion.
    pub stats: QueryStats,
    /// Reusable buffers (candidates, traversal stack).
    pub(crate) scratch: QueryScratch,
    seed: u64,
}

impl ExecutionContext {
    /// Context with the engine-default RNG seed; query answers are
    /// deterministic for a given database and query.
    pub fn new(integrator: Integrator) -> Self {
        ExecutionContext::seeded(integrator, DEFAULT_QUERY_SEED)
    }

    /// Context with an explicit RNG seed.
    pub fn seeded(integrator: Integrator, seed: u64) -> Self {
        ExecutionContext {
            integrator,
            rng: StdRng::seed_from_u64(seed),
            stats: QueryStats::new(),
            scratch: QueryScratch::new(),
            seed,
        }
    }

    /// Reconfigures the integrator ahead of the next execution (the
    /// per-request batch path reuses one context across requests with
    /// differing integrators).
    #[inline]
    pub fn prepare(&mut self, integrator: Integrator) {
        self.integrator = integrator;
    }

    /// Returns the context to its post-construction state: zeroed
    /// stats and a freshly reseeded RNG (scratch buffers keep their
    /// capacity). Called at the start of every
    /// [`QueryPipeline::execute_into`] so a reused context yields the
    /// same answers as a fresh one.
    fn reset(&mut self) {
        self.stats = QueryStats::new();
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

/// An imprecise range query with its derived geometry, shared by every
/// stage: the issuer `O0`, the range shape `R`, and the expanded query
/// `R ⊕ U0` of Lemma 1.
#[derive(Debug, Clone, Copy)]
pub struct PreparedQuery<'q> {
    /// The query issuer (pdf + U-catalog).
    pub issuer: &'q Issuer,
    /// The range shape.
    pub range: RangeSpec,
    /// The Minkowski sum `R ⊕ U0`; objects outside it cannot qualify.
    pub expanded: Rect,
}

impl<'q> PreparedQuery<'q> {
    /// Prepares a query, computing the expanded rectangle.
    pub fn new(issuer: &'q Issuer, range: RangeSpec) -> Self {
        PreparedQuery {
            issuer,
            range,
            expanded: minkowski_query(issuer, range),
        }
    }
}

/// Post-refinement acceptance test (the only place IPQ/IUQ differ from
/// their constrained variants).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AcceptPolicy {
    /// Keep every strictly positive probability (IPQ / IUQ,
    /// Definitions 3–4).
    Positive,
    /// Keep positive probabilities of at least the threshold `Qp`
    /// (C-IPQ / C-IUQ, Definitions 5–6).
    AtLeast(f64),
}

impl AcceptPolicy {
    /// Does probability `pi` make the result set?
    #[inline]
    pub fn accepts(self, pi: f64) -> bool {
        match self {
            AcceptPolicy::Positive => pi > 0.0,
            AcceptPolicy::AtLeast(qp) => pi > 0.0 && pi >= qp,
        }
    }
}

/// One fully-planned query execution: the object table, the three
/// stages, and the acceptance policy.
///
/// Generic over the object type `O` (point or uncertain), the filter
/// backend `F` (in turn generic over any [`iloc_index::RangeIndex`]
/// via [`RectFilter`]) and the refine evaluator `E` — by default the
/// statically-dispatched [`EvaluatorKind`], so the whole per-candidate
/// loop monomorphises without virtual calls. The plan is immutable;
/// all mutable state lives in the [`ExecutionContext`].
pub struct QueryPipeline<'p, O, F, E = EvaluatorKind> {
    /// The prepared query shared by every stage.
    pub query: PreparedQuery<'p>,
    /// The engine's object table; filter output indexes into it.
    pub objects: &'p [O],
    /// Filter stage: index probe producing candidate slots.
    pub filter: F,
    /// Prune stage: object-level elimination before any integral.
    pub prune: PruneChain<'p, O>,
    /// Refine stage: qualification-probability evaluation.
    pub refine: E,
    /// Acceptance policy applied to refined probabilities.
    pub accept: AcceptPolicy,
}

impl<O: PipelineObject, F: FilterStage, E: ProbabilityEvaluator<O>> QueryPipeline<'_, O, F, E> {
    /// Runs filter → prune → refine, returning the answer with its
    /// cost accounting. Convenience wrapper over
    /// [`QueryPipeline::execute_into`] that allocates a fresh answer.
    pub fn execute(&self, ctx: &mut ExecutionContext) -> QueryAnswer {
        let mut answer = QueryAnswer::default();
        self.execute_into(ctx, &mut answer);
        answer
    }

    /// Runs filter → prune → refine, overwriting `answer` with the
    /// result and its cost accounting.
    ///
    /// The context is reset first (zeroed stats, reseeded RNG), so
    /// executing through a reused context gives the same answer as
    /// through a fresh one. A *steady-state* execution — warm context
    /// scratch, an `answer` whose buffers have already grown to
    /// workload size — performs **zero heap allocations**: candidates
    /// land in the context's [`QueryScratch`], the index probe runs on
    /// the scratch traversal stack, and matches stage directly into
    /// the reused `answer.results`. The throughput bench's CI gate
    /// (`throughput --check-allocs`) pins this invariant.
    pub fn execute_into(&self, ctx: &mut ExecutionContext, answer: &mut QueryAnswer) {
        let start = Instant::now();
        ctx.reset();
        answer.results.clear();
        // The stage buffers are taken out of the scratch for the
        // duration of the run so the context stays borrowable by the
        // refine stage; their capacity survives round trips.
        let mut candidates = std::mem::take(&mut ctx.scratch.candidates);
        candidates.clear();
        self.filter.candidates_into(
            &mut ctx.stats.access,
            &mut ctx.scratch.traversal,
            &mut candidates,
        );
        // Refine in slot order: sequential object-table access, and the
        // matches come out pre-sorted (engines assign ids in slot
        // order), collapsing the final sort to a linear check.
        sort_candidates(&mut candidates, &mut ctx.scratch.radix);
        let filter_done = Instant::now();
        // Prune pass: collect the whole surviving batch first so the
        // refine stage sees it at once (SoA lanes, hoisted per-query
        // invariants). Pruning draws no randomness, so the two-pass
        // order leaves the RNG stream — and hence every Monte-Carlo
        // refinement — bit-identical to the interleaved loop.
        let mut survivors = std::mem::take(&mut ctx.scratch.survivors);
        survivors.clear();
        for &slot in &candidates {
            let object = &self.objects[slot as usize];
            if !self.prune.try_prune(&self.query, object, &mut ctx.stats) {
                survivors.push(slot);
            }
        }
        let prune_done = Instant::now();
        ctx.stats.refine_batches[crate::stats::refine_batch_bucket(survivors.len())] += 1;
        // Refine pass: one batched call over the survivors.
        let mut probs = std::mem::take(&mut ctx.scratch.probs);
        self.refine
            .probabilities(&self.query, self.objects, &survivors, ctx, &mut probs);
        let refine_done = Instant::now();
        // One up-front growth instead of geometric doubling while the
        // accept loop stages (first batch through a cold answer would
        // otherwise recopy the results vector ~log n times).
        answer.results.reserve(survivors.len());
        for (&slot, &pi) in survivors.iter().zip(&probs) {
            if self.accept.accepts(pi) {
                answer.results.push(Match {
                    id: self.objects[slot as usize].object_id(),
                    probability: pi,
                });
            } else {
                ctx.stats.refined_out += 1;
            }
        }
        ctx.stats.filter_nanos = (filter_done - start).as_nanos() as u64;
        ctx.stats.prune_nanos = (prune_done - filter_done).as_nanos() as u64;
        ctx.stats.refine_nanos = (refine_done - prune_done).as_nanos() as u64;
        ctx.scratch.candidates = candidates;
        ctx.scratch.survivors = survivors;
        ctx.scratch.probs = probs;
        answer.stats = std::mem::take(&mut ctx.stats);
        crate::result::sort_matches(&mut answer.results);
        answer.stats.elapsed = start.elapsed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc_geometry::Point;
    use iloc_index::NaiveIndex;
    use iloc_uncertainty::PointObject;

    fn objects() -> Vec<PointObject> {
        (0..10)
            .map(|k| PointObject::new(k as u64, Point::new(k as f64 * 10.0, 50.0)))
            .collect()
    }

    fn naive_index(objs: &[PointObject]) -> NaiveIndex<u32> {
        NaiveIndex::new(
            objs.iter()
                .enumerate()
                .map(|(k, o)| (Rect::from_point(o.loc), k as u32))
                .collect(),
        )
    }

    #[test]
    fn pipeline_runs_over_any_range_index_backend() {
        // The same plan executes against a backend the engines never
        // use — the point of the `RangeIndex`-generic filter stage.
        let objs = objects();
        let index = naive_index(&objs);
        let issuer = Issuer::uniform(Rect::from_coords(40.0, 40.0, 60.0, 60.0));
        let query = PreparedQuery::new(&issuer, RangeSpec::square(15.0));
        let pipeline = QueryPipeline {
            query,
            objects: &objs,
            filter: RectFilter {
                index: &index,
                query: query.expanded,
            },
            prune: PruneChain::none(),
            refine: EvaluatorKind::Duality,
            accept: AcceptPolicy::Positive,
        };
        let mut ctx = ExecutionContext::new(Integrator::Auto);
        let answer = pipeline.execute(&mut ctx);
        assert!(!answer.results.is_empty());
        for m in &answer.results {
            assert!(m.probability > 0.0);
        }
        // Filter accounting flowed into the answer.
        assert!(answer.stats.access.candidates > 0);
        assert_eq!(answer.stats.prob_evals, answer.stats.access.candidates);
    }

    #[test]
    fn accept_policy_thresholds() {
        assert!(AcceptPolicy::Positive.accepts(1e-9));
        assert!(!AcceptPolicy::Positive.accepts(0.0));
        assert!(AcceptPolicy::AtLeast(0.5).accepts(0.5));
        assert!(!AcceptPolicy::AtLeast(0.5).accepts(0.49));
        assert!(!AcceptPolicy::AtLeast(0.0).accepts(0.0));
    }

    #[test]
    fn context_reseeds_deterministically() {
        let mut a = ExecutionContext::new(Integrator::Auto);
        let mut b = ExecutionContext::new(Integrator::Auto);
        use rand::RngCore;
        assert_eq!(a.rng.next_u64(), b.rng.next_u64());
    }

    #[test]
    fn reused_context_gives_bit_identical_answers() {
        // Monte-Carlo refinement consumes the RNG; a second execute
        // through the same context must reseed and reproduce the
        // first answer exactly.
        let objs = objects();
        let index = naive_index(&objs);
        let issuer = Issuer::uniform(Rect::from_coords(40.0, 40.0, 60.0, 60.0));
        let query = PreparedQuery::new(&issuer, RangeSpec::square(15.0));
        let pipeline = QueryPipeline {
            query,
            objects: &objs,
            filter: RectFilter {
                index: &index,
                query: query.expanded,
            },
            prune: PruneChain::none(),
            refine: EvaluatorKind::Duality,
            accept: AcceptPolicy::Positive,
        };
        let mut shared = ExecutionContext::new(Integrator::MonteCarlo { samples: 200 });
        let first = pipeline.execute(&mut shared);
        let second = pipeline.execute(&mut shared);
        let fresh = pipeline.execute(&mut ExecutionContext::new(Integrator::MonteCarlo {
            samples: 200,
        }));
        assert!(!first.results.is_empty());
        assert!(first.same_matches(&second));
        assert!(first.same_matches(&fresh));
    }
}
