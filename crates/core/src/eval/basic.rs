//! The basic evaluation method (paper Section 3.3) — the baseline the
//! enhanced methods are measured against in Figure 8.
//!
//! Both formulas integrate over the **issuer's** uncertainty region:
//!
//! * IPQ (Eq. 2): `pi = ∫_{U0} bi(x,y) · f0(x,y) dx dy`, where `bi`
//!   indicates whether `Si` lies in `R(x, y)`;
//! * IUQ (Eq. 4): `pi = ∫_{U0} pi(x,y) · f0(x,y) dx dy`, where
//!   `pi(x,y) = ∫_{Ui ∩ R(x,y)} fi` (Eq. 3).
//!
//! We realise the paper's "set of sampling points" with a midpoint grid
//! over `U0` (deterministic, so experiment curves are smooth). The cost
//! is `per_axis²` integrand evaluations *per object*, each of which for
//! IUQ is itself a rectangle-mass computation — this is exactly why the
//! paper calls the basic method expensive and why its cost rises
//! steeply with the issuer region size.

use iloc_geometry::Point;
use iloc_uncertainty::LocationPdf;

use crate::query::RangeSpec;
use crate::stats::QueryStats;

/// Default sampling resolution: 30 × 30 = 900 issuer samples per
/// object, comparable to the "large number of sampling points" the
/// paper describes for accurate answers.
pub const DEFAULT_SAMPLES_PER_AXIS: usize = 30;

/// IPQ qualification probability by direct integration of Eq. 2.
pub fn point_probability(
    issuer_pdf: &dyn LocationPdf,
    range: RangeSpec,
    loc: Point,
    per_axis: usize,
    stats: &mut QueryStats,
) -> f64 {
    assert!(per_axis > 0);
    stats.prob_evals += 1;
    let u0 = issuer_pdf.region();
    let dx = u0.width() / per_axis as f64;
    let dy = u0.height() / per_axis as f64;
    let da = dx * dy;
    let mut acc = 0.0;
    for j in 0..per_axis {
        for i in 0..per_axis {
            stats.grid_cells += 1;
            let c = Point::new(
                u0.min.x + (i as f64 + 0.5) * dx,
                u0.min.y + (j as f64 + 0.5) * dy,
            );
            // bi(x, y): is the point object inside R(x, y)?
            if range.at(c).contains_point(loc) {
                acc += issuer_pdf.density(c) * da;
            }
        }
    }
    acc.clamp(0.0, 1.0)
}

/// Fills `cells` with the issuer's midpoint-grid plan — sample point
/// and issuer density per cell — and returns the cell area `da`.
///
/// This hoists the per-query invariants of the basic method out of the
/// per-candidate loop: the batched evaluators build the plan once and
/// share it across every surviving candidate, saving `per_axis²`
/// density evaluations per candidate. The buffer is cleared and
/// refilled, so a warm (capacity-retaining) vector makes the fill
/// allocation-free.
pub fn fill_grid_plan(
    issuer_pdf: &dyn LocationPdf,
    per_axis: usize,
    cells: &mut Vec<(Point, f64)>,
) -> f64 {
    assert!(per_axis > 0);
    let u0 = issuer_pdf.region();
    let dx = u0.width() / per_axis as f64;
    let dy = u0.height() / per_axis as f64;
    cells.clear();
    cells.reserve(per_axis * per_axis);
    for j in 0..per_axis {
        for i in 0..per_axis {
            let c = Point::new(
                u0.min.x + (i as f64 + 0.5) * dx,
                u0.min.y + (j as f64 + 0.5) * dy,
            );
            cells.push((c, issuer_pdf.density(c)));
        }
    }
    dx * dy
}

/// [`point_probability`] over a pre-built grid plan: identical
/// accumulation (`density · da` per covering cell), so results are
/// bit-identical to the unhoisted path.
pub fn point_probability_planned(
    cells: &[(Point, f64)],
    da: f64,
    range: RangeSpec,
    loc: Point,
    stats: &mut QueryStats,
) -> f64 {
    stats.prob_evals += 1;
    stats.grid_cells += cells.len() as u64;
    let mut acc = 0.0;
    for &(c, density) in cells {
        if range.at(c).contains_point(loc) {
            acc += density * da;
        }
    }
    acc.clamp(0.0, 1.0)
}

/// [`object_probability`] over a pre-built grid plan: identical
/// accumulation (`p_xy · density · da`), bit-identical results.
pub fn object_probability_planned(
    cells: &[(Point, f64)],
    da: f64,
    range: RangeSpec,
    object_pdf: &dyn LocationPdf,
    stats: &mut QueryStats,
) -> f64 {
    stats.prob_evals += 1;
    stats.grid_cells += cells.len() as u64;
    let mut acc = 0.0;
    for &(c, density) in cells {
        let p_xy = object_pdf.prob_in_rect(range.at(c));
        if p_xy > 0.0 {
            acc += p_xy * density * da;
        }
    }
    acc.clamp(0.0, 1.0)
}

/// IUQ qualification probability by direct integration of Eq. 4.
pub fn object_probability(
    issuer_pdf: &dyn LocationPdf,
    range: RangeSpec,
    object_pdf: &dyn LocationPdf,
    per_axis: usize,
    stats: &mut QueryStats,
) -> f64 {
    assert!(per_axis > 0);
    stats.prob_evals += 1;
    let u0 = issuer_pdf.region();
    let dx = u0.width() / per_axis as f64;
    let dy = u0.height() / per_axis as f64;
    let da = dx * dy;
    let mut acc = 0.0;
    for j in 0..per_axis {
        for i in 0..per_axis {
            stats.grid_cells += 1;
            let c = Point::new(
                u0.min.x + (i as f64 + 0.5) * dx,
                u0.min.y + (j as f64 + 0.5) * dy,
            );
            // Eq. 3: mass of the object inside R(x, y).
            let p_xy = object_pdf.prob_in_rect(range.at(c));
            if p_xy > 0.0 {
                acc += p_xy * issuer_pdf.density(c) * da;
            }
        }
    }
    acc.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc_geometry::minkowski::expand_query;
    use iloc_geometry::Rect;
    use iloc_uncertainty::UniformPdf;

    #[test]
    fn basic_ipq_converges_to_duality_closed_form() {
        let issuer = UniformPdf::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0));
        let range = RangeSpec::square(30.0);
        let loc = Point::new(115.0, 40.0);
        // Lemma 3 ground truth.
        let exact = issuer.prob_in_rect(range.at(loc));
        let mut stats = QueryStats::new();
        let coarse = point_probability(&issuer, range, loc, 40, &mut stats);
        let fine = point_probability(&issuer, range, loc, 400, &mut stats);
        assert!(exact > 0.0);
        assert!((fine - exact).abs() <= (coarse - exact).abs() + 1e-9);
        assert!((fine - exact).abs() < 2e-3, "fine {fine} vs exact {exact}");
    }

    #[test]
    fn basic_iuq_converges_to_enhanced_closed_form() {
        let issuer = UniformPdf::new(Rect::from_coords(0.0, 0.0, 60.0, 60.0));
        let object = UniformPdf::new(Rect::from_coords(50.0, 20.0, 110.0, 80.0));
        let range = RangeSpec::square(25.0);
        let expanded = expand_query(issuer.region(), 25.0, 25.0);
        let exact = crate::integrate::closed::uniform_uniform(
            issuer.region(),
            object.region(),
            range,
            expanded,
        );
        let mut stats = QueryStats::new();
        let approx = object_probability(&issuer, range, &object, 300, &mut stats);
        assert!(exact > 0.0 && exact < 1.0);
        assert!((approx - exact).abs() < 1e-3, "{approx} vs {exact}");
        assert_eq!(stats.grid_cells, 300 * 300);
    }

    #[test]
    fn planned_paths_match_unplanned_bit_for_bit() {
        use iloc_uncertainty::TruncatedGaussianPdf;
        let issuer = TruncatedGaussianPdf::paper_default(Rect::from_coords(0.0, 0.0, 60.0, 40.0));
        let range = RangeSpec::new(12.0, 8.0);
        let mut cells = Vec::new();
        let da = fill_grid_plan(&issuer, 25, &mut cells);
        assert_eq!(cells.len(), 25 * 25);
        for loc in [Point::new(55.0, 20.0), Point::new(300.0, 300.0)] {
            let mut s1 = QueryStats::new();
            let mut s2 = QueryStats::new();
            let a = point_probability(&issuer, range, loc, 25, &mut s1);
            let b = point_probability_planned(&cells, da, range, loc, &mut s2);
            assert_eq!(a.to_bits(), b.to_bits());
            assert_eq!(s1.grid_cells, s2.grid_cells);
            assert_eq!(s1.prob_evals, s2.prob_evals);
        }
        let object = UniformPdf::new(Rect::from_coords(50.0, 10.0, 110.0, 50.0));
        let mut s1 = QueryStats::new();
        let mut s2 = QueryStats::new();
        let a = object_probability(&issuer, range, &object, 25, &mut s1);
        let b = object_probability_planned(&cells, da, range, &object, &mut s2);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(s1.grid_cells, s2.grid_cells);
    }

    #[test]
    fn far_object_scores_zero() {
        let issuer = UniformPdf::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0));
        let object = UniformPdf::new(Rect::from_coords(900.0, 900.0, 910.0, 910.0));
        let range = RangeSpec::square(5.0);
        let mut stats = QueryStats::new();
        assert_eq!(
            object_probability(&issuer, range, &object, 20, &mut stats),
            0.0
        );
        assert_eq!(
            point_probability(&issuer, range, Point::new(500.0, 500.0), 20, &mut stats),
            0.0
        );
    }
}
