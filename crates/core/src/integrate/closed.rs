//! Exact closed form for the uniform/uniform case — the paper's
//! "enhanced method" (Eq. 6 for IPQ, Eq. 8 + separability for IUQ).
//!
//! With a uniform issuer, the point-object qualification `Q(x, y)` of a
//! location `(x, y)` is `Area(R(x,y) ∩ U0) / Area(U0)`, and the area
//! factorises into two 1-D overlap profiles:
//! `Area(R(x,y) ∩ U0) = ox(x) · oy(y)`. With a uniform object pdf the
//! Eq. 8 integrand is constant times that product, so
//!
//! ```text
//! pi = (∫_{Dx} ox dx) · (∫_{Dy} oy dy) / (Area(U0) · Area(Ui))
//! ```
//!
//! where `D = Ui ∩ (R ⊕ U0)`. Both factors are exact integrals of
//! trapezoid functions (`iloc_geometry::piecewise`); evaluation is
//! O(1), independent of region sizes — this is what Figure 8 measures
//! against the sampling baseline.

use iloc_geometry::{Interval, OverlapProfile, Rect};
use iloc_uncertainty::{Axis, LocationPdf};

use crate::query::RangeSpec;

/// One linear segment of a hoisted overlap profile, with the slope and
/// the `c0 + c1·x` coefficients precomputed once per query (the scalar
/// path recomputes them per candidate inside
/// [`profile_against_marginal`]).
///
/// Zero-width padding segments (`x0 == x1`) are valid and contribute
/// exactly `+0.0` to every integral, which lets [`AxisProfile`] hold a
/// fixed-shape `[HoistedSegment; 3]` the batch kernels iterate without
/// a length branch.
#[derive(Debug, Clone, Copy)]
pub struct HoistedSegment {
    /// Segment start knot.
    pub x0: f64,
    /// Segment end knot (`>= x0`).
    pub x1: f64,
    /// Profile value at `x0`.
    pub y0: f64,
    /// `(y1 − y0) / (x1 − x0)`, bit-identical to the scalar path's
    /// per-candidate recomputation.
    pub slope: f64,
    /// `y0 − slope·x0`: the constant of the `c0 + c1·x` form consumed
    /// by [`LocationPdf::linear_marginal_integral`].
    pub c0: f64,
}

/// One axis of a query's overlap profile in hoisted (SoA-friendly)
/// form: always exactly three segments — an [`OverlapProfile`] has at
/// most four knots — padded with zero-width segments so the batch
/// kernels run a fixed-trip-count inner loop.
#[derive(Debug, Clone, Copy)]
pub struct AxisProfile {
    /// The (padded) profile segments.
    pub segs: [HoistedSegment; 3],
    /// Support lower bound (first knot), `0.0` for a degenerate
    /// profile.
    pub sup_lo: f64,
    /// Support upper bound (last knot), `0.0` for a degenerate
    /// profile.
    pub sup_hi: f64,
}

impl AxisProfile {
    /// Hoists `OverlapProfile::new(w, side)` into fixed-shape segments.
    pub fn new(w: f64, side: Interval) -> Self {
        let profile = OverlapProfile::new(w, side);
        let knots = profile.knots();
        let (sup_lo, sup_hi) = if knots.len() < 2 {
            // Degenerate (w == 0 on a point side): the zero function.
            (0.0, 0.0)
        } else {
            (knots[0].0, knots[knots.len() - 1].0)
        };
        let pad = HoistedSegment {
            x0: sup_hi,
            x1: sup_hi,
            y0: 0.0,
            slope: 0.0,
            c0: 0.0,
        };
        let mut segs = [pad; 3];
        for (k, pair) in knots.windows(2).enumerate() {
            let (x0, y0) = pair[0];
            let (x1, y1) = pair[1];
            let slope = (y1 - y0) / (x1 - x0);
            segs[k] = HoistedSegment {
                x0,
                x1,
                y0,
                slope,
                c0: y0 - slope * x0,
            };
        }
        AxisProfile {
            segs,
            sup_lo,
            sup_hi,
        }
    }

    /// `∫_{[d_lo, d_hi]} profile(x) dx`, bit-identical to
    /// [`OverlapProfile::integral_over`] but branchless: empty or
    /// zero-length clips select `+0.0` instead of early-returning, and
    /// `x + 0.0` preserves every non-negative total exactly.
    #[inline(always)]
    fn integral(&self, d_lo: f64, d_hi: f64) -> f64 {
        let i_lo = d_lo.max(self.sup_lo);
        let i_hi = d_hi.min(self.sup_hi);
        let mut total = 0.0;
        for s in &self.segs {
            let a = i_lo.max(s.x0);
            let b = i_hi.min(s.x1);
            let f_a = s.y0 + s.slope * (a - s.x0);
            let f_b = s.y0 + s.slope * (b - s.x0);
            let contrib = 0.5 * (f_a + f_b) * (b - a);
            total += if b > a { contrib } else { 0.0 };
        }
        total
    }
}

/// Per-query invariants of the closed-form IUQ refinement, computed
/// once per query instead of once per candidate: the issuer's overlap
/// profiles, its area, and the expanded query `R ⊕ U0`.
///
/// Built by the SoA refine path for any **uniform-issuer** query; the
/// batch kernels below consume it.
#[derive(Debug, Clone, Copy)]
pub struct UniformHeader {
    /// Overlap profile along x.
    pub ox: AxisProfile,
    /// Overlap profile along y.
    pub oy: AxisProfile,
    /// The Minkowski sum `R ⊕ U0`.
    pub expanded: Rect,
    /// `Area(U0)`.
    pub u0_area: f64,
    /// `Area(U0) == 0`: every probability is `0.0` and no profile is
    /// built (the scalar path returns before touching one).
    pub degenerate: bool,
}

impl UniformHeader {
    /// Precomputes the per-query invariants for issuer region `u0`.
    pub fn new(u0: Rect, range: RangeSpec, expanded: Rect) -> Self {
        let u0_area = u0.area();
        if u0_area == 0.0 {
            let zero = AxisProfile {
                segs: [HoistedSegment {
                    x0: 0.0,
                    x1: 0.0,
                    y0: 0.0,
                    slope: 0.0,
                    c0: 0.0,
                }; 3],
                sup_lo: 0.0,
                sup_hi: 0.0,
            };
            return UniformHeader {
                ox: zero,
                oy: zero,
                expanded,
                u0_area,
                degenerate: true,
            };
        }
        UniformHeader {
            ox: AxisProfile::new(range.w, u0.x_interval()),
            oy: AxisProfile::new(range.h, u0.y_interval()),
            expanded,
            u0_area,
            degenerate: false,
        }
    }
}

/// One candidate of the batched uniform/uniform closed form —
/// [`uniform_uniform`] restructured as straight-line selects over the
/// hoisted [`UniformHeader`], bit-identical to the scalar path (see
/// the `hoisted_kernels_match_scalar` test).
///
/// The object area is re-derived from the corners: for the valid
/// (`max >= min`) regions a candidate carries, `(hi−lo)·(hi−lo)` is the
/// exact arithmetic of [`Rect::area`], and a zero-extent region lands
/// in the same `area != 0.0 → 0.0` select either way.
#[inline(always)]
fn uniform_one(h: &UniformHeader, ui: &[f64; 4]) -> f64 {
    let [lo_x, lo_y, hi_x, hi_y] = *ui;
    let area = (hi_x - lo_x) * (hi_y - lo_y);
    // Mirrors `ui.intersect(expanded)` (lo.max, hi.min per axis).
    let d_lo_x = lo_x.max(h.expanded.min.x);
    let d_hi_x = hi_x.min(h.expanded.max.x);
    let d_lo_y = lo_y.max(h.expanded.min.y);
    let d_hi_y = hi_y.min(h.expanded.max.y);
    let ix = h.ox.integral(d_lo_x, d_hi_x);
    let iy = h.oy.integral(d_lo_y, d_hi_y);
    let v = (ix * iy) / (h.u0_area * area);
    // The select replaces the scalar early return: an empty domain or
    // zero-area object is exactly 0.0 (and guards the 0/0 NaN in `v`).
    let nonempty = d_hi_x >= d_lo_x && d_hi_y >= d_lo_y;
    if nonempty && area != 0.0 {
        v.clamp(0.0, 1.0)
    } else {
        0.0
    }
}

/// Batched uniform/uniform closed form over a packed candidate lane —
/// one `[lo_x, lo_y, hi_x, hi_y]` corner quadruple per object region:
/// `out[k] = uniform_uniform(u0, ui_k, range, expanded)` bit for bit,
/// with all per-query work hoisted into the header.
///
/// The packed (AoS) layout is deliberate: the gather loop that feeds
/// this kernel is bound by random object-table reads, and a single
/// 32-byte push per candidate keeps it short enough to overlap those
/// misses. The default build is a branchless scalar loop; the `simd`
/// feature routes through an explicit SSE2 kernel on x86-64 that
/// transposes pairs of quadruples in registers.
pub fn uniform_uniform_batch(h: &UniformHeader, rects: &[[f64; 4]], out: &mut [f64]) {
    assert_eq!(
        rects.len(),
        out.len(),
        "one output per uniform candidate rect"
    );
    if h.degenerate {
        out.fill(0.0);
        return;
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        simd::uniform_uniform_batch(h, rects, out);
        return;
    }
    #[allow(unreachable_code)]
    for (pi, ui) in out.iter_mut().zip(rects) {
        *pi = uniform_one(h, ui);
    }
}

/// [`uniform_separable`] with the per-query profile construction
/// hoisted into a [`UniformHeader`]: same arithmetic, bit-identical
/// results, one profile build per query instead of one per candidate.
pub fn uniform_separable_hoisted<P: LocationPdf + ?Sized>(
    h: &UniformHeader,
    object_pdf: &P,
) -> Option<f64> {
    if h.degenerate {
        return Some(0.0);
    }
    let domain = object_pdf.region().intersect(h.expanded);
    if domain.is_empty() {
        return Some(0.0);
    }
    let ix = hoisted_profile_marginal(object_pdf, Axis::X, &h.ox, domain.x_interval())?;
    let iy = hoisted_profile_marginal(object_pdf, Axis::Y, &h.oy, domain.y_interval())?;
    Some(((ix * iy) / h.u0_area).clamp(0.0, 1.0))
}

/// [`profile_against_marginal`] over hoisted segments: the `c0`/`c1`
/// coefficients come precomputed from the header; padding segments are
/// skipped by the existing zero-length clip test.
fn hoisted_profile_marginal<P: LocationPdf + ?Sized>(
    pdf: &P,
    axis: Axis,
    profile: &AxisProfile,
    i: Interval,
) -> Option<f64> {
    let mut acc = 0.0;
    for s in &profile.segs {
        let clip = Interval::new(s.x0, s.x1).intersect(i);
        if clip.is_empty() || clip.length() == 0.0 {
            continue;
        }
        acc += pdf.linear_marginal_integral(axis, clip, s.c0, s.slope)?;
    }
    Some(acc)
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod simd {
    //! Explicit two-wide SSE2 kernel for the uniform lane.
    //!
    //! Every operation maps one-to-one onto the scalar kernel with the
    //! same order and associativity — `maxpd`/`minpd`/`mulpd`/`addpd`/
    //! `divpd` only, **no FMA** — so per-lane results carry the exact
    //! IEEE rounding of the scalar path for the finite, non-signed-zero
    //! coordinates real workloads produce. Selects are implemented with
    //! compare masks and bitwise blends.

    use super::{AxisProfile, UniformHeader};

    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;

    /// Safe entry point: SSE2 is unconditionally part of the x86-64
    /// baseline, so no runtime feature detection is needed.
    pub fn uniform_uniform_batch(h: &UniformHeader, rects: &[[f64; 4]], out: &mut [f64]) {
        unsafe { uniform_uniform_batch_sse2(h, rects, out) }
    }

    /// `or(and(mask, a), andnot(mask, b))` — lanewise `mask ? a : b`.
    #[inline(always)]
    unsafe fn select(mask: __m128d, a: __m128d, b: __m128d) -> __m128d {
        _mm_or_pd(_mm_and_pd(mask, a), _mm_andnot_pd(mask, b))
    }

    /// Two-candidate [`AxisProfile::integral`].
    #[inline(always)]
    unsafe fn axis_integral_pd(p: &AxisProfile, d_lo: __m128d, d_hi: __m128d) -> __m128d {
        let i_lo = _mm_max_pd(d_lo, _mm_set1_pd(p.sup_lo));
        let i_hi = _mm_min_pd(d_hi, _mm_set1_pd(p.sup_hi));
        let mut total = _mm_setzero_pd();
        for s in &p.segs {
            let a = _mm_max_pd(i_lo, _mm_set1_pd(s.x0));
            let b = _mm_min_pd(i_hi, _mm_set1_pd(s.x1));
            let x0 = _mm_set1_pd(s.x0);
            let y0 = _mm_set1_pd(s.y0);
            let slope = _mm_set1_pd(s.slope);
            let f_a = _mm_add_pd(y0, _mm_mul_pd(slope, _mm_sub_pd(a, x0)));
            let f_b = _mm_add_pd(y0, _mm_mul_pd(slope, _mm_sub_pd(b, x0)));
            let contrib = _mm_mul_pd(
                _mm_mul_pd(_mm_set1_pd(0.5), _mm_add_pd(f_a, f_b)),
                _mm_sub_pd(b, a),
            );
            total = _mm_add_pd(total, _mm_and_pd(_mm_cmpgt_pd(b, a), contrib));
        }
        total
    }

    /// Two-wide body of [`super::uniform_uniform_batch`]; the odd tail
    /// candidate falls back to the scalar kernel.
    ///
    /// Pairs of packed `[lo_x, lo_y, hi_x, hi_y]` quadruples are
    /// transposed to lane registers with `unpcklpd`/`unpckhpd`, and the
    /// object areas are rebuilt in-register (`mulpd` of the two corner
    /// `subpd`s — the exact arithmetic of [`iloc_geometry::Rect::area`]
    /// for the valid regions candidates carry).
    ///
    /// # Safety
    ///
    /// SSE2 is unconditionally available on `x86_64`; lane lengths are
    /// checked by the caller.
    #[target_feature(enable = "sse2")]
    pub unsafe fn uniform_uniform_batch_sse2(
        h: &UniformHeader,
        rects: &[[f64; 4]],
        out: &mut [f64],
    ) {
        let n = out.len();
        let e_lo_x = _mm_set1_pd(h.expanded.min.x);
        let e_hi_x = _mm_set1_pd(h.expanded.max.x);
        let e_lo_y = _mm_set1_pd(h.expanded.min.y);
        let e_hi_y = _mm_set1_pd(h.expanded.max.y);
        let u0_area = _mm_set1_pd(h.u0_area);
        let zero = _mm_setzero_pd();
        let one = _mm_set1_pd(1.0);
        let mut k = 0;
        while k + 2 <= n {
            let a_lo = _mm_loadu_pd(rects[k].as_ptr()); // [lo_x₀, lo_y₀]
            let a_hi = _mm_loadu_pd(rects[k].as_ptr().add(2)); // [hi_x₀, hi_y₀]
            let b_lo = _mm_loadu_pd(rects[k + 1].as_ptr());
            let b_hi = _mm_loadu_pd(rects[k + 1].as_ptr().add(2));
            let lo_x = _mm_unpacklo_pd(a_lo, b_lo);
            let lo_y = _mm_unpackhi_pd(a_lo, b_lo);
            let hi_x = _mm_unpacklo_pd(a_hi, b_hi);
            let hi_y = _mm_unpackhi_pd(a_hi, b_hi);
            let area = _mm_mul_pd(_mm_sub_pd(hi_x, lo_x), _mm_sub_pd(hi_y, lo_y));
            let d_lo_x = _mm_max_pd(lo_x, e_lo_x);
            let d_hi_x = _mm_min_pd(hi_x, e_hi_x);
            let d_lo_y = _mm_max_pd(lo_y, e_lo_y);
            let d_hi_y = _mm_min_pd(hi_y, e_hi_y);
            let ix = axis_integral_pd(&h.ox, d_lo_x, d_hi_x);
            let iy = axis_integral_pd(&h.oy, d_lo_y, d_hi_y);
            let v = _mm_div_pd(_mm_mul_pd(ix, iy), _mm_mul_pd(u0_area, area));
            // `f64::clamp(0.0, 1.0)` as nested selects.
            let clamped = select(
                _mm_cmplt_pd(v, zero),
                zero,
                select(_mm_cmpgt_pd(v, one), one, v),
            );
            let nonempty = _mm_and_pd(_mm_cmpge_pd(d_hi_x, d_lo_x), _mm_cmpge_pd(d_hi_y, d_lo_y));
            let ok = _mm_and_pd(nonempty, _mm_cmpneq_pd(area, zero));
            _mm_storeu_pd(out.as_mut_ptr().add(k), _mm_and_pd(ok, clamped));
            k += 2;
        }
        while k < n {
            out[k] = super::uniform_one(h, &rects[k]);
            k += 1;
        }
    }
}

/// Exact IUQ qualification probability for a uniform issuer on `u0` and
/// a uniform object on `ui`; `expanded` is `R ⊕ U0`.
///
/// This is the innermost function of the zero-allocation hot path: the
/// overlap profiles live on the stack ([`OverlapProfile`]) and the
/// whole evaluation is branch-light straight-line arithmetic.
#[inline]
pub fn uniform_uniform(u0: Rect, ui: Rect, range: RangeSpec, expanded: Rect) -> f64 {
    let domain = ui.intersect(expanded);
    if domain.is_empty() || u0.area() == 0.0 || ui.area() == 0.0 {
        return 0.0;
    }
    let ox = OverlapProfile::new(range.w, u0.x_interval());
    let oy = OverlapProfile::new(range.h, u0.y_interval());
    let ix = ox.integral_over(domain.x_interval());
    let iy = oy.integral_over(domain.y_interval());
    ((ix * iy) / (u0.area() * ui.area())).clamp(0.0, 1.0)
}

/// Exact IUQ probability for a uniform issuer and **any axis-separable
/// object pdf** (one providing
/// [`linear_marginal_integral`](LocationPdf::linear_marginal_integral),
/// e.g. the truncated Gaussian the paper evaluates by Monte-Carlo).
///
/// Extends Eq. 8's separability beyond the uniform/uniform case:
/// `pi = (∫ fx·ox)(∫ fy·oy)/Area(U0)`, where each factor integrates a
/// piecewise-*linear* overlap profile against the object's marginal —
/// exact segment by segment. Returns `None` when the object pdf does
/// not expose closed-form marginals.
///
/// Generic over the pdf type so calls with a concrete pdf (from the
/// `PdfKind` dispatch) monomorphise and inline; `&dyn LocationPdf`
/// still works.
pub fn uniform_separable<P: LocationPdf + ?Sized>(
    u0: Rect,
    object_pdf: &P,
    range: RangeSpec,
    expanded: Rect,
) -> Option<f64> {
    if u0.area() == 0.0 {
        return Some(0.0);
    }
    let domain = object_pdf.region().intersect(expanded);
    if domain.is_empty() {
        return Some(0.0);
    }
    let ox = OverlapProfile::new(range.w, u0.x_interval());
    let oy = OverlapProfile::new(range.h, u0.y_interval());
    let ix = profile_against_marginal(object_pdf, Axis::X, &ox, domain.x_interval())?;
    let iy = profile_against_marginal(object_pdf, Axis::Y, &oy, domain.y_interval())?;
    Some(((ix * iy) / u0.area()).clamp(0.0, 1.0))
}

/// `∫_I profile(x) dF_axis(x)`, exact per linear segment.
fn profile_against_marginal<P: LocationPdf + ?Sized>(
    pdf: &P,
    axis: Axis,
    profile: &OverlapProfile,
    i: Interval,
) -> Option<f64> {
    let mut acc = 0.0;
    for seg in profile.knots().windows(2) {
        let (x0, y0) = seg[0];
        let (x1, y1) = seg[1];
        let clip = Interval::new(x0, x1).intersect(i);
        if clip.is_empty() || clip.length() == 0.0 {
            continue;
        }
        // On [x0, x1]: profile(x) = y0 + slope·(x − x0) = c0 + c1·x.
        let slope = (y1 - y0) / (x1 - x0);
        let c1 = slope;
        let c0 = y0 - slope * x0;
        acc += pdf.linear_marginal_integral(axis, clip, c0, c1)?;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc_geometry::minkowski::expand_query;
    use iloc_geometry::Point;

    fn expanded(u0: Rect, range: RangeSpec) -> Rect {
        expand_query(u0, range.w, range.h)
    }

    #[test]
    fn object_far_away_has_zero_probability() {
        let u0 = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let ui = Rect::from_coords(100.0, 100.0, 110.0, 110.0);
        let range = RangeSpec::square(5.0);
        assert_eq!(uniform_uniform(u0, ui, range, expanded(u0, range)), 0.0);
    }

    #[test]
    fn object_always_in_range_has_probability_one() {
        // Tiny U0 and Ui sitting on top of each other, huge range.
        let u0 = Rect::centered(Point::new(50.0, 50.0), 1.0, 1.0);
        let ui = Rect::centered(Point::new(50.0, 50.0), 1.0, 1.0);
        let range = RangeSpec::square(100.0);
        let p = uniform_uniform(u0, ui, range, expanded(u0, range));
        assert!((p - 1.0).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn coincident_unit_squares_quarter_overlap() {
        // U0 = Ui = unit square at origin, range half-size 0.5.
        // pi = E[Area(R(X) ∩ U0)] = ∫∫ ox·oy / (1·1); by symmetry
        // ∫_0^1 ox(x) dx with w=0.5 over side [0,1]: trapezoid of
        // support [-0.5,1.5], plateau 1 on [0.5,0.5]… plateau height
        // min(2w, 1) = 1 at the single point x=0.5; ∫_0^1 = 0.75.
        // pi = 0.75² = 0.5625.
        let u0 = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let ui = u0;
        let range = RangeSpec::square(0.5);
        let p = uniform_uniform(u0, ui, range, expanded(u0, range));
        assert!((p - 0.5625).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn matches_monte_carlo_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let u0 = Rect::from_coords(0.0, 0.0, 40.0, 20.0);
        let ui = Rect::from_coords(30.0, 10.0, 90.0, 50.0);
        let range = RangeSpec::new(15.0, 10.0);
        let p = uniform_uniform(u0, ui, range, expanded(u0, range));

        // Double Monte-Carlo on the definition (Eq. 4): sample issuer
        // and object positions, count range membership.
        let mut rng = StdRng::seed_from_u64(17);
        const N: usize = 400_000;
        let mut hits = 0usize;
        for _ in 0..N {
            let q = Point::new(rng.gen_range(0.0..40.0), rng.gen_range(0.0..20.0));
            let o = Point::new(rng.gen_range(30.0..90.0), rng.gen_range(10.0..50.0));
            if (o.x - q.x).abs() <= range.w && (o.y - q.y).abs() <= range.h {
                hits += 1;
            }
        }
        let reference = hits as f64 / N as f64;
        assert!((p - reference).abs() < 5e-3, "closed {p} vs mc {reference}");
    }

    #[test]
    fn restricting_to_expanded_region_changes_nothing() {
        // Lemma 4: integrating over Ui ∩ (R ⊕ U0) instead of Ui is
        // lossless because Q vanishes outside. Equivalently, passing a
        // *larger* `expanded` must give the same result.
        let u0 = Rect::from_coords(0.0, 0.0, 20.0, 20.0);
        let ui = Rect::from_coords(25.0, 0.0, 60.0, 35.0);
        let range = RangeSpec::square(10.0);
        let tight = uniform_uniform(u0, ui, range, expanded(u0, range));
        let loose = uniform_uniform(
            u0,
            ui,
            range,
            Rect::from_coords(-1_000.0, -1_000.0, 1_000.0, 1_000.0),
        );
        assert!((tight - loose).abs() < 1e-12);
    }

    #[test]
    fn separable_matches_uniform_uniform() {
        use iloc_uncertainty::UniformPdf;
        let u0 = Rect::from_coords(0.0, 0.0, 30.0, 50.0);
        let ui = Rect::from_coords(20.0, 10.0, 80.0, 90.0);
        let range = RangeSpec::new(12.0, 18.0);
        let expanded = expanded(u0, range);
        let reference = uniform_uniform(u0, ui, range, expanded);
        let via_separable = uniform_separable(u0, &UniformPdf::new(ui), range, expanded)
            .expect("uniform is separable");
        assert!((reference - via_separable).abs() < 1e-12);
    }

    #[test]
    fn separable_gaussian_matches_quadrature() {
        use crate::stats::QueryStats;
        use iloc_uncertainty::TruncatedGaussianPdf;
        use iloc_uncertainty::UniformPdf;
        let u0 = Rect::from_coords(0.0, 0.0, 40.0, 40.0);
        let issuer = UniformPdf::new(u0);
        let range = RangeSpec::square(15.0);
        let expanded = expanded(u0, range);
        for ui in [
            Rect::from_coords(30.0, 10.0, 90.0, 70.0), // partial overlap
            Rect::from_coords(-10.0, -10.0, 50.0, 50.0), // covers U0
            Rect::from_coords(52.0, 52.0, 100.0, 100.0), // corner graze
        ] {
            let object = TruncatedGaussianPdf::paper_default(ui);
            let exact =
                uniform_separable(u0, &object, range, expanded).expect("gaussian is separable");
            let mut stats = QueryStats::new();
            let approx = crate::integrate::grid::object_probability(
                &issuer, range, &object, expanded, 300, &mut stats,
            );
            assert!(
                (exact - approx).abs() < 2e-3,
                "ui={ui:?}: exact {exact} vs grid {approx}"
            );
        }
    }

    #[test]
    fn separable_returns_none_for_non_separable_pdfs() {
        use iloc_geometry::Point;
        use iloc_uncertainty::DiscPdf;
        let u0 = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let object = DiscPdf::new(Point::new(12.0, 5.0), 4.0);
        let range = RangeSpec::square(5.0);
        assert_eq!(
            uniform_separable(u0, &object, range, expanded(u0, range)),
            None
        );
    }

    #[test]
    fn separable_gaussian_far_object_is_zero() {
        use iloc_uncertainty::TruncatedGaussianPdf;
        let u0 = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let object =
            TruncatedGaussianPdf::paper_default(Rect::from_coords(500.0, 500.0, 560.0, 560.0));
        let range = RangeSpec::square(5.0);
        assert_eq!(
            uniform_separable(u0, &object, range, expanded(u0, range)),
            Some(0.0)
        );
    }

    #[test]
    fn hoisted_kernels_match_scalar_bit_for_bit() {
        // The batch kernel must reproduce `uniform_uniform` exactly —
        // including empty domains, zero-area objects, grazing touches
        // and the degenerate-profile case — and the hoisted separable
        // path must reproduce `uniform_separable`.
        use iloc_uncertainty::TruncatedGaussianPdf;
        let u0 = Rect::from_coords(0.0, 0.0, 37.0, 21.0);
        let range = RangeSpec::new(9.0, 4.5);
        let e = expanded(u0, range);
        let header = UniformHeader::new(u0, range, e);
        let candidates = [
            Rect::from_coords(10.0, 5.0, 30.0, 15.0),      // inside
            Rect::from_coords(40.0, 20.0, 90.0, 60.0),     // straddles edge
            Rect::from_coords(500.0, 500.0, 510.0, 510.0), // far away
            Rect::from_coords(46.0, 25.5, 80.0, 60.0),     // corner graze
            Rect::from_coords(5.0, 5.0, 5.0, 9.0),         // zero width
            Rect::from_coords(-20.0, -20.0, 60.0, 40.0),   // covers U0
        ];
        let rects: Vec<[f64; 4]> = candidates
            .iter()
            .map(|r| [r.min.x, r.min.y, r.max.x, r.max.y])
            .collect();
        let mut out = vec![f64::NAN; candidates.len()];
        uniform_uniform_batch(&header, &rects, &mut out);
        for (k, ui) in candidates.iter().enumerate() {
            let scalar = uniform_uniform(u0, *ui, range, e);
            assert_eq!(
                out[k].to_bits(),
                scalar.to_bits(),
                "candidate {k}: batch {} vs scalar {scalar}",
                out[k]
            );
        }
        for ui in [
            Rect::from_coords(10.0, 5.0, 30.0, 15.0),
            Rect::from_coords(44.0, 20.0, 90.0, 60.0),
            Rect::from_coords(500.0, 500.0, 560.0, 560.0),
        ] {
            let g = TruncatedGaussianPdf::paper_default(ui);
            let scalar = uniform_separable(u0, &g, range, e).unwrap();
            let hoisted = uniform_separable_hoisted(&header, &g).unwrap();
            assert_eq!(hoisted.to_bits(), scalar.to_bits(), "gaussian on {ui:?}");
        }
    }

    #[test]
    fn degenerate_issuer_header_is_all_zero() {
        // Zero-area issuer: the scalar path returns 0.0 before building
        // a profile; the header marks itself degenerate and the kernel
        // fills zeros.
        let u0 = Rect::from_coords(5.0, 5.0, 5.0, 9.0);
        let range = RangeSpec::square(3.0);
        let e = expanded(Rect::from_coords(0.0, 0.0, 10.0, 10.0), range);
        let header = UniformHeader::new(u0, range, e);
        assert!(header.degenerate);
        let ui = Rect::from_coords(4.0, 4.0, 8.0, 8.0);
        let mut out = [f64::NAN];
        uniform_uniform_batch(
            &header,
            &[[ui.min.x, ui.min.y, ui.max.x, ui.max.y]],
            &mut out,
        );
        assert_eq!(
            out[0].to_bits(),
            uniform_uniform(u0, ui, range, e).to_bits()
        );
        assert_eq!(out[0], 0.0);
    }

    #[test]
    fn probability_monotone_in_range_size() {
        let u0 = Rect::from_coords(0.0, 0.0, 20.0, 20.0);
        let ui = Rect::from_coords(30.0, 30.0, 50.0, 50.0);
        let mut prev = 0.0;
        for k in 1..=10 {
            let range = RangeSpec::square(5.0 * k as f64);
            let p = uniform_uniform(u0, ui, range, expanded(u0, range));
            assert!(p >= prev - 1e-12, "not monotone at k={k}");
            prev = p;
        }
        assert!(prev > 0.99, "large range should almost surely contain Ui");
    }
}
