//! Circles and exact circle–rectangle intersection areas.
//!
//! The paper's conclusion lists *non-rectangular uncertainty regions*
//! as future work; a disc is the natural shape for GPS-style error
//! ("within `r` metres of the fix"). The one non-trivial primitive a
//! disc-shaped uncertainty pdf needs is the exact area of
//! `disc ∩ rectangle`, implemented here via signed quadrant
//! decomposition — no numerical integration.

use crate::point::Point;
use crate::rect::Rect;

/// A disc (filled circle).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    /// Centre.
    pub center: Point,
    /// Radius (non-negative).
    pub radius: f64,
}

impl Circle {
    /// Creates a disc.
    ///
    /// # Panics
    ///
    /// Panics when the radius is negative or non-finite.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(radius.is_finite() && radius >= 0.0, "invalid radius");
        Circle { center, radius }
    }

    /// Disc area `πr²`.
    #[inline]
    pub fn area(self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Tight axis-parallel bounding box.
    #[inline]
    pub fn bounding_box(self) -> Rect {
        Rect::centered(self.center, self.radius, self.radius)
    }

    /// `true` when `p` lies inside or on the circle.
    #[inline]
    pub fn contains_point(self, p: Point) -> bool {
        self.center.distance_sq(p) <= self.radius * self.radius + 1e-12
    }

    /// Exact area of `self ∩ rect`.
    ///
    /// Decomposes the rectangle (translated so the disc is centred at
    /// the origin) into four signed corner boxes `[0, x] × [0, y]` and
    /// sums the signed quadrant areas — the 2-D analogue of evaluating
    /// a CDF at the four corners.
    pub fn intersection_area(self, rect: Rect) -> f64 {
        if rect.is_empty() || self.radius == 0.0 {
            return 0.0;
        }
        let r = self.radius;
        let x0 = rect.min.x - self.center.x;
        let x1 = rect.max.x - self.center.x;
        let y0 = rect.min.y - self.center.y;
        let y1 = rect.max.y - self.center.y;
        let area = signed_corner_area(x1, y1, r)
            - signed_corner_area(x0, y1, r)
            - signed_corner_area(x1, y0, r)
            + signed_corner_area(x0, y0, r);
        area.clamp(0.0, self.area().min(rect.area()))
    }
}

/// Signed area of `disc(r) ∩ ([0, x] × [0, y])` where negative `x`/`y`
/// flip the box across the axes and contribute with the product of the
/// signs (inclusion–exclusion weight).
fn signed_corner_area(x: f64, y: f64, r: f64) -> f64 {
    let s = x.signum() * y.signum();
    s * quadrant_area(x.abs(), y.abs(), r)
}

/// Area of `disc(r) ∩ ([0, a] × [0, b])` for `a, b ≥ 0`.
fn quadrant_area(a: f64, b: f64, r: f64) -> f64 {
    let a = a.min(r);
    let b = b.min(r);
    if a == 0.0 || b == 0.0 {
        return 0.0;
    }
    if a * a + b * b <= r * r {
        // The far corner is inside the disc, so the whole box is.
        return a * b;
    }
    // x-range where the circle's height √(r²−x²) exceeds b.
    let xb = (r * r - b * b).max(0.0).sqrt();
    if a <= xb {
        return a * b;
    }
    // Flat part up to xb, then the circular arc from xb to a:
    // ∫√(r²−x²)dx = (x√(r²−x²) + r²·asin(x/r)) / 2.
    let anti = |x: f64| 0.5 * (x * (r * r - x * x).max(0.0).sqrt() + r * r * (x / r).asin());
    xb * b + anti(a) - anti(xb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Circle {
        Circle::new(Point::new(0.0, 0.0), 1.0)
    }

    #[test]
    fn disjoint_rect_zero_area() {
        let c = unit();
        assert_eq!(
            c.intersection_area(Rect::from_coords(2.0, 2.0, 3.0, 3.0)),
            0.0
        );
    }

    #[test]
    fn rect_containing_circle_gives_full_disc() {
        let c = unit();
        let a = c.intersection_area(Rect::from_coords(-5.0, -5.0, 5.0, 5.0));
        assert!((a - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn circle_containing_rect_gives_rect_area() {
        let c = Circle::new(Point::new(0.0, 0.0), 10.0);
        let rect = Rect::from_coords(-1.0, -2.0, 3.0, 1.0);
        assert!((c.intersection_area(rect) - rect.area()).abs() < 1e-12);
    }

    #[test]
    fn half_plane_split_gives_half_disc() {
        let c = unit();
        let right = Rect::from_coords(0.0, -5.0, 5.0, 5.0);
        assert!((c.intersection_area(right) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        let top_right = Rect::from_coords(0.0, 0.0, 5.0, 5.0);
        assert!((c.intersection_area(top_right) - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn known_segment_area() {
        // Region x ≥ 0.5 of the unit disc: r²·acos(d/r) − d·√(r²−d²)
        // with d = 0.5 → acos(0.5) − 0.5·√0.75.
        let c = unit();
        let seg = c.intersection_area(Rect::from_coords(0.5, -2.0, 2.0, 2.0));
        let expect = (0.5f64).acos() - 0.5 * 0.75f64.sqrt();
        assert!((seg - expect).abs() < 1e-12, "{seg} vs {expect}");
    }

    #[test]
    fn matches_monte_carlo_on_random_configs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..40 {
            let c = Circle::new(
                Point::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0)),
                rng.gen_range(0.2..3.0),
            );
            let x0 = rng.gen_range(-3.0..2.0);
            let y0 = rng.gen_range(-3.0..2.0);
            let rect = Rect::from_coords(
                x0,
                y0,
                x0 + rng.gen_range(0.1..4.0),
                y0 + rng.gen_range(0.1..4.0),
            );
            let exact = c.intersection_area(rect);
            // Midpoint grid over the rect.
            let n = 400;
            let (dx, dy) = (rect.width() / n as f64, rect.height() / n as f64);
            let mut acc = 0.0;
            for i in 0..n {
                for j in 0..n {
                    let p = Point::new(
                        rect.min.x + (i as f64 + 0.5) * dx,
                        rect.min.y + (j as f64 + 0.5) * dy,
                    );
                    if c.contains_point(p) {
                        acc += dx * dy;
                    }
                }
            }
            let tol = 4.0 * (rect.width() + rect.height()) * dx.max(dy);
            assert!(
                (exact - acc).abs() < tol.max(1e-3),
                "trial {trial}: exact {exact} vs grid {acc}"
            );
        }
    }

    #[test]
    fn area_additive_over_split_rect() {
        let c = Circle::new(Point::new(0.3, -0.2), 1.7);
        let whole = Rect::from_coords(-2.0, -2.0, 2.0, 2.0);
        let left = Rect::from_coords(-2.0, -2.0, 0.1, 2.0);
        let right = Rect::from_coords(0.1, -2.0, 2.0, 2.0);
        let a = c.intersection_area(whole);
        let al = c.intersection_area(left);
        let ar = c.intersection_area(right);
        assert!((al + ar - a).abs() < 1e-12);
    }

    #[test]
    fn zero_radius_is_measure_zero() {
        let c = Circle::new(Point::new(0.0, 0.0), 0.0);
        assert_eq!(
            c.intersection_area(Rect::from_coords(-1.0, -1.0, 1.0, 1.0)),
            0.0
        );
        assert_eq!(c.area(), 0.0);
    }

    #[test]
    fn bounding_box_is_tight() {
        let c = Circle::new(Point::new(2.0, 3.0), 1.5);
        assert_eq!(c.bounding_box(), Rect::from_coords(0.5, 1.5, 3.5, 4.5));
    }
}
