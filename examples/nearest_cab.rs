//! Nearest-cab ranking with disc-shaped GPS uncertainty — exercising
//! both future-work extensions this workspace adds on top of the
//! paper: circular uncertainty regions ([`DiscPdf`]) and imprecise
//! probabilistic nearest-neighbour queries (`PointEngine::ipnn`).
//!
//! The rider's phone reports "within 120 m of here" (a disc, the way
//! real GPS error is stated). Cab stands are fixed points; we ask which
//! stand is most likely the *nearest* one, with probabilities.
//!
//! ```text
//! cargo run --release --example nearest_cab
//! ```

use iloc::core::eval::nn::NnMethod;
use iloc::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);

    // 1 000 cab stands across town.
    let stands: Vec<Point> = (0..1_000)
        .map(|_| Point::new(rng.gen_range(0.0..10_000.0), rng.gen_range(0.0..10_000.0)))
        .collect();
    let engine = PointEngine::build(stands);

    // The rider: uniform over a 120-unit disc (GPS fix + accuracy).
    let rider = Issuer::with_pdf(DiscPdf::new(Point::new(4_321.0, 5_678.0), 120.0));

    // Which stand is nearest, and how sure are we?
    let nn = engine.ipnn(&rider, NnMethod::Grid { per_axis: 160 });
    let mut ranked: Vec<_> = nn.results.iter().collect();
    ranked.sort_by(|a, b| b.probability.partial_cmp(&a.probability).unwrap());
    println!("possible nearest stands ({}):", ranked.len());
    for m in &ranked {
        println!("  stand {:>4}  P[nearest] = {:.4}", m.id.0, m.probability);
    }
    let total: f64 = nn.results.iter().map(|m| m.probability).sum();
    println!("probabilities sum to {total:.6} (a distribution over candidates)");

    // Only act when one stand is the nearest with ≥ 90 % confidence.
    let confident = engine.cipnn(&rider, 0.9, NnMethod::Grid { per_axis: 160 });
    match confident.results.first() {
        Some(m) => println!(
            "dispatching to stand {} (confidence {:.3})",
            m.id.0, m.probability
        ),
        None => println!("no stand is nearest with ≥90% confidence — widening search…"),
    }

    // The disc model also answers ordinary range queries exactly: the
    // issuer-side mass of any rectangle is a closed-form circle/box
    // intersection area.
    let in_range = engine.ipq(&rider, RangeSpec::square(400.0));
    println!(
        "{} stand(s) are within ±400 of the rider with positive probability ({:.3} ms)",
        in_range.results.len(),
        in_range.stats.elapsed.as_secs_f64() * 1e3
    );
}
