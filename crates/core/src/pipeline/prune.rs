//! The **Prune** stage: object-level elimination before any
//! probability integral (paper Section 5.2).
//!
//! The three pruning strategies are modelled as a chain of trait
//! objects so plans can mix, reorder, or extend them; each stage
//! records its eliminations in its own [`QueryStats`] counter, which is
//! how the experiments attribute pruning power per strategy
//! (Figure 12's discussion).

use std::fmt;

use iloc_uncertainty::UncertainObject;

use crate::eval::constrained::{
    strategy1_prunes, strategy2_prunes, strategy3_prunes, PruneContext,
};
use crate::stats::QueryStats;

use super::PreparedQuery;

/// One object-level pruning test.
///
/// Returning `true` eliminates the candidate; the stage must record
/// the elimination in `stats` so per-strategy pruning power stays
/// observable.
pub trait PruneStage<O>: fmt::Debug + Sync {
    /// Short name used in plan debugging output.
    fn name(&self) -> &'static str;

    /// Applies the test to one candidate.
    fn try_prune(&self, query: &PreparedQuery<'_>, object: &O, stats: &mut QueryStats) -> bool;
}

/// An ordered chain of pruning stages; the first stage that fires
/// eliminates the candidate (cheapest-first, as in the paper).
pub struct PruneChain<'p, O> {
    stages: Vec<Box<dyn PruneStage<O> + 'p>>,
}

impl<'p, O> PruneChain<'p, O> {
    /// The empty chain (unconstrained queries, and the paper's R-tree
    /// baseline which refines every candidate).
    pub fn none() -> Self {
        PruneChain { stages: Vec::new() }
    }

    /// A chain of explicit stages, applied in order.
    pub fn new(stages: Vec<Box<dyn PruneStage<O> + 'p>>) -> Self {
        PruneChain { stages }
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` when no stage is installed.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Runs the chain; `true` eliminates the candidate.
    pub fn try_prune(&self, query: &PreparedQuery<'_>, object: &O, stats: &mut QueryStats) -> bool {
        self.stages
            .iter()
            .any(|stage| stage.try_prune(query, object, stats))
    }
}

impl<'p> PruneChain<'p, UncertainObject> {
    /// The paper's Section 5.2 stack in its published order —
    /// Strategy 2 (cheapest), then Strategy 1, then the Strategy 3
    /// product rule.
    pub fn section_5_2(ctx: PruneContext<'p>) -> Self {
        PruneChain::new(vec![
            Box::new(ExpandedQueryPrune(ctx)),
            Box::new(TailPrune(ctx)),
            Box::new(ProductRulePrune(ctx)),
        ])
    }
}

impl<O> fmt::Debug for PruneChain<'_, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.stages.iter().map(|s| s.name()))
            .finish()
    }
}

/// **Strategy 1**: the possible-qualification region `Ui ∩ (R ⊕ U0)`
/// lies in a `≤ Qp` tail of the object's own p-bounds.
#[derive(Debug, Clone, Copy)]
pub struct TailPrune<'p>(pub PruneContext<'p>);

impl PruneStage<UncertainObject> for TailPrune<'_> {
    fn name(&self) -> &'static str {
        "strategy1-tail"
    }
    fn try_prune(
        &self,
        _query: &PreparedQuery<'_>,
        object: &UncertainObject,
        stats: &mut QueryStats,
    ) -> bool {
        let fired = strategy1_prunes(object, &self.0);
        if fired {
            stats.pruned_s1 += 1;
        }
        fired
    }
}

/// **Strategy 2**: `Ui` lies completely outside the issuer's
/// conservative `M`-expanded query.
#[derive(Debug, Clone, Copy)]
pub struct ExpandedQueryPrune<'p>(pub PruneContext<'p>);

impl PruneStage<UncertainObject> for ExpandedQueryPrune<'_> {
    fn name(&self) -> &'static str {
        "strategy2-p-expanded"
    }
    fn try_prune(
        &self,
        _query: &PreparedQuery<'_>,
        object: &UncertainObject,
        stats: &mut QueryStats,
    ) -> bool {
        let fired = strategy2_prunes(object, &self.0);
        if fired {
            stats.pruned_s2 += 1;
        }
        fired
    }
}

/// **Strategy 3**: the `qmin · dmin < Qp` product rule combining both
/// catalogs.
#[derive(Debug, Clone, Copy)]
pub struct ProductRulePrune<'p>(pub PruneContext<'p>);

impl PruneStage<UncertainObject> for ProductRulePrune<'_> {
    fn name(&self) -> &'static str {
        "strategy3-product"
    }
    fn try_prune(
        &self,
        _query: &PreparedQuery<'_>,
        object: &UncertainObject,
        stats: &mut QueryStats,
    ) -> bool {
        let fired = strategy3_prunes(object, &self.0);
        if fired {
            stats.pruned_s3 += 1;
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::{minkowski_query, p_expanded_query};
    use crate::query::{Issuer, RangeSpec};
    use iloc_geometry::Rect;
    use iloc_uncertainty::UniformPdf;

    #[test]
    fn chain_matches_legacy_try_prune_order_and_counters() {
        use crate::eval::constrained::{try_prune, PruneOutcome};
        let issuer = Issuer::uniform(Rect::from_coords(0.0, 0.0, 100.0, 100.0));
        let range = RangeSpec::square(20.0);
        let qp = 0.5;
        let expanded = minkowski_query(&issuer, range);
        let (_, p_expanded) = p_expanded_query(&issuer, range, qp);
        let ctx = PruneContext {
            qp,
            expanded,
            p_expanded,
            issuer: &issuer,
            range,
        };
        let chain = PruneChain::section_5_2(ctx);
        assert_eq!(chain.len(), 3);
        let query = PreparedQuery::new(&issuer, range);
        // Sweep a small object across the space; the chain must agree
        // with the legacy combined test everywhere, with counters
        // attributing each elimination to the same strategy.
        for i in 0..40 {
            for j in 0..40 {
                let c = iloc_geometry::Point::new(i as f64 * 5.0, j as f64 * 5.0);
                let o = UncertainObject::new(0u64, UniformPdf::new(Rect::centered(c, 8.0, 8.0)));
                let mut stats = QueryStats::new();
                let chained = chain.try_prune(&query, &o, &mut stats);
                let legacy = try_prune(&o, &ctx);
                assert_eq!(chained, legacy != PruneOutcome::Keep, "at {c}");
                match legacy {
                    PruneOutcome::Strategy1 => assert_eq!(stats.pruned_s1, 1),
                    PruneOutcome::Strategy2 => assert_eq!(stats.pruned_s2, 1),
                    PruneOutcome::Strategy3 => assert_eq!(stats.pruned_s3, 1),
                    PruneOutcome::Keep => {
                        assert_eq!(stats.pruned_s1 + stats.pruned_s2 + stats.pruned_s3, 0)
                    }
                }
            }
        }
    }

    #[test]
    fn empty_chain_keeps_everything() {
        let issuer = Issuer::uniform(Rect::from_coords(0.0, 0.0, 10.0, 10.0));
        let query = PreparedQuery::new(&issuer, RangeSpec::square(1.0));
        let chain: PruneChain<'_, UncertainObject> = PruneChain::none();
        assert!(chain.is_empty());
        let far = UncertainObject::new(
            1u64,
            UniformPdf::new(Rect::from_coords(900.0, 900.0, 910.0, 910.0)),
        );
        let mut stats = QueryStats::new();
        assert!(!chain.try_prune(&query, &far, &mut stats));
    }
}
