//! Tracked batch-throughput benchmark — the perf contract of the
//! query hot path.
//!
//! Runs the serving-shaped workloads — IPQ, C-IPQ and IUQ batches, a
//! continuous C-IPQ walk, a `mixed` update/query stream against the
//! sharded serving engine, the same stream write-ahead-logged through
//! a durable catalog (`mixed_wal`, with a cold-reopen `recovery`
//! replay measurement), a `net` loopback loadgen against the
//! TCP query server, the same loadgen routed through an in-process
//! `iloc-router` over 3 nodes (`cluster`), and a `subscribers_c10k`
//! herd of standing subscribers multiplexed onto a couple of event
//! loops — at
//! Long-Beach/California scale plus a
//! steady-state single-query loop, and emits
//! `BENCH_batch_throughput.json` with queries/sec, p50/p99 latency and
//! **allocations per query** measured by a counting global allocator
//! (shared with the server binary; see `iloc_server::alloc_count`).
//!
//! ```text
//! cargo run --release -p iloc-bench --bin throughput -- [flags]
//!
//! --quick           ~10x smaller datasets and batches (CI smoke)
//! --save-baseline   additionally write the flat BENCH_baseline.json
//! --check-allocs    exit non-zero when the steady-state loop is not
//!                   allocation-free (CI gate)
//! --out PATH        report path (default BENCH_batch_throughput.json)
//! --baseline PATH   baseline path (default BENCH_baseline.json)
//! --min-iuq-speedup R  exit non-zero unless iuq_batch runs at least
//!                   `R`x the baseline's `iuq_batch_qps` (CI gate for
//!                   the SoA refine path; needs a same-mode baseline)
//! ```
//!
//! The workloads are fully deterministic (fixed seeds), so two runs of
//! the same binary — or of two versions of the workspace — measure
//! exactly the same queries; `BENCH_baseline.json` captured on an older
//! commit is directly comparable and the report embeds the speedup.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use iloc_bench::c10k::{self, C10kConfig};
use iloc_bench::cluster::{self, ClusterConfig};
use iloc_bench::net::{self, NetConfig};
use iloc_core::pipeline::{
    execute_batch, BatchEngine, ExecutionContext, PointRequest, UncertainRequest,
};
use iloc_core::{
    CipqStrategy, ContinuousIpq, Integrator, Issuer, PointEngine, QueryAnswer, RangeSpec,
    UncertainEngine,
};
use iloc_datagen::{
    california_points, long_beach_rects, uniform_objects, WorkloadGen, CALIFORNIA_SIZE,
    LONG_BEACH_SIZE,
};
use iloc_geometry::{Point, Rect};
use iloc_server::alloc_count::{self, allocations, CountingAllocator};

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Paper Table 2 defaults: issuer half-size and range half-size.
const U: f64 = 250.0;
const W: f64 = 500.0;
const SEED: u64 = 2007;

#[derive(Debug, Clone, Copy)]
struct BenchScale {
    points: usize,
    uncertain: usize,
    ipq_queries: usize,
    cipq_queries: usize,
    iuq_queries: usize,
    continuous_ticks: usize,
    steady_warmup: usize,
    steady_queries: usize,
    mixed_rounds: usize,
    mixed_updates_per_round: usize,
    mixed_queries_per_round: usize,
}

impl BenchScale {
    fn full() -> Self {
        BenchScale {
            points: CALIFORNIA_SIZE,
            uncertain: LONG_BEACH_SIZE,
            ipq_queries: 512,
            cipq_queries: 512,
            iuq_queries: 256,
            continuous_ticks: 1_024,
            steady_warmup: 256,
            steady_queries: 2_048,
            mixed_rounds: 16,
            mixed_updates_per_round: 512,
            mixed_queries_per_round: 64,
        }
    }

    fn quick() -> Self {
        BenchScale {
            points: 6_200,
            uncertain: 5_300,
            ipq_queries: 64,
            cipq_queries: 64,
            iuq_queries: 32,
            continuous_ticks: 128,
            steady_warmup: 64,
            steady_queries: 256,
            mixed_rounds: 8,
            mixed_updates_per_round: 96,
            mixed_queries_per_round: 16,
        }
    }
}

/// One measured workload.
#[derive(Debug, Clone)]
struct Report {
    name: &'static str,
    queries: usize,
    elapsed: Duration,
    p50: Duration,
    p99: Duration,
    allocs_per_query: f64,
    results_total: usize,
}

impl Report {
    fn qps(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64()
    }
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Measures one batch workload: wall clock around the batch call,
/// per-query latency percentiles from the answers' own stats, and the
/// allocation delta across the call.
///
/// Batch `allocs_per_query` deliberately includes the executor's
/// fan-out overhead (worker spawns, one context per chunk, answer
/// assembly), so it varies with core count. The machine-independent,
/// CI-gated number is `steady_state.allocs_per_query`, which measures
/// the single-threaded hot path alone.
fn measure_batch(
    name: &'static str,
    queries: usize,
    run: impl FnOnce() -> Vec<QueryAnswer>,
) -> Report {
    let a0 = allocations();
    let t0 = Instant::now();
    let answers = run();
    let elapsed = t0.elapsed();
    let allocs = allocations() - a0;
    assert_eq!(answers.len(), queries, "{name}: unexpected answer count");
    let results_total = answers.iter().map(|a| a.results.len()).sum();
    let mut lat: Vec<Duration> = answers.iter().map(|a| a.stats.elapsed).collect();
    lat.sort_unstable();
    Report {
        name,
        queries,
        elapsed,
        p50: percentile(&lat, 0.50),
        p99: percentile(&lat, 0.99),
        allocs_per_query: allocs as f64 / queries as f64,
        results_total,
    }
}

fn ipq_requests(n: usize, seed: u64) -> Vec<PointRequest> {
    let mut gen = WorkloadGen::new(seed);
    (0..n)
        .map(|_| PointRequest::ipq(Issuer::uniform(gen.issuer_region(U)), RangeSpec::square(W)))
        .collect()
}

fn cipq_requests(n: usize, seed: u64) -> Vec<PointRequest> {
    let mut gen = WorkloadGen::new(seed);
    (0..n)
        .map(|_| {
            PointRequest::cipq(
                Issuer::uniform(gen.issuer_region(U)),
                RangeSpec::square(W),
                0.3,
                CipqStrategy::PExpanded,
            )
        })
        .collect()
}

fn iuq_requests(n: usize, seed: u64) -> Vec<UncertainRequest> {
    let mut gen = WorkloadGen::new(seed);
    (0..n)
        .map(|_| UncertainRequest::iuq(Issuer::uniform(gen.issuer_region(U)), RangeSpec::square(W)))
        .collect()
}

/// A deterministic drive across the space for the continuous workload.
fn walk(ticks: usize) -> Vec<Issuer> {
    (0..ticks)
        .map(|t| {
            let s = t as f64;
            let c = Point::new(1_000.0 + (s * 7.3) % 8_000.0, 1_000.0 + (s * 3.1) % 8_000.0);
            Issuer::uniform(Rect::centered(c, U, U))
        })
        .collect()
}

/// The steady-state loop: one query shape answered over and over
/// through the engine's request executor — the serving configuration
/// whose allocation count the CI gate pins to zero.
fn measure_steady_state(engine: &PointEngine, scale: BenchScale) -> Report {
    let requests = ipq_requests(64, SEED + 9);
    let mut run_one = steady_runner(engine);
    for k in 0..scale.steady_warmup {
        let _ = run_one(&requests[k % requests.len()]);
    }
    let mut lat: Vec<Duration> = Vec::with_capacity(scale.steady_queries);
    let mut results_total = 0usize;
    let a0 = allocations();
    let t0 = Instant::now();
    for k in 0..scale.steady_queries {
        let (n_results, elapsed) = run_one(&requests[k % requests.len()]);
        results_total += n_results;
        lat.push(elapsed);
    }
    let elapsed = t0.elapsed();
    let allocs = allocations() - a0;
    lat.sort_unstable();
    Report {
        name: "steady_state",
        queries: scale.steady_queries,
        elapsed,
        p50: percentile(&lat, 0.50),
        p99: percentile(&lat, 0.99),
        allocs_per_query: allocs as f64 / scale.steady_queries as f64,
        results_total,
    }
}

/// Shards the serving layer uses in the mixed scenario.
const MIXED_SHARDS: usize = 4;

/// The `mixed` scenario: a sharded serving engine under the
/// update-mix stream — each round submits a batch of
/// arrival/departure/move events, commits them as one epoch, and
/// answers a query batch against the fresh snapshot through a warm
/// [`ShardServer`]. `elapsed` covers update application + commits +
/// queries, so qps is *serving throughput under churn*, and
/// `allocs_per_query` includes the copy-on-write epoch cost (the
/// query-only zero-allocation invariant is gated separately by
/// `steady_state`).
fn measure_mixed(scale: BenchScale) -> Report {
    use iloc_core::serve::{ShardServer, ShardedEngine, Update};
    use iloc_datagen::{PointUpdate, PointUpdateGen, UpdateMix};
    use iloc_uncertainty::{ObjectId, PointObject};

    let (base, mut gen) =
        PointUpdateGen::over_california(scale.points, SEED, UpdateMix::balanced());
    let sharded: ShardedEngine<PointEngine> = ShardedEngine::build(
        base.iter()
            .enumerate()
            .map(|(k, &p)| PointObject::new(k as u64, p))
            .collect(),
        MIXED_SHARDS,
    );
    let requests = ipq_requests(64, SEED + 5);
    let mut server = ShardServer::new(sharded.snapshot());
    let mut answer = QueryAnswer::default();
    for k in 0..scale.steady_warmup {
        server.execute_into(&requests[k % requests.len()], &mut answer);
    }

    let total_queries = scale.mixed_rounds * scale.mixed_queries_per_round;
    let mut lat: Vec<Duration> = Vec::with_capacity(total_queries);
    let mut results_total = 0usize;
    let a0 = allocations();
    let t0 = Instant::now();
    for round in 0..scale.mixed_rounds {
        for event in gen.stream(scale.mixed_updates_per_round) {
            sharded.submit(match event {
                PointUpdate::Arrive { id, loc } => Update::Arrive(PointObject::new(id, loc)),
                PointUpdate::Depart { id } => Update::Depart(ObjectId(id)),
                PointUpdate::Move { id, to } => Update::Move(PointObject::new(id, to)),
            });
        }
        sharded.commit();
        server.rebind(sharded.snapshot());
        for k in 0..scale.mixed_queries_per_round {
            let request = &requests[(round * scale.mixed_queries_per_round + k) % requests.len()];
            server.execute_into(request, &mut answer);
            results_total += answer.results.len();
            lat.push(answer.stats.elapsed);
        }
    }
    let elapsed = t0.elapsed();
    let allocs = allocations() - a0;
    lat.sort_unstable();
    Report {
        name: "mixed",
        queries: total_queries,
        elapsed,
        p50: percentile(&lat, 0.50),
        p99: percentile(&lat, 0.99),
        allocs_per_query: allocs as f64 / total_queries as f64,
        results_total,
    }
}

/// The `mixed_wal` + `recovery` scenario pair: the exact `mixed`
/// workload, but every commit goes through a [`DurableCatalog`] that
/// write-ahead-logs the batch (`fsync every=8`) before publishing —
/// the qps gap against `mixed` is the WAL overhead on the serving
/// path. Afterwards the store is reopened cold and the **recovery
/// time** (checkpoint load + full WAL replay) is measured; its report
/// counts replayed updates, so `recovery` qps is replay throughput in
/// updates/sec and `elapsed_s` is the time-to-serving number.
fn measure_durable_mixed(scale: BenchScale) -> (Report, Report) {
    use iloc_core::durable::{DurableCatalog, FsyncPolicy, StoreConfig};
    use iloc_core::serve::{ShardServer, Update};
    use iloc_datagen::{PointUpdate, PointUpdateGen, UpdateMix};
    use iloc_uncertainty::{ObjectId, PointObject};

    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let dir = std::env::temp_dir().join(format!(
        "iloc-throughput-recovery-{}-{nanos}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create durable bench dir");
    let config = StoreConfig {
        dir: dir.clone(),
        fsync: FsyncPolicy::EveryN(8),
    };

    let (base, mut gen) =
        PointUpdateGen::over_california(scale.points, SEED, UpdateMix::balanced());
    let objects: Vec<PointObject> = base
        .iter()
        .enumerate()
        .map(|(k, &p)| PointObject::new(k as u64, p))
        .collect();
    let (catalog, _) = DurableCatalog::<PointEngine>::open(&config, MIXED_SHARDS, move || objects)
        .expect("open durable store");
    let requests = ipq_requests(64, SEED + 5);
    let mut server = ShardServer::new(catalog.snapshot());
    let mut answer = QueryAnswer::default();
    for k in 0..scale.steady_warmup {
        server.execute_into(&requests[k % requests.len()], &mut answer);
    }

    let total_queries = scale.mixed_rounds * scale.mixed_queries_per_round;
    let mut lat: Vec<Duration> = Vec::with_capacity(total_queries);
    let mut results_total = 0usize;
    let a0 = allocations();
    let t0 = Instant::now();
    for round in 0..scale.mixed_rounds {
        for event in gen.stream(scale.mixed_updates_per_round) {
            catalog.submit(match event {
                PointUpdate::Arrive { id, loc } => Update::Arrive(PointObject::new(id, loc)),
                PointUpdate::Depart { id } => Update::Depart(ObjectId(id)),
                PointUpdate::Move { id, to } => Update::Move(PointObject::new(id, to)),
            });
        }
        catalog.commit().expect("durable commit");
        server.rebind(catalog.snapshot());
        for k in 0..scale.mixed_queries_per_round {
            let request = &requests[(round * scale.mixed_queries_per_round + k) % requests.len()];
            server.execute_into(request, &mut answer);
            results_total += answer.results.len();
            lat.push(answer.stats.elapsed);
        }
    }
    let elapsed = t0.elapsed();
    let allocs = allocations() - a0;
    catalog.flush().expect("flush WAL tail");
    drop(catalog);
    lat.sort_unstable();
    let mixed_wal = Report {
        name: "mixed_wal",
        queries: total_queries,
        elapsed,
        p50: percentile(&lat, 0.50),
        p99: percentile(&lat, 0.99),
        allocs_per_query: allocs as f64 / total_queries as f64,
        results_total,
    };

    // Cold reopen: epoch-0 base checkpoint + the whole WAL replays.
    let t0 = Instant::now();
    let (recovered, info) = DurableCatalog::<PointEngine>::open(&config, MIXED_SHARDS, || {
        panic!("recovery must come from disk")
    })
    .expect("recover durable store");
    let elapsed = t0.elapsed();
    assert_eq!(recovered.epoch(), scale.mixed_rounds as u64);
    assert_eq!(info.replayed_batches, scale.mixed_rounds);
    let recovery = Report {
        name: "recovery",
        queries: info.replayed_updates.max(1),
        elapsed,
        p50: Duration::ZERO,
        p99: Duration::ZERO,
        allocs_per_query: 0.0,
        results_total: info.objects,
    };
    drop(recovered);
    std::fs::remove_dir_all(&dir).ok();
    (mixed_wal, recovery)
}

/// The `net` scenario: the loadgen harness against an in-process
/// loopback [`iloc_server::server::QueryServer`] — `clients`
/// connections of mixed IPQ/C-IPQ/IUQ traffic racing an update/commit
/// stream, then a query-only steady window whose **server-side
/// allocations per request** (read over the wire from the shared
/// counting allocator) land in `allocs_per_query`. The gap between
/// `ipq_batch` and `net` qps is the price of the socket and codec.
fn measure_net(quick: bool) -> Report {
    let cfg = if quick {
        NetConfig::quick()
    } else {
        NetConfig::full()
    };
    let report = net::run_in_process(&cfg).expect("net loadgen");
    assert!(
        report.alloc_counting,
        "throughput binary registers the counting allocator"
    );
    Report {
        name: "net",
        queries: report.queries,
        elapsed: report.elapsed,
        p50: report.p50,
        p99: report.p99,
        allocs_per_query: report.steady_allocs_per_request,
        results_total: report.results_total,
    }
}

/// The `cluster` scenario: the same workload as `net`, but through an
/// in-process `iloc-router` scatter-gathering over 3 single-node
/// servers — the gap between the `net` and `cluster` series is the
/// price of the extra hop and the fan-out/fan-in. `allocs_per_query`
/// is the **router's** steady-window counter (its stats frames report
/// the shared counting allocator), gated at zero like the server's.
fn measure_cluster(quick: bool) -> Report {
    let cfg = if quick {
        ClusterConfig::quick()
    } else {
        ClusterConfig::full()
    };
    let report = cluster::run_in_process(&cfg).expect("cluster loadgen");
    assert!(
        report.net.alloc_counting,
        "throughput binary registers the counting allocator"
    );
    assert!(
        report.nodes.iter().all(|n| n.connected),
        "every cluster node must stay healthy through the run"
    );
    Report {
        name: "cluster",
        queries: report.net.queries,
        elapsed: report.net.elapsed,
        p50: report.net.p50,
        p99: report.net.p99,
        allocs_per_query: report.net.steady_allocs_per_request,
        results_total: report.net.results_total,
    }
}

/// The `subscribers_c10k` scenario: a herd of mostly-idle standing
/// subscribers multiplexed onto a couple of event loops while a small
/// active set ticks and an updater commits churn — the C10K shape.
/// `queries` is active-subscriber ticks, `results_total` is NOTIFY
/// pushes delivered, and `allocs_per_query` is the server-side
/// steady-window allocations per tick (gated at zero). The run itself
/// asserts no push was silently dropped: a live connection either
/// receives every NOTIFY or is closed and counted.
fn measure_c10k(quick: bool) -> Report {
    let cfg = if quick {
        C10kConfig::quick()
    } else {
        C10kConfig::full()
    };
    let report = c10k::run_in_process(&cfg).expect("c10k loadgen");
    assert!(
        report.alloc_counting,
        "throughput binary registers the counting allocator"
    );
    assert_eq!(
        report.dropped_pushes, 0,
        "herd subscribers kept reading; no push may be dropped"
    );
    Report {
        name: "subscribers_c10k",
        queries: report.ticks,
        elapsed: report.elapsed,
        p50: report.p50,
        p99: report.p99,
        allocs_per_query: report.steady_allocs_per_tick,
        results_total: report.pushes,
    }
}

/// How one steady-state query is answered: the zero-allocation hot
/// path — one reused context (with its scratch buffers) and one reused
/// answer across the whole loop. Pre-refactor this measured
/// `engine.execute_one` (fresh context + buffers per call), which is
/// the baseline the report compares against.
fn steady_runner(engine: &PointEngine) -> impl FnMut(&PointRequest) -> (usize, Duration) + '_ {
    let mut ctx = ExecutionContext::new(Integrator::Auto);
    let mut answer = QueryAnswer::default();
    move |request| {
        engine.execute_one_into(request, &mut ctx, &mut answer);
        (answer.results.len(), answer.stats.elapsed)
    }
}

fn fmt_duration_us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn workload_json(r: &Report) -> String {
    format!(
        concat!(
            "{{\"queries\": {}, \"elapsed_s\": {:.4}, \"qps\": {:.1}, ",
            "\"p50_us\": {:.2}, \"p99_us\": {:.2}, ",
            "\"allocs_per_query\": {:.3}, \"results_total\": {}}}"
        ),
        r.queries,
        r.elapsed.as_secs_f64(),
        r.qps(),
        fmt_duration_us(r.p50),
        fmt_duration_us(r.p99),
        r.allocs_per_query,
        r.results_total,
    )
}

/// Pulls `"key": <number>` out of the flat baseline file.
fn flat_value(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    alloc_count::mark_installed();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let save_baseline = args.iter().any(|a| a == "--save-baseline");
    let check_allocs = args.iter().any(|a| a == "--check-allocs");
    let arg_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_batch_throughput.json".into());
    let baseline_path = arg_value("--baseline").unwrap_or_else(|| "BENCH_baseline.json".into());
    let min_iuq_speedup: Option<f64> = arg_value("--min-iuq-speedup").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --min-iuq-speedup: {v}");
            std::process::exit(2);
        })
    });

    let scale = if quick {
        BenchScale::quick()
    } else {
        BenchScale::full()
    };
    let mode = if quick { "quick" } else { "full" };
    eprintln!(
        "throughput bench ({mode}): {} points, {} uncertain objects",
        scale.points, scale.uncertain
    );

    let t0 = Instant::now();
    let point_engine = PointEngine::build(california_points(scale.points, SEED));
    let uncertain_engine = UncertainEngine::build(uniform_objects(&long_beach_rects(
        scale.uncertain,
        SEED + 1,
    )));
    eprintln!("engines built in {:.1}s", t0.elapsed().as_secs_f64());

    let ipq = {
        let requests = ipq_requests(scale.ipq_queries, SEED + 2);
        measure_batch("ipq_batch", requests.len(), || {
            execute_batch(&point_engine, &requests)
        })
    };
    eprintln!("  {} done: {:.0} q/s", ipq.name, ipq.qps());

    let cipq = {
        let requests = cipq_requests(scale.cipq_queries, SEED + 3);
        measure_batch("cipq_batch", requests.len(), || {
            execute_batch(&point_engine, &requests)
        })
    };
    eprintln!("  {} done: {:.0} q/s", cipq.name, cipq.qps());

    let iuq = {
        let requests = iuq_requests(scale.iuq_queries, SEED + 4);
        measure_batch("iuq_batch", requests.len(), || {
            execute_batch(&uncertain_engine, &requests)
        })
    };
    eprintln!("  {} done: {:.0} q/s", iuq.name, iuq.qps());

    let continuous = {
        let issuers = walk(scale.continuous_ticks);
        let mut runner = ContinuousIpq::new(&point_engine, RangeSpec::square(W), 2.0 * U);
        measure_batch("cipq_continuous", issuers.len(), || {
            issuers.iter().map(|iss| runner.step(iss)).collect()
        })
    };
    eprintln!("  {} done: {:.0} q/s", continuous.name, continuous.qps());

    let mixed = measure_mixed(scale);
    eprintln!(
        "  {} done: {:.0} q/s under {} updates/round",
        mixed.name,
        mixed.qps(),
        scale.mixed_updates_per_round
    );

    let (mixed_wal, recovery) = measure_durable_mixed(scale);
    eprintln!(
        "  {} done: {:.0} q/s ({:.1}% of mixed); recovery replayed {} updates in {:.3}s",
        mixed_wal.name,
        mixed_wal.qps(),
        100.0 * mixed_wal.qps() / mixed.qps(),
        recovery.queries,
        recovery.elapsed.as_secs_f64(),
    );

    let net = measure_net(quick);
    eprintln!(
        "  {} done: {:.0} q/s over loopback, {:.3} allocs/request steady",
        net.name,
        net.qps(),
        net.allocs_per_query
    );

    let cluster = measure_cluster(quick);
    eprintln!(
        "  {} done: {:.0} q/s through the router ({:.1}% of net), {:.3} allocs/request steady",
        cluster.name,
        cluster.qps(),
        100.0 * cluster.qps() / net.qps(),
        cluster.allocs_per_query
    );

    let c10k = measure_c10k(quick);
    eprintln!(
        "  {} done: {:.0} ticks/s with the herd attached, {} pushes, {:.3} allocs/tick steady",
        c10k.name,
        c10k.qps(),
        c10k.results_total,
        c10k.allocs_per_query
    );

    let steady = measure_steady_state(&point_engine, scale);
    eprintln!(
        "  {} done: {:.0} q/s, {:.3} allocs/query",
        steady.name,
        steady.qps(),
        steady.allocs_per_query
    );

    let reports = [
        &ipq,
        &cipq,
        &iuq,
        &continuous,
        &mixed,
        &mixed_wal,
        &recovery,
        &net,
        &cluster,
        &c10k,
        &steady,
    ];

    // Flat baseline schema: "<workload>_qps" + steady-state allocs.
    let mut flat = String::from("{\n");
    let _ = writeln!(flat, "  \"mode\": \"{mode}\",");
    for r in reports {
        let _ = writeln!(flat, "  \"{}_qps\": {:.1},", r.name, r.qps());
    }
    let _ = writeln!(
        flat,
        "  \"steady_state_allocs_per_query\": {:.3}",
        steady.allocs_per_query
    );
    flat.push_str("}\n");
    if save_baseline {
        std::fs::write(&baseline_path, &flat).expect("write baseline");
        eprintln!("baseline saved to {baseline_path}");
    }

    // Full report, embedding the baseline (same mode only) when found.
    let baseline = std::fs::read_to_string(&baseline_path).ok().filter(|b| {
        let same_mode = b.contains(&format!("\"mode\": \"{mode}\""));
        if !same_mode {
            eprintln!("note: {baseline_path} was captured in a different mode; skipping speedup");
        }
        same_mode && !save_baseline
    });

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"batch_throughput\",");
    let _ = writeln!(json, "  \"mode\": \"{mode}\",");
    let _ = writeln!(
        json,
        "  \"config\": {{\"point_objects\": {}, \"uncertain_objects\": {}, \"u\": {U}, \"w\": {W}, \"seed\": {SEED}}},",
        scale.points, scale.uncertain
    );
    let _ = writeln!(json, "  \"workloads\": {{");
    for (k, r) in reports.iter().enumerate() {
        let comma = if k + 1 < reports.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{}\": {}{comma}", r.name, workload_json(r));
    }
    let _ = writeln!(json, "  }}");
    if let Some(base) = &baseline {
        let _ = writeln!(json, "  , \"baseline\": {{");
        let mut parts: Vec<String> = Vec::new();
        for r in reports {
            if let Some(qps) = flat_value(base, &format!("{}_qps", r.name)) {
                parts.push(format!("    \"{}_qps\": {qps}", r.name));
            }
        }
        if let Some(a) = flat_value(base, "steady_state_allocs_per_query") {
            parts.push(format!("    \"steady_state_allocs_per_query\": {a}"));
        }
        let _ = writeln!(json, "{}", parts.join(",\n"));
        let _ = writeln!(json, "  }}");
        let _ = writeln!(json, "  , \"speedup_vs_baseline\": {{");
        let mut parts: Vec<String> = Vec::new();
        for r in reports {
            if let Some(qps) = flat_value(base, &format!("{}_qps", r.name)) {
                if qps > 0.0 {
                    parts.push(format!("    \"{}\": {:.2}", r.name, r.qps() / qps));
                }
            }
        }
        let _ = writeln!(json, "{}", parts.join(",\n"));
        let _ = writeln!(json, "  }}");
    }
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write report");
    eprintln!("report written to {out_path}");
    print!("{json}");

    // The SoA refine regression gate: iuq_batch must hold its speedup
    // over the checked-in baseline, not just not-crash. Reads the
    // baseline file directly (same mode required) so the gate also
    // works alongside --save-baseline, which rewrites it above. Gates
    // on the best of five re-measurements: a single quick-scale batch
    // finishes in well under a millisecond, where timer granularity
    // alone swings qps by tens of percent — the gate asks "can the
    // path still reach the speedup", not "did this one run".
    if let Some(min) = min_iuq_speedup {
        let gate_qps = {
            // A larger batch than the reported workload: 32 quick-mode
            // queries finish too fast to time reliably.
            let requests = iuq_requests(scale.iuq_queries.max(128), SEED + 4);
            let mut best = iuq.qps();
            for _ in 0..4 {
                let r = measure_batch("iuq_batch", requests.len(), || {
                    execute_batch(&uncertain_engine, &requests)
                });
                best = best.max(r.qps());
            }
            best
        };
        let base_qps = std::fs::read_to_string(&baseline_path)
            .ok()
            .filter(|b| b.contains(&format!("\"mode\": \"{mode}\"")))
            .and_then(|b| flat_value(&b, "iuq_batch_qps"))
            .filter(|&qps| qps > 0.0);
        match base_qps {
            Some(base) => {
                let speedup = gate_qps / base;
                if speedup < min {
                    eprintln!(
                        "FAIL: iuq_batch at {gate_qps:.1} q/s (best of 5) is only {speedup:.2}x \
                         the baseline's {base:.1} q/s (gate: {min:.2}x)"
                    );
                    std::process::exit(1);
                }
                eprintln!("OK: iuq_batch speedup {speedup:.2}x over baseline (gate: {min:.2}x)");
            }
            None => {
                eprintln!(
                    "FAIL: --min-iuq-speedup needs a same-mode baseline with iuq_batch_qps \
                     at {baseline_path}"
                );
                std::process::exit(1);
            }
        }
    }

    if check_allocs {
        let mut failed = false;
        if steady.allocs_per_query > 0.0 {
            eprintln!(
                "FAIL: steady-state hot path performed {:.3} allocations/query (expected 0)",
                steady.allocs_per_query
            );
            failed = true;
        }
        if net.allocs_per_query > 0.0 {
            eprintln!(
                "FAIL: network hot path performed {:.3} allocations/request (expected 0)",
                net.allocs_per_query
            );
            failed = true;
        }
        if cluster.allocs_per_query > 0.0 {
            eprintln!(
                "FAIL: cluster scatter-gather path performed {:.3} allocations/request \
                 (expected 0)",
                cluster.allocs_per_query
            );
            failed = true;
        }
        if c10k.allocs_per_query > 0.0 {
            eprintln!(
                "FAIL: c10k steady tick path performed {:.3} allocations/tick (expected 0)",
                c10k.allocs_per_query
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }
}
