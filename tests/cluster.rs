//! Cluster-oracle suite for the scatter-gather router.
//!
//! The contract: a cluster of N single-shard `iloc-server` nodes
//! behind an `iloc-router` answers **bit-identically** to one server
//! whose in-process [`iloc::core::serve::ShardedEngine`] has N shards
//! — the same queries, the same commit reports (counters, per-shard
//! counts, dirty rectangles, epochs), and the same subscription delta
//! streams, under the same interleaved update/commit schedule. Plus:
//! a node crash mid-commit surfaces as a typed `Unavailable` error and
//! never as a torn epoch.

use std::time::Duration;

use iloc::core::pipeline::{PointRequest, UncertainRequest};
use iloc::core::serve::{shard_of, Update};
use iloc::core::{CipqStrategy, CiuqStrategy, Issuer, RangeSpec};
use iloc::geometry::{Point, Rect};
use iloc::router::{Router, RouterConfig, RouterHandle};
use iloc::server::protocol::{CommitTarget, ErrorCode, NotifyCause, Role, WireUpdate};
use iloc::server::server::{QueryServer, ServerConfig};
use iloc::server::{Client, ClientError, ServerHandle};
use iloc::uncertainty::{ObjectId, PointObject, UncertainObject, UniformPdf};

/// The deterministic scene the single-node suites use: a 20×20 point
/// grid and a 6×6 grid of uncertain boxes over [0, 1000]².
fn scene() -> (Vec<PointObject>, Vec<UncertainObject>) {
    let points = (0..400u64)
        .map(|k| {
            PointObject::new(
                k,
                Point::new((k % 20) as f64 * 50.0 + 10.0, (k / 20) as f64 * 50.0 + 10.0),
            )
        })
        .collect();
    let uncertain = (0..36u64)
        .map(|k| {
            let c = Point::new((k % 6) as f64 * 160.0 + 80.0, (k / 6) as f64 * 160.0 + 80.0);
            UncertainObject::new(k, UniformPdf::new(Rect::centered(c, 30.0, 30.0)))
        })
        .collect();
    (points, uncertain)
}

struct Cluster {
    /// The nodes' servers — kept alive for the cluster's lifetime.
    _servers: Vec<QueryServer>,
    handles: Vec<Option<ServerHandle>>,
    router: Option<RouterHandle>,
}

impl Cluster {
    /// N single-shard nodes, each seeded with exactly the slice of the
    /// scene the N-shard oracle assigns to the same index — node order
    /// is shard order, so every per-shard observable lines up.
    fn start(n: usize) -> Cluster {
        let (points, uncertain) = scene();
        let mut node_points: Vec<Vec<PointObject>> = (0..n).map(|_| Vec::new()).collect();
        let mut node_uncertain: Vec<Vec<UncertainObject>> = (0..n).map(|_| Vec::new()).collect();
        for p in points {
            node_points[shard_of(p.id, n)].push(p);
        }
        for u in uncertain {
            node_uncertain[shard_of(u.id, n)].push(u);
        }
        let mut servers = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for (p, u) in node_points.into_iter().zip(node_uncertain) {
            let server = QueryServer::new(p, u, 1);
            let handle = server
                .start(&ServerConfig {
                    event_loops: 2,
                    ..ServerConfig::loopback()
                })
                .expect("bind node");
            addrs.push(handle.addr());
            servers.push(server);
            handles.push(Some(handle));
        }
        let router = Router::start(&RouterConfig::loopback(addrs)).expect("start router");
        Cluster {
            _servers: servers,
            handles,
            router: Some(router),
        }
    }

    fn client(&self) -> Client {
        Client::connect(self.router.as_ref().expect("router up").addr()).expect("connect router")
    }

    fn crash_node(&mut self, i: usize) {
        self.handles[i].take().expect("node still up").shutdown();
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        if let Some(router) = self.router.take() {
            router.shutdown();
        }
        for handle in self.handles.iter_mut().filter_map(Option::take) {
            handle.shutdown();
        }
    }
}

/// The oracle: one server over the full scene with N shards, driven
/// over the wire exactly like the cluster.
fn start_oracle(n: usize) -> (QueryServer, ServerHandle) {
    let (points, uncertain) = scene();
    let server = QueryServer::new(points, uncertain, n);
    let handle = server
        .start(&ServerConfig {
            event_loops: 2,
            ..ServerConfig::loopback()
        })
        .expect("bind oracle");
    (server, handle)
}

fn point_requests(n: usize, salt: u64) -> Vec<PointRequest> {
    (0..n as u64)
        .map(|k| {
            let s = k.wrapping_mul(2654435761).wrapping_add(salt * 97);
            let c = Point::new((s % 900) as f64 + 50.0, (s / 7 % 900) as f64 + 50.0);
            let issuer = Issuer::uniform(Rect::centered(c, 60.0, 60.0));
            if k % 3 == 0 {
                PointRequest::cipq(
                    issuer,
                    RangeSpec::square(90.0),
                    0.2,
                    CipqStrategy::PExpanded,
                )
            } else {
                PointRequest::ipq(issuer, RangeSpec::square(90.0))
            }
        })
        .collect()
}

fn uncertain_requests(n: usize, salt: u64) -> Vec<UncertainRequest> {
    (0..n as u64)
        .map(|k| {
            let s = k.wrapping_mul(40503).wrapping_add(salt * 131);
            let c = Point::new((s % 800) as f64 + 100.0, (s / 11 % 800) as f64 + 100.0);
            let issuer = Issuer::uniform(Rect::centered(c, 80.0, 80.0));
            if k % 2 == 0 {
                UncertainRequest::iuq(issuer, RangeSpec::square(150.0))
            } else {
                UncertainRequest::ciuq(
                    issuer,
                    RangeSpec::square(150.0),
                    0.25,
                    CiuqStrategy::PtiPExpanded,
                )
            }
        })
        .collect()
}

/// The same churn stream the single-node suite commits — arrivals,
/// moves, departures (some of absent ids), and uncertain moves.
fn churn(round: u64, next_id: &mut u64) -> Vec<WireUpdate> {
    let mut updates = Vec::new();
    for j in 0..20u64 {
        let k = round * 20 + j;
        match k % 4 {
            0 => {
                updates.push(WireUpdate::Point(Update::Arrive(PointObject::new(
                    *next_id,
                    Point::new((k * 37 % 1000) as f64, (k * 53 % 1000) as f64),
                ))));
                *next_id += 1;
            }
            1 => updates.push(WireUpdate::Point(Update::Move(PointObject::new(
                k % 400,
                Point::new((k * 71 % 1000) as f64, (k * 29 % 1000) as f64),
            )))),
            2 => updates.push(WireUpdate::Point(Update::Depart(ObjectId(k * 13 % 500)))),
            _ => updates.push(WireUpdate::Uncertain(Update::Move(UncertainObject::new(
                k % 36,
                UniformPdf::new(Rect::centered(
                    Point::new((k * 91 % 900) as f64 + 50.0, (k * 17 % 900) as f64 + 50.0),
                    25.0,
                    25.0,
                )),
            )))),
        }
    }
    updates
}

#[test]
fn cluster_answers_bit_identical_to_sharded_oracle() {
    for n in [2usize, 3] {
        let cluster = Cluster::start(n);
        let (_oracle, oracle_handle) = start_oracle(n);
        let mut via_router = cluster.client();
        let mut via_oracle = Client::connect(oracle_handle.addr()).expect("connect oracle");

        // The handshake identifies the router and reports the
        // cluster-wide shard total.
        let ack = *via_router.hello().expect("handshake ack");
        assert_eq!(ack.role, Role::Router);
        assert_eq!(ack.point_shards as usize, n);
        assert_eq!(ack.uncertain_shards as usize, n);
        assert_eq!(ack.point_epoch, 0);

        let mut next_id = 10_000u64;
        for round in 0..6u64 {
            // Identical batches into both planes; identical accept
            // counts back.
            let updates = churn(round, &mut next_id);
            let accepted_router = via_router.submit(&updates).expect("submit via router");
            let accepted_oracle = via_oracle.submit(&updates).expect("submit via oracle");
            assert_eq!(accepted_router, accepted_oracle, "round {round} accepts");

            // Commit reports are equal in every field: epoch, the four
            // counters, the per-shard apply counts (node order = shard
            // order), and the bitwise dirty rectangle.
            for target in [CommitTarget::Point, CommitTarget::Uncertain] {
                let got = via_router.commit(target).expect("cluster commit");
                let want = via_oracle.commit(target).expect("oracle commit");
                assert_eq!(got, want, "round {round} {target:?} report");
            }

            // Every query class answers bit-identically.
            for (k, request) in point_requests(12, round).iter().enumerate() {
                let got = via_router.point_query(request).expect("router point query");
                let want = via_oracle.point_query(request).expect("oracle point query");
                assert!(got.same_matches(&want), "round {round} point request {k}");
            }
            for (k, request) in uncertain_requests(6, round).iter().enumerate() {
                let got = via_router
                    .uncertain_query(request)
                    .expect("router uncertain query");
                let want = via_oracle
                    .uncertain_query(request)
                    .expect("oracle uncertain query");
                assert!(
                    got.same_matches(&want),
                    "round {round} uncertain request {k}"
                );
            }
        }

        // An empty commit is an epoch no-op on both sides.
        let got = via_router
            .commit(CommitTarget::Point)
            .expect("empty commit");
        let want = via_oracle
            .commit(CommitTarget::Point)
            .expect("empty commit");
        assert_eq!(got, want, "empty commit report");
        assert_eq!(got.epoch, 6);
        assert!(got.per_shard.is_empty());

        // The merged stats agree with the oracle on everything the
        // cluster can know: catalog sizes, per-shard sizes (node order
        // = shard order), epochs — and report per-node health.
        let cluster_stats = via_router.stats().expect("router stats");
        let oracle_stats = via_oracle.stats().expect("oracle stats");
        assert_eq!(cluster_stats.point.epoch, oracle_stats.point.epoch);
        assert_eq!(cluster_stats.point.len, oracle_stats.point.len);
        assert_eq!(
            cluster_stats.point.shard_sizes,
            oracle_stats.point.shard_sizes
        );
        assert_eq!(cluster_stats.uncertain.epoch, oracle_stats.uncertain.epoch);
        assert_eq!(cluster_stats.uncertain.len, oracle_stats.uncertain.len);
        assert_eq!(
            cluster_stats.uncertain.shard_sizes,
            oracle_stats.uncertain.shard_sizes
        );
        assert_eq!(cluster_stats.nodes.len(), n);
        for (i, node) in cluster_stats.nodes.iter().enumerate() {
            assert!(node.connected, "node {i} healthy");
            assert_eq!(node.point_epoch, oracle_stats.point.epoch, "node {i}");
            assert!(node.routed >= node.merged, "node {i} counters");
            assert!(node.merged > 0, "node {i} served requests");
        }
        // The oracle has no nodes behind it.
        assert!(oracle_stats.nodes.is_empty());

        oracle_handle.shutdown();
    }
}

#[test]
fn subscription_delta_streams_compose_identically() {
    let n = 3usize;
    let cluster = Cluster::start(n);
    let (_oracle, oracle_handle) = start_oracle(n);
    let mut sub_router = cluster.client();
    let mut sub_oracle = Client::connect(oracle_handle.addr()).expect("connect oracle sub");
    let mut wr_router = cluster.client();
    let mut wr_oracle = Client::connect(oracle_handle.addr()).expect("connect oracle writer");

    let request_at = |x: f64, y: f64| {
        PointRequest::ipq(
            Issuer::uniform(Rect::centered(Point::new(x, y), 50.0, 50.0)),
            RangeSpec::square(80.0),
        )
    };

    // The initial answers (the base every delta composes on) match.
    let mut request = request_at(260.0, 260.0);
    let (ack_r, base_r) = sub_router
        .subscribe_point(&request, 120.0)
        .expect("subscribe");
    let (ack_o, base_o) = sub_oracle
        .subscribe_point(&request, 120.0)
        .expect("subscribe");
    assert!(base_r.same_matches(&base_o), "initial subscription answer");
    assert!(!base_r.results.is_empty());
    assert_eq!(ack_r.epoch, ack_o.epoch);

    let mut note = Default::default();
    for round in 0..6u64 {
        // An answer-changing commit through both write planes...
        let updates = vec![
            WireUpdate::Point(Update::Move(PointObject::new(
                round * 3,
                Point::new(250.0 + round as f64, 250.0),
            ))),
            WireUpdate::Point(Update::Depart(ObjectId(100 + round))),
            WireUpdate::Point(Update::Arrive(PointObject::new(
                5_000 + round,
                Point::new(270.0, 260.0 + round as f64),
            ))),
        ];
        wr_router.submit(&updates).expect("submit cluster");
        wr_oracle.submit(&updates).expect("submit oracle");
        wr_router
            .commit(CommitTarget::Point)
            .expect("commit cluster");
        wr_oracle
            .commit(CommitTarget::Point)
            .expect("commit oracle");

        // ...pushes the same delta at the same epoch through both.
        let push_r = sub_router
            .poll_notification(Duration::from_secs(5))
            .expect("poll cluster");
        let push_o = sub_oracle
            .poll_notification(Duration::from_secs(5))
            .expect("poll oracle");
        match (&push_r, &push_o) {
            (Some(r), Some(o)) => {
                assert_eq!(r.cause, NotifyCause::Commit, "round {round}");
                assert_eq!(r.epoch, o.epoch, "round {round} epoch");
                assert_eq!(r.delta, o.delta, "round {round} delta");
            }
            (None, None) => {} // both suppressed an empty delta
            other => panic!("round {round}: push mismatch {other:?}"),
        }

        // A tick composes identically on top.
        request = request_at(260.0 + round as f64 * 15.0, 260.0);
        sub_router
            .tick_into(
                CommitTarget::Point,
                ack_r.sub_id,
                request.issuer.pdf(),
                &mut note,
            )
            .expect("tick cluster");
        let tick_r = note.clone();
        sub_oracle
            .tick_into(
                CommitTarget::Point,
                ack_o.sub_id,
                request.issuer.pdf(),
                &mut note,
            )
            .expect("tick oracle");
        assert_eq!(tick_r.delta, note.delta, "round {round} tick delta");
        assert_eq!(tick_r.epoch, note.epoch, "round {round} tick epoch");
    }

    // Unsubscribe acknowledges once, idempotently false after, and
    // silences the stream on both sides.
    assert!(sub_router
        .unsubscribe(CommitTarget::Point, ack_r.sub_id)
        .expect("unsubscribe"));
    assert!(!sub_router
        .unsubscribe(CommitTarget::Point, ack_r.sub_id)
        .expect("re-unsubscribe"));
    wr_router
        .submit(&[WireUpdate::Point(Update::Depart(ObjectId(42)))])
        .expect("submit");
    wr_router.commit(CommitTarget::Point).expect("commit");
    assert!(sub_router
        .poll_notification(Duration::from_millis(300))
        .expect("poll after unsubscribe")
        .is_none());
    // Ticking the dead subscription is the same typed error the
    // single-node server gives.
    match sub_router.tick_into(
        CommitTarget::Point,
        ack_r.sub_id,
        request.issuer.pdf(),
        &mut note,
    ) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, Some(ErrorCode::Malformed)),
        other => panic!("expected typed error, got {other:?}"),
    }
    sub_router.ping().expect("connection unharmed");

    oracle_handle.shutdown();
}

#[test]
fn node_crash_mid_commit_is_a_typed_error_never_a_torn_epoch() {
    let mut cluster = Cluster::start(3);
    let mut client = cluster.client();

    // A first committed batch proves the cluster healthy.
    let mut next_id = 10_000u64;
    client.submit(&churn(0, &mut next_id)).expect("submit");
    client.commit(CommitTarget::Point).expect("first commit");
    client
        .commit(CommitTarget::Uncertain)
        .expect("first commit");
    let epoch_before = client.stats().expect("stats").point.epoch;
    assert_eq!(epoch_before, 1);

    // Updates are routed (some nodes now hold pending state), then a
    // node dies before the commit.
    client.submit(&churn(1, &mut next_id)).expect("submit");
    cluster.crash_node(1);
    match client.commit(CommitTarget::Point) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, Some(ErrorCode::Unavailable), "typed commit failure")
        }
        other => panic!("expected Unavailable, got {other:?}"),
    }

    // The failed commit never published: the connection survives, the
    // epoch is unchanged, and the dead node is visible in the health
    // section. (Node stats come from the router's own state — the
    // probe must not hang on the dead node thanks to the upstream
    // read timeout.)
    client
        .ping()
        .expect("connection survives the failed commit");
    let stats = client.stats().expect("stats after crash");
    assert_eq!(stats.point.epoch, epoch_before, "no torn epoch");
    assert!(!stats.nodes[1].connected, "crashed node reported");
    assert!(stats.nodes[0].connected);
    assert!(stats.nodes[2].connected);

    // Every later operation that needs the poisoned catalog is the
    // same typed error — never a hang, never a partial answer.
    match client.commit(CommitTarget::Point) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, Some(ErrorCode::Unavailable)),
        other => panic!("expected Unavailable, got {other:?}"),
    }
    match client.point_query(&point_requests(1, 0)[0]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, Some(ErrorCode::Unavailable)),
        other => panic!("expected Unavailable, got {other:?}"),
    }
    client.ping().expect("connection still alive at the end");
}
