//! Linear-scan "index": the correctness oracle.
//!
//! Every other access method in this crate is validated against the
//! naive scan in tests; the experiments also use it to show how much
//! the R-tree filter saves.

use iloc_geometry::Rect;

use crate::stats::AccessStats;
use crate::traits::RangeIndex;

/// A flat list of `(extent, item)` pairs scanned in full on every query.
#[derive(Debug, Clone, Default)]
pub struct NaiveIndex<T> {
    entries: Vec<(Rect, T)>,
}

impl<T: Copy> NaiveIndex<T> {
    /// Builds the index from `(extent, item)` pairs.
    pub fn new(entries: Vec<(Rect, T)>) -> Self {
        NaiveIndex { entries }
    }

    /// Appends one item.
    pub fn insert(&mut self, extent: Rect, item: T) {
        assert!(
            extent.is_finite() && !extent.is_empty(),
            "extent must be finite and non-empty"
        );
        self.entries.push((extent, item));
    }
}

impl<T: Copy> RangeIndex<T> for NaiveIndex<T> {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn insert(&mut self, extent: Rect, item: T) {
        NaiveIndex::insert(self, extent, item);
    }

    fn remove(&mut self, extent: Rect, item: T) -> bool
    where
        T: PartialEq,
    {
        match self
            .entries
            .iter()
            .position(|&(r, it)| r == extent && it == item)
        {
            Some(pos) => {
                self.entries.swap_remove(pos);
                true
            }
            None => false,
        }
    }

    fn query_range_into(&self, query: Rect, stats: &mut AccessStats, out: &mut Vec<T>) {
        for &(extent, item) in &self.entries {
            stats.items_tested += 1;
            if extent.overlaps(query) {
                stats.candidates += 1;
                out.push(item);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc_geometry::Point;

    #[test]
    fn scan_finds_overlapping_items() {
        let mut idx = NaiveIndex::default();
        idx.insert(Rect::from_point(Point::new(1.0, 1.0)), 1u32);
        idx.insert(Rect::from_coords(5.0, 5.0, 7.0, 7.0), 2);
        idx.insert(Rect::from_point(Point::new(9.0, 9.0)), 3);
        assert_eq!(idx.len(), 3);

        let mut stats = AccessStats::new();
        let mut hits = idx.query_range(Rect::from_coords(0.0, 0.0, 6.0, 6.0), &mut stats);
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2]);
        assert_eq!(stats.items_tested, 3);
        assert_eq!(stats.candidates, 2);
    }

    #[test]
    fn empty_index() {
        let idx: NaiveIndex<u32> = NaiveIndex::default();
        assert!(idx.is_empty());
        let mut stats = AccessStats::new();
        assert!(idx
            .query_range(Rect::from_coords(0.0, 0.0, 1.0, 1.0), &mut stats)
            .is_empty());
    }
}
