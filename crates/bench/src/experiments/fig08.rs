//! **Figure 8** — Basic vs Enhanced evaluation of IUQ.
//!
//! Paper: the basic method (Eq. 4, numerical integration over `U0`)
//! climbs to ~1.6 s per query at `u = 1000` while the enhanced method
//! (Eq. 8 with closed-form separable integrals) stays around tens of
//! milliseconds. Expected reproduction shape: basic ≫ enhanced at every
//! `u`, with the gap widening as `u` grows.

use iloc_core::{Issuer, RangeSpec};
use iloc_datagen::WorkloadGen;

use crate::config::{TestBed, DEFAULT_W};
use crate::experiments::U_SWEEP;
use crate::harness::{print_table, Row, Summary};

/// Sampling resolution of the basic method (30 × 30 = 900 issuer
/// samples per candidate, the "large number of sampling points" of
/// Section 3.3).
pub const BASIC_PER_AXIS: usize = 30;

/// Runs the experiment and returns the rows.
pub fn run(bed: &TestBed) -> Vec<Row> {
    let range = RangeSpec::square(DEFAULT_W);
    let mut rows = Vec::new();
    for &u in &U_SWEEP {
        // Identical issuer workloads for both series.
        let basic_issuers = WorkloadGen::new(800).issuer_regions(bed.scale.basic_queries, u);
        let s_basic = Summary::collect(bed.scale.basic_queries, |q| {
            bed.long_beach
                .iuq_basic(&Issuer::uniform(basic_issuers[q]), range, BASIC_PER_AXIS)
        });
        rows.push(Row {
            x: u,
            series: "basic (Eq.4, sampled)".into(),
            summary: s_basic,
        });

        let issuers = WorkloadGen::new(800).issuer_regions(bed.scale.queries, u);
        let s_enh = Summary::collect(bed.scale.queries, |q| {
            bed.long_beach.iuq(&Issuer::uniform(issuers[q]), range)
        });
        rows.push(Row {
            x: u,
            series: "enhanced (Eq.8, closed)".into(),
            summary: s_enh,
        });
    }
    print_table(
        "Figure 8: Basic vs Enhanced method (IUQ, Long Beach)",
        "uncertainty region size u",
        &rows,
    );
    rows
}
