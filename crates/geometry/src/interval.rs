//! Closed 1-D intervals.
//!
//! Rectangles in this workspace are products of two intervals; most
//! rectangle operations (clipping, Minkowski sums, the separable
//! closed-form integrals of Lemma 4) reduce to interval arithmetic.

use crate::num;

/// A closed interval `[lo, hi]`.
///
/// An interval with `hi < lo` is *empty*; [`Interval::EMPTY`] is the
/// canonical empty value. Degenerate intervals (`lo == hi`) are valid
/// and have zero length — a point object is a degenerate rectangle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Interval {
    /// Canonical empty interval.
    pub const EMPTY: Interval = Interval {
        lo: f64::INFINITY,
        hi: f64::NEG_INFINITY,
    };

    /// Creates `[lo, hi]`. Callers may pass `hi < lo` to denote an empty
    /// interval.
    #[inline]
    pub const fn new(lo: f64, hi: f64) -> Self {
        Interval { lo, hi }
    }

    /// Interval centred at `c` with half-length `half` (`half ≥ 0`).
    #[inline]
    pub fn centered(c: f64, half: f64) -> Self {
        debug_assert!(half >= 0.0, "half-length must be non-negative");
        Interval::new(c - half, c + half)
    }

    /// `true` when the interval contains no points.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.hi < self.lo
    }

    /// Length (`0` for empty or degenerate intervals).
    #[inline]
    pub fn length(self) -> f64 {
        (self.hi - self.lo).max(0.0)
    }

    /// Midpoint. Meaningless for empty intervals.
    #[inline]
    pub fn center(self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// `true` when `v ∈ [lo, hi]`.
    #[inline]
    pub fn contains(self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// `true` when `other ⊆ self`.
    #[inline]
    pub fn contains_interval(self, other: Interval) -> bool {
        other.is_empty() || (self.lo <= other.lo && other.hi <= self.hi)
    }

    /// `true` when the two intervals share at least one point.
    #[inline]
    pub fn overlaps(self, other: Interval) -> bool {
        !self.is_empty() && !other.is_empty() && self.lo <= other.hi && other.lo <= self.hi
    }

    /// Intersection `self ∩ other` (possibly empty).
    #[inline]
    pub fn intersect(self, other: Interval) -> Interval {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if hi < lo {
            Interval::EMPTY
        } else {
            Interval::new(lo, hi)
        }
    }

    /// Length of the intersection with `other`.
    #[inline]
    pub fn overlap_length(self, other: Interval) -> f64 {
        self.intersect(other).length()
    }

    /// Smallest interval containing both operands (union hull).
    #[inline]
    pub fn hull(self, other: Interval) -> Interval {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// 1-D Minkowski sum: `[a,b] ⊕ [c,d] = [a+c, b+d]`.
    #[inline]
    pub fn minkowski_sum(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new(self.lo + other.lo, self.hi + other.hi)
    }

    /// Expands both endpoints outward by `d` (shrinks when `d < 0`; a
    /// shrink past the midpoint yields an empty interval).
    #[inline]
    pub fn expand(self, d: f64) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        let r = Interval::new(self.lo - d, self.hi + d);
        if r.is_empty() {
            Interval::EMPTY
        } else {
            r
        }
    }

    /// Clamps `v` into the interval.
    #[inline]
    pub fn clamp(self, v: f64) -> f64 {
        num::clamp(v, self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_detection() {
        assert!(Interval::EMPTY.is_empty());
        assert!(Interval::new(1.0, 0.0).is_empty());
        assert!(!Interval::new(1.0, 1.0).is_empty());
    }

    #[test]
    fn length_of_degenerate_is_zero() {
        assert_eq!(Interval::new(2.0, 2.0).length(), 0.0);
        assert_eq!(Interval::EMPTY.length(), 0.0);
        assert_eq!(Interval::new(1.0, 4.0).length(), 3.0);
    }

    #[test]
    fn centered_constructor() {
        let i = Interval::centered(5.0, 2.0);
        assert_eq!(i, Interval::new(3.0, 7.0));
        assert_eq!(i.center(), 5.0);
    }

    #[test]
    fn intersect_overlapping() {
        let a = Interval::new(0.0, 5.0);
        let b = Interval::new(3.0, 8.0);
        assert_eq!(a.intersect(b), Interval::new(3.0, 5.0));
        assert_eq!(a.overlap_length(b), 2.0);
        assert!(a.overlaps(b));
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(2.0, 3.0);
        assert!(a.intersect(b).is_empty());
        assert_eq!(a.overlap_length(b), 0.0);
        assert!(!a.overlaps(b));
    }

    #[test]
    fn touching_intervals_overlap_at_a_point() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(1.0, 2.0);
        assert!(a.overlaps(b));
        assert_eq!(a.overlap_length(b), 0.0);
    }

    #[test]
    fn contains_interval_edge_cases() {
        let a = Interval::new(0.0, 10.0);
        assert!(a.contains_interval(Interval::new(0.0, 10.0)));
        assert!(a.contains_interval(Interval::new(2.0, 3.0)));
        assert!(a.contains_interval(Interval::EMPTY));
        assert!(!a.contains_interval(Interval::new(-1.0, 3.0)));
    }

    #[test]
    fn minkowski_sum_adds_endpoints() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(-1.0, 3.0);
        assert_eq!(a.minkowski_sum(b), Interval::new(0.0, 5.0));
        assert!(a.minkowski_sum(Interval::EMPTY).is_empty());
    }

    #[test]
    fn expand_and_shrink() {
        let a = Interval::new(2.0, 4.0);
        assert_eq!(a.expand(1.0), Interval::new(1.0, 5.0));
        assert_eq!(a.expand(-0.5), Interval::new(2.5, 3.5));
        assert!(a.expand(-2.0).is_empty());
    }

    #[test]
    fn hull_covers_both() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(5.0, 6.0);
        assert_eq!(a.hull(b), Interval::new(0.0, 6.0));
        assert_eq!(Interval::EMPTY.hull(b), b);
        assert_eq!(a.hull(Interval::EMPTY), a);
    }

    #[test]
    fn clamp_into_interval() {
        let a = Interval::new(0.0, 1.0);
        assert_eq!(a.clamp(-1.0), 0.0);
        assert_eq!(a.clamp(0.5), 0.5);
        assert_eq!(a.clamp(2.0), 1.0);
    }
}
