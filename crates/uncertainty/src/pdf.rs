//! The uncertainty-pdf abstraction (paper Definitions 1–2).

use std::fmt::Debug;
use std::sync::Arc;

use iloc_geometry::{Interval, Point, Rect};
use rand::RngCore;

use crate::math::invert_monotone;

/// Coordinate axis selector for marginal operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Horizontal axis.
    X,
    /// Vertical axis.
    Y,
}

/// A two-dimensional probability density supported on a closed
/// axis-parallel **uncertainty region** (paper Definitions 1–2).
///
/// Implementations must satisfy `∫∫_{region} density = 1` and
/// `density = 0` outside the region. All of the paper's machinery —
/// qualification probabilities, p-bounds, U-catalogs — is derived from
/// the three primitive quantities below plus sampling:
///
/// * [`prob_in_rect`](LocationPdf::prob_in_rect) — the mass inside an
///   axis-parallel rectangle (the paper's Eq. 3 inner integral);
/// * [`marginal_cdf`](LocationPdf::marginal_cdf) — axis marginals, from
///   which [`quantile`](LocationPdf::quantile) and hence p-bounds
///   (Section 5.1) are computed;
/// * [`sample`](LocationPdf::sample) — used by the Monte-Carlo
///   integrator for non-uniform pdfs (Section 6, Figure 13).
///
/// The trait is object-safe; objects store a [`SharedPdf`].
pub trait LocationPdf: Debug + Send + Sync {
    /// The uncertainty region `Ui` (support of the density).
    fn region(&self) -> Rect;

    /// Density value at `p` (zero outside the region).
    fn density(&self, p: Point) -> f64;

    /// Probability mass inside `r` (equivalently inside `r ∩ region`).
    fn prob_in_rect(&self, r: Rect) -> f64;

    /// Marginal CDF along `axis`: `P[coord ≤ v]`.
    fn marginal_cdf(&self, axis: Axis, v: f64) -> f64;

    /// Draws a location distributed according to the pdf.
    fn sample(&self, rng: &mut dyn RngCore) -> Point;

    /// Marginal quantile: the coordinate `v` with
    /// `P[coord ≤ v] = p`. Default implementation inverts
    /// [`marginal_cdf`](LocationPdf::marginal_cdf) by bisection;
    /// implementations with analytic inverses may override.
    fn quantile(&self, axis: Axis, p: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&p));
        let side = match axis {
            Axis::X => self.region().x_interval(),
            Axis::Y => self.region().y_interval(),
        };
        if p <= 0.0 {
            return side.lo;
        }
        if p >= 1.0 {
            return side.hi;
        }
        invert_monotone(|v| self.marginal_cdf(axis, v), side.lo, side.hi, p)
    }

    /// Returns `Some(region)` when the pdf is *uniform* over its
    /// region, which unlocks the paper's closed-form evaluation paths
    /// (Eq. 6 / Eq. 8). Default: `None`.
    fn uniform_region(&self) -> Option<Rect> {
        None
    }

    /// Exact integral of a linear function against one axis marginal:
    /// `∫_I (c0 + c1·x) dF_axis(x)`, or `None` when the pdf cannot
    /// provide it in closed form.
    ///
    /// Implementations should only return `Some` when the 2-D density
    /// **factorises into independent axis marginals** on its region
    /// (`f(x, y) = fx(x) · fy(y)`): that property is what lets the
    /// Eq. 8 integrand separate, so it is the contract the closed-form
    /// IUQ evaluator relies on. Uniform and truncated-Gaussian pdfs
    /// qualify; histogram, disc and mixture pdfs do not (they stay on
    /// the grid / Monte-Carlo paths).
    fn linear_marginal_integral(&self, axis: Axis, i: Interval, c0: f64, c1: f64) -> Option<f64> {
        let _ = (axis, i, c0, c1);
        None
    }

    /// Mass of the marginal inside a 1-D interval; convenience built on
    /// the marginal CDF.
    fn marginal_prob(&self, axis: Axis, i: Interval) -> f64 {
        if i.is_empty() {
            return 0.0;
        }
        (self.marginal_cdf(axis, i.hi) - self.marginal_cdf(axis, i.lo)).max(0.0)
    }
}

/// Shared, dynamically-typed pdf handle stored inside objects.
pub type SharedPdf = Arc<dyn LocationPdf>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::UniformPdf;

    #[test]
    fn default_quantile_inverts_cdf() {
        let pdf = UniformPdf::new(Rect::from_coords(0.0, 0.0, 10.0, 20.0));
        // Uniform marginal on [0,10]: quantile(p) = 10p.
        let q = LocationPdf::quantile(&pdf, Axis::X, 0.3);
        assert!((q - 3.0).abs() < 1e-9);
        assert_eq!(LocationPdf::quantile(&pdf, Axis::Y, 0.0), 0.0);
        assert_eq!(LocationPdf::quantile(&pdf, Axis::Y, 1.0), 20.0);
    }

    #[test]
    fn marginal_prob_of_full_support_is_one() {
        let pdf = UniformPdf::new(Rect::from_coords(-5.0, 2.0, 5.0, 4.0));
        let p = pdf.marginal_prob(Axis::X, Interval::new(-5.0, 5.0));
        assert!((p - 1.0).abs() < 1e-12);
        assert_eq!(pdf.marginal_prob(Axis::X, Interval::EMPTY), 0.0);
    }
}
