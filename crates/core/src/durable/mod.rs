//! Durability: a write-ahead log and binary checkpoints for the
//! sharded serving layer, with **bit-identical** crash recovery.
//!
//! Everything above this module is in-memory: a process crash loses
//! the catalog and every standing query. This module makes the
//! mutation stream durable without touching the query hot path:
//!
//! * **Write-ahead log** ([`wal`]) — every non-empty `Update` batch is
//!   encoded and appended *before* [`crate::serve::ShardedEngine::commit`]
//!   publishes the epoch it will commit as, fsync'd per
//!   [`FsyncPolicy`]. Records are length-prefixed and CRC-checksummed,
//!   so a torn tail (the process died mid-append) is **detected and
//!   truncated**, never misread.
//! * **Checkpoints** ([`checkpoint`]) — periodic binary snapshots of
//!   per-shard object state, written to a temp file and renamed in
//!   atomically, so the log never has to be replayed from epoch 0.
//! * **Recovery** ([`DurableCatalog::open`]) — loads the newest valid
//!   checkpoint, rebuilds the engine at that epoch, and replays the
//!   log suffix **through the normal submit/commit path**. Because
//!   replay reuses the exact machinery `tests/dynamic.rs` pins
//!   (dynamic == rebuild, bit for bit), a recovered catalog answers
//!   every query bit-identically to one that never crashed.
//!
//! All on-disk encoding follows the wire protocol's discipline:
//! little-endian integers and `f64`s as raw IEEE-754 bit patterns
//! ([`f64::to_bits`] / [`f64::from_bits`]), with every decoder
//! validating constructor preconditions so adversarial bytes surface
//! as a [`StoreError`], never a panic.
//!
//! See `docs/DURABILITY.md` for the record formats, the recovery
//! algorithm, and the crash-consistency guarantees.

mod catalog;
mod checkpoint;
mod codec;
mod wal;

pub use catalog::{CatalogRecovery, DurableCatalog, StoreConfig};
pub use codec::{Cursor, DurableObject};

use std::fmt;
use std::io;

/// When the write-ahead log calls `fsync` after appending a commit
/// record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Every appended record is fsync'd before the commit publishes —
    /// an acknowledged commit survives power loss.
    Always,
    /// Fsync once per `N` appended records (and always on
    /// [`DurableCatalog::flush`]). A crash loses at most the last
    /// `N - 1` acknowledged commits; a torn tail is still truncated
    /// cleanly.
    EveryN(u64),
    /// Never fsync on the commit path (the OS flushes the page cache
    /// on its own schedule). A kill still recovers everything written;
    /// power loss may lose the cached suffix.
    Off,
}

impl FsyncPolicy {
    /// Parses the `--fsync` CLI spelling: `always`, `off`,
    /// `every=N` / `every-N` (N ≥ 1).
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "off" => Some(FsyncPolicy::Off),
            _ => {
                let n = s
                    .strip_prefix("every=")
                    .or_else(|| s.strip_prefix("every-"))?;
                let n: u64 = n.parse().ok()?;
                if n == 0 {
                    None
                } else {
                    Some(FsyncPolicy::EveryN(n))
                }
            }
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryN(n) => write!(f, "every={n}"),
            FsyncPolicy::Off => write!(f, "off"),
        }
    }
}

/// Why a durable-store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// On-disk bytes that frame correctly (length + checksum) decode
    /// to something no encoder produces — recovery refuses to guess.
    Corrupt(&'static str),
    /// The in-memory state cannot be encoded (a `Shared` pdf handle
    /// has no on-disk representation).
    Unsupported(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "durable store i/o: {e}"),
            StoreError::Corrupt(what) => write!(f, "durable store corrupt: {what}"),
            StoreError::Unsupported(what) => write!(f, "durable store unsupported: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE, reflected) — the record checksum
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the checksum every
/// WAL and checkpoint record carries.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Record framing — `[len u32][crc u32][payload]`, shared by the WAL
// and checkpoint files
// ---------------------------------------------------------------------------

/// Bytes of framing in front of every record payload.
pub(crate) const RECORD_HEADER: usize = 8;

/// Hard ceiling on one record's payload; a larger length field is
/// corruption (or a file that is not ours), not a real record.
pub(crate) const MAX_RECORD_LEN: u32 = 256 * 1024 * 1024;

/// Opens a record in `buf`, returning its start offset for
/// [`finish_record`]. Mirrors the wire protocol's
/// `begin_frame`/`finish_frame` idiom: the payload is encoded in
/// place, then the header is patched.
pub(crate) fn begin_record(buf: &mut Vec<u8>) -> usize {
    let at = buf.len();
    buf.extend_from_slice(&[0u8; RECORD_HEADER]);
    at
}

/// Patches the length and checksum of the record opened at `at`.
pub(crate) fn finish_record(buf: &mut [u8], at: usize) {
    let payload_len = (buf.len() - at - RECORD_HEADER) as u32;
    let crc = crc32(&buf[at + RECORD_HEADER..]);
    buf[at..at + 4].copy_from_slice(&payload_len.to_le_bytes());
    buf[at + 4..at + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Walks the well-formed record prefix of a byte buffer, stopping at
/// the first torn or corrupt frame (short header, wild length,
/// truncated payload, checksum mismatch). [`RecordScanner::valid_end`]
/// is then the byte offset the file should be truncated to.
pub(crate) struct RecordScanner<'a> {
    buf: &'a [u8],
    pos: usize,
    torn: Option<&'static str>,
}

impl<'a> RecordScanner<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> RecordScanner<'a> {
        RecordScanner {
            buf,
            pos: 0,
            torn: None,
        }
    }

    /// The next record's payload, or `None` at the end of the valid
    /// prefix (clean or torn — see [`RecordScanner::torn_reason`]).
    pub(crate) fn next_record(&mut self) -> Option<&'a [u8]> {
        if self.torn.is_some() {
            return None;
        }
        let rest = &self.buf[self.pos..];
        if rest.is_empty() {
            return None;
        }
        if rest.len() < RECORD_HEADER {
            self.torn = Some("torn record header");
            return None;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
        if len as u64 > MAX_RECORD_LEN as u64 {
            self.torn = Some("record length out of bounds");
            return None;
        }
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if rest.len() < RECORD_HEADER + len {
            self.torn = Some("torn record payload");
            return None;
        }
        let payload = &rest[RECORD_HEADER..RECORD_HEADER + len];
        if crc32(payload) != crc {
            self.torn = Some("record checksum mismatch");
            return None;
        }
        self.pos += RECORD_HEADER + len;
        Some(payload)
    }

    /// Byte offset of the end of the last well-formed record.
    pub(crate) fn valid_end(&self) -> usize {
        self.pos
    }

    /// Why scanning stopped early, if it did.
    pub(crate) fn torn_reason(&self) -> Option<&'static str> {
        self.torn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_round_trip_and_torn_tail() {
        let mut buf = Vec::new();
        for payload in [&b"hello"[..], &b""[..], &b"world!"[..]] {
            let at = begin_record(&mut buf);
            buf.extend_from_slice(payload);
            finish_record(&mut buf, at);
        }
        let mut scan = RecordScanner::new(&buf);
        assert_eq!(scan.next_record(), Some(&b"hello"[..]));
        assert_eq!(scan.next_record(), Some(&b""[..]));
        assert_eq!(scan.next_record(), Some(&b"world!"[..]));
        assert_eq!(scan.next_record(), None);
        assert_eq!(scan.valid_end(), buf.len());
        assert_eq!(scan.torn_reason(), None);

        // Every proper prefix that cuts into the last record scans to
        // exactly the first two records.
        let two = buf.len() - (RECORD_HEADER + 6);
        for cut in two + 1..buf.len() {
            let mut scan = RecordScanner::new(&buf[..cut]);
            assert_eq!(scan.next_record(), Some(&b"hello"[..]));
            assert_eq!(scan.next_record(), Some(&b""[..]));
            assert_eq!(scan.next_record(), None, "cut at {cut}");
            assert_eq!(scan.valid_end(), two);
            assert!(scan.torn_reason().is_some());
        }
    }

    #[test]
    fn flipped_bit_is_a_checksum_mismatch() {
        let mut buf = Vec::new();
        let at = begin_record(&mut buf);
        buf.extend_from_slice(b"payload");
        finish_record(&mut buf, at);
        for bit in 0..buf.len() * 8 {
            let mut bad = buf.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            let mut scan = RecordScanner::new(&bad);
            // Either the record is rejected outright, or (flipping a
            // length bit downward) a shorter record would need a
            // matching checksum — astronomically unlikely and not
            // constructible here.
            assert_eq!(scan.next_record(), None, "bit {bit} accepted");
        }
    }

    #[test]
    fn fsync_policy_parses_cli_spellings() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("off"), Some(FsyncPolicy::Off));
        assert_eq!(FsyncPolicy::parse("every=8"), Some(FsyncPolicy::EveryN(8)));
        assert_eq!(FsyncPolicy::parse("every-3"), Some(FsyncPolicy::EveryN(3)));
        assert_eq!(FsyncPolicy::parse("every=0"), None);
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }
}
