//! **Figure 9** — IPQ response time vs issuer uncertainty size `u`, one
//! series per range size `w ∈ {500, 1000, 1500}`.
//!
//! Paper: `T` ranges ~20–220 ms and increases with both `u` and `w`
//! because the Minkowski sum (and hence the candidate set) grows with
//! both. Expected reproduction shape: every series monotone-ish in `u`;
//! larger `w` series strictly above smaller ones.

use iloc_core::{Issuer, RangeSpec};
use iloc_datagen::WorkloadGen;

use crate::config::TestBed;
use crate::experiments::{U_SWEEP, W_SERIES};
use crate::harness::{print_table, Row, Summary};

/// Runs the experiment and returns the rows.
pub fn run(bed: &TestBed) -> Vec<Row> {
    let mut rows = Vec::new();
    for &w in &W_SERIES {
        let range = RangeSpec::square(w);
        for &u in &U_SWEEP {
            let issuers = WorkloadGen::new(900).issuer_regions(bed.scale.queries, u);
            let s = Summary::collect(bed.scale.queries, |q| {
                bed.california.ipq(&Issuer::uniform(issuers[q]), range)
            });
            rows.push(Row {
                x: u,
                series: format!("range size w={w}"),
                summary: s,
            });
        }
    }
    print_table(
        "Figure 9: T vs u under different range sizes (IPQ, California)",
        "uncertainty region size u",
        &rows,
    );
    rows
}
