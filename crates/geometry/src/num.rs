//! Floating-point helpers shared across the workspace.
//!
//! Query evaluation composes many exact-arithmetic-in-principle steps
//! (interval clipping, area ratios, piecewise integrals) whose results
//! are compared against probability thresholds. A single, documented
//! tolerance keeps those comparisons consistent everywhere.

/// Default absolute tolerance for probability / area comparisons.
///
/// Probabilities live in `[0, 1]` and areas in this workspace are ratios
/// of coordinates bounded by the 10 000 × 10 000 data space, so an
/// absolute epsilon is appropriate.
pub const EPS: f64 = 1e-9;

/// Returns `true` when `a` and `b` differ by at most `tol`.
#[inline]
pub fn approx_eq_tol(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Returns `true` when `a` and `b` differ by at most [`EPS`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_tol(a, b, EPS)
}

/// Clamps `v` into `[lo, hi]`.
///
/// Unlike `f64::clamp` this tolerates `lo > hi` by collapsing to `lo`,
/// which arises when clipping an empty interval; callers rely on the
/// "empty stays empty" behaviour rather than a panic.
#[inline]
pub fn clamp(v: f64, lo: f64, hi: f64) -> f64 {
    if hi < lo {
        return lo;
    }
    v.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_within_eps() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
    }

    #[test]
    fn approx_eq_tol_symmetric() {
        assert!(approx_eq_tol(2.0, 2.5, 0.5));
        assert!(approx_eq_tol(2.5, 2.0, 0.5));
        assert!(!approx_eq_tol(2.0, 2.6, 0.5));
    }

    #[test]
    fn clamp_basic() {
        assert_eq!(clamp(5.0, 0.0, 10.0), 5.0);
        assert_eq!(clamp(-5.0, 0.0, 10.0), 0.0);
        assert_eq!(clamp(15.0, 0.0, 10.0), 10.0);
    }

    #[test]
    fn clamp_inverted_bounds_collapses_to_lo() {
        assert_eq!(clamp(3.0, 10.0, 0.0), 10.0);
    }
}
