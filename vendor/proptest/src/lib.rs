//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored
//! crate implements the proptest surface the workspace's property
//! suites use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), [`strategy::Strategy`] over
//! numeric ranges / tuples / mapped values, [`collection::vec`],
//! `prop_oneof!`, and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` assertion macros.
//!
//! Semantics: each property runs `cases` times (default 256) with
//! inputs drawn from the strategies by a deterministic, per-test
//! seeded PRNG; a failing case panics with the rendered assertion
//! message. Unlike real proptest there is **no shrinking** — the
//! failing inputs are reported as drawn. Rejection via `prop_assume!`
//! redraws the case, with a generous global retry budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Generates one `#[test]` function per property.
///
/// Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(expr)]` header, then any number of test
/// functions whose arguments use `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(
                &__config,
                stringify!($name),
                &mut |__proptest_rng| {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), __proptest_rng);
                    )*
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the current case
/// (with an optional formatted message) rather than unwinding
/// immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Discards the current case (a new one is drawn) when the premise
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}
